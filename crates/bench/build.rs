//! Captures toolchain identity at build time so benchmark artifacts can
//! record which compiler and target produced them (see `src/host.rs`).
//! Throughput baselines are only comparable when the host matches;
//! `bench_compare` warns when these fields differ from the baseline's.

use std::env;
use std::process::Command;

fn main() {
    let rustc = env::var("RUSTC").unwrap_or_else(|_| "rustc".into());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into());
    println!("cargo:rustc-env=MINNET_RUSTC_VERSION={version}");
    // TARGET is set for build scripts but not for the crate itself.
    let target = env::var("TARGET").unwrap_or_else(|_| "unknown".into());
    println!("cargo:rustc-env=MINNET_TARGET={target}");
    println!("cargo:rerun-if-changed=build.rs");
}
