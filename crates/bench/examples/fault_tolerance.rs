//! Fault-injection walkthrough: kill links under live traffic and watch
//! each network degrade (or not).
//!
//! ```text
//! cargo run --release -p minnet-bench --example fault_tolerance
//! ```
//!
//! Three demonstrations:
//!
//! 1. **Path diversity** — the same single inter-stage link fault, applied
//!    to every paper-lineup network. BMIN routes around it (its stage-0
//!    switches keep `k-1` live parents); TMIN has exactly one path per
//!    `(src, dst)` pair, so the disconnected traffic comes back as
//!    structured refusals — counted, not panicked over.
//! 2. **Transient fault** — a link dies mid-run and is repaired; worms
//!    holding it at onset are aborted-and-drained, traffic refused during
//!    the outage flows again after repair.
//! 3. **Watchdog** — with packet aborts disabled (a test knob), a dead
//!    link wedges the worms that hold it; the no-progress watchdog trips
//!    and returns a [`minnet_sim::StallDiagnostic`] naming the stalled
//!    packets and held channels instead of hanging forever.

use minnet::{Experiment, NetworkSpec};
use minnet_sim::engine::{Script, ScriptedMsg};
use minnet_sim::{EngineState, SimError};
use minnet_topology::{Fault, FaultPlan, FaultTarget};
use minnet_traffic::MessageSizeDist;

fn quick(spec: NetworkSpec) -> Experiment {
    let mut exp = Experiment::paper_default(spec);
    exp.sizes = MessageSizeDist::Fixed(32);
    exp.sim.warmup = 1_000;
    exp.sim.measure = 8_000;
    exp
}

fn main() -> Result<(), String> {
    // --- 1. One dead link, four networks -------------------------------
    println!("one permanent inter-stage link fault, load 0.2:");
    for spec in NetworkSpec::paper_lineup() {
        let exp = quick(spec);
        let compiled = exp.compile()?;
        let plan =
            FaultPlan::random_inter_stage_links(compiled.graph(), 1, 0xFA_u64)?;
        let faults = compiled.network().compile_faults(&plan)?;
        let workload = compiled.template().workload_at(0.2)?;
        let mut st = EngineState::new();
        let report = compiled
            .network()
            .run_poisson_faulted(&workload, Some(&faults), 7, &mut st)?;
        println!(
            "  {:>8}: delivered {:6} | aborted {:3} | refused {:5} | accepted {:.4} f/n/c",
            spec.name(),
            report.delivered_packets,
            report.aborted_packets,
            report.undeliverable_packets,
            report.accepted_flits_per_node_cycle,
        );
    }

    // --- 2. A transient fault: dies at 3000, repaired at 6000 ----------
    let exp = quick(NetworkSpec::tmin());
    let compiled = exp.compile()?;
    let victim = (0..compiled.graph().num_channels() as u32)
        .find(|&c| {
            let ch = compiled.graph().channel(c);
            ch.src.switch().is_some() && ch.dst.switch().is_some()
        })
        .expect("every MIN has inter-stage links");
    let plan = FaultPlan::new().with(Fault::transient(
        FaultTarget::Channel(victim),
        3_000,
        6_000,
    ));
    let faults = compiled.network().compile_faults(&plan)?;
    let workload = compiled.template().workload_at(0.2)?;
    let mut st = EngineState::new();
    let report = compiled
        .network()
        .run_poisson_faulted(&workload, Some(&faults), 7, &mut st)?;
    println!(
        "\ntransient fault on channel {victim} over cycles [3000, 6000) in a TMIN:\n  \
         delivered {} packets, aborted {} at onset, refused {} during the outage",
        report.delivered_packets, report.aborted_packets, report.undeliverable_packets
    );

    // --- 3. The watchdog: wedge the network, get a diagnosis -----------
    // One long scripted worm; trace its faultless path, then kill a
    // mid-path channel while the body is still streaming. With packet
    // aborts disabled (a test knob) the worm wedges on the dead lane
    // forever — the watchdog turns that hang into a diagnosis.
    let mut exp = quick(NetworkSpec::tmin());
    exp.sim.fault_abort = false;
    exp.sim.watchdog_window = 200;
    exp.sim.collect_trace = true;
    let compiled = exp.compile()?;
    let worm = [ScriptedMsg {
        time: 0,
        src: 0,
        dst: exp.geometry.nodes() - 1,
        len: 2_000,
    }];
    let script = Script::compile(exp.geometry, &worm)?;
    let mut st = EngineState::new();
    let clean = compiled.network().run_script(&script, 7, &mut st)?;
    let path = clean.trace.as_ref().expect("trace was enabled").channel_path(0);
    let mid = path[path.len() / 2];
    let plan = FaultPlan::new().with(Fault::transient(FaultTarget::Channel(mid), 100, u64::MAX));
    let faults = compiled.network().compile_faults(&plan)?;
    match compiled
        .network()
        .run_script_faulted(&script, Some(&faults), 7, &mut st)
    {
        Err(SimError::NoProgress(diag)) => {
            println!("\nwatchdog tripped as intended:\n{diag}");
        }
        Ok(_) => return Err("the wedged worm should never drain".into()),
        Err(e) => return Err(e.to_string()),
    }
    Ok(())
}
