//! Ablation benches for the design choices called out in `DESIGN.md`.
//!
//! Each ablation runs the same small scenario under both settings and
//! reports wall time; the delivered-throughput/latency deltas are printed
//! once per bench (stderr) for inspection:
//!
//! * `ablation_arbiter` — random (paper) vs round-robin output/lane
//!   arbitration;
//! * `ablation_vc_mux` — fair flit-level round-robin (paper) vs
//!   winner-holds VC multiplexing;
//! * `ablation_transmit_order` — reverse-topological (paper) vs build
//!   order channel processing;
//! * `ablation_vc_count` — VMIN with 2 vs 4 virtual channels (§6 future
//!   work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minnet::switch::{ArbiterKind, VcMuxPolicy};
use minnet::{Experiment, NetworkSpec};
use minnet_sim::TransmitOrder;
use minnet_traffic::MessageSizeDist;

fn quick(spec: NetworkSpec) -> Experiment {
    let mut e = Experiment::paper_default(spec);
    e.sizes = MessageSizeDist::Fixed(64);
    e.sim.warmup = 500;
    e.sim.measure = 4_000;
    e
}

fn report_once(name: &str, a_label: &str, a: &Experiment, b_label: &str, b: &Experiment) {
    let ra = a.run(0.6).expect("ablation arm runs");
    let rb = b.run(0.6).expect("ablation arm runs");
    eprintln!(
        "[{name}] {a_label}: acc={:.3} lat={:.1}us | {b_label}: acc={:.3} lat={:.1}us",
        ra.accepted_flits_per_node_cycle,
        ra.mean_latency_us(),
        rb.accepted_flits_per_node_cycle,
        rb.mean_latency_us()
    );
}

fn bench_pair(c: &mut Criterion, group_name: &str, arms: [(&str, &Experiment); 2]) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for (name, exp) in arms {
        group.bench_with_input(BenchmarkId::from_parameter(name), exp, |b, exp| {
            b.iter(|| exp.run(0.6).expect("runs"));
        });
    }
    group.finish();
}

fn ablation_arbiter(c: &mut Criterion) {
    let random = quick(NetworkSpec::dmin(2));
    let mut rr = random.clone();
    rr.sim.alloc = ArbiterKind::RoundRobin;
    report_once("ablation_arbiter", "random", &random, "round-robin", &rr);
    bench_pair(c, "ablation_arbiter", [("random", &random), ("round_robin", &rr)]);
}

fn ablation_vc_mux(c: &mut Criterion) {
    let fair = quick(NetworkSpec::vmin(2));
    let mut wh = fair.clone();
    wh.sim.vc_mux = VcMuxPolicy::WinnerHolds;
    report_once("ablation_vc_mux", "round-robin", &fair, "winner-holds", &wh);
    bench_pair(c, "ablation_vc_mux", [("round_robin", &fair), ("winner_holds", &wh)]);
}

fn ablation_transmit_order(c: &mut Criterion) {
    let topo = quick(NetworkSpec::tmin());
    let mut build = topo.clone();
    build.sim.transmit_order = TransmitOrder::BuildOrder;
    report_once(
        "ablation_transmit_order",
        "reverse-topo",
        &topo,
        "build-order",
        &build,
    );
    bench_pair(
        c,
        "ablation_transmit_order",
        [("reverse_topo", &topo), ("build_order", &build)],
    );
}

fn ablation_vc_count(c: &mut Criterion) {
    let v2 = quick(NetworkSpec::vmin(2));
    let v4 = quick(NetworkSpec::vmin(4));
    report_once("ablation_vc_count", "vcs=2", &v2, "vcs=4", &v4);
    bench_pair(c, "ablation_vc_count", [("vc2", &v2), ("vc4", &v4)]);
}

fn ablation_buffer_depth(c: &mut Criterion) {
    let d1 = quick(NetworkSpec::tmin());
    let mut d4 = d1.clone();
    d4.sim.buffer_depth = 4;
    report_once("ablation_buffer_depth", "depth=1", &d1, "depth=4", &d4);
    bench_pair(c, "ablation_buffer_depth", [("depth1", &d1), ("depth4", &d4)]);
}

criterion_group!(
    benches,
    ablation_arbiter,
    ablation_vc_mux,
    ablation_transmit_order,
    ablation_vc_count,
    ablation_buffer_depth
);
criterion_main!(benches);
