//! Routing-kernel microbenchmarks: candidate computation, exhaustive path
//! enumeration, and deadlock analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minnet_routing::{dependency_graph, enumerate_paths, find_cycle, DependencyRule, RouteLogic};
use minnet_topology::{build_bmin, build_unidir, Geometry, UnidirKind};

fn route_candidates(c: &mut Criterion) {
    let g = Geometry::new(4, 3);
    let mut group = c.benchmark_group("route_candidates");
    let nets = [
        ("tmin", build_unidir(g, UnidirKind::Cube, 1)),
        ("dmin", build_unidir(g, UnidirKind::Cube, 2)),
        ("bmin", build_bmin(g)),
    ];
    for (name, net) in &nets {
        let logic = RouteLogic::for_kind(net.kind);
        group.bench_with_input(BenchmarkId::from_parameter(name), net, |b, net| {
            let mut out = Vec::new();
            b.iter(|| {
                // Route every injected header once.
                for s in 0..64u32 {
                    let d = (s + 17) % 64;
                    logic.candidates(net, s, d, net.inject(s), &mut out);
                    std::hint::black_box(&out);
                }
            });
        });
    }
    group.finish();
}

fn path_enumeration(c: &mut Criterion) {
    let g = Geometry::new(4, 3);
    let net = build_bmin(g);
    c.bench_function("enumerate_turnaround_paths_0_to_63", |b| {
        b.iter(|| std::hint::black_box(enumerate_paths(&net, RouteLogic::Turnaround, 0, 63)));
    });
}

fn deadlock_analysis(c: &mut Criterion) {
    let g = Geometry::new(4, 3);
    let net = build_bmin(g);
    c.bench_function("cdg_build_and_check", |b| {
        b.iter(|| {
            let adj = dependency_graph(&net, DependencyRule::Paper);
            std::hint::black_box(find_cycle(&adj))
        });
    });
}

criterion_group!(benches, route_candidates, path_enumeration, deadlock_analysis);
criterion_main!(benches);
