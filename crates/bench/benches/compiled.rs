//! Benchmarks for the compile-once / run-many pipeline.
//!
//! Three questions, one bench each:
//!
//! * **Setup amortization** — what fraction of a short probe's cost was
//!   per-run setup (spec validation, graph build, workload compilation,
//!   ~20 state allocations)? `one_shot` pays it every iteration;
//!   `compiled` pays it once outside the timer and only re-runs the
//!   simulation against a reused [`EngineState`].
//! * **Table vs logic routing** — the same run routed through the
//!   precomputed [`RouteTable`] (compiled path) and through the
//!   closed-form [`RouteLogic`] recomputed per hop (one-shot path). Both
//!   produce bit-identical reports; this measures the lookup's saving.
//! * **Saturation search** — `find_saturation` end to end, the sweep
//!   primitive the figures pipeline leans on hardest; compiling must not
//!   regress its hot loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minnet::{find_saturation, CompiledExperiment, Experiment, NetworkSpec};
use minnet_sim::{run_simulation, EngineConfig, EngineState};
use minnet_topology::Geometry;
use minnet_traffic::{MessageSizeDist, Workload, WorkloadSpec};
use std::sync::Arc;

/// A short probe — the shape `find_saturation` and replicated sweeps
/// issue by the dozen, where fixed setup cost bites hardest.
fn probe_experiment(spec: NetworkSpec) -> Experiment {
    let mut exp = Experiment::paper_default(spec);
    exp.sizes = MessageSizeDist::Fixed(64);
    exp.sim.warmup = 200;
    exp.sim.measure = 2_000;
    exp
}

fn setup_amortization(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiled_setup");
    group.sample_size(10);
    for spec in [NetworkSpec::tmin(), NetworkSpec::Bmin] {
        let exp = probe_experiment(spec);
        group.bench_with_input(
            BenchmarkId::new("one_shot", spec.name()),
            &exp,
            |b, exp| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    exp.run_seeded(0.3, seed).expect("simulation runs")
                });
            },
        );
        let compiled = exp.compile().expect("experiment compiles");
        group.bench_with_input(
            BenchmarkId::new("compiled", spec.name()),
            &compiled,
            |b, compiled| {
                let mut st = EngineState::new();
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    compiled
                        .run_with(0.3, seed, &mut st)
                        .expect("simulation runs")
                });
            },
        );
    }
    group.finish();
}

fn table_vs_logic(c: &mut Criterion) {
    let g = Geometry::new(4, 3);
    let spec = NetworkSpec::Bmin; // deepest routing work per header
    let net = Arc::new(spec.build(g));
    let wl = Workload::compile(g, &WorkloadSpec::global_uniform(0.5)).expect("workload compiles");
    let cfg = EngineConfig {
        vcs: spec.vcs(),
        warmup: 500,
        measure: 10_000,
        ..EngineConfig::default()
    };
    let compiled =
        minnet_sim::CompiledNet::new(Arc::clone(&net), cfg.clone()).expect("net compiles");
    let mut group = c.benchmark_group("compiled_routing");
    group.sample_size(10);
    group.bench_function("logic_per_hop", |b| {
        b.iter(|| run_simulation(&net, &wl, &cfg).expect("simulation runs"));
    });
    group.bench_function("table_lookup", |b| {
        let mut st = EngineState::new();
        b.iter(|| {
            compiled
                .run_poisson(&wl, cfg.seed, &mut st)
                .expect("simulation runs")
        });
    });
    group.finish();
}

fn saturation_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiled_saturation");
    group.sample_size(10);
    let exp = probe_experiment(NetworkSpec::dmin(2));
    group.bench_function("find_saturation", |b| {
        b.iter(|| {
            find_saturation(&exp, 0.1, 1.0, 5)
                .expect("search runs")
                .expect("bracket holds")
        });
    });
    group.finish();
}

fn compile_cost(c: &mut Criterion) {
    // The fixed cost a sweep pays once — for context against the per-run
    // numbers above.
    let mut group = c.benchmark_group("compiled_build");
    group.sample_size(10);
    for spec in [NetworkSpec::tmin(), NetworkSpec::Bmin] {
        let exp = probe_experiment(spec);
        group.bench_with_input(BenchmarkId::from_parameter(spec.name()), &exp, |b, exp| {
            b.iter(|| CompiledExperiment::compile(exp).expect("experiment compiles"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    setup_amortization,
    table_vs_logic,
    saturation_search,
    compile_cost
);
criterion_main!(benches);
