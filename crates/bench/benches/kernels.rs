//! Word-kernel microbenchmarks: the engine's per-cycle allocate/transmit
//! phases with the word-parallel kernels forced on vs forced off, from
//! one compiled network and one reused engine state (both settings are
//! pinned bit-identical by the equivalence suite, so the wall clock is
//! the only difference).
//!
//! Two load points per network bracket the regime the kernels target:
//! `load_low` (0.1, sparse occupancy masks — the kernels must not
//! regress) and `load_sat` (0.55, past the saturation knee — dense masks
//! are where the word-at-a-time sweeps and the reverse-topological
//! patch loops pay off). Compare with
//! `cargo bench -p minnet-bench --bench kernels`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minnet::NetworkSpec;
use minnet_sim::{CompiledNet, EngineConfig, EngineState};
use minnet_topology::Geometry;
use minnet_traffic::{MessageSizeDist, TrafficPattern, Workload, WorkloadSpec};
use std::sync::Arc;

fn kernel_pair(c: &mut Criterion, group_name: &str, load: f64) {
    let g = Geometry::new(4, 3);
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for spec in NetworkSpec::paper_lineup() {
        let net = Arc::new(spec.build(g));
        let cfg = EngineConfig {
            vcs: spec.vcs(),
            warmup: 500,
            measure: 4_000,
            ..EngineConfig::default()
        };
        let compiled = CompiledNet::new(net, cfg).expect("network compiles");
        let wl_spec = WorkloadSpec {
            sizes: MessageSizeDist::Fixed(64),
            pattern: TrafficPattern::Uniform,
            ..WorkloadSpec::global_uniform(load)
        };
        let wl = Workload::compile(g, &wl_spec).expect("workload compiles");
        let on = compiled.with_word_kernels(true);
        let off = compiled.with_word_kernels(false);
        let mut st = EngineState::new();
        group.bench_function(BenchmarkId::new("on", spec.name()), |b| {
            b.iter(|| on.run_poisson(&wl, 0xBEEF, &mut st).expect("run"));
        });
        group.bench_function(BenchmarkId::new("off", spec.name()), |b| {
            b.iter(|| off.run_poisson(&wl, 0xBEEF, &mut st).expect("run"));
        });
    }
    group.finish();
}

/// Sparse masks: most words are zero and the kernels' word scans skip
/// whole channels 64 lanes at a time. Parity with the scalar path is
/// the requirement here, not a win.
fn kernels_low_load(c: &mut Criterion) {
    kernel_pair(c, "kernels_load_low", 0.1);
}

/// Saturated masks: the batched transmit path and the patch-based
/// ready-word maintenance carry the cycle; this is the regime the
/// speedup targets quote.
fn kernels_saturation(c: &mut Criterion) {
    kernel_pair(c, "kernels_load_sat", 0.55);
}

criterion_group!(benches, kernels_low_load, kernels_saturation);
criterion_main!(benches);
