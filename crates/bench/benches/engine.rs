//! Engine microbenchmarks: simulation cycles/second for each of the four
//! network designs at moderate load, plus optimized-vs-reference pairs
//! quantifying the occupancy-scaled hot loop at idle and at saturation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minnet::{Experiment, NetworkSpec};
use minnet_sim::{reference, run_simulation, EngineConfig};
use minnet_topology::Geometry;
use minnet_traffic::{MessageSizeDist, Workload, WorkloadSpec};

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_cycles");
    group.sample_size(10);
    for spec in NetworkSpec::paper_lineup() {
        let mut exp = Experiment::paper_default(spec);
        exp.sizes = MessageSizeDist::Fixed(64);
        exp.sim.warmup = 500;
        exp.sim.measure = 5_000;
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.name()),
            &exp,
            |b, exp| {
                b.iter(|| exp.run(0.5).expect("simulation runs"));
            },
        );
    }
    group.finish();
}

fn engine_load_scaling(c: &mut Criterion) {
    // Cost per cycle grows with in-flight worms; measure light vs heavy.
    let mut group = c.benchmark_group("engine_load");
    group.sample_size(10);
    for load in [0.1f64, 0.9] {
        let mut exp = Experiment::paper_default(NetworkSpec::dmin(2));
        exp.sizes = MessageSizeDist::Fixed(64);
        exp.sim.warmup = 500;
        exp.sim.measure = 5_000;
        group.bench_with_input(BenchmarkId::from_parameter(load), &exp, |b, exp| {
            b.iter(|| exp.run(load).expect("simulation runs"));
        });
    }
    group.finish();
}

/// Optimized vs frozen-reference engine on the 64-node TMIN at the given
/// load. At idle loads the per-cycle cost of the optimized engine tracks
/// occupancy, so the gap over the scan-everything reference is the point
/// of the comparison; at saturation both scan essentially everything and
/// the optimized engine must not regress.
fn engine_vs_reference(c: &mut Criterion, group_name: &str, load: f64) {
    let g = Geometry::new(4, 3);
    let spec = NetworkSpec::tmin();
    let net = spec.build(g);
    let wl = Workload::compile(g, &WorkloadSpec::global_uniform(load)).expect("workload compiles");
    let cfg = EngineConfig {
        vcs: spec.vcs(),
        warmup: 1_000,
        measure: 20_000,
        ..EngineConfig::default()
    };
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("optimized", load), |b| {
        b.iter(|| run_simulation(&net, &wl, &cfg).expect("simulation runs"));
    });
    group.bench_function(BenchmarkId::new("reference", load), |b| {
        b.iter(|| reference::run_simulation(&net, &wl, &cfg).expect("simulation runs"));
    });
    group.finish();
}

/// Low offered load (0.05 flits/node/cycle): the network is mostly empty,
/// so the active sets keep each cycle near-free.
fn engine_idle(c: &mut Criterion) {
    engine_vs_reference(c, "engine_idle", 0.05);
}

/// Past the TMIN's saturation knee: every channel stays busy and the
/// occupancy structures carry their maximum bookkeeping overhead.
fn engine_saturated(c: &mut Criterion) {
    engine_vs_reference(c, "engine_saturated", 0.9);
}

criterion_group!(
    benches,
    engine_throughput,
    engine_load_scaling,
    engine_idle,
    engine_saturated
);
criterion_main!(benches);
