//! Engine microbenchmarks: simulation cycles/second for each of the four
//! network designs at moderate load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minnet::{Experiment, NetworkSpec};
use minnet_traffic::MessageSizeDist;

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_cycles");
    group.sample_size(10);
    for spec in NetworkSpec::paper_lineup() {
        let mut exp = Experiment::paper_default(spec);
        exp.sizes = MessageSizeDist::Fixed(64);
        exp.sim.warmup = 500;
        exp.sim.measure = 5_000;
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.name()),
            &exp,
            |b, exp| {
                b.iter(|| exp.run(0.5).expect("simulation runs"));
            },
        );
    }
    group.finish();
}

fn engine_load_scaling(c: &mut Criterion) {
    // Cost per cycle grows with in-flight worms; measure light vs heavy.
    let mut group = c.benchmark_group("engine_load");
    group.sample_size(10);
    for load in [0.1f64, 0.9] {
        let mut exp = Experiment::paper_default(NetworkSpec::dmin(2));
        exp.sizes = MessageSizeDist::Fixed(64);
        exp.sim.warmup = 500;
        exp.sim.measure = 5_000;
        group.bench_with_input(BenchmarkId::from_parameter(load), &exp, |b, exp| {
            b.iter(|| exp.run(load).expect("simulation runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, engine_throughput, engine_load_scaling);
criterion_main!(benches);
