//! One Criterion bench per paper figure: a quick (short-window, single
//! mid-grid load) variant of every curve bundle in the catalogue. The
//! full reproduction lives in the `figures` binary; these benches keep
//! every experiment wired into `cargo bench` and track engine-performance
//! regressions per scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minnet_bench::all_figures;

fn figure_quick_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_quick");
    group.sample_size(10);
    for fig in all_figures() {
        // First curve of each figure, mid-grid load, small windows.
        let (label, exp) = &fig.curves[0];
        let mut exp = exp.clone();
        exp.sim.warmup = 500;
        exp.sim.measure = 3_000;
        let load = fig.loads[fig.loads.len() / 2];
        group.bench_with_input(
            BenchmarkId::new(fig.id, label),
            &(exp, load),
            |b, (exp, load)| {
                b.iter(|| exp.run(*load).expect("figure curve runs"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, figure_quick_runs);
criterion_main!(benches);
