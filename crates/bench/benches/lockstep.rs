//! Lockstep-fleet microbenchmarks: R replication seeds per load issued
//! (a) one lane at a time through the scalar entry, (b) as one serial
//! lockstep fleet (the amortization headroom of interleaved lanes
//! alone), and (c) as a fleet chunked over `min(R, cores)` lane-block
//! threads (the configuration `replicated_curve` actually uses and the
//! one the ≥2x aggregate-throughput target is stated against).
//!
//! Criterion reports wall time per full R-lane batch, so aggregate
//! cycles/sec ratios read directly off the time ratios — every variant
//! runs the exact same lanes and produces bitwise-identical reports
//! (pinned by `tests/engine_equivalence.rs`, not re-checked here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minnet::{Experiment, NetworkSpec};
use minnet_sim::{EngineState, LockstepState};
use minnet_traffic::MessageSizeDist;

const REPLICATIONS: usize = 8;

/// Scalar vs lockstep fleets on one network at one offered load.
fn fleet_group(c: &mut Criterion, group_name: &str, spec: NetworkSpec, load: f64) {
    let mut exp = Experiment::paper_default(spec);
    exp.sizes = MessageSizeDist::Fixed(64);
    exp.sim.warmup = 500;
    exp.sim.measure = 4_000;
    let compiled = exp.compile().expect("experiment compiles");
    assert!(compiled.network().lockstep_eligible());
    let wl = compiled
        .template()
        .workload_at(load)
        .expect("workload compiles");
    let seeds: Vec<u64> = (0..REPLICATIONS as u64).map(|r| 0xF1EE7 + r * 7919).collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(REPLICATIONS);

    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("scalar", load), |b| {
        let mut st = EngineState::new();
        b.iter(|| {
            for &seed in &seeds {
                compiled
                    .network()
                    .run_poisson(&wl, seed, &mut st)
                    .expect("simulation runs");
            }
        });
    });
    group.bench_function(BenchmarkId::new("lockstep_serial", load), |b| {
        let mut ls = LockstepState::new();
        b.iter(|| {
            for res in compiled.network().run_poisson_lockstep(&wl, &seeds, 1, &mut ls) {
                res.expect("simulation runs");
            }
        });
    });
    group.bench_function(
        BenchmarkId::new(format!("lockstep_{threads}_threads"), load),
        |b| {
            let mut ls = LockstepState::new();
            b.iter(|| {
                let fleet = compiled
                    .network()
                    .run_poisson_lockstep(&wl, &seeds, threads, &mut ls);
                for res in fleet {
                    res.expect("simulation runs");
                }
            });
        },
    );
    group.finish();
}

/// Saturated TMIN: the allocate/transmit hot loops dominate, the regime
/// the ≥2x aggregate target is stated against.
fn lockstep_saturated(c: &mut Criterion) {
    fleet_group(c, "lockstep_saturated", NetworkSpec::tmin(), 0.6);
}

/// Near-idle TMIN: fast-forward dominates; the fleet must not regress
/// the low-load rows (joint horizon = min over lanes, so lanes jump
/// together or step together).
fn lockstep_idle(c: &mut Criterion) {
    fleet_group(c, "lockstep_idle", NetworkSpec::tmin(), 0.05);
}

/// The bidirectional BMIN exercises the turnaround-routing fat tree.
fn lockstep_bmin(c: &mut Criterion) {
    fleet_group(c, "lockstep_bmin", NetworkSpec::Bmin, 0.5);
}

criterion_group!(benches, lockstep_saturated, lockstep_idle, lockstep_bmin);
criterion_main!(benches);
