//! [`Router::Table`] vs [`Router::Logic`] across switch radix and
//! network size.
//!
//! The compiled pipeline answers "where may this header go next" from a
//! precomputed per-(channel, destination) [`RouteTable`]; the one-shot
//! path recomputes the closed-form [`RouteLogic`] at every hop. Both
//! produce bit-identical reports, so the only question is cost — and
//! the answer depends on the switch radix `k` (candidate fan-out per
//! hop, table row width) and the network size (table footprint vs cache)
//! in ways a single 64-node BMIN point can't show. Two sweeps:
//!
//! * **radix** — 64 nodes factored as k ∈ {2, 4, 8} (k^n fixed:
//!   2^6 = 4^3 = 8^2), for both the TMIN and BMIN lineups;
//! * **size** — k = 4 with n ∈ {2, 3, 4} (16 → 256 nodes) on the BMIN,
//!   where routing work per header is deepest.
//!
//! Every pair runs the same Poisson workload at a moderate 0.3 load with
//! identical seeds; the table path reuses one [`EngineState`] exactly as
//! sweeps do.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minnet::NetworkSpec;
use minnet_sim::{run_simulation, CompiledNet, EngineConfig, EngineState};
use minnet_topology::Geometry;
use minnet_traffic::{MessageSizeDist, Workload, WorkloadSpec};
use std::sync::Arc;

const LOAD: f64 = 0.3;

fn probe_cfg(spec: &NetworkSpec) -> EngineConfig {
    EngineConfig {
        vcs: spec.vcs(),
        warmup: 200,
        measure: 2_000,
        ..EngineConfig::default()
    }
}

/// Bench the same run through per-hop logic and through the table.
fn bench_pair(c: &mut Criterion, group_name: &str, label: &str, spec: &NetworkSpec, g: Geometry) {
    let net = Arc::new(spec.build(g));
    let mut wspec = WorkloadSpec::global_uniform(LOAD);
    wspec.sizes = MessageSizeDist::Fixed(64);
    let wl = Workload::compile(g, &wspec).expect("workload compiles");
    let cfg = probe_cfg(spec);
    let compiled = CompiledNet::new(Arc::clone(&net), cfg.clone()).expect("net compiles");

    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("logic", label), &(), |b, _| {
        b.iter(|| run_simulation(&net, &wl, &cfg).expect("simulation runs"));
    });
    group.bench_with_input(BenchmarkId::new("table", label), &(), |b, _| {
        let mut st = EngineState::new();
        b.iter(|| {
            compiled
                .run_poisson(&wl, cfg.seed, &mut st)
                .expect("simulation runs")
        });
    });
    group.finish();
}

fn radix_sweep(c: &mut Criterion) {
    // 64 nodes under every radix: 2^6 = 4^3 = 8^2.
    for (k, n) in [(2u32, 6u32), (4, 3), (8, 2)] {
        let g = Geometry::new(k, n);
        for spec in [NetworkSpec::tmin(), NetworkSpec::Bmin] {
            let label = format!("{}_k{k}n{n}", spec.name());
            bench_pair(c, "router_modes_radix", &label, &spec, g);
        }
    }
}

fn size_sweep(c: &mut Criterion) {
    // Fixed radix, growing network: 16, 64, 256 nodes.
    for n in [2u32, 3, 4] {
        let g = Geometry::new(4, n);
        let spec = NetworkSpec::Bmin;
        let label = format!("{}_k4n{n}", spec.name());
        bench_pair(c, "router_modes_size", &label, &spec, g);
    }
}

criterion_group!(benches, radix_sweep, size_sweep);
criterion_main!(benches);
