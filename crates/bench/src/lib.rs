//! # minnet-bench
//!
//! The benchmark harness that regenerates every evaluation figure of the
//! paper (§5, Figs. 16–20) plus the extension studies listed in
//! `DESIGN.md`. [`figures`] defines one experiment bundle per figure; the
//! `figures` binary sweeps them and writes paper-style series (text +
//! CSV); the Criterion benches in `benches/` time the engine, the routing
//! kernels, a quick variant of every figure, and the design-choice
//! ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod host;

pub use figures::{all_figures, figure_by_id, FigureDef};
