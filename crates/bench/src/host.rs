//! Host and toolchain identity for benchmark artifacts.
//!
//! Wall-clock throughput numbers (`cycles_per_sec`, kernel speedup
//! ratios) are only comparable when they come from the same compiler,
//! target, and machine class. Every artifact the smoke harnesses write
//! therefore embeds a `"host"` object built here, and `bench_compare`
//! warns when the baseline's host identity differs from the current
//! run's — a regression verdict across differing hosts is noise, not
//! signal.
//!
//! The compiler version and target triple are captured at build time by
//! `build.rs` (they describe the binary, not the process); the core
//! count is probed at runtime (it describes the machine the numbers
//! were taken on).

/// `rustc --version` of the compiler that built this harness.
pub fn rustc_version() -> &'static str {
    env!("MINNET_RUSTC_VERSION")
}

/// Target triple this harness was compiled for.
pub fn target() -> &'static str {
    env!("MINNET_TARGET")
}

/// Logical cores visible to this process (0 when the probe fails).
pub fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0)
}

/// Compile-time-enabled target features the word-parallel kernels care
/// about (bit-manipulation and wide-vector ISA extensions), as a
/// space-separated list. Empty when none of the probed features are on —
/// e.g. a stock `x86_64-unknown-linux-gnu` build without `-C
/// target-cpu=native`.
pub fn target_features() -> String {
    let mut out = Vec::new();
    macro_rules! probe {
        ($($name:literal),* $(,)?) => {
            $(if cfg!(target_feature = $name) { out.push($name); })*
        };
    }
    probe!(
        "popcnt", "bmi1", "bmi2", "lzcnt", "sse4.2", "avx", "avx2", "avx512f", "neon",
    );
    out.join(" ")
}

/// The `"host": { ... }` JSON fragment the smoke harnesses embed in
/// their `meta` block. `indent` is the leading whitespace of the
/// `"host"` key; no trailing comma or newline is appended.
pub fn host_meta_json(indent: &str) -> String {
    format!(
        "{indent}\"host\": {{\n\
         {indent}  \"rustc\": \"{}\",\n\
         {indent}  \"target\": \"{}\",\n\
         {indent}  \"target_features\": \"{}\",\n\
         {indent}  \"cores\": {}\n\
         {indent}}}",
        escape(rustc_version()),
        escape(target()),
        escape(&target_features()),
        cores()
    )
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_time_identity_is_present() {
        assert!(rustc_version().starts_with("rustc") || rustc_version() == "unknown");
        assert!(!target().is_empty());
    }

    #[test]
    fn json_fragment_is_well_formed() {
        let frag = host_meta_json("  ");
        assert!(frag.starts_with("  \"host\": {"));
        assert!(frag.ends_with('}'));
        assert!(frag.contains("\"rustc\": \""));
        assert!(frag.contains("\"cores\": "));
        // Balanced braces, no trailing comma before the close.
        assert_eq!(frag.matches('{').count(), frag.matches('}').count());
        assert!(!frag.contains(",\n  }"));
    }
}
