//! The experiment bundle behind every evaluation figure.
//!
//! Each [`FigureDef`] lists the curves (labelled [`Experiment`]s) of one
//! paper figure, its offered-load grid, and the qualitative claim the
//! paper makes about it (recorded in `EXPERIMENTS.md`).

use minnet::{Experiment, NetworkSpec};
use minnet_topology::{Geometry, UnidirKind};
use minnet_traffic::{Clustering, MessageSizeDist, TrafficPattern};

/// One figure to regenerate: an id like `fig18a`, a set of labelled
/// experiment curves, and the load grid to sweep.
pub struct FigureDef {
    /// Identifier (`fig16a` … `fig20b`, `ext_*`).
    pub id: &'static str,
    /// Human title echoing the paper's caption.
    pub title: &'static str,
    /// Labelled curves.
    pub curves: Vec<(String, Experiment)>,
    /// Offered loads (flits/cycle/node) to sweep.
    pub loads: Vec<f64>,
}

/// The paper's geometry: 64 nodes of 4×4 switches, three stages.
pub fn paper_geometry() -> Geometry {
    Geometry::new(4, 3)
}

fn base(network: NetworkSpec) -> Experiment {
    Experiment::paper_default(network)
}

fn msd_clusters() -> Clustering {
    Clustering::cubes_from_patterns(&paper_geometry(), &["0XX", "1XX", "2XX", "3XX"])
        .expect("valid patterns")
}

fn lsd_clusters() -> Clustering {
    Clustering::cubes_from_patterns(&paper_geometry(), &["XX0", "XX1", "XX2", "XX3"])
        .expect("valid patterns")
}

fn cluster32() -> Clustering {
    use minnet_topology::BitCube;
    let g = paper_geometry();
    Clustering::BitCubes(vec![
        BitCube::parse(&g, "0XXXXX").expect("valid"),
        BitCube::parse(&g, "1XXXXX").expect("valid"),
    ])
}

fn default_loads() -> Vec<f64> {
    (1..=9).map(|i| i as f64 / 10.0).collect()
}

fn lineup_curves(mutate: impl Fn(&mut Experiment)) -> Vec<(String, Experiment)> {
    NetworkSpec::paper_lineup()
        .into_iter()
        .map(|spec| {
            let mut e = base(spec);
            mutate(&mut e);
            (spec.name(), e)
        })
        .collect()
}

/// All figure definitions, in paper order.
pub fn all_figures() -> Vec<FigureDef> {
    let mut figs = Vec::new();

    // ---- Fig. 16: cube vs butterfly TMIN ---------------------------------
    figs.push(FigureDef {
        id: "fig16a",
        title: "Cube vs butterfly TMIN, global uniform traffic",
        curves: vec![
            ("cube TMIN".into(), base(NetworkSpec::Tmin(UnidirKind::Cube))),
            (
                "butterfly TMIN".into(),
                base(NetworkSpec::Tmin(UnidirKind::Butterfly)),
            ),
        ],
        loads: default_loads(),
    });

    let mut cube16 = base(NetworkSpec::Tmin(UnidirKind::Cube));
    cube16.clustering = msd_clusters();
    let mut bf_reduced = base(NetworkSpec::Tmin(UnidirKind::Butterfly));
    bf_reduced.clustering = msd_clusters();
    let mut bf_shared = base(NetworkSpec::Tmin(UnidirKind::Butterfly));
    bf_shared.clustering = lsd_clusters();
    figs.push(FigureDef {
        id: "fig16b",
        title: "Cube vs butterfly TMIN, cluster-16 uniform traffic",
        curves: vec![
            ("cube TMIN (balanced)".into(), cube16.clone()),
            ("butterfly TMIN (reduced)".into(), bf_reduced.clone()),
            ("butterfly TMIN (shared)".into(), bf_shared.clone()),
        ],
        loads: default_loads(),
    });

    // ---- Fig. 17: cluster rate ratios ------------------------------------
    let with_rates = |e: &Experiment, rates: [f64; 4]| {
        let mut e = e.clone();
        e.rates = Some(rates.to_vec());
        e
    };
    figs.push(FigureDef {
        id: "fig17a",
        title: "Cube vs butterfly TMIN, four 16-node clusters, rates 4:1:1:1",
        curves: vec![
            (
                "cube TMIN (balanced)".into(),
                with_rates(&cube16, [4.0, 1.0, 1.0, 1.0]),
            ),
            (
                "butterfly TMIN (reduced)".into(),
                with_rates(&bf_reduced, [4.0, 1.0, 1.0, 1.0]),
            ),
            (
                "butterfly TMIN (shared)".into(),
                with_rates(&bf_shared, [4.0, 1.0, 1.0, 1.0]),
            ),
        ],
        loads: default_loads(),
    });
    figs.push(FigureDef {
        id: "fig17b",
        title: "Cube (balanced) vs butterfly (shared) TMIN, rates 1:0:0:0 and 4:1:1:1",
        curves: vec![
            (
                "cube TMIN 1:0:0:0".into(),
                with_rates(&cube16, [1.0, 0.0, 0.0, 0.0]),
            ),
            (
                "butterfly shared 1:0:0:0".into(),
                with_rates(&bf_shared, [1.0, 0.0, 0.0, 0.0]),
            ),
            (
                "cube TMIN 4:1:1:1".into(),
                with_rates(&cube16, [4.0, 1.0, 1.0, 1.0]),
            ),
            (
                "butterfly shared 4:1:1:1".into(),
                with_rates(&bf_shared, [4.0, 1.0, 1.0, 1.0]),
            ),
        ],
        loads: default_loads(),
    });

    // ---- Fig. 18: four networks, uniform ---------------------------------
    figs.push(FigureDef {
        id: "fig18a",
        title: "TMIN / DMIN / VMIN / BMIN, global uniform traffic",
        curves: lineup_curves(|_| {}),
        loads: default_loads(),
    });
    figs.push(FigureDef {
        id: "fig18b",
        title: "TMIN / DMIN / VMIN / BMIN, cluster-16 uniform traffic",
        curves: lineup_curves(|e| e.clustering = msd_clusters()),
        loads: default_loads(),
    });

    // ---- Fig. 19: hot spots ----------------------------------------------
    figs.push(FigureDef {
        id: "fig19a",
        title: "Four networks, global 5% hot-spot traffic",
        curves: lineup_curves(|e| e.pattern = TrafficPattern::HotSpot { extra: 0.05 }),
        loads: default_loads(),
    });
    figs.push(FigureDef {
        id: "fig19b",
        title: "Four networks, global 10% hot-spot traffic",
        curves: lineup_curves(|e| e.pattern = TrafficPattern::HotSpot { extra: 0.10 }),
        loads: default_loads(),
    });

    // ---- Fig. 20: permutations ---------------------------------------------
    figs.push(FigureDef {
        id: "fig20a",
        title: "Four networks, perfect-shuffle permutation traffic",
        curves: lineup_curves(|e| e.pattern = TrafficPattern::SHUFFLE),
        loads: default_loads(),
    });
    figs.push(FigureDef {
        id: "fig20b",
        title: "Four networks, 2nd butterfly permutation traffic",
        curves: lineup_curves(|e| e.pattern = TrafficPattern::butterfly(2)),
        loads: default_loads(),
    });

    // ---- Extensions (paper §5 text and §6 future work) --------------------
    let mut c32 = lineup_curves(|e| e.clustering = cluster32());
    let mut bf32 = base(NetworkSpec::Tmin(UnidirKind::Butterfly));
    bf32.clustering = cluster32();
    c32.push(("TMIN(butterfly)".into(), bf32));
    figs.push(FigureDef {
        id: "ext_cluster32",
        title: "Cluster-32 uniform traffic (two binary 5-cube clusters)",
        curves: c32,
        loads: default_loads(),
    });

    figs.push(FigureDef {
        id: "ext_bimodal",
        title: "Four networks, bimodal message sizes (90% 8-flit, 10% 1024-flit)",
        curves: lineup_curves(|e| {
            e.sizes = MessageSizeDist::Bimodal {
                short: 8,
                long: 1024,
                p_short: 0.9,
            }
        }),
        loads: default_loads(),
    });

    let wiring_curves = [
        UnidirKind::Cube,
        UnidirKind::Omega,
        UnidirKind::Butterfly,
        UnidirKind::Baseline,
    ]
    .into_iter()
    .map(|w| {
        let mut e = base(NetworkSpec::Tmin(w));
        e.clustering = msd_clusters();
        (NetworkSpec::Tmin(w).name(), e)
    })
    .collect();
    figs.push(FigureDef {
        id: "ext_wirings",
        title: "Delta wirings under cluster-16 uniform traffic (paper §6: omega ~ cube, baseline ~ butterfly)",
        curves: wiring_curves,
        loads: default_loads(),
    });

    let mut buffer_curves = Vec::new();
    for spec in [NetworkSpec::tmin(), NetworkSpec::Bmin] {
        for depth in [1u16, 4] {
            let mut e = base(spec);
            e.sim.buffer_depth = depth;
            buffer_curves.push((format!("{} depth={depth}", spec.name()), e));
        }
    }
    figs.push(FigureDef {
        id: "ext_buffers",
        title: "Deeper channel buffers (the paper's results assume one flit buffer per channel)",
        curves: buffer_curves,
        loads: default_loads(),
    });

    figs.push(FigureDef {
        id: "ext_vc4",
        title: "More virtual channels: TMIN vs VMIN(2) vs VMIN(4) vs DMIN(2)",
        curves: vec![
            ("TMIN(cube)".into(), base(NetworkSpec::tmin())),
            ("VMIN(cube, v=2)".into(), base(NetworkSpec::vmin(2))),
            ("VMIN(cube, v=4)".into(), base(NetworkSpec::vmin(4))),
            ("DMIN(cube, d=2)".into(), base(NetworkSpec::dmin(2))),
        ],
        loads: default_loads(),
    });

    figs
}

/// Look up a figure definition by id.
pub fn figure_by_id(id: &str) -> Option<FigureDef> {
    all_figures().into_iter().find(|f| f.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_complete_and_unique() {
        let figs = all_figures();
        let ids: Vec<&str> = figs.iter().map(|f| f.id).collect();
        for want in [
            "fig16a", "fig16b", "fig17a", "fig17b", "fig18a", "fig18b", "fig19a", "fig19b",
            "fig20a", "fig20b", "ext_cluster32", "ext_bimodal", "ext_wirings", "ext_buffers",
            "ext_vc4",
        ] {
            assert!(ids.contains(&want), "missing {want}");
        }
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "duplicate figure ids");
    }

    #[test]
    fn every_curve_compiles_its_workload() {
        // Catch invalid clustering/rate combinations at definition time.
        for fig in all_figures() {
            for (label, exp) in &fig.curves {
                exp.network.validate().expect("network spec");
                let _net = exp.network.build(exp.geometry);
                let spec = minnet_traffic::WorkloadSpec {
                    offered_load: 0.1,
                    pattern: exp.pattern,
                    clustering: exp.clustering.clone(),
                    rates: exp.rates.clone(),
                    sizes: exp.sizes,
                };
                minnet_traffic::Workload::compile(exp.geometry, &spec)
                    .unwrap_or_else(|e| panic!("{}/{label}: {e}", fig.id));
            }
        }
    }

    #[test]
    fn figure_lookup() {
        assert!(figure_by_id("fig18a").is_some());
        assert!(figure_by_id("nope").is_none());
    }
}
