//! Regenerate the paper's evaluation figures.
//!
//! ```text
//! cargo run --release -p minnet-bench --bin figures            # everything
//! cargo run --release -p minnet-bench --bin figures -- --fig fig18a,fig19b
//! cargo run --release -p minnet-bench --bin figures -- --quick # small windows
//! cargo run --release -p minnet-bench --bin figures -- --list
//! ```
//!
//! For every figure the harness sweeps each curve over the offered-load
//! grid, prints the paper-style series (offered %, accepted %, mean
//! latency in µs, …) and writes one CSV per figure under `results/`.

use minnet::{curve_csv, curve_table, find_saturation, latency_throughput_curve, saturation_load};
use minnet_bench::{all_figures, figure_by_id, FigureDef};
use std::io::Write as _;
use std::path::PathBuf;

struct Options {
    figs: Vec<String>,
    quick: bool,
    threads: usize,
    out_dir: PathBuf,
    list: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        figs: Vec::new(),
        quick: false,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        out_dir: PathBuf::from("results"),
        list: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fig" => {
                let v = args.next().ok_or("--fig needs a value")?;
                opts.figs.extend(v.split(',').map(str::to_string));
            }
            "--quick" => opts.quick = true,
            "--threads" => {
                opts.threads = args
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad thread count: {e}"))?;
            }
            "--out" => opts.out_dir = PathBuf::from(args.next().ok_or("--out needs a value")?),
            "--list" => opts.list = true,
            "--help" | "-h" => {
                println!(
                    "usage: figures [--fig id[,id…]] [--quick] [--threads N] [--out DIR] [--list]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(opts)
}

fn run_figure(fig: &FigureDef, opts: &Options) -> Result<String, String> {
    println!("== {} — {}", fig.id, fig.title);
    let mut csv = String::new();
    for (label, exp) in &fig.curves {
        let mut exp = exp.clone();
        if opts.quick {
            exp.sim.warmup = 10_000;
            exp.sim.measure = 40_000;
        } else {
            exp.sim.warmup = 30_000;
            exp.sim.measure = 150_000;
        }
        let start = std::time::Instant::now();
        let points = latency_throughput_curve(&exp, &fig.loads, opts.threads)?;
        print!("{}", curve_table(label, &points));
        if let Some(sat) = saturation_load(&points) {
            // Refine the knee between the last steady grid point and the
            // next grid step by bisection.
            let lo = sat.offered;
            let hi = points
                .iter()
                .map(|p| p.offered)
                .filter(|&o| o > lo)
                .fold(f64::INFINITY, f64::min)
                .min(lo + 0.1);
            let refined = if hi.is_finite() && !opts.quick {
                find_saturation(&exp, lo, hi, 3)?
            } else {
                None
            };
            let best = refined.as_ref().unwrap_or(sat);
            println!(
                "  -> max sustainable throughput: {:.1}% (offered {:.1}%)   [{:.1?}]",
                best.report.throughput_percent(),
                best.offered * 100.0,
                start.elapsed()
            );
        } else {
            println!("  -> no sustainable point on the grid   [{:.1?}]", start.elapsed());
        }
        println!();
        csv.push_str(&curve_csv(label, &points));
    }
    Ok(csv)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if opts.list {
        for f in all_figures() {
            println!("{:<14} {}", f.id, f.title);
        }
        return;
    }
    let figs: Vec<FigureDef> = if opts.figs.is_empty() {
        all_figures()
    } else {
        opts.figs
            .iter()
            .map(|id| figure_by_id(id).ok_or_else(|| format!("unknown figure id {id:?}")))
            .collect::<Result<_, _>>()
            .unwrap_or_else(|e| {
                eprintln!("error: {e} (use --list)");
                std::process::exit(2);
            })
    };
    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        eprintln!("error: cannot create {:?}: {e}", opts.out_dir);
        std::process::exit(1);
    }
    for fig in &figs {
        match run_figure(fig, &opts) {
            Ok(csv) => {
                let path = opts.out_dir.join(format!("{}.csv", fig.id));
                match std::fs::File::create(&path)
                    .and_then(|mut f| f.write_all(csv.as_bytes()))
                {
                    Ok(()) => println!("   wrote {}\n", path.display()),
                    Err(e) => eprintln!("error: writing {}: {e}", path.display()),
                }
            }
            Err(e) => {
                eprintln!("error: figure {}: {e}", fig.id);
                std::process::exit(1);
            }
        }
    }
}
