//! Service smoke benchmark: run the `minnetd` daemon in-process and
//! write machine-readable service numbers to `BENCH_service.json`.
//!
//! ```text
//! cargo run --release -p minnet-bench --bin service_smoke        # ./BENCH_service.json
//! cargo run --release -p minnet-bench --bin service_smoke -- out.json
//! ```
//!
//! Three sections, mirroring the daemon's contracts:
//!
//! * **throughput** — a batch of distinct small sweep jobs submitted
//!   over TCP and drained through the worker pool: `jobs_per_sec` is
//!   wall-clock and therefore compared in the usual noisy ±20% band.
//! * **cache** — one cold job (submit → result, simulated) vs the same
//!   spec resubmitted (served from the FNV-config-hash result cache):
//!   `cold_ms`, `cache_hit_ms`, and the speedup. The bytes of both
//!   results are compared here too; a mismatch is a **hard error**, not
//!   a statistic — cache hits are contractually bitwise identical.
//! * **flood** — an admission-only daemon (`workers = 0`) flooded past
//!   its bounds: the accepted / rejected-per-client-cap /
//!   rejected-queue-full counts are exact, deterministic functions of
//!   the configured limits, so `bench_compare --service` warns on *any*
//!   drift (an admission-control behavior change, not noise).
//!
//! The JSON is written by hand (no serde in this offline workspace);
//! see EXPERIMENTS.md for the schema.

use minnet::{JobSpec, Response, ServiceClient};
use minnet_daemon::{Daemon, DaemonConfig};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const BATCH_JOBS: u64 = 6;
const FLOOD_QUEUE_DEPTH: usize = 4;
const FLOOD_CLIENT_CAP: usize = 3;
const FLOOD_SUBMITS_ONE_CLIENT: u64 = 8;
const FLOOD_SUBMITS_MANY_CLIENTS: u64 = 8;

/// A small job: 64-terminal paper geometry, two loads, short windows.
fn job(seed: u64) -> JobSpec {
    JobSpec {
        sizes: "fixed:32".into(),
        loads: vec![0.15, 0.3],
        warmup: 300,
        measure: 2_000,
        seed,
        budget_cycles: 200_000,
        ..JobSpec::default()
    }
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "minnet_service_smoke_{}_{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(tag: &str, workers: usize, queue_depth: usize, cap: usize) -> (Daemon, PathBuf) {
    let dir = state_dir(tag);
    let daemon = Daemon::start(DaemonConfig {
        workers,
        queue_depth,
        per_client_inflight: cap,
        state_dir: dir.clone(),
        ..DaemonConfig::default()
    })
    .unwrap_or_else(|e| {
        eprintln!("service_smoke: starting daemon: {e}");
        std::process::exit(1);
    });
    (daemon, dir)
}

fn accept(resp: Response, what: &str) -> String {
    match resp {
        Response::Accepted { job_id, .. } => job_id,
        other => {
            eprintln!("service_smoke: {what}: unexpected response {other:?}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_service.json".into());
    let wait = Duration::from_secs(300);

    // ---- throughput: a batch of distinct jobs through the pool ----
    let (daemon, dir) = start("batch", 2, 64, 64);
    let client = ServiceClient::new(daemon.addr().to_string());
    let t0 = Instant::now();
    let ids: Vec<String> = (0..BATCH_JOBS)
        .map(|i| accept(client.submit("bench", &job(1_000 + i)).unwrap(), "batch submit"))
        .collect();
    for id in &ids {
        client.wait_result(id, wait).unwrap_or_else(|e| {
            eprintln!("service_smoke: waiting for {id}: {e}");
            std::process::exit(1);
        });
    }
    let batch_secs = t0.elapsed().as_secs_f64();
    let jobs_per_sec = BATCH_JOBS as f64 / batch_secs;
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);

    // ---- cache: cold simulate vs cache-hit serve, same bytes ----
    let (daemon, dir) = start("cache", 1, 16, 16);
    let client = ServiceClient::new(daemon.addr().to_string());
    let spec = job(7_777);
    let t0 = Instant::now();
    let cold_id = accept(client.submit("bench", &spec).unwrap(), "cold submit");
    let cold_bytes = client.wait_result(&cold_id, wait).unwrap();
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let warm_id = accept(client.submit("bench", &spec).unwrap(), "warm submit");
    let warm = client.result(&warm_id).unwrap();
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    let Response::JobResult { result: warm_bytes, .. } = warm else {
        eprintln!("service_smoke: cache hit did not serve a result: {warm:?}");
        std::process::exit(1);
    };
    if warm_id != cold_id || warm_bytes != cold_bytes {
        eprintln!("service_smoke: cache-hit bytes differ from the cold run — contract broken");
        std::process::exit(1);
    }
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);

    // ---- flood: deterministic admission-control counts ----
    let (daemon, dir) = start("flood", 0, FLOOD_QUEUE_DEPTH, FLOOD_CLIENT_CAP);
    let client = ServiceClient::new(daemon.addr().to_string());
    let mut accepted = 0u64;
    let mut rejected_cap = 0u64;
    let mut rejected_queue = 0u64;
    let mut count = |resp: Response| match resp {
        Response::Accepted { .. } => accepted += 1,
        Response::Rejected { reason, .. } if reason.contains("in-flight cap") => rejected_cap += 1,
        Response::Rejected { reason, .. } if reason.contains("queue full") => rejected_queue += 1,
        other => {
            eprintln!("service_smoke: flood: unexpected response {other:?}");
            std::process::exit(1);
        }
    };
    for i in 0..FLOOD_SUBMITS_ONE_CLIENT {
        count(client.submit("flooder", &job(2_000 + i)).unwrap());
    }
    for i in 0..FLOOD_SUBMITS_MANY_CLIENTS {
        count(client.submit(&format!("c{i}"), &job(3_000 + i)).unwrap());
    }
    client.ping().unwrap_or_else(|e| {
        eprintln!("service_smoke: daemon unresponsive after flood: {e}");
        std::process::exit(1);
    });
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"meta\": {{");
    let _ = writeln!(json, "    \"batch_jobs\": {BATCH_JOBS},");
    let _ = writeln!(json, "    \"flood_queue_depth\": {FLOOD_QUEUE_DEPTH},");
    let _ = writeln!(json, "    \"flood_client_inflight\": {FLOOD_CLIENT_CAP},");
    let _ = writeln!(
        json,
        "    \"flood_submits\": {},",
        FLOOD_SUBMITS_ONE_CLIENT + FLOOD_SUBMITS_MANY_CLIENTS
    );
    let _ = writeln!(json, "{}", minnet_bench::host::host_meta_json("    "));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"service\": {{");
    let _ = writeln!(json, "    \"jobs_per_sec\": {jobs_per_sec:.3},");
    let _ = writeln!(json, "    \"cold_ms\": {cold_ms:.3},");
    let _ = writeln!(json, "    \"cache_hit_ms\": {warm_ms:.3},");
    let _ = writeln!(json, "    \"cache_speedup\": {:.1},", cold_ms / warm_ms.max(1e-6));
    let _ = writeln!(json, "    \"cache_bitwise_equal\": true,");
    let _ = writeln!(json, "    \"flood_accepted\": {accepted},");
    let _ = writeln!(json, "    \"flood_rejected_client_cap\": {rejected_cap},");
    let _ = writeln!(json, "    \"flood_rejected_queue_full\": {rejected_queue}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("service_smoke: writing {out_path}: {e}");
        std::process::exit(1);
    });
    println!(
        "service_smoke: {jobs_per_sec:.1} jobs/s, cold {cold_ms:.1} ms vs cache hit \
         {warm_ms:.2} ms, flood {accepted} accepted / {rejected_cap}+{rejected_queue} \
         rejected -> {out_path}"
    );
}
