//! Fault smoke benchmark: run the graceful-degradation experiment on the
//! paper lineup and write machine-readable numbers to `BENCH_faults.json`.
//!
//! ```text
//! cargo run --release -p minnet-bench --bin faults_smoke           # ./BENCH_faults.json
//! cargo run --release -p minnet-bench --bin faults_smoke -- out.json
//! ```
//!
//! For each paper-lineup network the binary evaluates
//! [`degradation_curve`] at a fixed moderate load under an increasing
//! number of randomly-killed inter-stage links (seed-reproducible fault
//! sets). Each point row records delivered throughput and latency with
//! 95% confidence half-widths across replications, plus the fault
//! accounting: packets aborted mid-flight at fault onset and packets
//! refused at injection because no live route existed.
//!
//! The point of the artifact is the *shape*: networks with path diversity
//! (BMIN, DMIN) degrade gracefully — throughput dips, nothing
//! disconnects — while single-path networks (TMIN, VMIN) report the
//! disconnected traffic as structured refusals instead of stalling. CI
//! uploads the file next to `BENCH_sweep.json` so fault-path slowdowns
//! and behavioural drift leave a history.
//!
//! The JSON is written by hand (no serde in this offline workspace); see
//! EXPERIMENTS.md for the schema.

use minnet::sweep::degradation_curve;
use minnet::{DegradationPoint, Experiment, NetworkSpec};
use minnet_traffic::MessageSizeDist;
use std::fmt::Write as _;
use std::time::Instant;

const LOAD: f64 = 0.2;
const FAULTS: [usize; 4] = [0, 1, 2, 4];
const REPLICATIONS: usize = 3;
const WARMUP: u64 = 500;
const MEASURE: u64 = 4_000;

fn smoke_experiment(spec: NetworkSpec) -> Experiment {
    let mut exp = Experiment::paper_default(spec);
    exp.sizes = MessageSizeDist::Fixed(64);
    exp.sim.warmup = WARMUP;
    exp.sim.measure = MEASURE;
    exp
}

struct NetResult {
    name: String,
    run_ms: f64,
    points: Vec<DegradationPoint>,
}

fn main() -> Result<(), String> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_faults.json".into());
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);

    let mut results = Vec::new();
    for spec in NetworkSpec::paper_lineup() {
        let exp = smoke_experiment(spec);
        let t = Instant::now();
        let points = degradation_curve(&exp, LOAD, &FAULTS, REPLICATIONS, threads)?;
        let run_ms = t.elapsed().as_secs_f64() * 1e3;
        for p in &points {
            println!(
                "{:>8} | {} faults: accepted {:.4} ±{:.4} f/n/c | latency {:7.1} ±{:5.1} cyc | aborted {:5.1} | refused {:6.1}",
                spec.name(),
                p.fault_count,
                p.accepted_flits_per_node_cycle,
                p.accepted_ci95,
                p.mean_latency_cycles,
                p.latency_ci95_cycles,
                p.mean_aborted_packets,
                p.mean_undeliverable_packets,
            );
        }
        results.push(NetResult {
            name: spec.name(),
            run_ms,
            points,
        });
    }

    let mut json = String::from("{\n  \"meta\": {\n");
    let _ = writeln!(json, "    \"load\": {LOAD},");
    let _ = writeln!(json, "    \"fault_counts\": {FAULTS:?},");
    let _ = writeln!(json, "    \"replications\": {REPLICATIONS},");
    let _ = writeln!(json, "    \"warmup\": {WARMUP},");
    let _ = writeln!(json, "    \"measure\": {MEASURE},");
    let _ = writeln!(json, "    \"threads_used\": {threads}");
    json.push_str("  },\n  \"networks\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(json, "      \"run_ms\": {:.3},", r.run_ms);
        json.push_str("      \"points\": [\n");
        for (j, p) in r.points.iter().enumerate() {
            json.push_str("        {");
            let _ = write!(
                json,
                "\"fault_count\": {}, \"accepted_flits_per_node_cycle\": {:.6}, \
                 \"accepted_ci95\": {:.6}, \"mean_latency_cycles\": {:.6}, \
                 \"latency_ci95_cycles\": {:.6}, \"mean_aborted_packets\": {:.3}, \
                 \"mean_undeliverable_packets\": {:.3}, \"sustainable\": {}, \"steady\": {}",
                p.fault_count,
                p.accepted_flits_per_node_cycle,
                p.accepted_ci95,
                p.mean_latency_cycles,
                p.latency_ci95_cycles,
                p.mean_aborted_packets,
                p.mean_undeliverable_packets,
                p.sustainable,
                p.steady,
            );
            json.push_str(if j + 1 == r.points.len() { "}\n" } else { "},\n" });
        }
        json.push_str("      ]\n");
        json.push_str(if i + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("wrote {out_path}");
    Ok(())
}
