//! Fault smoke benchmark: run the graceful-degradation experiment on the
//! paper lineup and write machine-readable numbers to `BENCH_faults.json`.
//!
//! ```text
//! cargo run --release -p minnet-bench --bin faults_smoke           # ./BENCH_faults.json
//! cargo run --release -p minnet-bench --bin faults_smoke -- out.json
//! cargo run --release -p minnet-bench --bin faults_smoke -- out.json \
//!     --budget-ms 5000 --retries 1 --checkpoint-dir ckpts/
//! ```
//!
//! For each paper-lineup network the binary evaluates the
//! graceful-degradation campaign at a fixed moderate load under an
//! increasing number of randomly-killed inter-stage links
//! (seed-reproducible fault sets). Each point row records delivered
//! throughput and latency with 95% confidence half-widths across
//! replications, the fault accounting (packets aborted mid-flight at
//! fault onset, packets refused at injection because no live route
//! existed), and the per-point `ok` / `partial` / `failed` outcome
//! counts — a budget-cut or panicked replication annotates the point
//! instead of aborting the whole artifact. Point statistics aggregate
//! the `ok` replications only; a point with zero healthy replications
//! writes zeros and is flagged by its counts.
//!
//! The point of the artifact is the *shape*: networks with path diversity
//! (BMIN, DMIN) degrade gracefully — throughput dips, nothing
//! disconnects — while single-path networks (TMIN, VMIN) report the
//! disconnected traffic as structured refusals instead of stalling. CI
//! uploads the file next to `BENCH_sweep.json` and `bench_compare
//! --faults` diffs it against the committed `BENCH_faults_baseline.json`
//! (warn-only) so fault-path drift leaves a history.
//!
//! Resilience flags mirror `sweep_smoke`: `--budget-cycles` /
//! `--budget-ms` bound each run, `--retries` reruns failed points on
//! derived seeds, and `--checkpoint-dir DIR` (or `--resume-dir`, which
//! requires the files to exist) keeps one JSONL checkpoint per network
//! under `DIR`.
//!
//! The JSON is written by hand (no serde in this offline workspace); see
//! EXPERIMENTS.md for the schema.

use minnet::{
    campaign_degradation_curve, outcome_counts, CampaignPolicy, DegradationCampaignPoint,
    Experiment, NetworkSpec,
};
use minnet_traffic::MessageSizeDist;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

const LOAD: f64 = 0.2;
const FAULTS: [usize; 4] = [0, 1, 2, 4];
const REPLICATIONS: usize = 3;
const WARMUP: u64 = 500;
const MEASURE: u64 = 4_000;

struct Cli {
    out_path: String,
    budget_cycles: u64,
    budget_ms: u64,
    retries: u32,
    ckpt_dir: Option<PathBuf>,
    require_existing: bool,
}

fn parse_cli() -> Result<Cli, String> {
    const USAGE: &str = "usage: faults_smoke [OUT.json] [--budget-cycles N] [--budget-ms N] \
                         [--retries N] [--checkpoint-dir DIR | --resume-dir DIR]";
    let mut cli = Cli {
        out_path: "BENCH_faults.json".into(),
        budget_cycles: 0,
        budget_ms: 0,
        retries: 0,
        ckpt_dir: None,
        require_existing: false,
    };
    let mut positional = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value; {USAGE}"));
        match a.as_str() {
            "--budget-cycles" => {
                cli.budget_cycles = value(&a)?.parse().map_err(|e| format!("{a}: {e}"))?;
            }
            "--budget-ms" => {
                cli.budget_ms = value(&a)?.parse().map_err(|e| format!("{a}: {e}"))?;
            }
            "--retries" => {
                cli.retries = value(&a)?.parse().map_err(|e| format!("{a}: {e}"))?;
            }
            "--checkpoint-dir" => cli.ckpt_dir = Some(value(&a)?.into()),
            "--resume-dir" => {
                cli.ckpt_dir = Some(value(&a)?.into());
                cli.require_existing = true;
            }
            _ if a.starts_with("--") => return Err(format!("unknown flag {a}; {USAGE}")),
            _ => {
                if positional > 0 {
                    return Err(format!("unexpected argument {a}; {USAGE}"));
                }
                cli.out_path = a;
                positional += 1;
            }
        }
    }
    Ok(cli)
}

fn smoke_experiment(cli: &Cli, spec: NetworkSpec) -> Experiment {
    let mut exp = Experiment::paper_default(spec);
    exp.sizes = MessageSizeDist::Fixed(64);
    exp.sim.warmup = WARMUP;
    exp.sim.measure = MEASURE;
    exp.sim.budget.max_cycles = cli.budget_cycles;
    exp.sim.budget.max_wall_ms = cli.budget_ms;
    exp
}

struct NetResult {
    name: String,
    run_ms: f64,
    /// Resident bytes of the compiled route table and the CSR topology
    /// arenas — the setup-memory companions `bench_compare` diffs
    /// (warn-only) against the baseline.
    table_bytes: u64,
    graph_bytes: u64,
    points: Vec<DegradationCampaignPoint>,
}

fn point_row(json: &mut String, p: &DegradationCampaignPoint, last: bool) {
    let (ok, partial, failed) = outcome_counts(&p.outcomes);
    // Zeros when no replication survived; the counts flag the hole.
    let zero = minnet::sweep::DegradationPoint {
        fault_count: p.fault_count,
        accepted_flits_per_node_cycle: 0.0,
        accepted_ci95: 0.0,
        mean_latency_cycles: 0.0,
        latency_ci95_cycles: 0.0,
        mean_aborted_packets: 0.0,
        mean_undeliverable_packets: 0.0,
        sustainable: false,
        steady: false,
        replications: Vec::new(),
    };
    let s = p.ok_stats.as_ref().unwrap_or(&zero);
    json.push_str("        {");
    let _ = write!(
        json,
        "\"fault_count\": {}, \"accepted_flits_per_node_cycle\": {:.6}, \
         \"accepted_ci95\": {:.6}, \"mean_latency_cycles\": {:.6}, \
         \"latency_ci95_cycles\": {:.6}, \"mean_aborted_packets\": {:.3}, \
         \"mean_undeliverable_packets\": {:.3}, \"sustainable\": {}, \"steady\": {}, \
         \"ok\": {ok}, \"partial\": {partial}, \"failed\": {failed}",
        p.fault_count,
        s.accepted_flits_per_node_cycle,
        s.accepted_ci95,
        s.mean_latency_cycles,
        s.latency_ci95_cycles,
        s.mean_aborted_packets,
        s.mean_undeliverable_packets,
        s.sustainable,
        s.steady,
    );
    json.push_str(if last { "}\n" } else { "},\n" });
}

fn main() -> Result<(), String> {
    let cli = parse_cli()?;
    if let Some(dir) = &cli.ckpt_dir {
        if !cli.require_existing {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("creating checkpoint dir {}: {e}", dir.display()))?;
        }
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);

    let mut results = Vec::new();
    for spec in NetworkSpec::paper_lineup() {
        let exp = smoke_experiment(&cli, spec);
        let policy = CampaignPolicy {
            retries: cli.retries,
            checkpoint: cli
                .ckpt_dir
                .as_ref()
                .map(|d| d.join(format!("{}.jsonl", spec.name()))),
            require_existing: cli.require_existing,
        };
        let compiled = exp.compile()?;
        let table_bytes = compiled
            .network()
            .routes()
            .map_or(0, minnet_routing::RouteTable::approx_bytes);
        let graph_bytes = compiled.network().network().approx_bytes() as u64;
        drop(compiled); // the campaign compiles internally
        let t = Instant::now();
        let points =
            campaign_degradation_curve(&exp, LOAD, &FAULTS, REPLICATIONS, threads, &policy)?;
        let run_ms = t.elapsed().as_secs_f64() * 1e3;
        for p in &points {
            let (ok, partial, failed) = outcome_counts(&p.outcomes);
            match &p.ok_stats {
                Some(s) => println!(
                    "{:>8} | {} faults: accepted {:.4} ±{:.4} f/n/c | latency {:7.1} ±{:5.1} cyc | aborted {:5.1} | refused {:6.1} | {ok} ok / {partial} partial / {failed} failed",
                    spec.name(),
                    p.fault_count,
                    s.accepted_flits_per_node_cycle,
                    s.accepted_ci95,
                    s.mean_latency_cycles,
                    s.latency_ci95_cycles,
                    s.mean_aborted_packets,
                    s.mean_undeliverable_packets,
                ),
                None => println!(
                    "{:>8} | {} faults: no healthy replications | {ok} ok / {partial} partial / {failed} failed",
                    spec.name(),
                    p.fault_count,
                ),
            }
        }
        results.push(NetResult {
            name: spec.name(),
            run_ms,
            table_bytes,
            graph_bytes,
            points,
        });
    }

    let mut json = String::from("{\n  \"meta\": {\n");
    let _ = writeln!(json, "    \"load\": {LOAD},");
    let _ = writeln!(json, "    \"fault_counts\": {FAULTS:?},");
    let _ = writeln!(json, "    \"replications\": {REPLICATIONS},");
    let _ = writeln!(json, "    \"warmup\": {WARMUP},");
    let _ = writeln!(json, "    \"measure\": {MEASURE},");
    let _ = writeln!(json, "    \"budget_cycles\": {},", cli.budget_cycles);
    let _ = writeln!(json, "    \"budget_ms\": {},", cli.budget_ms);
    let _ = writeln!(json, "    \"retries\": {},", cli.retries);
    let _ = writeln!(json, "    \"threads_used\": {threads},");
    let _ = writeln!(
        json,
        "    \"word_kernels\": {},",
        minnet_sim::EngineConfig::default().word_kernels
    );
    let _ = writeln!(json, "{}", minnet_bench::host::host_meta_json("    "));
    json.push_str("  },\n  \"networks\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(json, "      \"run_ms\": {:.3},", r.run_ms);
        let _ = writeln!(json, "      \"table_bytes\": {},", r.table_bytes);
        let _ = writeln!(json, "      \"graph_bytes\": {},", r.graph_bytes);
        json.push_str("      \"points\": [\n");
        for (j, p) in r.points.iter().enumerate() {
            point_row(&mut json, p, j + 1 == r.points.len());
        }
        json.push_str("      ]\n");
        json.push_str(if i + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&cli.out_path, &json)
        .map_err(|e| format!("writing {}: {e}", cli.out_path))?;
    println!("wrote {}", cli.out_path);
    Ok(())
}
