//! Compare a fresh `BENCH_sweep.json` against the committed
//! `BENCH_baseline.json` and report per-network throughput drift.
//!
//! ```text
//! cargo run --release -p minnet-bench --bin bench_compare -- \
//!     BENCH_baseline.json BENCH_sweep.json [diff_summary.txt] \
//!     [--fail-on-regress <pct>]
//! ```
//!
//! For every network present in both files the tool diffs the headline
//! `cycles_per_sec` (single-threaded engine throughput over the whole
//! load sweep) and flags drift beyond ±20%. By default the exit status
//! is always 0: shared CI runners have noisy and heterogeneous CPUs, so
//! the comparison is a **warning, not a gate** — the summary (also
//! written to the optional third argument for artifact upload) is the
//! record to look at when a regression is suspected.
//!
//! `--fail-on-regress <pct>` turns the warning into a gate: any network
//! whose headline throughput drops more than `pct` percent below the
//! baseline fails the run (exit 1) after printing the offending
//! per-load rows, so the report shows *which* loads regressed — a
//! low-load-only regression points at setup/fast-forward changes, a
//! high-load one at the allocation/transmission hot loops. CI keeps the
//! warn-only default; the gate is for dedicated (quiet) benchmark hosts.
//!
//! When the current file carries the per-load
//! `cycles_per_sec_scalar` / `cycles_per_sec_lockstep` columns (sweeps
//! run without a budget), the tool also prints every lockstep fleet's
//! aggregate speedup over its scalar twin and warns — never gates —
//! below 0.9x (serial fleets on a 1-core host are honest parity, with
//! a few percent of cache jitter either way). Baselines predating the
//! columns simply skip the section.
//!
//! When the current file carries the per-load
//! `cycles_per_sec_kernels_off` column, the tool also prints every
//! load's word-kernel speedup (`cycles_per_sec_scalar` over the
//! kernels-off twin timing from the same binary and window) and warns —
//! never gates — below 1.0x at loads ≥ 0.4, where the occupancy masks
//! are dense enough that the kernels must pay for themselves.
//!
//! Both files' `meta.host` blocks (compiler, target triple, target
//! features, core count) are compared first: a mismatch prints a
//! warning that wall-clock diffs across hosts are noise. Files
//! predating the block skip the check.
//!
//! `--faults FAULTS_BASELINE FAULTS_CURRENT` additionally diffs a pair
//! of `faults_smoke` files: per-(network, fault_count) delivered
//! throughput (warn at ±2% — unlike wall-clock throughput this is a
//! deterministic simulation output, so any drift is a behavioural
//! change) plus the per-point `ok` / `partial` / `failed` outcome
//! counts. Any `partial` or `failed` point in the current run is
//! flagged; the faults comparison is always warn-only (outcome holes on
//! a noisy runner shouldn't gate merges — the counts in the artifact
//! are the record).
//!
//! `--scale SCALE_BASELINE SCALE_CURRENT` diffs a pair of `scale_smoke`
//! files by size row (`tmin_k4_n5`, `bmin_k4_n7`, …): wall-clock
//! `cycles_per_sec` in the usual noisy ±20% band, the deterministic
//! `graph_bytes` / `table_bytes` construction footprints in the +5%
//! memory band, and two behavioural flags — a routing `mode` flip
//! (`table` ↔ `logic` means the table-size policy moved a row across
//! the fallback threshold) and an `ncells` change (the route-table
//! geometry itself changed). Always warn-only, same reasoning as
//! `--faults`.
//!
//! `--service SERVICE_BASELINE SERVICE_CURRENT` diffs a pair of
//! `service_smoke` files: daemon jobs/sec and cold-request latency in
//! the noisy ±20% band, a warning whenever a cache hit fails to beat
//! its cold run, and the flood admission counts (accepted /
//! rejected-per-client-cap / rejected-queue-full) on *any* change —
//! those are deterministic functions of the configured bounds, so
//! drift is an admission-control behavior change, not noise. Always
//! warn-only.
//!
//! The parser is deliberately minimal: this offline workspace has no
//! serde, and both files are produced by `sweep_smoke`'s /
//! `faults_smoke`'s known line-oriented writers. It keys on trimmed
//! lines starting with `"name":` / `"cycles_per_sec":` / `"ok":`; the
//! per-load and per-fault rows are single-line `{...}` objects,
//! recognised (and mined for their fields) by their leading brace.

use std::fmt::Write as _;

/// One network's numbers from a `sweep_smoke` JSON file.
struct Net {
    name: String,
    /// Headline single-threaded throughput; NaN until parsed.
    cycles_per_sec: f64,
    /// Per-load `(offered_load, cycles_per_sec)` rows.
    loads: Vec<(f64, f64)>,
    /// Per-load `(offered_load, scalar, lockstep)` direct-engine
    /// comparison rows; empty on files predating the lockstep runner
    /// (or written with a run budget, which skips the comparison).
    lockstep: Vec<(f64, f64, f64)>,
    /// Per-load `(offered_load, kernels_on, kernels_off)` same-binary
    /// word-kernel comparison rows; empty on files predating the
    /// kernels or written with a run budget.
    kernels: Vec<(f64, f64, f64)>,
    /// Campaign outcome counts `(ok, partial, failed)`; `None` on
    /// baselines predating the campaign runner.
    counts: Option<(u64, u64, u64)>,
    /// Resident bytes of the compiled route table / CSR topology arenas;
    /// `None` on files predating the memory columns.
    table_bytes: Option<f64>,
    graph_bytes: Option<f64>,
}

/// Extract the number following `"key": ` inside a single-line JSON row.
fn field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Parse every network (headline + per-load rows) from `sweep_smoke` JSON.
fn parse_networks(src: &str) -> Vec<Net> {
    let mut out: Vec<Net> = Vec::new();
    for line in src.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("\"name\":") {
            let name = rest.trim().trim_end_matches(',').trim_matches('"');
            out.push(Net {
                name: name.to_string(),
                cycles_per_sec: f64::NAN,
                loads: Vec::new(),
                lockstep: Vec::new(),
                kernels: Vec::new(),
                counts: None,
                table_bytes: None,
                graph_bytes: None,
            });
        } else if t.starts_with("\"table_bytes\":") {
            if let Some(net) = out.last_mut() {
                net.table_bytes = field(t, "table_bytes");
            }
        } else if t.starts_with("\"graph_bytes\":") {
            if let Some(net) = out.last_mut() {
                net.graph_bytes = field(t, "graph_bytes");
            }
        } else if t.starts_with("\"ok\":") {
            if let (Some(net), Some(ok), Some(partial), Some(failed)) = (
                out.last_mut(),
                field(t, "ok"),
                field(t, "partial"),
                field(t, "failed"),
            ) {
                net.counts = Some((ok as u64, partial as u64, failed as u64));
            }
        } else if let Some(rest) = t.strip_prefix("\"cycles_per_sec\":") {
            if let Some(net) = out.last_mut() {
                if net.cycles_per_sec.is_nan() {
                    net.cycles_per_sec = rest
                        .trim()
                        .trim_end_matches(',')
                        .parse()
                        .unwrap_or(f64::NAN);
                }
            }
        } else if t.starts_with('{') {
            if let (Some(net), Some(load), Some(cps)) = (
                out.last_mut(),
                field(t, "load"),
                field(t, "cycles_per_sec"),
            ) {
                net.loads.push((load, cps));
                // Direct-engine comparison columns ride on the same row;
                // zero means the sweep skipped the comparison (budget).
                if let (Some(scalar), Some(lock)) = (
                    field(t, "cycles_per_sec_scalar"),
                    field(t, "cycles_per_sec_lockstep"),
                ) {
                    if scalar > 0.0 && lock > 0.0 {
                        net.lockstep.push((load, scalar, lock));
                    }
                }
                // Kernel on/off twin timings ride on the same row; the
                // scalar column is the kernels-on numerator (the sweep
                // runs with the default toggle, which is on).
                if let (Some(on), Some(off)) = (
                    field(t, "cycles_per_sec_scalar"),
                    field(t, "cycles_per_sec_kernels_off"),
                ) {
                    if on > 0.0 && off > 0.0 {
                        net.kernels.push((load, on, off));
                    }
                }
            }
        }
    }
    out.retain(|n| !n.cycles_per_sec.is_nan());
    out
}

/// Warn-only check of the current run's lockstep rows: every per-load
/// `cycles_per_sec_lockstep` should track or beat its scalar twin (the
/// fleet spreads `lockstep_threads` lanes over threads). On a 1-core
/// host the fleet is serial and honest parity is ~1.0x with a few
/// percent of lane-interleaving cache noise either way, so the warning
/// fires below **0.9x** — a real overhead regression, not host jitter.
/// No baseline is consulted — old baselines predate the columns — so
/// this can never gate a merge; the summary rows are the record.
fn compare_lockstep(current: &[Net], summary: &mut String) -> usize {
    let mut warned = 0usize;
    if current.iter().all(|n| n.lockstep.is_empty()) {
        return 0;
    }
    let _ = writeln!(
        summary,
        "lockstep fleets: per-load aggregate cycles/sec vs scalar (warn below 0.9x)"
    );
    for net in current {
        for &(load, scalar, lock) in &net.lockstep {
            let speedup = lock / scalar;
            let flag = if speedup < 0.9 {
                warned += 1;
                "  <-- WARNING: lockstep slower than scalar"
            } else {
                ""
            };
            let _ = writeln!(
                summary,
                "  {:>16} @ load {load:4}: {lock:12.0} vs {scalar:12.0}  ({speedup:5.2}x){flag}",
                net.name
            );
        }
    }
    warned
}

/// Warn-only check of the word-kernel speedup columns: at saturating
/// loads (≥ 0.4, where the occupancy masks are dense enough that the
/// kernels should pay for themselves) a per-load
/// `cycles_per_sec_scalar / cycles_per_sec_kernels_off` ratio below
/// **1.0x** warns — the word-parallel path has regressed below the
/// scalar oracle it replaced. Low-load rows are printed for the record
/// but never warn (sparse masks make the ratio noise-dominated), and no
/// baseline is consulted, so this can never gate a merge.
fn compare_kernels(current: &[Net], summary: &mut String) -> usize {
    let mut warned = 0usize;
    if current.iter().all(|n| n.kernels.is_empty()) {
        return 0;
    }
    let _ = writeln!(
        summary,
        "word kernels: per-load cycles/sec, kernels on vs off (warn below 1.0x at loads >= 0.4)"
    );
    for net in current {
        for &(load, on, off) in &net.kernels {
            let speedup = on / off;
            let flag = if load >= 0.4 && speedup < 1.0 {
                warned += 1;
                "  <-- WARNING: kernels slower than scalar at saturating load"
            } else {
                ""
            };
            let _ = writeln!(
                summary,
                "  {:>16} @ load {load:4}: {on:12.0} vs {off:12.0}  ({speedup:5.2}x){flag}",
                net.name
            );
        }
    }
    warned
}

/// Warn-only diff of the setup-memory columns (`table_bytes` /
/// `graph_bytes`): unlike wall-clock throughput these are deterministic
/// functions of the code, so any growth beyond **+5%** is a real memory
/// regression in the construction pipeline — but the check never gates
/// (a deliberate capacity change just refreshes the baseline). Files
/// predating the columns skip silently.
fn compare_memory(baseline: &[Net], current: &[Net], summary: &mut String) -> usize {
    let mut warned = 0usize;
    let mut header = false;
    for base in baseline {
        let Some(cur) = current.iter().find(|n| n.name == base.name) else {
            continue;
        };
        for (what, b, c) in [
            ("table_bytes", base.table_bytes, cur.table_bytes),
            ("graph_bytes", base.graph_bytes, cur.graph_bytes),
        ] {
            let (Some(b), Some(c)) = (b, c) else { continue };
            if !header {
                let _ = writeln!(
                    summary,
                    "setup memory: resident bytes vs baseline (deterministic; warn above +5%)"
                );
                header = true;
            }
            let drift = if b > 0.0 { (c / b - 1.0) * 100.0 } else { 0.0 };
            let flag = if drift > 5.0 || (b == 0.0 && c > 0.0) {
                warned += 1;
                "  <-- WARNING: setup memory grew"
            } else {
                ""
            };
            let _ = writeln!(
                summary,
                "  {:>16} {what:>12}: {c:12.0} vs {b:12.0}  ({drift:+6.1}%){flag}",
                base.name
            );
        }
    }
    warned
}

/// Host identity from a smoke artifact's `meta.host` block (see
/// `minnet_bench::host`); `None` on files predating the block.
#[derive(Debug, PartialEq, Eq)]
struct HostId {
    rustc: String,
    target: String,
    features: String,
    cores: u64,
}

/// Extract the string following `"key": "` inside a line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Parse the `meta.host` block. Stops at the first network entry so a
/// hypothetical `"rustc"` deeper in the file cannot masquerade as host
/// identity.
fn parse_host(src: &str) -> Option<HostId> {
    let (mut rustc, mut target, mut features, mut cores) = (None, None, None, None);
    for line in src.lines() {
        let t = line.trim();
        if t.starts_with("\"name\":") {
            break;
        } else if t.starts_with("\"rustc\":") {
            rustc = str_field(t, "rustc");
        } else if t.starts_with("\"target\":") {
            target = str_field(t, "target");
        } else if t.starts_with("\"target_features\":") {
            features = str_field(t, "target_features");
        } else if t.starts_with("\"cores\":") {
            cores = field(t, "cores").map(|c| c as u64);
        }
    }
    Some(HostId {
        rustc: rustc?,
        target: target?,
        features: features?,
        cores: cores?,
    })
}

/// Warn when the two files disagree on host identity — wall-clock
/// throughput diffs across different compilers, targets, or machine
/// classes are noise, not regressions. Silent when either file predates
/// the `meta.host` block.
fn compare_hosts(baseline_src: &str, current_src: &str, summary: &mut String) -> usize {
    let (Some(base), Some(cur)) = (parse_host(baseline_src), parse_host(current_src)) else {
        return 0;
    };
    if base == cur {
        return 0;
    }
    let mut diffs = Vec::new();
    if base.rustc != cur.rustc {
        diffs.push(format!("rustc {:?} vs {:?}", cur.rustc, base.rustc));
    }
    if base.target != cur.target {
        diffs.push(format!("target {:?} vs {:?}", cur.target, base.target));
    }
    if base.features != cur.features {
        diffs.push(format!(
            "target_features {:?} vs {:?}",
            cur.features, base.features
        ));
    }
    if base.cores != cur.cores {
        diffs.push(format!("cores {} vs {}", cur.cores, base.cores));
    }
    let _ = writeln!(
        summary,
        "WARNING: host mismatch vs baseline ({}) — treat wall-clock diffs as noise",
        diffs.join("; ")
    );
    1
}

/// One degradation point from a `faults_smoke` JSON file.
struct FaultPoint {
    fault_count: u64,
    accepted: f64,
    /// `(ok, partial, failed)`; `None` on baselines predating the
    /// campaign runner.
    counts: Option<(u64, u64, u64)>,
}

/// Parse every network's degradation points from `faults_smoke` JSON.
fn parse_fault_networks(src: &str) -> Vec<(String, Vec<FaultPoint>)> {
    let mut out: Vec<(String, Vec<FaultPoint>)> = Vec::new();
    for line in src.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("\"name\":") {
            let name = rest.trim().trim_end_matches(',').trim_matches('"');
            out.push((name.to_string(), Vec::new()));
        } else if t.starts_with('{') {
            if let (Some((_, points)), Some(fc), Some(accepted)) = (
                out.last_mut(),
                field(t, "fault_count"),
                field(t, "accepted_flits_per_node_cycle"),
            ) {
                let counts = match (field(t, "ok"), field(t, "partial"), field(t, "failed")) {
                    (Some(o), Some(p), Some(f)) => Some((o as u64, p as u64, f as u64)),
                    _ => None,
                };
                points.push(FaultPoint {
                    fault_count: fc as u64,
                    accepted,
                    counts,
                });
            }
        }
    }
    out.retain(|(_, points)| !points.is_empty());
    out
}

/// Diff two `faults_smoke` files; returns the warning count. Always
/// warn-only: delivered throughput is deterministic, so the ±2% band is
/// generous, but outcome holes on a shared runner shouldn't gate merges.
fn compare_faults(
    baseline_path: &str,
    current_path: &str,
    summary: &mut String,
) -> Result<usize, String> {
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"));
    let baseline = parse_fault_networks(&read(baseline_path)?);
    let current = parse_fault_networks(&read(current_path)?);
    if baseline.is_empty() {
        return Err(format!("{baseline_path}: no fault networks parsed"));
    }
    if current.is_empty() {
        return Err(format!("{current_path}: no fault networks parsed"));
    }

    let mut warned = 0usize;
    let _ = writeln!(
        summary,
        "fault degradation: {current_path} vs baseline {baseline_path} (warn at ±2%)"
    );
    for (name, base_points) in &baseline {
        let Some((_, cur_points)) = current.iter().find(|(n, _)| n == name) else {
            let _ = writeln!(summary, "  {name:>16}: MISSING from current run");
            warned += 1;
            continue;
        };
        for bp in base_points {
            let Some(cp) = cur_points.iter().find(|p| p.fault_count == bp.fault_count) else {
                let _ = writeln!(
                    summary,
                    "  {name:>16} @ {} faults: MISSING from current run",
                    bp.fault_count
                );
                warned += 1;
                continue;
            };
            // Both ~zero (a disconnected point) compares equal.
            let drift = if bp.accepted.abs() < 1e-12 && cp.accepted.abs() < 1e-12 {
                0.0
            } else if bp.accepted.abs() < 1e-12 {
                f64::INFINITY
            } else {
                (cp.accepted / bp.accepted - 1.0) * 100.0
            };
            let mut flags = String::new();
            if drift.abs() > 2.0 {
                warned += 1;
                flags.push_str("  <-- WARNING: throughput drifted (behavioural change?)");
            }
            if let Some((_, partial, failed)) = cp.counts {
                if partial + failed > 0 {
                    warned += 1;
                    let _ = write!(
                        flags,
                        "  <-- WARNING: {partial} partial / {failed} failed replication(s)"
                    );
                }
            }
            let _ = writeln!(
                summary,
                "  {name:>16} @ {} faults: accepted {:.6} vs {:.6}  ({drift:+6.2}%){flags}",
                bp.fault_count, cp.accepted, bp.accepted
            );
        }
    }
    for (name, _) in &current {
        if !baseline.iter().any(|(n, _)| n == name) {
            let _ = writeln!(summary, "  {name:>16}: new network (no baseline)");
        }
    }
    Ok(warned)
}

/// One size row from a `scale_smoke` JSON file.
struct ScaleRow {
    name: String,
    /// Routing mode: `"table"` (dense route table) or `"logic"`
    /// (on-the-fly fallback above the cell cap).
    mode: String,
    /// Route-table cells the topology implies (deterministic geometry).
    ncells: f64,
    graph_bytes: f64,
    table_bytes: f64,
    cycles_per_sec: f64,
}

/// Parse every size row from `scale_smoke` JSON. The rows are
/// single-line `{...}` objects under `"sizes"`, recognised by carrying
/// both a `"mode"` string and an `"ncells"` number (sweep/fault rows
/// have neither).
fn parse_scale_rows(src: &str) -> Vec<ScaleRow> {
    let mut out = Vec::new();
    for line in src.lines() {
        let t = line.trim();
        if !t.starts_with('{') {
            continue;
        }
        let (Some(name), Some(mode), Some(ncells)) = (
            str_field(t, "name"),
            str_field(t, "mode"),
            field(t, "ncells"),
        ) else {
            continue;
        };
        out.push(ScaleRow {
            name,
            mode,
            ncells,
            graph_bytes: field(t, "graph_bytes").unwrap_or(f64::NAN),
            table_bytes: field(t, "table_bytes").unwrap_or(f64::NAN),
            cycles_per_sec: field(t, "cycles_per_sec").unwrap_or(f64::NAN),
        });
    }
    out
}

/// Diff two `scale_smoke` files row by row; returns the warning count.
/// Wall-clock throughput warns in the noisy ±20% band; the
/// deterministic construction footprints warn above +5%; a mode flip or
/// an `ncells` change flags a behavioural difference in the
/// construction pipeline. Always warn-only.
fn compare_scale(
    baseline_path: &str,
    current_path: &str,
    summary: &mut String,
) -> Result<usize, String> {
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"));
    let baseline = parse_scale_rows(&read(baseline_path)?);
    let current = parse_scale_rows(&read(current_path)?);
    if baseline.is_empty() {
        return Err(format!("{baseline_path}: no scale rows parsed"));
    }
    if current.is_empty() {
        return Err(format!("{current_path}: no scale rows parsed"));
    }

    let mut warned = 0usize;
    let _ = writeln!(
        summary,
        "scale sweep: {current_path} vs baseline {baseline_path} \
         (throughput warn at ±20%, memory at +5%, mode/ncells on change)"
    );
    for base in &baseline {
        let Some(cur) = current.iter().find(|r| r.name == base.name) else {
            // The budgeted CI invocation legitimately truncates the size
            // list (--max-nodes); note the hole without warning.
            let _ = writeln!(
                summary,
                "  {:>16}: not in current run (size capped or removed)",
                base.name
            );
            continue;
        };
        let mut flags = String::new();
        if cur.mode != base.mode {
            warned += 1;
            let _ = write!(
                flags,
                "  <-- WARNING: routing mode flipped {} -> {}",
                base.mode, cur.mode
            );
        }
        if cur.ncells != base.ncells {
            warned += 1;
            let _ = write!(
                flags,
                "  <-- WARNING: ncells changed {:.0} -> {:.0} (topology/geometry drift)",
                base.ncells, cur.ncells
            );
        }
        for (what, b, c) in [
            ("graph_bytes", base.graph_bytes, cur.graph_bytes),
            ("table_bytes", base.table_bytes, cur.table_bytes),
        ] {
            if !b.is_finite() || !c.is_finite() {
                continue;
            }
            // Zero vs zero (logic-mode rows carry no table) is clean.
            let grew = if b == 0.0 { c > 0.0 } else { c / b - 1.0 > 0.05 };
            if grew {
                warned += 1;
                let _ = write!(flags, "  <-- WARNING: {what} grew {b:.0} -> {c:.0}");
            }
        }
        let cps = if usable_baseline(base.cycles_per_sec) && cur.cycles_per_sec.is_finite() {
            let ratio = cur.cycles_per_sec / base.cycles_per_sec;
            if ratio < 0.8 {
                warned += 1;
                let _ = write!(flags, "  <-- WARNING: slower than baseline");
            }
            format!("({:+6.1}%)", (ratio - 1.0) * 100.0)
        } else {
            "(no usable throughput baseline)".to_string()
        };
        let _ = writeln!(
            summary,
            "  {:>16}: {:12.0} vs {:12.0}  {cps}{flags}",
            base.name, cur.cycles_per_sec, base.cycles_per_sec
        );
    }
    for cur in &current {
        if !baseline.iter().any(|r| r.name == cur.name) {
            let _ = writeln!(summary, "  {:>16}: new size (no baseline)", cur.name);
        }
    }
    Ok(warned)
}

/// The service numbers of a `service_smoke` file: wall-clock figures
/// (noisy) plus the deterministic admission-control flood counts.
struct ServiceNums {
    jobs_per_sec: f64,
    cold_ms: f64,
    cache_hit_ms: f64,
    flood_accepted: f64,
    flood_rejected_cap: f64,
    flood_rejected_queue: f64,
}

fn parse_service(src: &str, path: &str) -> Result<ServiceNums, String> {
    let find = |key: &str| {
        src.lines()
            .find_map(|l| field(l.trim(), key))
            .ok_or_else(|| format!("{path}: missing \"{key}\""))
    };
    Ok(ServiceNums {
        jobs_per_sec: find("jobs_per_sec")?,
        cold_ms: find("cold_ms")?,
        cache_hit_ms: find("cache_hit_ms")?,
        flood_accepted: find("flood_accepted")?,
        flood_rejected_cap: find("flood_rejected_client_cap")?,
        flood_rejected_queue: find("flood_rejected_queue_full")?,
    })
}

/// `--service`: diff a pair of `service_smoke` files. Wall-clock
/// figures (jobs/sec, cold latency) warn in the usual noisy ±20% band;
/// a cache hit slower than its cold run warns at any magnitude (the
/// cache must pay for itself); the flood admission counts are
/// deterministic functions of the configured bounds, so *any* drift
/// warns — that is an admission-control behavior change, not noise.
/// Always warn-only, same reasoning as `--faults`.
fn compare_service(
    baseline_path: &str,
    current_path: &str,
    summary: &mut String,
) -> Result<usize, String> {
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"));
    let base = parse_service(&read(baseline_path)?, baseline_path)?;
    let cur = parse_service(&read(current_path)?, current_path)?;

    let mut warned = 0usize;
    let _ = writeln!(
        summary,
        "service: {current_path} vs baseline {baseline_path} \
         (wall-clock warn at ±20%, flood counts on any change)"
    );
    let jps = if usable_baseline(base.jobs_per_sec) {
        let ratio = cur.jobs_per_sec / base.jobs_per_sec;
        let mut flag = "";
        if ratio < 0.8 {
            warned += 1;
            flag = "  <-- WARNING: service throughput dropped";
        }
        format!("({:+6.1}%){flag}", (ratio - 1.0) * 100.0)
    } else {
        "(no usable baseline)".to_string()
    };
    let _ = writeln!(
        summary,
        "  {:>24}: {:8.1} vs {:8.1}  {jps}",
        "jobs_per_sec", cur.jobs_per_sec, base.jobs_per_sec
    );
    let mut cache_flag = "";
    if cur.cache_hit_ms >= cur.cold_ms {
        warned += 1;
        cache_flag = "  <-- WARNING: cache hit no faster than cold run";
    }
    let _ = writeln!(
        summary,
        "  {:>24}: cold {:7.2} ms, cache hit {:7.2} ms ({:.1}x){cache_flag}",
        "cache latency",
        cur.cold_ms,
        cur.cache_hit_ms,
        cur.cold_ms / cur.cache_hit_ms.max(1e-9)
    );
    for (what, b, c) in [
        ("flood_accepted", base.flood_accepted, cur.flood_accepted),
        ("flood_rejected_client_cap", base.flood_rejected_cap, cur.flood_rejected_cap),
        ("flood_rejected_queue_full", base.flood_rejected_queue, cur.flood_rejected_queue),
    ] {
        let mut flag = "";
        if b != c {
            warned += 1;
            flag = "  <-- WARNING: admission-control counts changed (behavioural)";
        }
        let _ = writeln!(summary, "  {what:>24}: {c:4.0} vs {b:4.0}{flag}");
    }
    Ok(warned)
}

/// A baseline number a percent diff can safely divide by. Zero (or a
/// non-finite value from a malformed row) means the baseline carries no
/// usable magnitude — a placeholder entry, a truncated file, or a
/// machine that never completed the sweep — and `cur / base` would
/// print `inf%`/`NaN%` and poison every comparison downstream.
fn usable_baseline(base: f64) -> bool {
    base.is_finite() && base > 0.0
}

/// Diff the headline (and, under the gate, per-load) throughput of
/// `current` against `baseline`, appending human-readable rows to
/// `summary`. Returns `(warning_count, regressed_network_names)`.
///
/// Rows whose baseline is zero/non-finite fall back to reporting the
/// **absolute difference** instead of a percentage and warn; they never
/// feed the `--fail-on-regress` gate (there is no ratio to gate on).
fn compare_sweeps(
    baseline: &[Net],
    current: &[Net],
    fail_pct: Option<f64>,
    summary: &mut String,
) -> (usize, Vec<String>) {
    let mut warned = 0usize;
    let mut regressed: Vec<String> = Vec::new();
    for base in baseline {
        let Some(cur) = current.iter().find(|n| n.name == base.name) else {
            let _ = writeln!(summary, "  {:>16}: MISSING from current run", base.name);
            warned += 1;
            continue;
        };
        if !usable_baseline(base.cycles_per_sec) {
            warned += 1;
            let _ = writeln!(
                summary,
                "  {:>16}: {:12.0} vs {:12.0}  (abs diff {:+.0})  \
                 <-- WARNING: zero/invalid baseline row; refresh the baseline",
                base.name,
                cur.cycles_per_sec,
                base.cycles_per_sec,
                cur.cycles_per_sec - base.cycles_per_sec
            );
            continue;
        }
        let ratio = cur.cycles_per_sec / base.cycles_per_sec;
        let flag = if !(0.8..=1.2).contains(&ratio) {
            warned += 1;
            if ratio < 1.0 {
                "  <-- WARNING: slower than baseline"
            } else {
                "  (faster than baseline; consider refreshing it)"
            }
        } else {
            ""
        };
        let _ = writeln!(
            summary,
            "  {:>16}: {:12.0} vs {:12.0}  ({:+6.1}%){flag}",
            base.name,
            cur.cycles_per_sec,
            base.cycles_per_sec,
            (ratio - 1.0) * 100.0
        );
        if let Some((ok, partial, failed)) = cur.counts {
            if partial + failed > 0 {
                warned += 1;
                let _ = writeln!(
                    summary,
                    "    <-- WARNING: outcomes {ok} ok, {partial} partial, {failed} failed \
                     (throughput covers completed work only)"
                );
            }
        }
        if let Some(pct) = fail_pct {
            if ratio < 1.0 - pct / 100.0 {
                regressed.push(base.name.clone());
                let _ = writeln!(
                    summary,
                    "    per-load rows beyond the -{pct}% gate:"
                );
                for &(load, bcps) in &base.loads {
                    let Some(&(_, ccps)) =
                        cur.loads.iter().find(|(l, _)| *l == load)
                    else {
                        continue;
                    };
                    if !usable_baseline(bcps) {
                        let _ = writeln!(
                            summary,
                            "      load {load:4}: {ccps:12.0} vs {bcps:12.0}  \
                             (abs diff {:+.0}; zero/invalid baseline row)",
                            ccps - bcps
                        );
                        continue;
                    }
                    let r = ccps / bcps;
                    if r < 1.0 - pct / 100.0 {
                        let _ = writeln!(
                            summary,
                            "      load {load:4}: {ccps:12.0} vs {bcps:12.0}  ({:+6.1}%)",
                            (r - 1.0) * 100.0
                        );
                    }
                }
            }
        }
    }
    for cur in current {
        if !baseline.iter().any(|n| n.name == cur.name) {
            let _ = writeln!(summary, "  {:>16}: new network (no baseline)", cur.name);
        }
    }
    (warned, regressed)
}

fn main() -> Result<(), String> {
    const USAGE: &str = "usage: bench_compare BASELINE CURRENT [OUT] \
         [--fail-on-regress <pct>] [--faults FAULTS_BASELINE FAULTS_CURRENT] \
         [--scale SCALE_BASELINE SCALE_CURRENT] \
         [--service SERVICE_BASELINE SERVICE_CURRENT]";
    let mut positional: Vec<String> = Vec::new();
    let mut fail_pct: Option<f64> = None;
    let mut faults: Option<(String, String)> = None;
    let mut scale: Option<(String, String)> = None;
    let mut service: Option<(String, String)> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--faults" {
            let base = args.next().ok_or(USAGE)?;
            let cur = args.next().ok_or(USAGE)?;
            faults = Some((base, cur));
        } else if a == "--scale" {
            let base = args.next().ok_or(USAGE)?;
            let cur = args.next().ok_or(USAGE)?;
            scale = Some((base, cur));
        } else if a == "--service" {
            let base = args.next().ok_or(USAGE)?;
            let cur = args.next().ok_or(USAGE)?;
            service = Some((base, cur));
        } else if a == "--fail-on-regress" {
            let pct = args.next().ok_or(USAGE)?;
            let pct: f64 = pct
                .parse()
                .map_err(|_| format!("--fail-on-regress: bad percentage {pct:?}"))?;
            if !(0.0..100.0).contains(&pct) {
                return Err(format!("--fail-on-regress: need 0 <= pct < 100, got {pct}"));
            }
            fail_pct = Some(pct);
        } else {
            positional.push(a);
        }
    }
    let mut positional = positional.into_iter();
    let baseline_path = positional.next().ok_or(USAGE)?;
    let current_path = positional.next().ok_or(USAGE)?;
    let out_path = positional.next();

    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"));
    let baseline_src = read(&baseline_path)?;
    let current_src = read(&current_path)?;
    let baseline = parse_networks(&baseline_src);
    let current = parse_networks(&current_src);
    if baseline.is_empty() {
        return Err(format!("{baseline_path}: no networks parsed"));
    }
    if current.is_empty() {
        return Err(format!("{current_path}: no networks parsed"));
    }

    let mut summary = String::new();
    let mut warned = compare_hosts(&baseline_src, &current_src, &mut summary);
    let _ = writeln!(
        summary,
        "cycles_per_sec: {current_path} vs baseline {baseline_path} (warn at ±20%)"
    );
    let (sweep_warned, regressed) =
        compare_sweeps(&baseline, &current, fail_pct, &mut summary);
    warned += sweep_warned;
    warned += compare_memory(&baseline, &current, &mut summary);
    warned += compare_lockstep(&current, &mut summary);
    warned += compare_kernels(&current, &mut summary);
    if let Some((faults_base, faults_cur)) = &faults {
        warned += compare_faults(faults_base, faults_cur, &mut summary)?;
    }
    if let Some((scale_base, scale_cur)) = &scale {
        warned += compare_scale(scale_base, scale_cur, &mut summary)?;
    }
    if let Some((service_base, service_cur)) = &service {
        warned += compare_service(service_base, service_cur, &mut summary)?;
    }
    if let Some(pct) = fail_pct {
        let _ = writeln!(summary, "{warned} warning(s); gate at -{pct}%");
    } else {
        let _ = writeln!(
            summary,
            "{warned} warning(s); informational only — shared runners are noisy"
        );
    }

    print!("{summary}");
    if let Some(p) = out_path {
        std::fs::write(&p, &summary).map_err(|e| format!("writing {p}: {e}"))?;
    }
    if !regressed.is_empty() {
        return Err(format!(
            "throughput regressed beyond the gate on: {}",
            regressed.join(", ")
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(name: &str, cps: f64, loads: &[(f64, f64)]) -> Net {
        Net {
            name: name.to_string(),
            cycles_per_sec: cps,
            loads: loads.to_vec(),
            lockstep: Vec::new(),
            kernels: Vec::new(),
            counts: None,
            table_bytes: None,
            graph_bytes: None,
        }
    }

    #[test]
    fn memory_columns_parse_and_warn_on_growth() {
        let src = r#"{
  "networks": [
    {
      "name": "tmin",
      "setup_ms": 1.0,
      "table_bytes": 100000,
      "graph_bytes": 50000,
      "cycles_per_sec": 400000.0
    }
  ]
}"#;
        let base = parse_networks(src);
        assert_eq!(base[0].table_bytes, Some(100_000.0));
        assert_eq!(base[0].graph_bytes, Some(50_000.0));
        // Within +5%: silent row. Table grown 3x: warns.
        let grown = src
            .replace("\"table_bytes\": 100000", "\"table_bytes\": 300000")
            .replace("\"graph_bytes\": 50000", "\"graph_bytes\": 51000");
        let cur = parse_networks(&grown);
        let mut summary = String::new();
        assert_eq!(compare_memory(&base, &cur, &mut summary), 1, "{summary}");
        assert!(summary.contains("setup memory grew"), "{summary}");
        assert!(summary.contains("+200.0%"), "{summary}");
    }

    #[test]
    fn files_without_memory_columns_stay_silent() {
        let base = vec![net("tmin", 1.0, &[])];
        let cur = vec![net("tmin", 1.0, &[])];
        let mut summary = String::new();
        assert_eq!(compare_memory(&base, &cur, &mut summary), 0);
        assert!(summary.is_empty(), "{summary}");
    }

    #[test]
    fn kernel_rows_parse_and_warn_only_at_saturating_loads() {
        let src = r#"{
  "networks": [
    {
      "name": "tmin",
      "cycles_per_sec": 400000.0,
      "loads": [
        {"load": 0.05, "cycles_per_sec": 1.0, "cycles_per_sec_scalar": 80000.0, "cycles_per_sec_lockstep": 80000.0, "cycles_per_sec_kernels_off": 100000.0},
        {"load": 0.6, "cycles_per_sec": 1.0, "cycles_per_sec_scalar": 90000.0, "cycles_per_sec_lockstep": 90000.0, "cycles_per_sec_kernels_off": 100000.0},
        {"load": 0.5, "cycles_per_sec": 1.0, "cycles_per_sec_scalar": 150000.0, "cycles_per_sec_lockstep": 150000.0, "cycles_per_sec_kernels_off": 100000.0}
      ]
    }
  ]
}"#;
        let nets = parse_networks(src);
        assert_eq!(nets[0].kernels.len(), 3);
        let mut summary = String::new();
        // Only the 0.9x row at load 0.6 warns; the 0.8x row at load
        // 0.05 is below the saturating-load threshold.
        assert_eq!(compare_kernels(&nets, &mut summary), 1, "{summary}");
        assert!(summary.contains("kernels slower than scalar"), "{summary}");
        assert!(summary.contains("1.50x"), "{summary}");
    }

    #[test]
    fn files_without_kernel_rows_stay_silent() {
        let nets = vec![net("tmin", 400_000.0, &[(0.6, 400_000.0)])];
        let mut summary = String::new();
        assert_eq!(compare_kernels(&nets, &mut summary), 0);
        assert!(summary.is_empty(), "{summary}");
    }

    const HOST_A: &str = r#"{
  "meta": {
    "host": {
      "rustc": "rustc 1.95.0",
      "target": "x86_64-unknown-linux-gnu",
      "target_features": "popcnt sse4.2",
      "cores": 1
    }
  },
  "networks": [
    { "name": "tmin", "cycles_per_sec": 1.0 }
  ]
}"#;

    #[test]
    fn matching_hosts_stay_silent_and_missing_hosts_skip() {
        let mut summary = String::new();
        assert_eq!(compare_hosts(HOST_A, HOST_A, &mut summary), 0);
        let no_host = r#"{ "networks": [ { "name": "tmin", "cycles_per_sec": 1.0 } ] }"#;
        assert_eq!(compare_hosts(no_host, HOST_A, &mut summary), 0);
        assert_eq!(compare_hosts(HOST_A, no_host, &mut summary), 0);
        assert!(summary.is_empty(), "{summary}");
    }

    #[test]
    fn host_mismatch_warns_with_differing_fields() {
        let other = HOST_A
            .replace("rustc 1.95.0", "rustc 1.99.0")
            .replace("\"cores\": 1", "\"cores\": 8");
        let mut summary = String::new();
        assert_eq!(compare_hosts(HOST_A, &other, &mut summary), 1);
        assert!(summary.contains("host mismatch"), "{summary}");
        assert!(summary.contains("rustc 1.99.0"), "{summary}");
        assert!(summary.contains("cores 8 vs 1"), "{summary}");
        assert!(!summary.contains("target_features"), "{summary}");
    }

    #[test]
    fn lockstep_rows_parse_and_warn_only_below_parity() {
        let src = r#"{
  "networks": [
    {
      "name": "tmin",
      "cycles_per_sec": 400000.0,
      "loads": [
        {"load": 0.05, "run_ms": 1.0, "cycles": 100, "cycles_per_sec": 100000.0, "cycles_per_sec_scalar": 90000.0, "cycles_per_sec_lockstep": 80000.0},
        {"load": 0.6, "run_ms": 1.0, "cycles": 100, "cycles_per_sec": 100000.0, "cycles_per_sec_scalar": 100000.0, "cycles_per_sec_lockstep": 250000.0},
        {"load": 0.5, "run_ms": 1.0, "cycles": 100, "cycles_per_sec": 100000.0, "cycles_per_sec_scalar": 0.0, "cycles_per_sec_lockstep": 0.0}
      ]
    }
  ]
}"#;
        let nets = parse_networks(src);
        assert_eq!(nets.len(), 1);
        // The budget-skipped (zero) row is dropped at parse time.
        assert_eq!(nets[0].lockstep.len(), 2);
        let mut summary = String::new();
        let warned = compare_lockstep(&nets, &mut summary);
        assert_eq!(warned, 1, "{summary}");
        assert!(summary.contains("lockstep slower than scalar"), "{summary}");
        assert!(summary.contains("2.50x"), "{summary}");
    }

    #[test]
    fn files_without_lockstep_rows_stay_silent() {
        let nets = vec![net("tmin", 400_000.0, &[(0.6, 400_000.0)])];
        let mut summary = String::new();
        assert_eq!(compare_lockstep(&nets, &mut summary), 0);
        assert!(summary.is_empty(), "{summary}");
    }

    const SCALE_SRC: &str = r#"{
  "sizes": [
    {"name": "tmin_k4_n5", "nodes": 1024, "channels": 6144, "graph_bytes": 257184, "ncells": 6291456, "mode": "table", "table_bytes": 30748732, "cycles_per_sec": 48043.7},
    {"name": "bmin_k4_n7", "nodes": 16384, "channels": 229376, "graph_bytes": 9519264, "ncells": 3758096384, "mode": "logic", "table_bytes": 0, "cycles_per_sec": 712.2}
  ]
}"#;

    #[test]
    fn scale_rows_parse_with_mode_and_ncells() {
        let rows = parse_scale_rows(SCALE_SRC);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "tmin_k4_n5");
        assert_eq!(rows[0].mode, "table");
        assert_eq!(rows[0].ncells, 6_291_456.0);
        assert_eq!(rows[1].mode, "logic");
        assert_eq!(rows[1].table_bytes, 0.0);
    }

    #[test]
    fn scale_identical_files_warn_nothing_and_drift_flags_fire() {
        let dir = std::env::temp_dir().join(format!("bc_scale_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        std::fs::write(&base, SCALE_SRC).unwrap();
        std::fs::write(&cur, SCALE_SRC).unwrap();
        let mut summary = String::new();
        let warned =
            compare_scale(base.to_str().unwrap(), cur.to_str().unwrap(), &mut summary).unwrap();
        assert_eq!(warned, 0, "{summary}");

        // Flip a row to logic mode, grow its graph arena past +5%, and
        // slow it below the 0.8x band: three distinct warnings.
        let drifted = SCALE_SRC
            .replace(
                "\"ncells\": 6291456, \"mode\": \"table\"",
                "\"ncells\": 6291456, \"mode\": \"logic\"",
            )
            .replace("\"graph_bytes\": 257184", "\"graph_bytes\": 300000")
            .replace("\"cycles_per_sec\": 48043.7", "\"cycles_per_sec\": 20000.0");
        std::fs::write(&cur, drifted).unwrap();
        let mut summary = String::new();
        let warned =
            compare_scale(base.to_str().unwrap(), cur.to_str().unwrap(), &mut summary).unwrap();
        assert_eq!(warned, 3, "{summary}");
        assert!(summary.contains("mode flipped table -> logic"), "{summary}");
        assert!(summary.contains("graph_bytes grew"), "{summary}");
        assert!(summary.contains("slower than baseline"), "{summary}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scale_truncated_current_notes_missing_rows_without_warning() {
        // The budgeted CI run caps --max-nodes, so the 16k row is
        // legitimately absent: a note, not a warning.
        let dir = std::env::temp_dir().join(format!("bc_scale_trunc_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        std::fs::write(&base, SCALE_SRC).unwrap();
        let truncated: String = SCALE_SRC
            .lines()
            .filter(|l| !l.contains("bmin_k4_n7"))
            .collect::<Vec<_>>()
            .join("\n")
            .replace("cycles_per_sec\": 48043.7},", "cycles_per_sec\": 48043.7}");
        std::fs::write(&cur, truncated).unwrap();
        let mut summary = String::new();
        let warned =
            compare_scale(base.to_str().unwrap(), cur.to_str().unwrap(), &mut summary).unwrap();
        assert_eq!(warned, 0, "{summary}");
        assert!(summary.contains("not in current run"), "{summary}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_baseline_row_reports_absolute_difference_not_inf() {
        // Regression: `cur / base` with a zero-baseline row printed
        // `+inf%` (and `NaN%` for 0 vs 0) and, under the gate, compared
        // NaN against the threshold. The guard falls back to the
        // absolute difference and keeps the row out of the gate.
        let baseline = vec![net("tmin", 0.0, &[(0.05, 0.0), (0.6, 0.0)])];
        let current = vec![net("tmin", 123_456.0, &[(0.05, 130_000.0), (0.6, 120_000.0)])];
        let mut summary = String::new();
        let (warned, regressed) =
            compare_sweeps(&baseline, &current, Some(10.0), &mut summary);
        assert!(regressed.is_empty(), "unusable baseline must not gate: {summary}");
        assert_eq!(warned, 1, "{summary}");
        assert!(
            !summary.contains("inf%") && !summary.contains("NaN"),
            "guard missed a division by zero: {summary}"
        );
        assert!(summary.contains("abs diff +123456"), "{summary}");
        assert!(summary.contains("zero/invalid baseline"), "{summary}");
    }

    #[test]
    fn zero_current_against_zero_baseline_stays_finite() {
        let baseline = vec![net("dmin", 0.0, &[])];
        let current = vec![net("dmin", 0.0, &[])];
        let mut summary = String::new();
        let (warned, regressed) = compare_sweeps(&baseline, &current, None, &mut summary);
        assert_eq!((warned, regressed.len()), (1, 0), "{summary}");
        assert!(!summary.contains("NaN"), "{summary}");
    }

    #[test]
    fn healthy_rows_still_use_percent_drift_and_gate() {
        let baseline = vec![net("vmin", 200_000.0, &[(0.6, 200_000.0)])];
        let current = vec![net("vmin", 100_000.0, &[(0.6, 100_000.0)])];
        let mut summary = String::new();
        let (warned, regressed) =
            compare_sweeps(&baseline, &current, Some(20.0), &mut summary);
        assert_eq!(regressed, vec!["vmin".to_string()], "{summary}");
        assert!(warned >= 1);
        assert!(summary.contains("-50.0%"), "{summary}");
    }

    #[test]
    fn zero_per_load_baseline_row_is_reported_without_inf() {
        // Network-level baseline is fine, but one per-load row is zero:
        // the gate listing must print it with an absolute difference
        // instead of choking on the ratio.
        let baseline = vec![net("bmin", 200_000.0, &[(0.05, 0.0), (0.6, 200_000.0)])];
        let current = vec![net("bmin", 100_000.0, &[(0.05, 90_000.0), (0.6, 100_000.0)])];
        let mut summary = String::new();
        let (_warned, regressed) =
            compare_sweeps(&baseline, &current, Some(20.0), &mut summary);
        assert_eq!(regressed.len(), 1);
        assert!(!summary.contains("inf%") && !summary.contains("NaN"), "{summary}");
        assert!(summary.contains("abs diff +90000"), "{summary}");
    }

    fn service_src(jobs: f64, cold: f64, hit: f64, acc: u64, cap: u64, full: u64) -> String {
        format!(
            "{{\n  \"service\": {{\n    \"jobs_per_sec\": {jobs},\n    \"cold_ms\": {cold},\n\
             \x20   \"cache_hit_ms\": {hit},\n    \"flood_accepted\": {acc},\n\
             \x20   \"flood_rejected_client_cap\": {cap},\n\
             \x20   \"flood_rejected_queue_full\": {full}\n  }}\n}}\n"
        )
    }

    #[test]
    fn service_flood_counts_warn_on_any_drift_wallclock_only_beyond_band() {
        let dir = std::env::temp_dir();
        let base_path = dir.join(format!("svc_base_{}.json", std::process::id()));
        let cur_path = dir.join(format!("svc_cur_{}.json", std::process::id()));
        // Wall-clock within the band, one admission count changed: one
        // behavioral warning, no throughput warning.
        std::fs::write(&base_path, service_src(100.0, 12.0, 2.0, 4, 5, 7)).unwrap();
        std::fs::write(&cur_path, service_src(90.0, 13.0, 2.5, 4, 6, 6)).unwrap();
        let mut summary = String::new();
        let warned = compare_service(
            base_path.to_str().unwrap(),
            cur_path.to_str().unwrap(),
            &mut summary,
        )
        .unwrap();
        assert_eq!(warned, 2, "{summary}");
        assert!(summary.contains("admission-control counts changed"), "{summary}");
        assert!(!summary.contains("throughput dropped"), "{summary}");

        // A cache hit slower than cold warns regardless of magnitude.
        std::fs::write(&cur_path, service_src(100.0, 12.0, 12.5, 4, 5, 7)).unwrap();
        let mut summary = String::new();
        let warned = compare_service(
            base_path.to_str().unwrap(),
            cur_path.to_str().unwrap(),
            &mut summary,
        )
        .unwrap();
        assert_eq!(warned, 1, "{summary}");
        assert!(summary.contains("cache hit no faster"), "{summary}");
        let _ = std::fs::remove_file(&base_path);
        let _ = std::fs::remove_file(&cur_path);
    }
}
