//! Compare a fresh `BENCH_sweep.json` against the committed
//! `BENCH_baseline.json` and report per-network throughput drift.
//!
//! ```text
//! cargo run --release -p minnet-bench --bin bench_compare -- \
//!     BENCH_baseline.json BENCH_sweep.json [diff_summary.txt] \
//!     [--fail-on-regress <pct>]
//! ```
//!
//! For every network present in both files the tool diffs the headline
//! `cycles_per_sec` (single-threaded engine throughput over the whole
//! load sweep) and flags drift beyond ±20%. By default the exit status
//! is always 0: shared CI runners have noisy and heterogeneous CPUs, so
//! the comparison is a **warning, not a gate** — the summary (also
//! written to the optional third argument for artifact upload) is the
//! record to look at when a regression is suspected.
//!
//! `--fail-on-regress <pct>` turns the warning into a gate: any network
//! whose headline throughput drops more than `pct` percent below the
//! baseline fails the run (exit 1) after printing the offending
//! per-load rows, so the report shows *which* loads regressed — a
//! low-load-only regression points at setup/fast-forward changes, a
//! high-load one at the allocation/transmission hot loops. CI keeps the
//! warn-only default; the gate is for dedicated (quiet) benchmark hosts.
//!
//! The parser is deliberately minimal: this offline workspace has no
//! serde, and both files are produced by `sweep_smoke`'s known
//! line-oriented writer. It keys on trimmed lines starting with
//! `"name":` / `"cycles_per_sec":`; the per-load rows are single-line
//! `{...}` objects, recognised (and mined for `"load"` /
//! `"cycles_per_sec"`) by their leading brace.

use std::fmt::Write as _;

/// One network's numbers from a `sweep_smoke` JSON file.
struct Net {
    name: String,
    /// Headline single-threaded throughput; NaN until parsed.
    cycles_per_sec: f64,
    /// Per-load `(offered_load, cycles_per_sec)` rows.
    loads: Vec<(f64, f64)>,
}

/// Extract the number following `"key": ` inside a single-line JSON row.
fn field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c == ',' || c == '}')
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Parse every network (headline + per-load rows) from `sweep_smoke` JSON.
fn parse_networks(src: &str) -> Vec<Net> {
    let mut out: Vec<Net> = Vec::new();
    for line in src.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("\"name\":") {
            let name = rest.trim().trim_end_matches(',').trim_matches('"');
            out.push(Net {
                name: name.to_string(),
                cycles_per_sec: f64::NAN,
                loads: Vec::new(),
            });
        } else if let Some(rest) = t.strip_prefix("\"cycles_per_sec\":") {
            if let Some(net) = out.last_mut() {
                if net.cycles_per_sec.is_nan() {
                    net.cycles_per_sec = rest
                        .trim()
                        .trim_end_matches(',')
                        .parse()
                        .unwrap_or(f64::NAN);
                }
            }
        } else if t.starts_with('{') {
            if let (Some(net), Some(load), Some(cps)) = (
                out.last_mut(),
                field(t, "load"),
                field(t, "cycles_per_sec"),
            ) {
                net.loads.push((load, cps));
            }
        }
    }
    out.retain(|n| !n.cycles_per_sec.is_nan());
    out
}

fn main() -> Result<(), String> {
    const USAGE: &str =
        "usage: bench_compare BASELINE CURRENT [OUT] [--fail-on-regress <pct>]";
    let mut positional: Vec<String> = Vec::new();
    let mut fail_pct: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--fail-on-regress" {
            let pct = args.next().ok_or(USAGE)?;
            let pct: f64 = pct
                .parse()
                .map_err(|_| format!("--fail-on-regress: bad percentage {pct:?}"))?;
            if !(0.0..100.0).contains(&pct) {
                return Err(format!("--fail-on-regress: need 0 <= pct < 100, got {pct}"));
            }
            fail_pct = Some(pct);
        } else {
            positional.push(a);
        }
    }
    let mut positional = positional.into_iter();
    let baseline_path = positional.next().ok_or(USAGE)?;
    let current_path = positional.next().ok_or(USAGE)?;
    let out_path = positional.next();

    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"));
    let baseline = parse_networks(&read(&baseline_path)?);
    let current = parse_networks(&read(&current_path)?);
    if baseline.is_empty() {
        return Err(format!("{baseline_path}: no networks parsed"));
    }
    if current.is_empty() {
        return Err(format!("{current_path}: no networks parsed"));
    }

    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "cycles_per_sec: {current_path} vs baseline {baseline_path} (warn at ±20%)"
    );
    let mut warned = 0usize;
    let mut regressed: Vec<String> = Vec::new();
    for base in &baseline {
        let Some(cur) = current.iter().find(|n| n.name == base.name) else {
            let _ = writeln!(summary, "  {:>16}: MISSING from current run", base.name);
            warned += 1;
            continue;
        };
        let ratio = cur.cycles_per_sec / base.cycles_per_sec;
        let flag = if !(0.8..=1.2).contains(&ratio) {
            warned += 1;
            if ratio < 1.0 {
                "  <-- WARNING: slower than baseline"
            } else {
                "  (faster than baseline; consider refreshing it)"
            }
        } else {
            ""
        };
        let _ = writeln!(
            summary,
            "  {:>16}: {:12.0} vs {:12.0}  ({:+6.1}%){flag}",
            base.name,
            cur.cycles_per_sec,
            base.cycles_per_sec,
            (ratio - 1.0) * 100.0
        );
        if let Some(pct) = fail_pct {
            if ratio < 1.0 - pct / 100.0 {
                regressed.push(base.name.clone());
                let _ = writeln!(
                    summary,
                    "    per-load rows beyond the -{pct}% gate:"
                );
                for &(load, bcps) in &base.loads {
                    let Some(&(_, ccps)) =
                        cur.loads.iter().find(|(l, _)| *l == load)
                    else {
                        continue;
                    };
                    let r = ccps / bcps;
                    if r < 1.0 - pct / 100.0 {
                        let _ = writeln!(
                            summary,
                            "      load {load:4}: {ccps:12.0} vs {bcps:12.0}  ({:+6.1}%)",
                            (r - 1.0) * 100.0
                        );
                    }
                }
            }
        }
    }
    for cur in &current {
        if !baseline.iter().any(|n| n.name == cur.name) {
            let _ = writeln!(summary, "  {:>16}: new network (no baseline)", cur.name);
        }
    }
    if fail_pct.is_some() {
        let _ = writeln!(
            summary,
            "{warned} warning(s); gate at -{}%",
            fail_pct.unwrap()
        );
    } else {
        let _ = writeln!(
            summary,
            "{warned} warning(s); informational only — shared runners are noisy"
        );
    }

    print!("{summary}");
    if let Some(p) = out_path {
        std::fs::write(&p, &summary).map_err(|e| format!("writing {p}: {e}"))?;
    }
    if !regressed.is_empty() {
        return Err(format!(
            "throughput regressed beyond the gate on: {}",
            regressed.join(", ")
        ));
    }
    Ok(())
}
