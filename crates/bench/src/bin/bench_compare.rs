//! Compare a fresh `BENCH_sweep.json` against the committed
//! `BENCH_baseline.json` and report per-network throughput drift.
//!
//! ```text
//! cargo run --release -p minnet-bench --bin bench_compare -- \
//!     BENCH_baseline.json BENCH_sweep.json [diff_summary.txt]
//! ```
//!
//! For every network present in both files the tool diffs the headline
//! `cycles_per_sec` (single-threaded engine throughput over the whole
//! load sweep) and flags drift beyond ±20%. The exit status is always 0:
//! shared CI runners have noisy and heterogeneous CPUs, so the
//! comparison is a **warning, not a gate** — the summary (also written
//! to the optional third argument for artifact upload) is the record to
//! look at when a regression is suspected.
//!
//! The parser is deliberately minimal: this offline workspace has no
//! serde, and both files are produced by `sweep_smoke`'s known
//! line-oriented writer. It keys on trimmed lines starting with
//! `"name":` / `"cycles_per_sec":`; the per-load rows are single-line
//! objects starting with `{`, so they never match.

use std::fmt::Write as _;

/// Extract `(name, cycles_per_sec)` pairs from `sweep_smoke` JSON.
fn parse_networks(src: &str) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    let mut current: Option<String> = None;
    for line in src.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("\"name\":") {
            let name = rest.trim().trim_end_matches(',').trim_matches('"');
            current = Some(name.to_string());
        } else if let Some(rest) = t.strip_prefix("\"cycles_per_sec\":") {
            if let Some(name) = current.take() {
                let v: f64 = rest
                    .trim()
                    .trim_end_matches(',')
                    .parse()
                    .unwrap_or(f64::NAN);
                out.push((name, v));
            }
        }
    }
    out
}

fn main() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().ok_or("usage: bench_compare BASELINE CURRENT [OUT]")?;
    let current_path = args.next().ok_or("usage: bench_compare BASELINE CURRENT [OUT]")?;
    let out_path = args.next();

    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"));
    let baseline = parse_networks(&read(&baseline_path)?);
    let current = parse_networks(&read(&current_path)?);
    if baseline.is_empty() {
        return Err(format!("{baseline_path}: no networks parsed"));
    }
    if current.is_empty() {
        return Err(format!("{current_path}: no networks parsed"));
    }

    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "cycles_per_sec: {current_path} vs baseline {baseline_path} (warn at ±20%)"
    );
    let mut warned = 0usize;
    for (name, base) in &baseline {
        let Some((_, cur)) = current.iter().find(|(n, _)| n == name) else {
            let _ = writeln!(summary, "  {name:>16}: MISSING from current run");
            warned += 1;
            continue;
        };
        let ratio = cur / base;
        let flag = if !(0.8..=1.2).contains(&ratio) {
            warned += 1;
            if ratio < 1.0 {
                "  <-- WARNING: slower than baseline"
            } else {
                "  (faster than baseline; consider refreshing it)"
            }
        } else {
            ""
        };
        let _ = writeln!(
            summary,
            "  {name:>16}: {cur:12.0} vs {base:12.0}  ({:+6.1}%){flag}",
            (ratio - 1.0) * 100.0
        );
    }
    for (name, _) in &current {
        if !baseline.iter().any(|(n, _)| n == name) {
            let _ = writeln!(summary, "  {name:>16}: new network (no baseline)");
        }
    }
    let _ = writeln!(
        summary,
        "{warned} warning(s); informational only — shared runners are noisy"
    );

    print!("{summary}");
    if let Some(p) = out_path {
        std::fs::write(&p, &summary).map_err(|e| format!("writing {p}: {e}"))?;
    }
    Ok(())
}
