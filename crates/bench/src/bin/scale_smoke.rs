//! Extreme-scale construction benchmark: time the whole setup pipeline —
//! CSR graph build, streaming route-table build (serial and parallel),
//! the legacy `Option<Vec>`-grid oracle where it still fits — and a
//! budgeted simulation burst, from the paper's 64-terminal networks up to
//! a 16 384-terminal BMIN. Writes `BENCH_scale.json`.
//!
//! ```text
//! cargo run --release -p minnet-bench --bin scale_smoke              # ./BENCH_scale.json
//! cargo run --release -p minnet-bench --bin scale_smoke -- out.json \
//!     --max-nodes 4096 --budget-ms 1000 --threads 4
//! ```
//!
//! Per size row:
//!
//! * `graph_build_ms` / `graph_bytes` — building the [`NetworkGraph`]
//!   (builder + CSR arena assembly + validation) and its resident size;
//! * `ncells` / `mode` — the route-table cell count `channels × nodes`
//!   and whether the default [`EngineConfig::route_table_max_cells`] cap
//!   admits a table (`"table"`) or falls back to per-hop routing logic
//!   (`"logic"` — the 16k row);
//! * `table_build_ms` / `table_build_ms_parallel` / `table_bytes` — the
//!   streaming two-pass build, serial and thread-chunked (the two tables
//!   are asserted equal), and the table's resident size;
//! * `grid_build_ms` / `grid_peak_bytes` — the original
//!   `Option<Vec>`-cell-grid build ([`RouteTable::build_grid`], kept as
//!   the differential oracle), measured only up to `--max-grid-nodes`
//!   (default 1024) where its allocation storm is still tolerable; the
//!   result is asserted byte-identical to the streaming table. The
//!   stream/grid time and peak-byte ratios are the PR's before/after
//!   numbers;
//! * `grid_est_bytes` — the analytic grid floor `ncells × 24` (the
//!   `Option<Vec>` control blocks alone, before any candidate heap
//!   allocations) for every row, showing why the grid cannot scale: at
//!   16k terminals it is ~90 GB against the table's tens of MB;
//! * `setup_ms` — one [`CompiledNet`] compile under the default cap;
//! * `sim_cycles` / `sim_ms` / `cycles_per_sec` — a wall-budgeted
//!   uniform-traffic burst through the compiled network (the 16k row
//!   exercises the logic-fallback router end to end).
//!
//! The JSON is written by hand (no serde in this offline workspace); see
//! EXPERIMENTS.md for the schema. CI runs the bin budgeted with
//! `--max-nodes 4096` on every push and builds the 16k row in the
//! release job; `BENCH_scale_baseline.json` is the committed reference.

use minnet_routing::RouteTable;
use minnet_sim::{CompiledNet, EngineConfig, EngineState, RunBudget, SimError};
use minnet_topology::{build_bmin, build_unidir, Geometry, NetworkGraph, UnidirKind};
use minnet_traffic::{MessageSizeDist, Workload, WorkloadSpec};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Offered load of the budgeted simulation burst — light enough that
/// every size reaches steady state inside the budget.
const LOAD: f64 = 0.1;
const WARMUP: u64 = 200;
const MEASURE: u64 = 100_000_000; // effectively "until the wall budget"

struct SizeSpec {
    name: &'static str,
    k: u32,
    n: u32,
    bidir: bool,
}

/// The sweep: the paper's 64-node baseline, then powers of the radix up
/// to 16 384 BMIN terminals, plus a high-radix (k = 32) row exercising
/// wide switch fanout.
const SIZES: [SizeSpec; 7] = [
    SizeSpec { name: "tmin_k4_n3", k: 4, n: 3, bidir: false },
    SizeSpec { name: "tmin_k4_n5", k: 4, n: 5, bidir: false },
    SizeSpec { name: "tmin_k32_n2", k: 32, n: 2, bidir: false },
    SizeSpec { name: "bmin_k4_n5", k: 4, n: 5, bidir: true },
    SizeSpec { name: "tmin_k4_n6", k: 4, n: 6, bidir: false },
    SizeSpec { name: "bmin_k4_n6", k: 4, n: 6, bidir: true },
    SizeSpec { name: "bmin_k4_n7", k: 4, n: 7, bidir: true },
];

struct Cli {
    out_path: String,
    max_nodes: u32,
    max_grid_nodes: u32,
    budget_ms: u64,
    threads: usize,
}

fn parse_cli() -> Result<Cli, String> {
    const USAGE: &str = "usage: scale_smoke [OUT.json] [--max-nodes N] \
                         [--max-grid-nodes N] [--budget-ms N] [--threads N]";
    let mut cli = Cli {
        out_path: "BENCH_scale.json".into(),
        max_nodes: u32::MAX,
        max_grid_nodes: 1024,
        budget_ms: 2_000,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8),
    };
    let mut positional = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value; {USAGE}"));
        match a.as_str() {
            "--max-nodes" => {
                cli.max_nodes = value(&a)?.parse().map_err(|e| format!("{a}: {e}"))?;
            }
            "--max-grid-nodes" => {
                cli.max_grid_nodes = value(&a)?.parse().map_err(|e| format!("{a}: {e}"))?;
            }
            "--budget-ms" => {
                cli.budget_ms = value(&a)?.parse().map_err(|e| format!("{a}: {e}"))?;
            }
            "--threads" => {
                cli.threads = value(&a)?.parse().map_err(|e| format!("{a}: {e}"))?;
            }
            _ if a.starts_with("--") => return Err(format!("unknown flag {a}; {USAGE}")),
            _ => {
                if positional > 0 {
                    return Err(format!("unexpected argument {a}; {USAGE}"));
                }
                cli.out_path = a;
                positional += 1;
            }
        }
    }
    Ok(cli)
}

struct Row {
    name: &'static str,
    nodes: u32,
    channels: usize,
    graph_build_ms: f64,
    graph_bytes: u64,
    ncells: u64,
    mode: &'static str,
    table_build_ms: f64,
    table_build_ms_parallel: f64,
    table_bytes: u64,
    /// Zeros when the grid was skipped (above `--max-grid-nodes`).
    grid_build_ms: f64,
    grid_peak_bytes: u64,
    grid_est_bytes: u64,
    setup_ms: f64,
    sim_cycles: u64,
    sim_ms: f64,
    cycles_per_sec: f64,
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

fn bench_size(spec: &SizeSpec, cli: &Cli) -> Result<Row, String> {
    let g = Geometry::new(spec.k, spec.n);
    let nodes = g.nodes();

    let t = Instant::now();
    let net: NetworkGraph = if spec.bidir {
        build_bmin(g)
    } else {
        build_unidir(g, UnidirKind::Cube, 1)
    };
    let graph_build_ms = ms(t);
    let graph_bytes = net.approx_bytes() as u64;
    let channels = net.num_channels();
    let ncells = channels as u64 * u64::from(nodes);
    // The analytic floor of the legacy grid: one 24-byte `Option<Vec>`
    // control block per cell, before a single candidate is stored.
    let grid_est_bytes =
        ncells * std::mem::size_of::<Option<Vec<minnet_topology::ChannelId>>>() as u64;

    let cap = EngineConfig::default().route_table_max_cells;
    let mode = if ncells <= cap { "table" } else { "logic" };

    let (mut table_build_ms, mut table_build_ms_parallel, mut table_bytes) = (0.0, 0.0, 0u64);
    let (mut grid_build_ms, mut grid_peak_bytes) = (0.0, 0u64);
    if mode == "table" {
        let t = Instant::now();
        let serial = RouteTable::build(&net)?;
        table_build_ms = ms(t);
        table_bytes = serial.approx_bytes();

        let t = Instant::now();
        let parallel = RouteTable::build_parallel(&net, cli.threads)?;
        table_build_ms_parallel = ms(t);
        assert_eq!(serial, parallel, "parallel build diverged from serial");

        if nodes <= cli.max_grid_nodes {
            let t = Instant::now();
            let (grid, peak) = RouteTable::build_grid(&net)?;
            grid_build_ms = ms(t);
            grid_peak_bytes = peak;
            assert_eq!(serial, grid, "streaming build diverged from the grid oracle");
        }
    }

    // Compiled-pipeline setup + budgeted simulation burst. The 16k row
    // compiles without a table and runs down the logic-fallback path.
    let cfg = EngineConfig {
        warmup: WARMUP,
        measure: MEASURE,
        budget: RunBudget {
            max_cycles: 0,
            max_wall_ms: cli.budget_ms,
        },
        table_build_threads: cli.threads as u32,
        ..EngineConfig::default()
    };
    let net = Arc::new(net);
    let t = Instant::now();
    let compiled = CompiledNet::new(Arc::clone(&net), cfg).map_err(|e| e.to_string())?;
    let setup_ms = ms(t);
    debug_assert_eq!(compiled.routes().is_some(), mode == "table");

    let mut wspec = WorkloadSpec::global_uniform(LOAD);
    wspec.sizes = MessageSizeDist::Fixed(16);
    let wl = Workload::compile(g, &wspec)?;
    let mut st = EngineState::new();
    let t = Instant::now();
    let sim_cycles = match compiled.run_poisson(&wl, 0x5CA1E, &mut st) {
        Ok(report) => report.cycles,
        // The budget cutting the run short is the expected outcome at
        // scale; the partial report still carries the executed cycles.
        Err(SimError::BudgetExceeded(partial)) => partial.spent_cycles,
        Err(e) => return Err(format!("{}: {e}", spec.name)),
    };
    let sim_ms = ms(t);

    Ok(Row {
        name: spec.name,
        nodes,
        channels,
        graph_build_ms,
        graph_bytes,
        ncells,
        mode,
        table_build_ms,
        table_build_ms_parallel,
        table_bytes,
        grid_build_ms,
        grid_peak_bytes,
        grid_est_bytes,
        setup_ms,
        sim_cycles,
        sim_ms,
        cycles_per_sec: sim_cycles as f64 / (sim_ms / 1e3),
    })
}

fn main() -> Result<(), String> {
    let cli = parse_cli()?;
    let mut rows = Vec::new();
    for spec in &SIZES {
        let g = Geometry::new(spec.k, spec.n);
        if g.nodes() > cli.max_nodes {
            println!(
                "{:>12}: skipped ({} nodes > --max-nodes {})",
                spec.name,
                g.nodes(),
                cli.max_nodes
            );
            continue;
        }
        let r = bench_size(spec, &cli)?;
        println!(
            "{:>12}: {:6} nodes {:7} ch | graph {:8.2} ms {:9} B | table[{}] {:8.2} ms ({:.2} ms x{}) {:10} B | grid {:8.2} ms {:11} B | sim {:.2e} cyc/s",
            r.name, r.nodes, r.channels, r.graph_build_ms, r.graph_bytes, r.mode,
            r.table_build_ms, r.table_build_ms_parallel, cli.threads, r.table_bytes,
            r.grid_build_ms, r.grid_peak_bytes, r.cycles_per_sec
        );
        rows.push(r);
    }
    if rows.is_empty() {
        return Err("every size was skipped; raise --max-nodes".into());
    }

    // The before/after headline: largest row where both builds ran.
    if let Some(r) = rows
        .iter()
        .filter(|r| r.grid_build_ms > 0.0)
        .max_by_key(|r| r.nodes)
    {
        println!(
            "before/after @ {}: stream {:.2} ms / {} B vs grid {:.2} ms / {} B -> {:.1}x faster, {:.1}x smaller peak",
            r.name,
            r.table_build_ms,
            r.table_bytes,
            r.grid_build_ms,
            r.grid_peak_bytes,
            r.grid_build_ms / r.table_build_ms,
            r.grid_peak_bytes as f64 / r.table_bytes as f64
        );
    }

    let mut json = String::from("{\n  \"meta\": {\n");
    let _ = writeln!(json, "    \"load\": {LOAD},");
    let _ = writeln!(json, "    \"warmup\": {WARMUP},");
    let _ = writeln!(json, "    \"budget_ms\": {},", cli.budget_ms);
    let _ = writeln!(json, "    \"threads\": {},", cli.threads);
    let _ = writeln!(json, "    \"max_nodes\": {},", cli.max_nodes);
    let _ = writeln!(json, "    \"max_grid_nodes\": {},", cli.max_grid_nodes);
    let _ = writeln!(
        json,
        "    \"route_table_max_cells\": {},",
        EngineConfig::default().route_table_max_cells
    );
    let _ = writeln!(json, "{}", minnet_bench::host::host_meta_json("    "));
    json.push_str("  },\n  \"sizes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str("    {");
        let _ = write!(
            json,
            "\"name\": \"{}\", \"nodes\": {}, \"channels\": {}, \
             \"graph_build_ms\": {:.3}, \"graph_bytes\": {}, \"ncells\": {}, \
             \"mode\": \"{}\", \"table_build_ms\": {:.3}, \
             \"table_build_ms_parallel\": {:.3}, \"table_bytes\": {}, \
             \"grid_build_ms\": {:.3}, \"grid_peak_bytes\": {}, \
             \"grid_est_bytes\": {}, \"setup_ms\": {:.3}, \
             \"sim_cycles\": {}, \"sim_ms\": {:.3}, \"cycles_per_sec\": {:.1}",
            r.name,
            r.nodes,
            r.channels,
            r.graph_build_ms,
            r.graph_bytes,
            r.ncells,
            r.mode,
            r.table_build_ms,
            r.table_build_ms_parallel,
            r.table_bytes,
            r.grid_build_ms,
            r.grid_peak_bytes,
            r.grid_est_bytes,
            r.setup_ms,
            r.sim_cycles,
            r.sim_ms,
            r.cycles_per_sec,
        );
        json.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&cli.out_path, &json)
        .map_err(|e| format!("writing {}: {e}", cli.out_path))?;
    println!("wrote {}", cli.out_path);
    Ok(())
}
