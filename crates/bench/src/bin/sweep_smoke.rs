//! Sweep smoke benchmark: run a fixed micro-sweep through the compiled
//! pipeline and write machine-readable numbers to `BENCH_sweep.json`.
//!
//! ```text
//! cargo run --release -p minnet-bench --bin sweep_smoke            # ./BENCH_sweep.json
//! cargo run --release -p minnet-bench --bin sweep_smoke -- out.json
//! cargo run --release -p minnet-bench --features hotstats --bin sweep_smoke
//! ```
//!
//! For each paper-lineup network the binary measures, with wall clocks
//! around the real API calls:
//!
//! * `setup_ms` — one [`Experiment::compile`]: graph + routing table +
//!   workload template;
//! * `loads[]` — one row per offered load, each a single-threaded
//!   replicated point (3 replications) through [`replicated_curve`]:
//!   wall time, simulated cycles, and cycles/sec. Per-load rows make
//!   load-dependent engine changes (the event-horizon fast-forward, the
//!   struct-of-arrays hot state) visible instead of averaged away;
//! * `run_ms` / `cycles_per_sec` — the single-threaded totals over all
//!   load rows, the engine-throughput headline CI compares against
//!   `BENCH_baseline.json`;
//! * `run_ms_mt` — the same full sweep issued once through
//!   `replicated_curve`'s worker pool with `threads_used` workers
//!   (`available_parallelism`, capped at 8), the scaling row;
//! * `one_shot_ms` — the same runs issued as independent
//!   [`Experiment::run_seeded`] calls, the pre-compilation cost model.
//!
//! With the `hotstats` feature on, every load row also carries the
//! engine's per-phase breakdown (arrivals/allocate/transmit wall time,
//! executed vs fast-forward-skipped cycles) drained from
//! `minnet_sim::hotstats` between rows.
//!
//! The JSON is written by hand (no serde in this offline workspace); the
//! schema is one object per network in `"networks"`, plus a `"meta"`
//! object recording the sweep shape. CI uploads the file as an artifact
//! and diffs `cycles_per_sec` against the committed `BENCH_baseline.json`
//! (warn-only; see `bench_compare`), so regressions in the compiled path,
//! the setup split, or any single load row leave a history.

use minnet::sweep::replicated_curve;
use minnet::{Experiment, NetworkSpec};
use minnet_traffic::MessageSizeDist;
use std::fmt::Write as _;
use std::time::Instant;

const LOADS: [f64; 7] = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
const REPLICATIONS: usize = 3;
const WARMUP: u64 = 500;
const MEASURE: u64 = 4_000;

fn smoke_experiment(spec: NetworkSpec) -> Experiment {
    let mut exp = Experiment::paper_default(spec);
    exp.sizes = MessageSizeDist::Fixed(64);
    exp.sim.warmup = WARMUP;
    exp.sim.measure = MEASURE;
    exp
}

/// One single-threaded replicated point at a fixed load.
struct LoadRow {
    load: f64,
    run_ms: f64,
    cycles: u64,
    cycles_per_sec: f64,
    #[cfg(feature = "hotstats")]
    hot: minnet_sim::hotstats::HotStats,
}

struct NetResult {
    name: String,
    setup_ms: f64,
    run_ms: f64,
    run_ms_mt: f64,
    one_shot_ms: f64,
    cycles_per_sec: f64,
    total_cycles: u64,
    mean_latency_cycles: f64,
    latency_ci95_cycles: f64,
    loads: Vec<LoadRow>,
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

fn bench_network(spec: NetworkSpec, threads: usize) -> Result<NetResult, String> {
    let exp = smoke_experiment(spec);

    let t = Instant::now();
    let compiled = exp.compile()?;
    let setup_ms = ms(t);
    drop(compiled); // replicated_curve compiles internally; timed apart

    // Per-load single-threaded rows: comparable engine throughput,
    // unpolluted by worker scheduling.
    #[cfg(feature = "hotstats")]
    let _ = minnet_sim::hotstats::take(); // drain other sections' counters
    let mut loads = Vec::with_capacity(LOADS.len());
    let mut knee_latency = (0.0, 0.0);
    for &load in &LOADS {
        let t = Instant::now();
        let pts = replicated_curve(&exp, &[load], REPLICATIONS, 1)?;
        let run_ms = ms(t);
        let point = &pts[0];
        let cycles: u64 = point.replications.iter().map(|r| r.cycles).sum();
        knee_latency = (point.mean_latency_cycles, point.latency_ci95_cycles);
        loads.push(LoadRow {
            load,
            run_ms,
            cycles,
            cycles_per_sec: cycles as f64 / (run_ms / 1e3),
            #[cfg(feature = "hotstats")]
            hot: minnet_sim::hotstats::take(),
        });
    }
    let run_ms: f64 = loads.iter().map(|r| r.run_ms).sum();
    let total_cycles: u64 = loads.iter().map(|r| r.cycles).sum();

    // The same full sweep through the worker pool — the scaling row.
    let t = Instant::now();
    replicated_curve(&exp, &LOADS, REPLICATIONS, threads)?;
    let run_ms_mt = ms(t);
    #[cfg(feature = "hotstats")]
    let _ = minnet_sim::hotstats::take(); // keep MT noise out of load rows

    // The same number of runs issued one-shot — every run re-validates
    // the spec, rebuilds the graph, recompiles the workload, and
    // allocates fresh engine state, which is exactly what each sweep
    // point cost before the compiled pipeline.
    let t = Instant::now();
    for (i, &load) in LOADS.iter().enumerate() {
        for r in 0..REPLICATIONS {
            exp.run_seeded(load, (i * REPLICATIONS + r) as u64 + 1)?;
        }
    }
    let one_shot_ms = ms(t);

    Ok(NetResult {
        name: spec.name(),
        setup_ms,
        run_ms,
        run_ms_mt,
        one_shot_ms,
        cycles_per_sec: total_cycles as f64 / (run_ms / 1e3),
        total_cycles,
        mean_latency_cycles: knee_latency.0,
        latency_ci95_cycles: knee_latency.1,
        loads,
    })
}

fn write_load_row(json: &mut String, r: &LoadRow, last: bool) {
    json.push_str("        {");
    let _ = write!(
        json,
        "\"load\": {}, \"run_ms\": {:.3}, \"cycles\": {}, \"cycles_per_sec\": {:.1}",
        r.load, r.run_ms, r.cycles, r.cycles_per_sec
    );
    #[cfg(feature = "hotstats")]
    {
        let h = &r.hot;
        let _ = write!(
            json,
            ", \"arrivals_ms\": {:.3}, \"allocate_ms\": {:.3}, \"transmit_ms\": {:.3}, \
             \"cycles_executed\": {}, \"cycles_skipped\": {}, \"ff_jumps\": {}, \
             \"skipped_fraction\": {:.6}",
            h.arrivals_ns as f64 / 1e6,
            h.allocate_ns as f64 / 1e6,
            h.transmit_ns as f64 / 1e6,
            h.cycles_executed,
            h.cycles_skipped,
            h.ff_jumps,
            h.skipped_fraction()
        );
    }
    json.push_str(if last { "}\n" } else { "},\n" });
}

fn main() -> Result<(), String> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".into());
    let threads_detected = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = threads_detected.min(8);

    let mut results = Vec::new();
    for spec in NetworkSpec::paper_lineup() {
        let r = bench_network(spec, threads)?;
        println!(
            "{:>8}: setup {:7.2} ms | sweep {:8.2} ms ({:.2e} cycles/s, 1 thread; {:8.2} ms on {threads}) | one-shot {:8.2} ms",
            r.name, r.setup_ms, r.run_ms, r.cycles_per_sec, r.run_ms_mt, r.one_shot_ms
        );
        results.push(r);
    }

    let mut json = String::from("{\n  \"meta\": {\n");
    let _ = writeln!(json, "    \"loads\": {LOADS:?},");
    let _ = writeln!(json, "    \"replications\": {REPLICATIONS},");
    let _ = writeln!(json, "    \"warmup\": {WARMUP},");
    let _ = writeln!(json, "    \"measure\": {MEASURE},");
    let _ = writeln!(json, "    \"threads_detected\": {threads_detected},");
    let _ = writeln!(json, "    \"threads_used\": {threads},");
    let _ = writeln!(json, "    \"hotstats\": {}", cfg!(feature = "hotstats"));
    json.push_str("  },\n  \"networks\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(json, "      \"setup_ms\": {:.3},", r.setup_ms);
        let _ = writeln!(json, "      \"run_ms\": {:.3},", r.run_ms);
        let _ = writeln!(json, "      \"run_ms_mt\": {:.3},", r.run_ms_mt);
        let _ = writeln!(json, "      \"one_shot_ms\": {:.3},", r.one_shot_ms);
        let _ = writeln!(json, "      \"cycles_per_sec\": {:.1},", r.cycles_per_sec);
        let _ = writeln!(json, "      \"total_cycles\": {},", r.total_cycles);
        let _ = writeln!(
            json,
            "      \"mean_latency_cycles\": {:.6},",
            r.mean_latency_cycles
        );
        let _ = writeln!(
            json,
            "      \"latency_ci95_cycles\": {:.6},",
            r.latency_ci95_cycles
        );
        json.push_str("      \"loads\": [\n");
        for (j, row) in r.loads.iter().enumerate() {
            write_load_row(&mut json, row, j + 1 == r.loads.len());
        }
        json.push_str("      ]\n");
        json.push_str(if i + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("wrote {out_path}");
    Ok(())
}
