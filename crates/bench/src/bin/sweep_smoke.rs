//! Sweep smoke benchmark: run a fixed micro-sweep through the compiled
//! pipeline and write machine-readable numbers to `BENCH_sweep.json`.
//!
//! ```text
//! cargo run --release -p minnet-bench --bin sweep_smoke            # ./BENCH_sweep.json
//! cargo run --release -p minnet-bench --bin sweep_smoke -- out.json
//! cargo run --release -p minnet-bench --features hotstats --bin sweep_smoke
//! cargo run --release -p minnet-bench --bin sweep_smoke -- out.json \
//!     --budget-ms 5000 --retries 1 --checkpoint-dir ckpts/
//! ```
//!
//! For each paper-lineup network the binary measures, with wall clocks
//! around the real API calls:
//!
//! * `setup_ms` — one [`Experiment::compile`]: graph + routing table +
//!   workload template;
//! * `loads[]` — one row per offered load, each a single-threaded
//!   replicated point (3 replications) through the campaign runner:
//!   wall time, simulated cycles, and cycles/sec. Per-load rows make
//!   load-dependent engine changes (the event-horizon fast-forward, the
//!   struct-of-arrays hot state) visible instead of averaged away;
//! * `run_ms` / `cycles_per_sec` — the single-threaded totals over all
//!   load rows, the engine-throughput headline CI compares against
//!   `BENCH_baseline.json`;
//! * `run_ms_mt` — the same full sweep issued once through the worker
//!   pool with `threads_used` workers (`available_parallelism`, capped
//!   at 8), the scaling row;
//! * `one_shot_ms` — the same runs issued as independent
//!   [`Experiment::run_seeded`] calls, the pre-compilation cost model
//!   (skipped when a budget is set — a cut one-shot run is an error on
//!   that legacy surface, and its timing would be meaningless anyway);
//! * `ok` / `partial` / `failed` — per-network outcome counts over every
//!   campaign task, so budget cuts and isolated failures are visible in
//!   the artifact instead of masquerading as fast runs (`bench_compare`
//!   prints them next to the throughput diff);
//! * `cycles_per_sec_scalar` / `cycles_per_sec_lockstep` — per load, the
//!   same 3 replication seeds issued (a) one lane at a time through the
//!   scalar entry and (b) as one lockstep fleet chunked over
//!   `meta.lockstep_threads` = `min(replications, threads_used)` lane
//!   blocks. Aggregate throughput: summed lane cycles over fleet wall
//!   time — the honest lockstep headline (thread count labeled, not
//!   hidden). Zero when a budget is set (budget-armed runs are
//!   lockstep-ineligible and fall back to scalar anyway);
//! * `cycles_per_sec_kernels_off` — per load, the same seeds through the
//!   scalar entry with the word-parallel kernels forced off, timed in
//!   the same window as `cycles_per_sec_scalar`. Their ratio is the
//!   kernel speedup `bench_compare` reports; both settings are pinned
//!   bit-identical by the equivalence suite, so only wall time differs.
//!
//! The `meta` block records the sweep shape plus the host identity
//! (`rustc`, target triple, compile-time target features, core count —
//! see `minnet_bench::host`); `bench_compare` warns when the baseline
//! was taken on a different host, since cross-host wall-clock diffs are
//! noise.
//!
//! Resilience flags mirror the `minnet` CLI: `--budget-cycles` /
//! `--budget-ms` bound each run, `--retries` reruns failed points on
//! derived seeds, and `--checkpoint-dir DIR` (or `--resume-dir`, which
//! requires the files to exist) keeps one JSONL checkpoint per network
//! and row under `DIR` — kill the process mid-sweep and rerun to finish
//! only the missing points. Timing rows resumed from a checkpoint
//! measure only the tasks actually run.
//!
//! With the `hotstats` feature on, every load row also carries the
//! engine's per-phase breakdown (arrivals/allocate/transmit wall time,
//! executed vs fast-forward-skipped cycles) drained from
//! `minnet_sim::hotstats` between rows.
//!
//! The JSON is written by hand (no serde in this offline workspace); the
//! schema is one object per network in `"networks"`, plus a `"meta"`
//! object recording the sweep shape. CI uploads the file as an artifact
//! and diffs `cycles_per_sec` against the committed `BENCH_baseline.json`
//! (warn-only; see `bench_compare`), so regressions in the compiled path,
//! the setup split, or any single load row leave a history.

use minnet::{
    campaign_replicated_curve, outcome_counts, CampaignPolicy, Experiment, NetworkSpec,
    ReplicatedCampaignPoint,
};
use minnet_traffic::MessageSizeDist;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

const LOADS: [f64; 7] = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
const REPLICATIONS: usize = 3;
const WARMUP: u64 = 500;
const MEASURE: u64 = 4_000;

struct Cli {
    out_path: String,
    budget_cycles: u64,
    budget_ms: u64,
    retries: u32,
    ckpt_dir: Option<PathBuf>,
    require_existing: bool,
}

fn parse_cli() -> Result<Cli, String> {
    const USAGE: &str = "usage: sweep_smoke [OUT.json] [--budget-cycles N] [--budget-ms N] \
                         [--retries N] [--checkpoint-dir DIR | --resume-dir DIR]";
    let mut cli = Cli {
        out_path: "BENCH_sweep.json".into(),
        budget_cycles: 0,
        budget_ms: 0,
        retries: 0,
        ckpt_dir: None,
        require_existing: false,
    };
    let mut positional = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value; {USAGE}"));
        match a.as_str() {
            "--budget-cycles" => {
                cli.budget_cycles = value(&a)?.parse().map_err(|e| format!("{a}: {e}"))?;
            }
            "--budget-ms" => {
                cli.budget_ms = value(&a)?.parse().map_err(|e| format!("{a}: {e}"))?;
            }
            "--retries" => {
                cli.retries = value(&a)?.parse().map_err(|e| format!("{a}: {e}"))?;
            }
            "--checkpoint-dir" => cli.ckpt_dir = Some(value(&a)?.into()),
            "--resume-dir" => {
                cli.ckpt_dir = Some(value(&a)?.into());
                cli.require_existing = true;
            }
            _ if a.starts_with("--") => return Err(format!("unknown flag {a}; {USAGE}")),
            _ => {
                if positional > 0 {
                    return Err(format!("unexpected argument {a}; {USAGE}"));
                }
                cli.out_path = a;
                positional += 1;
            }
        }
    }
    Ok(cli)
}

impl Cli {
    fn smoke_experiment(&self, spec: NetworkSpec) -> Experiment {
        let mut exp = Experiment::paper_default(spec);
        exp.sizes = MessageSizeDist::Fixed(64);
        exp.sim.warmup = WARMUP;
        exp.sim.measure = MEASURE;
        exp.sim.budget.max_cycles = self.budget_cycles;
        exp.sim.budget.max_wall_ms = self.budget_ms;
        exp
    }

    /// The campaign policy for one checkpointable unit (`tag` names the
    /// per-network, per-row JSONL file under the checkpoint dir).
    fn policy(&self, tag: &str) -> CampaignPolicy {
        CampaignPolicy {
            retries: self.retries,
            checkpoint: self
                .ckpt_dir
                .as_ref()
                .map(|d| d.join(format!("{tag}.jsonl"))),
            require_existing: self.require_existing,
        }
    }
}

/// One single-threaded replicated point at a fixed load.
struct LoadRow {
    load: f64,
    run_ms: f64,
    cycles: u64,
    cycles_per_sec: f64,
    /// Direct-engine comparison: the replication seeds one at a time
    /// through the scalar entry. Zero when a budget skips the section.
    cycles_per_sec_scalar: f64,
    /// The same seeds as one lockstep fleet over
    /// `min(replications, threads)` lane-block threads (aggregate:
    /// summed lane cycles / fleet wall time). Zero when skipped.
    cycles_per_sec_lockstep: f64,
    /// The same seeds through the scalar entry with the word-parallel
    /// kernels forced **off** — the same-binary denominator for the
    /// kernel speedup (`cycles_per_sec_scalar / this`). Zero when the
    /// direct-engine section is skipped.
    cycles_per_sec_kernels_off: f64,
    #[cfg(feature = "hotstats")]
    hot: minnet_sim::hotstats::HotStats,
}

struct NetResult {
    name: String,
    setup_ms: f64,
    /// Resident bytes of the compiled route table (0 when the cell cap
    /// suppressed it) and of the CSR topology arenas — the memory
    /// companions to `setup_ms`, so `bench_compare` can flag setup-memory
    /// regressions alongside time ones.
    table_bytes: u64,
    graph_bytes: u64,
    run_ms: f64,
    run_ms_mt: f64,
    one_shot_ms: f64,
    cycles_per_sec: f64,
    total_cycles: u64,
    mean_latency_cycles: f64,
    latency_ci95_cycles: f64,
    ok: usize,
    partial: usize,
    failed: usize,
    loads: Vec<LoadRow>,
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

/// Simulated cycles a campaign point actually executed — `Ok` and
/// `Partial` reports both count (a budget-cut run did real work).
fn point_cycles(p: &ReplicatedCampaignPoint) -> u64 {
    p.outcomes
        .iter()
        .filter_map(|o| o.report().map(|r| r.cycles))
        .sum()
}

fn bench_network(
    spec: NetworkSpec,
    threads: usize,
    lockstep_threads: usize,
    cli: &Cli,
) -> Result<NetResult, String> {
    let exp = cli.smoke_experiment(spec);
    let name = spec.name();

    let t = Instant::now();
    let compiled = exp.compile()?;
    let setup_ms = ms(t);
    let table_bytes = compiled
        .network()
        .routes()
        .map_or(0, minnet_routing::RouteTable::approx_bytes);
    let graph_bytes = compiled.network().network().approx_bytes() as u64;
    drop(compiled); // the campaign compiles internally; timed apart

    // Per-load single-threaded rows: comparable engine throughput,
    // unpolluted by worker scheduling.
    #[cfg(feature = "hotstats")]
    let _ = minnet_sim::hotstats::take(); // drain other sections' counters
    let mut loads = Vec::with_capacity(LOADS.len());
    let mut knee_latency = (0.0, 0.0);
    let (mut ok, mut partial, mut failed) = (0, 0, 0);
    for (i, &load) in LOADS.iter().enumerate() {
        let policy = cli.policy(&format!("{name}_row{i}"));
        let t = Instant::now();
        let pts = campaign_replicated_curve(&exp, &[load], REPLICATIONS, 1, &policy)?;
        let run_ms = ms(t);
        let point = &pts[0];
        let (o, p, f) = outcome_counts(&point.outcomes);
        ok += o;
        partial += p;
        failed += f;
        let cycles = point_cycles(point);
        if let Some(stats) = &point.ok_stats {
            knee_latency = (stats.mean_latency_cycles, stats.latency_ci95_cycles);
        }
        loads.push(LoadRow {
            load,
            run_ms,
            cycles,
            cycles_per_sec: cycles as f64 / (run_ms / 1e3),
            cycles_per_sec_scalar: 0.0,
            cycles_per_sec_lockstep: 0.0,
            cycles_per_sec_kernels_off: 0.0,
            #[cfg(feature = "hotstats")]
            hot: minnet_sim::hotstats::take(),
        });
    }
    let run_ms: f64 = loads.iter().map(|r| r.run_ms).sum();
    let total_cycles: u64 = loads.iter().map(|r| r.cycles).sum();

    // The same full sweep through the worker pool — the scaling row.
    let policy = cli.policy(&format!("{name}_mt"));
    let t = Instant::now();
    let mt = campaign_replicated_curve(&exp, &LOADS, REPLICATIONS, threads, &policy)?;
    let run_ms_mt = ms(t);
    for point in &mt {
        let (o, p, f) = outcome_counts(&point.outcomes);
        ok += o;
        partial += p;
        failed += f;
    }
    #[cfg(feature = "hotstats")]
    let _ = minnet_sim::hotstats::take(); // keep MT noise out of load rows

    // The same number of runs issued one-shot — every run re-validates
    // the spec, rebuilds the graph, recompiles the workload, and
    // allocates fresh engine state, which is exactly what each sweep
    // point cost before the compiled pipeline. Skipped under a budget:
    // the legacy surface turns a cut into an error.
    let one_shot_ms = if exp.sim.budget.is_unlimited() {
        let t = Instant::now();
        for (i, &load) in LOADS.iter().enumerate() {
            for r in 0..REPLICATIONS {
                exp.run_seeded(load, (i * REPLICATIONS + r) as u64 + 1)?;
            }
        }
        ms(t)
    } else {
        0.0
    };

    // Direct-engine lockstep comparison: the same replication count per
    // load, first one lane at a time through the scalar entry, then as
    // one lockstep fleet chunked over `lockstep_threads` lane blocks.
    // Both paths produce bitwise-identical reports (pinned by the
    // engine_equivalence suite); only the wall clock differs. Skipped
    // under a budget — budget-armed configs are lockstep-ineligible.
    if lockstep_threads > 0 {
        let compiled = exp.compile()?;
        debug_assert!(compiled.network().lockstep_eligible());
        // Same binary, same seeds, word kernels forced off — the
        // denominator of the per-load kernel speedup column. Timed in
        // the same window as the scalar runs so the ratio is immune to
        // machine-state drift between sessions.
        let kernels_off = compiled.network().with_word_kernels(false);
        let mut st = minnet_sim::EngineState::new();
        let mut ls = minnet_sim::LockstepState::new();
        for (i, row) in loads.iter_mut().enumerate() {
            let wl = compiled.template().workload_at(row.load)?;
            let seeds: Vec<u64> = (0..REPLICATIONS)
                .map(|r| 0x10C4_57E9_u64 + (i * REPLICATIONS + r) as u64)
                .collect();
            let t = Instant::now();
            let mut scalar_cycles = 0u64;
            for &seed in &seeds {
                let rep = compiled
                    .network()
                    .run_poisson(&wl, seed, &mut st)
                    .map_err(|e| e.to_string())?;
                scalar_cycles += rep.cycles;
            }
            let scalar_ms = ms(t);
            row.cycles_per_sec_scalar = scalar_cycles as f64 / (scalar_ms / 1e3);

            let t = Instant::now();
            let reports = compiled
                .network()
                .run_poisson_lockstep(&wl, &seeds, lockstep_threads, &mut ls);
            let fleet_ms = ms(t);
            let mut fleet_cycles = 0u64;
            for rep in reports {
                fleet_cycles += rep.map_err(|e| e.to_string())?.cycles;
            }
            row.cycles_per_sec_lockstep = fleet_cycles as f64 / (fleet_ms / 1e3);

            let t = Instant::now();
            let mut off_cycles = 0u64;
            for &seed in &seeds {
                let rep = kernels_off
                    .run_poisson(&wl, seed, &mut st)
                    .map_err(|e| e.to_string())?;
                off_cycles += rep.cycles;
            }
            let off_ms = ms(t);
            // The two settings are pinned bit-identical by the
            // engine_equivalence suite; a divergence here means the
            // speedup column is comparing different simulations.
            assert_eq!(off_cycles, scalar_cycles, "kernel on/off cycle mismatch");
            row.cycles_per_sec_kernels_off = off_cycles as f64 / (off_ms / 1e3);
        }
        #[cfg(feature = "hotstats")]
        let _ = minnet_sim::hotstats::take(); // keep comparison noise out
    }

    Ok(NetResult {
        name,
        setup_ms,
        table_bytes,
        graph_bytes,
        run_ms,
        run_ms_mt,
        one_shot_ms,
        cycles_per_sec: total_cycles as f64 / (run_ms / 1e3),
        total_cycles,
        mean_latency_cycles: knee_latency.0,
        latency_ci95_cycles: knee_latency.1,
        ok,
        partial,
        failed,
        loads,
    })
}

fn write_load_row(json: &mut String, r: &LoadRow, last: bool) {
    json.push_str("        {");
    let _ = write!(
        json,
        "\"load\": {}, \"run_ms\": {:.3}, \"cycles\": {}, \"cycles_per_sec\": {:.1}, \
         \"cycles_per_sec_scalar\": {:.1}, \"cycles_per_sec_lockstep\": {:.1}, \
         \"cycles_per_sec_kernels_off\": {:.1}",
        r.load, r.run_ms, r.cycles, r.cycles_per_sec, r.cycles_per_sec_scalar,
        r.cycles_per_sec_lockstep, r.cycles_per_sec_kernels_off
    );
    #[cfg(feature = "hotstats")]
    {
        let h = &r.hot;
        let _ = write!(
            json,
            ", \"arrivals_ms\": {:.3}, \"allocate_ms\": {:.3}, \"transmit_ms\": {:.3}, \
             \"cycles_executed\": {}, \"cycles_skipped\": {}, \"ff_jumps\": {}, \
             \"skipped_fraction\": {:.6}, \
             \"alloc_words_scanned\": {}, \"alloc_bits_processed\": {}, \
             \"transmit_words_scanned\": {}, \"transmit_bits_processed\": {}, \
             \"transmit_bits_per_word\": {:.3}",
            h.arrivals_ns as f64 / 1e6,
            h.allocate_ns as f64 / 1e6,
            h.transmit_ns as f64 / 1e6,
            h.cycles_executed,
            h.cycles_skipped,
            h.ff_jumps,
            h.skipped_fraction(),
            h.alloc_words_scanned,
            h.alloc_bits_processed,
            h.transmit_words_scanned,
            h.transmit_bits_processed,
            h.transmit_bits_per_word()
        );
    }
    json.push_str(if last { "}\n" } else { "},\n" });
}

fn main() -> Result<(), String> {
    let cli = parse_cli()?;
    if let Some(dir) = &cli.ckpt_dir {
        if !cli.require_existing {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("creating checkpoint dir {}: {e}", dir.display()))?;
        }
    }
    let threads_detected = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = threads_detected.min(8);

    // Lockstep fleets are only meaningful (and only taken) without a
    // run budget; 0 records "comparison skipped" in the artifact.
    let lockstep_threads = if cli.budget_cycles == 0 && cli.budget_ms == 0 {
        threads.clamp(1, REPLICATIONS)
    } else {
        0
    };

    let mut results = Vec::new();
    for spec in NetworkSpec::paper_lineup() {
        let r = bench_network(spec, threads, lockstep_threads, &cli)?;
        let speedup = match r.loads.last() {
            Some(row) if row.cycles_per_sec_scalar > 0.0 => {
                row.cycles_per_sec_lockstep / row.cycles_per_sec_scalar
            }
            _ => 0.0,
        };
        println!(
            "{:>8}: setup {:7.2} ms | sweep {:8.2} ms ({:.2e} cycles/s, 1 thread; {:8.2} ms on {threads}) | one-shot {:8.2} ms | lockstep {speedup:.2}x @{} on {lockstep_threads} | {} ok / {} partial / {} failed",
            r.name, r.setup_ms, r.run_ms, r.cycles_per_sec, r.run_ms_mt, r.one_shot_ms,
            LOADS[LOADS.len() - 1], r.ok, r.partial, r.failed
        );
        results.push(r);
    }

    let mut json = String::from("{\n  \"meta\": {\n");
    let _ = writeln!(json, "    \"loads\": {LOADS:?},");
    let _ = writeln!(json, "    \"replications\": {REPLICATIONS},");
    let _ = writeln!(json, "    \"warmup\": {WARMUP},");
    let _ = writeln!(json, "    \"measure\": {MEASURE},");
    let _ = writeln!(json, "    \"budget_cycles\": {},", cli.budget_cycles);
    let _ = writeln!(json, "    \"budget_ms\": {},", cli.budget_ms);
    let _ = writeln!(json, "    \"retries\": {},", cli.retries);
    let _ = writeln!(json, "    \"threads_detected\": {threads_detected},");
    let _ = writeln!(json, "    \"threads_used\": {threads},");
    let _ = writeln!(json, "    \"lockstep_threads\": {lockstep_threads},");
    let _ = writeln!(json, "    \"hotstats\": {},", cfg!(feature = "hotstats"));
    let _ = writeln!(
        json,
        "    \"word_kernels\": {},",
        minnet_sim::EngineConfig::default().word_kernels
    );
    let _ = writeln!(json, "{}", minnet_bench::host::host_meta_json("    "));
    json.push_str("  },\n  \"networks\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(json, "      \"setup_ms\": {:.3},", r.setup_ms);
        let _ = writeln!(json, "      \"table_bytes\": {},", r.table_bytes);
        let _ = writeln!(json, "      \"graph_bytes\": {},", r.graph_bytes);
        let _ = writeln!(json, "      \"run_ms\": {:.3},", r.run_ms);
        let _ = writeln!(json, "      \"run_ms_mt\": {:.3},", r.run_ms_mt);
        let _ = writeln!(json, "      \"one_shot_ms\": {:.3},", r.one_shot_ms);
        let _ = writeln!(json, "      \"cycles_per_sec\": {:.1},", r.cycles_per_sec);
        let _ = writeln!(json, "      \"total_cycles\": {},", r.total_cycles);
        let _ = writeln!(
            json,
            "      \"mean_latency_cycles\": {:.6},",
            r.mean_latency_cycles
        );
        let _ = writeln!(
            json,
            "      \"latency_ci95_cycles\": {:.6},",
            r.latency_ci95_cycles
        );
        let _ = writeln!(
            json,
            "      \"ok\": {}, \"partial\": {}, \"failed\": {},",
            r.ok, r.partial, r.failed
        );
        json.push_str("      \"loads\": [\n");
        for (j, row) in r.loads.iter().enumerate() {
            write_load_row(&mut json, row, j + 1 == r.loads.len());
        }
        json.push_str("      ]\n");
        json.push_str(if i + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&cli.out_path, &json)
        .map_err(|e| format!("writing {}: {e}", cli.out_path))?;
    println!("wrote {}", cli.out_path);
    Ok(())
}
