//! Sweep smoke benchmark: run a fixed micro-sweep through the compiled
//! pipeline and write machine-readable numbers to `BENCH_sweep.json`.
//!
//! ```text
//! cargo run --release -p minnet-bench --bin sweep_smoke            # ./BENCH_sweep.json
//! cargo run --release -p minnet-bench --bin sweep_smoke -- out.json
//! ```
//!
//! For each paper-lineup network the binary measures, with wall clocks
//! around the real API calls:
//!
//! * `setup_ms` — one [`Experiment::compile`]: graph + routing table +
//!   workload template;
//! * `run_ms` / `cycles_per_sec` — a fixed 6-point replicated micro-sweep
//!   (3 replications) through [`replicated_curve`], which reuses the
//!   compiled artifacts and per-worker engine states;
//! * `one_shot_ms` — the same 18 runs issued as independent
//!   [`Experiment::run_seeded`] calls, the pre-compilation cost model.
//!
//! The JSON is written by hand (no serde in this offline workspace); the
//! schema is one object per network in `"networks"`, plus a `"meta"`
//! object recording the sweep shape. CI uploads the file as an artifact,
//! so regressions in either the compiled path or the setup split leave a
//! history.

use minnet::sweep::replicated_curve;
use minnet::{Experiment, NetworkSpec};
use minnet_traffic::MessageSizeDist;
use std::fmt::Write as _;
use std::time::Instant;

const LOADS: [f64; 6] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
const REPLICATIONS: usize = 3;
const WARMUP: u64 = 500;
const MEASURE: u64 = 4_000;

fn smoke_experiment(spec: NetworkSpec) -> Experiment {
    let mut exp = Experiment::paper_default(spec);
    exp.sizes = MessageSizeDist::Fixed(64);
    exp.sim.warmup = WARMUP;
    exp.sim.measure = MEASURE;
    exp
}

struct NetResult {
    name: String,
    setup_ms: f64,
    run_ms: f64,
    one_shot_ms: f64,
    cycles_per_sec: f64,
    total_cycles: u64,
    mean_latency_cycles: f64,
    latency_ci95_cycles: f64,
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

fn bench_network(spec: NetworkSpec, threads: usize) -> Result<NetResult, String> {
    let exp = smoke_experiment(spec);

    let t = Instant::now();
    let compiled = exp.compile()?;
    let setup_ms = ms(t);
    drop(compiled); // replicated_curve compiles internally; timed apart

    let t = Instant::now();
    let points = replicated_curve(&exp, &LOADS, REPLICATIONS, threads)?;
    let run_ms = ms(t);

    // The same number of runs issued one-shot — every run re-validates
    // the spec, rebuilds the graph, recompiles the workload, and
    // allocates fresh engine state, which is exactly what each sweep
    // point cost before the compiled pipeline.
    let t = Instant::now();
    for (i, &load) in LOADS.iter().enumerate() {
        for r in 0..REPLICATIONS {
            exp.run_seeded(load, (i * REPLICATIONS + r) as u64 + 1)?;
        }
    }
    let one_shot_ms = ms(t);

    let total_cycles: u64 = points
        .iter()
        .flat_map(|p| p.replications.iter().map(|r| r.cycles))
        .sum();
    let knee = points.last().expect("sweep is nonempty");
    Ok(NetResult {
        name: spec.name(),
        setup_ms,
        run_ms,
        one_shot_ms,
        cycles_per_sec: total_cycles as f64 / (run_ms / 1e3),
        total_cycles,
        mean_latency_cycles: knee.mean_latency_cycles,
        latency_ci95_cycles: knee.latency_ci95_cycles,
    })
}

fn main() -> Result<(), String> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".into());
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);

    let mut results = Vec::new();
    for spec in NetworkSpec::paper_lineup() {
        let r = bench_network(spec, threads)?;
        println!(
            "{:>8}: setup {:7.2} ms | sweep {:8.2} ms ({:.2e} cycles/s) | one-shot {:8.2} ms",
            r.name, r.setup_ms, r.run_ms, r.cycles_per_sec, r.one_shot_ms
        );
        results.push(r);
    }

    let mut json = String::from("{\n  \"meta\": {\n");
    let _ = writeln!(json, "    \"loads\": {LOADS:?},");
    let _ = writeln!(json, "    \"replications\": {REPLICATIONS},");
    let _ = writeln!(json, "    \"warmup\": {WARMUP},");
    let _ = writeln!(json, "    \"measure\": {MEASURE},");
    let _ = writeln!(json, "    \"threads\": {threads}");
    json.push_str("  },\n  \"networks\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(json, "      \"setup_ms\": {:.3},", r.setup_ms);
        let _ = writeln!(json, "      \"run_ms\": {:.3},", r.run_ms);
        let _ = writeln!(json, "      \"one_shot_ms\": {:.3},", r.one_shot_ms);
        let _ = writeln!(json, "      \"cycles_per_sec\": {:.1},", r.cycles_per_sec);
        let _ = writeln!(json, "      \"total_cycles\": {},", r.total_cycles);
        let _ = writeln!(
            json,
            "      \"mean_latency_cycles\": {:.6},",
            r.mean_latency_cycles
        );
        let _ = writeln!(
            json,
            "      \"latency_ci95_cycles\": {:.6}",
            r.latency_ci95_cycles
        );
        json.push_str(if i + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("wrote {out_path}");
    Ok(())
}
