//! # minnet-partition
//!
//! Network partitionability and traffic-localization analysis (paper §4).
//!
//! When a parallel machine is space-shared, each job gets a *cluster* of
//! processors. The question is whether the network can be carved up with
//! the processors: does traffic inside one cluster ever touch a channel
//! that another cluster needs (**contention-freedom**), and does a cluster
//! of `c` nodes get exactly `c` channels between adjacent stages
//! (**channel balance**)?
//!
//! The paper proves:
//!
//! * **Lemma 1 / Theorem 2** — a *cube* unidirectional MIN partitions into
//!   contention-free, channel-balanced k-ary cubes, and (for `k = 2^j`)
//!   even binary cubes;
//! * **Theorem 3** — a *butterfly* unidirectional MIN may not: clusterings
//!   either shrink the channel count (channel-reduced, Fig. 15a) or share
//!   channels between clusters (channel-shared, Fig. 15b);
//! * **Theorem 4** — a butterfly *BMIN* partitions into contention-free,
//!   channel-balanced *base* cubes.
//!
//! This crate verifies all of these mechanically: [`unidir`] walks the
//!   unique destination-tag paths of every intra-cluster pair;
//!   [`bmin`] takes the union over all turnaround paths. Both report
//!   per-level channel usage, cross-cluster sharing, and balance — the
//!   numbers behind Figs. 14 and 15.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bmin;
pub mod lemma;
pub mod unidir;

pub use bmin::BminPartitionAnalysis;
pub use lemma::cube_entering_position;
pub use unidir::UnidirPartitionAnalysis;
