//! The symbolic channel addresses from the proof of Lemma 1.
//!
//! For a cube MIN, the proof tracks the wire position a packet from `S` to
//! `D` occupies when *entering* each stage:
//!
//! * entering `G_0` (after the perfect shuffle): `s_{n-2} … s_0 s_{n-1}`;
//! * entering `G_i`, `1 ≤ i ≤ n-1` (after `β_{n-i}`):
//!   `d_{n-1} … d_{n-i} s_{n-i-2} … s_0 s_{n-i-1}`.
//!
//! As the packet advances, source digits are replaced by destination digits
//! one per stage — which is exactly why fixed digits of a cube cluster stay
//! fixed in the channel address and clusters never collide (Lemma 1).

use minnet_topology::{Geometry, NodeAddr};

/// The wire position (0..N) a packet `s → d` occupies when entering stage
/// `stage` of a **cube** MIN, from the Lemma 1 closed form.
pub fn cube_entering_position(g: &Geometry, s: NodeAddr, d: NodeAddr, stage: u32) -> u32 {
    let n = g.n();
    assert!(stage < n);
    // Digits of the position, least significant first.
    let mut digits = vec![0u32; n as usize];
    if stage == 0 {
        // s_{n-2} … s_0 s_{n-1}: digit 0 = s_{n-1}; digit j (>0) = s_{j-1}.
        digits[0] = g.digit(s, n - 1);
        for j in 1..n {
            digits[j as usize] = g.digit(s, j - 1);
        }
    } else {
        // d_{n-1} … d_{n-stage} s_{n-stage-2} … s_0 s_{n-stage-1}
        // MSB-first: stage digits of d, then the s digits below position
        // n-stage-1 (excluding s_{n-stage-1}), then s_{n-stage-1} last.
        digits[0] = g.digit(s, n - stage - 1);
        // Positions 1 ..= n-1-stage hold s_{0} … s_{n-stage-2}.
        for j in 0..n - 1 - stage {
            digits[(j + 1) as usize] = g.digit(s, j);
        }
        // Top `stage` digits hold d_{n-stage} … d_{n-1}.
        for j in 0..stage {
            digits[(n - stage + j) as usize] = g.digit(d, n - stage + j);
        }
    }
    g.from_digits(&digits).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnet_topology::unidir::unique_path_positions;
    use minnet_topology::UnidirKind;

    #[test]
    fn closed_form_matches_walked_paths() {
        // The Lemma 1 formulas agree with an explicit walk of the unique
        // destination-tag path, for every pair and several geometries.
        for g in [
            Geometry::new(2, 3),
            Geometry::new(2, 4),
            Geometry::new(4, 2),
            Geometry::new(4, 3),
        ] {
            for s in g.addresses() {
                for d in g.addresses() {
                    let path = unique_path_positions(&g, UnidirKind::Cube, s, d);
                    for stage in 0..g.n() {
                        let (lvl, pos) = path[stage as usize];
                        assert_eq!(lvl, stage);
                        assert_eq!(
                            cube_entering_position(&g, s, d, stage),
                            pos,
                            "{s}→{d} stage {stage} in {g:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn digit_substitution_property() {
        // Lemma 1's key step: between consecutive stages exactly one source
        // digit is replaced by the corresponding destination digit, so the
        // multiset {digits fixed by a cube cluster} is preserved.
        let g = Geometry::new(4, 3);
        let s = g.parse_addr("213").unwrap();
        let d = g.parse_addr("030").unwrap();
        // Entering G0: s1 s0 s2 = "132"
        assert_eq!(
            g.format_addr(minnet_topology::NodeAddr(cube_entering_position(&g, s, d, 0))),
            "132"
        );
        // Entering G1: d2 s0 s1 = "031"
        assert_eq!(
            g.format_addr(minnet_topology::NodeAddr(cube_entering_position(&g, s, d, 1))),
            "031"
        );
        // Entering G2: d2 d1 s0 = "033"
        assert_eq!(
            g.format_addr(minnet_topology::NodeAddr(cube_entering_position(&g, s, d, 2))),
            "033"
        );
    }
}
