//! Channel-usage analysis for unidirectional MIN partitions.
//!
//! For every ordered intra-cluster pair we walk the unique destination-tag
//! path and record which wire position each connection level contributes.
//! From the per-cluster position sets we decide contention-freedom and
//! channel balance — mechanising Lemma 1, Theorems 2 and 3, and the Fig.
//! 14/15 examples.

use minnet_topology::unidir::unique_path_positions;
use minnet_topology::{Geometry, NodeAddr, UnidirKind};
use std::collections::BTreeSet;

/// Per-cluster, per-level channel usage of a unidirectional MIN.
#[derive(Clone, Debug)]
pub struct UnidirPartitionAnalysis {
    geometry: Geometry,
    kind: UnidirKind,
    cluster_sizes: Vec<usize>,
    /// `positions[c][level]` = wire positions used by cluster `c` at that
    /// connection level (`0ⁿ` through `n`).
    positions: Vec<Vec<BTreeSet<u32>>>,
}

impl UnidirPartitionAnalysis {
    /// Analyse intra-cluster traffic for the given clusters (member lists
    /// of node ids; clusters of fewer than two nodes contribute nothing).
    pub fn analyze(g: Geometry, kind: UnidirKind, clusters: &[Vec<u32>]) -> Self {
        let levels = (g.n() + 1) as usize;
        let mut positions =
            vec![vec![BTreeSet::new(); levels]; clusters.len()];
        for (ci, members) in clusters.iter().enumerate() {
            for &s in members {
                for &d in members {
                    if s == d {
                        continue;
                    }
                    for (level, pos) in
                        unique_path_positions(&g, kind, NodeAddr(s), NodeAddr(d))
                    {
                        positions[ci][level as usize].insert(pos);
                    }
                }
            }
        }
        UnidirPartitionAnalysis {
            geometry: g,
            kind,
            cluster_sizes: clusters.iter().map(Vec::len).collect(),
            positions,
        }
    }

    /// The analysed wiring.
    pub fn kind(&self) -> UnidirKind {
        self.kind
    }

    /// Number of channels cluster `c` uses at `level`.
    pub fn channels_used(&self, cluster: usize, level: u32) -> usize {
        self.positions[cluster][level as usize].len()
    }

    /// Positions used by two or more clusters, as `(level, position,
    /// clusters)` — empty iff the partitioning is contention-free.
    pub fn shared_positions(&self) -> Vec<(u32, u32, Vec<usize>)> {
        let mut shared = Vec::new();
        let levels = self.geometry.n() + 1;
        for level in 0..levels {
            let mut owner: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
            for (ci, per_level) in self.positions.iter().enumerate() {
                for &p in &per_level[level as usize] {
                    owner.entry(p).or_default().push(ci);
                }
            }
            for (p, cs) in owner {
                if cs.len() > 1 {
                    shared.push((level, p, cs));
                }
            }
        }
        shared
    }

    /// Whether no channel is used by two clusters.
    pub fn is_contention_free(&self) -> bool {
        self.shared_positions().is_empty()
    }

    /// Whether cluster `c` gets exactly `|c|` channels at every connection
    /// level (the paper's channel-balanced allocation).
    pub fn is_channel_balanced(&self, cluster: usize) -> bool {
        let size = self.cluster_sizes[cluster];
        if size < 2 {
            return true; // a singleton cluster sends no traffic
        }
        (0..=self.geometry.n())
            .all(|level| self.channels_used(cluster, level) == size)
    }

    /// Levels at which cluster `c` has fewer channels than nodes — the
    /// "channel-reduced" degradation of Fig. 15a.
    pub fn reduced_levels(&self, cluster: usize) -> Vec<(u32, usize)> {
        let size = self.cluster_sizes[cluster];
        (0..=self.geometry.n())
            .filter_map(|level| {
                let used = self.channels_used(cluster, level);
                (used < size).then_some((level, used))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnet_topology::{BitCube, CubeSpec};

    fn bitcube_clusters(g: &Geometry, patterns: &[&str]) -> Vec<Vec<u32>> {
        patterns
            .iter()
            .map(|p| {
                BitCube::parse(g, p)
                    .unwrap()
                    .members(g)
                    .into_iter()
                    .map(|a| a.0)
                    .collect()
            })
            .collect()
    }

    fn cube_clusters(g: &Geometry, patterns: &[&str]) -> Vec<Vec<u32>> {
        patterns
            .iter()
            .map(|p| {
                CubeSpec::parse(g, p)
                    .unwrap()
                    .members(g)
                    .into_iter()
                    .map(|a| a.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn fig14_cube_min_binary_clusters() {
        // Fig. 14: 8-node cube MIN, clusters 0XX (4 nodes), 1X0, 1X1 (2
        // each): contention-free and channel-balanced.
        let g = Geometry::new(2, 3);
        let clusters = bitcube_clusters(&g, &["0XX", "1X0", "1X1"]);
        let a = UnidirPartitionAnalysis::analyze(g, UnidirKind::Cube, &clusters);
        assert!(a.is_contention_free());
        for c in 0..3 {
            assert!(a.is_channel_balanced(c), "cluster {c}");
        }
        assert_eq!(a.channels_used(0, 1), 4);
        assert_eq!(a.channels_used(1, 2), 2);
    }

    #[test]
    fn theorem2_cube_min_exhaustive_binary_partitions() {
        // Every partition of the 8-node cube MIN into the 4+2+2 binary
        // cube shapes with one fixed bit + two fixed bits is contention-
        // free and balanced; spot-check several k=4 partitions too.
        let g = Geometry::new(2, 3);
        for big in ["0XX", "X0X", "XX0", "1XX", "X1X", "XX1"] {
            // Complement of `big` splits into two 2-node cubes by fixing
            // one more bit.
            let flip = |c: char| if c == '0' { '1' } else { '0' };
            let bigc: Vec<char> = big.chars().collect();
            let fixed_idx = bigc.iter().position(|&c| c != 'X').unwrap();
            let mut other: Vec<char> = bigc.clone();
            other[fixed_idx] = flip(bigc[fixed_idx]);
            let free_idx = (0..3).find(|&i| i != fixed_idx).unwrap();
            let mut c1: Vec<char> = other.clone();
            c1[free_idx] = '0';
            let mut c2: Vec<char> = other.clone();
            c2[free_idx] = '1';
            let pats: Vec<String> = vec![
                big.to_string(),
                c1.into_iter().collect(),
                c2.into_iter().collect(),
            ];
            let refs: Vec<&str> = pats.iter().map(String::as_str).collect();
            let clusters = bitcube_clusters(&g, &refs);
            let a = UnidirPartitionAnalysis::analyze(g, UnidirKind::Cube, &clusters);
            assert!(a.is_contention_free(), "{pats:?}");
            for c in 0..3 {
                assert!(a.is_channel_balanced(c), "{pats:?} cluster {c}");
            }
        }
    }

    #[test]
    fn theorem2_k4_digit_cubes() {
        // The paper's cluster-16 partition 0XX..3XX on the 64-node cube
        // MIN: channel-balanced (16 channels per level per cluster).
        let g = Geometry::new(4, 3);
        let clusters = cube_clusters(&g, &["0XX", "1XX", "2XX", "3XX"]);
        let a = UnidirPartitionAnalysis::analyze(g, UnidirKind::Cube, &clusters);
        assert!(a.is_contention_free());
        for c in 0..4 {
            assert!(a.is_channel_balanced(c));
            for level in 0..=3 {
                assert_eq!(a.channels_used(c, level), 16);
            }
        }
    }

    #[test]
    fn theorem2_nonbase_cube_also_works_on_cube_min() {
        // A cube cluster with free digits in *any* position partitions the
        // cube MIN cleanly — e.g. X1X / X0X on 8 nodes.
        let g = Geometry::new(2, 3);
        let clusters = bitcube_clusters(&g, &["X1X", "X0X"]);
        let a = UnidirPartitionAnalysis::analyze(g, UnidirKind::Cube, &clusters);
        assert!(a.is_contention_free());
        assert!(a.is_channel_balanced(0));
        assert!(a.is_channel_balanced(1));
    }

    #[test]
    fn fig15a_butterfly_channel_reduced() {
        // Fig. 15a: butterfly MIN with clusters 0XX, 10X, 11X is
        // contention-free but the channel count drops below the cluster
        // size at some stages.
        let g = Geometry::new(2, 3);
        let clusters = bitcube_clusters(&g, &["0XX", "10X", "11X"]);
        let a = UnidirPartitionAnalysis::analyze(g, UnidirKind::Butterfly, &clusters);
        assert!(a.is_contention_free());
        // The 4-node cluster is reduced to 2 channels somewhere ("the
        // number of channels is reduced to half in some stages").
        let reduced = a.reduced_levels(0);
        assert!(!reduced.is_empty());
        assert!(reduced.iter().any(|&(_, used)| used == 2));
        assert!(!a.is_channel_balanced(0));
    }

    #[test]
    fn fig15b_butterfly_channel_shared() {
        // Fig. 15b: clusters XX0 and XX1 share channels ("both clusters
        // share the use of eight channels").
        let g = Geometry::new(2, 3);
        let clusters = bitcube_clusters(&g, &["XX0", "XX1"]);
        let a = UnidirPartitionAnalysis::analyze(g, UnidirKind::Butterfly, &clusters);
        assert!(!a.is_contention_free());
        let shared = a.shared_positions();
        // All eight wire positions are shared at each of the two interior
        // connection levels (the paper counts one level: "both clusters
        // share the use of eight channels").
        for level in [1u32, 2] {
            assert_eq!(
                shared.iter().filter(|&&(l, _, _)| l == level).count(),
                8,
                "shared at level {level}: {shared:?}"
            );
        }
        assert_eq!(shared.len(), 16);
    }

    #[test]
    fn theorem3_butterfly_cluster16_is_reduced() {
        // The evaluation's channel-reduced clustering: 0XX..3XX on the
        // 64-node butterfly MIN — 16-node clusters squeezed to 4 channels.
        let g = Geometry::new(4, 3);
        let clusters = cube_clusters(&g, &["0XX", "1XX", "2XX", "3XX"]);
        let a = UnidirPartitionAnalysis::analyze(g, UnidirKind::Butterfly, &clusters);
        assert!(a.is_contention_free());
        let reduced = a.reduced_levels(0);
        assert!(reduced.iter().any(|&(_, used)| used == 4),
            "expected a 16→4 reduction, got {reduced:?}");
    }

    #[test]
    fn theorem3_butterfly_cluster16_shared() {
        // The channel-shared clustering XX0..XX3: clusters overlap on many
        // channels ("the number of channels is increased from 16 to 64").
        let g = Geometry::new(4, 3);
        let clusters = cube_clusters(&g, &["XX0", "XX1", "XX2", "XX3"]);
        let a = UnidirPartitionAnalysis::analyze(g, UnidirKind::Butterfly, &clusters);
        assert!(!a.is_contention_free());
        // Each cluster spreads over all 64 channels at some level.
        let max_used = (0..=3)
            .map(|l| a.channels_used(0, l))
            .max()
            .unwrap();
        assert_eq!(max_used, 64);
    }

    #[test]
    fn butterfly_lsd_clusters_on_cube_min_are_not_balanced() {
        // The partitionability is a property of the *wiring*, not of the
        // clusters: LSD-fixed clusters misbehave on the cube MIN too
        // (they are k-ary cubes, so they stay contention-free by Lemma 1,
        // but the free-digit positions still shuffle channel counts
        // around — verify they remain balanced, per Lemma 1's full claim).
        let g = Geometry::new(4, 3);
        let clusters = cube_clusters(&g, &["XX0", "XX1", "XX2", "XX3"]);
        let a = UnidirPartitionAnalysis::analyze(g, UnidirKind::Cube, &clusters);
        assert!(a.is_contention_free());
        for c in 0..4 {
            assert!(a.is_channel_balanced(c));
        }
    }

    #[test]
    fn sec6_omega_partitions_like_the_cube() {
        // §6: "the Omega network and the cube network have the same
        // network partitionability" — binary cubes stay contention-free
        // and channel-balanced.
        let g = Geometry::new(2, 3);
        let clusters = bitcube_clusters(&g, &["0XX", "1X0", "1X1"]);
        let a = UnidirPartitionAnalysis::analyze(g, UnidirKind::Omega, &clusters);
        assert!(a.is_contention_free());
        for c in 0..3 {
            assert!(a.is_channel_balanced(c), "cluster {c}");
        }
        // And the k=4 cluster-16 partition.
        let g4 = Geometry::new(4, 3);
        let c16 = cube_clusters(&g4, &["0XX", "1XX", "2XX", "3XX"]);
        let a4 = UnidirPartitionAnalysis::analyze(g4, UnidirKind::Omega, &c16);
        assert!(a4.is_contention_free());
        for c in 0..4 {
            assert!(a4.is_channel_balanced(c));
        }
    }

    #[test]
    fn sec6_baseline_partitions_like_the_butterfly() {
        // §6: "the baseline network and the butterfly network have a
        // similar network partitionability" — MSD-fixed clusters lose
        // channels (channel-reduced), exactly as in Fig. 15a.
        let g = Geometry::new(4, 3);
        let clusters = cube_clusters(&g, &["0XX", "1XX", "2XX", "3XX"]);
        let a = UnidirPartitionAnalysis::analyze(g, UnidirKind::Baseline, &clusters);
        assert!(
            !(0..4).all(|c| a.is_channel_balanced(c)),
            "baseline must not be channel-balanced for MSD clusters"
        );
        let reduced = a.reduced_levels(0);
        assert!(
            reduced.iter().any(|&(_, used)| used < 16),
            "expected a channel reduction, got {reduced:?}"
        );
    }

    #[test]
    fn singleton_clusters_are_trivially_fine() {
        let g = Geometry::new(2, 3);
        let clusters: Vec<Vec<u32>> = (0..8).map(|n| vec![n]).collect();
        let a = UnidirPartitionAnalysis::analyze(g, UnidirKind::Butterfly, &clusters);
        assert!(a.is_contention_free());
        for c in 0..8 {
            assert!(a.is_channel_balanced(c));
            assert_eq!(a.channels_used(c, 0), 0);
        }
    }
}
