//! Channel-usage analysis for BMIN partitions (Theorem 4).
//!
//! The BMIN offers `k^t` routing paths per pair, so "channels used by a
//! cluster" means the union over *all* turnaround paths of all
//! intra-cluster pairs. Theorem 4: a butterfly BMIN partitions into
//! contention-free, channel-balanced disjoint **base** k-ary cubes —
//! intra-cluster traffic of a base `m`-cube only touches levels `0..m`,
//! using exactly `k^m` channels per level per direction, and different
//! base cubes touch disjoint channels. Non-base cubes, by contrast, share
//! channels (the §4 closing remark).

use minnet_routing::{enumerate_paths, RouteLogic};
use minnet_topology::{ChannelId, Direction, NetworkGraph};
use std::collections::BTreeSet;

/// Per-cluster channel usage of a butterfly BMIN.
#[derive(Clone, Debug)]
pub struct BminPartitionAnalysis {
    cluster_sizes: Vec<usize>,
    /// `channels[c]` = every channel some turnaround path of cluster `c`
    /// can use.
    channels: Vec<BTreeSet<ChannelId>>,
    /// `(level, dir)` histogram per cluster.
    per_level: Vec<Vec<(u8, Direction, usize)>>,
}

impl BminPartitionAnalysis {
    /// Analyse intra-cluster traffic of the given clusters on a BMIN.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not bidirectional.
    pub fn analyze(net: &NetworkGraph, clusters: &[Vec<u32>]) -> Self {
        assert!(net.kind.is_bidirectional(), "BMIN analysis needs a BMIN");
        let mut channels = vec![BTreeSet::new(); clusters.len()];
        for (ci, members) in clusters.iter().enumerate() {
            for &s in members {
                for &d in members {
                    if s == d {
                        continue;
                    }
                    for path in enumerate_paths(net, RouteLogic::Turnaround, s, d) {
                        channels[ci].extend(path);
                    }
                }
            }
        }
        let per_level = channels
            .iter()
            .map(|set| {
                let mut map: std::collections::BTreeMap<(u8, bool), usize> = Default::default();
                for &c in set {
                    let ch = net.channel(c);
                    *map.entry((ch.level, ch.dir == Direction::Forward))
                        .or_default() += 1;
                }
                map.into_iter()
                    .map(|((lvl, fwd), n)| {
                        (
                            lvl,
                            if fwd {
                                Direction::Forward
                            } else {
                                Direction::Backward
                            },
                            n,
                        )
                    })
                    .collect()
            })
            .collect();
        BminPartitionAnalysis {
            cluster_sizes: clusters.iter().map(Vec::len).collect(),
            channels,
            per_level,
        }
    }

    /// Channels used by cluster `c` at `(level, dir)`.
    pub fn channels_used(&self, cluster: usize, level: u8, dir: Direction) -> usize {
        self.per_level[cluster]
            .iter()
            .find(|&&(l, d, _)| l == level && d == dir)
            .map(|&(_, _, n)| n)
            .unwrap_or(0)
    }

    /// Highest connection level cluster `c` touches, if any.
    pub fn max_level(&self, cluster: usize) -> Option<u8> {
        self.per_level[cluster].iter().map(|&(l, _, _)| l).max()
    }

    /// Channels used by more than one cluster.
    pub fn shared_channels(&self) -> Vec<ChannelId> {
        let mut counts: std::collections::BTreeMap<ChannelId, usize> = Default::default();
        for set in &self.channels {
            for &c in set {
                *counts.entry(c).or_default() += 1;
            }
        }
        counts
            .into_iter()
            .filter_map(|(c, n)| (n > 1).then_some(c))
            .collect()
    }

    /// Whether no channel is shared between clusters.
    pub fn is_contention_free(&self) -> bool {
        self.shared_channels().is_empty()
    }

    /// Theorem 4's channel balance: at every level the cluster touches, it
    /// uses exactly `|cluster|` channel *pairs* (one forward + one
    /// backward set of that size).
    pub fn is_channel_balanced(&self, cluster: usize) -> bool {
        let size = self.cluster_sizes[cluster];
        if size < 2 {
            return true;
        }
        let Some(max) = self.max_level(cluster) else {
            return true;
        };
        (0..=max).all(|lvl| {
            self.channels_used(cluster, lvl, Direction::Forward) == size
                && self.channels_used(cluster, lvl, Direction::Backward) == size
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnet_topology::{build_bmin, CubeSpec, Geometry};

    fn cube_clusters(g: &Geometry, patterns: &[&str]) -> Vec<Vec<u32>> {
        patterns
            .iter()
            .map(|p| {
                CubeSpec::parse(g, p)
                    .unwrap()
                    .members(g)
                    .into_iter()
                    .map(|a| a.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn theorem4_base_cubes_are_clean() {
        // Base k-ary cubes on the butterfly BMIN: contention-free,
        // channel-balanced, and locality-preserving (levels above m-1 are
        // untouched).
        let g = Geometry::new(4, 3);
        let net = build_bmin(g);
        let clusters = cube_clusters(&g, &["0XX", "1XX", "2XX", "3XX"]);
        let a = BminPartitionAnalysis::analyze(&net, &clusters);
        assert!(a.is_contention_free());
        for c in 0..4 {
            assert!(a.is_channel_balanced(c), "cluster {c}");
            // 16-node base 2-cubes turn at stage ≤ 1 ⇒ max level 1.
            assert_eq!(a.max_level(c), Some(1));
            assert_eq!(a.channels_used(c, 0, Direction::Forward), 16);
            assert_eq!(a.channels_used(c, 1, Direction::Backward), 16);
            assert_eq!(a.channels_used(c, 2, Direction::Forward), 0);
        }
    }

    #[test]
    fn theorem4_k2_base_cubes() {
        let g = Geometry::new(2, 4);
        let net = build_bmin(g);
        let clusters = cube_clusters(&g, &["00XX", "01XX", "10XX", "11XX"]);
        let a = BminPartitionAnalysis::analyze(&net, &clusters);
        assert!(a.is_contention_free());
        for c in 0..4 {
            assert!(a.is_channel_balanced(c));
            assert_eq!(a.max_level(c), Some(1));
        }
    }

    #[test]
    fn non_base_cubes_share_channels() {
        // §4's closing remark: non-base cubes have FirstDifference up to
        // t, can spread over k^t channels, and clusters then share — e.g.
        // LSD-fixed clusters on the 16-node k=2 BMIN.
        let g = Geometry::new(2, 4);
        let net = build_bmin(g);
        let clusters = cube_clusters(&g, &["XXX0", "XXX1"]);
        let a = BminPartitionAnalysis::analyze(&net, &clusters);
        assert!(!a.is_contention_free());
        assert!(!a.shared_channels().is_empty());
        // Both clusters climb to the top of the tree.
        assert_eq!(a.max_level(0), Some((g.n() - 1) as u8));
    }

    #[test]
    fn unbalanced_mixed_partition_detected() {
        // A mixed base partition still works: 0XX, 10X, 11X … but at k=2
        // with 8 nodes: 0XX (4 nodes, levels ≤1), 10X and 11X (2 nodes,
        // level 0 only).
        let g = Geometry::new(2, 3);
        let net = build_bmin(g);
        let clusters = cube_clusters(&g, &["0XX", "10X", "11X"]);
        let a = BminPartitionAnalysis::analyze(&net, &clusters);
        assert!(a.is_contention_free());
        for c in 0..3 {
            assert!(a.is_channel_balanced(c), "cluster {c}");
        }
        assert_eq!(a.max_level(0), Some(1));
        assert_eq!(a.max_level(1), Some(0));
    }

    #[test]
    #[should_panic(expected = "needs a BMIN")]
    fn rejects_unidirectional_networks() {
        let g = Geometry::new(2, 3);
        let net = minnet_topology::build_unidir(g, minnet_topology::UnidirKind::Cube, 1);
        let _ = BminPartitionAnalysis::analyze(&net, &[vec![0, 1]]);
    }
}
