//! Exhaustive partitionability sweeps: Theorems 2 and 4 quantified over
//! *every* binary-cube partition of small machines, not just the paper's
//! examples.

use minnet_partition::{BminPartitionAnalysis, UnidirPartitionAnalysis};
use minnet_topology::{build_bmin, BitCube, Geometry, UnidirKind};

/// All partitions of the 3-bit address space into binary cubes, generated
/// by recursive splitting (every cube either stays whole or splits on one
/// of its free bits). Includes the trivial whole-machine partition.
fn all_bitcube_partitions(g: &Geometry) -> Vec<Vec<BitCube>> {
    fn expand(g: &Geometry, cube: BitCube, out: &mut Vec<Vec<BitCube>>) {
        // Option 1: keep whole.
        let mut results = vec![vec![cube]];
        // Option 2: split on each free bit.
        let nbits = g.n() * g.k().trailing_zeros();
        let pat = cube.pattern();
        for (pos, ch) in pat.chars().enumerate() {
            if ch != 'X' {
                continue;
            }
            let bit = nbits as usize - 1 - pos;
            let mut zero = pat.clone();
            zero.replace_range(pos..pos + 1, "0");
            let mut one = pat.clone();
            one.replace_range(pos..pos + 1, "1");
            let _ = bit;
            let mut zs = Vec::new();
            expand(g, BitCube::parse(g, &zero).unwrap(), &mut zs);
            let mut os = Vec::new();
            expand(g, BitCube::parse(g, &one).unwrap(), &mut os);
            for z in &zs {
                for o in &os {
                    let mut combined = z.clone();
                    combined.extend_from_slice(o);
                    results.push(combined);
                }
            }
        }
        out.extend(results);
    }
    let nbits = g.n() * g.k().trailing_zeros();
    let whole: String = std::iter::repeat_n('X', nbits as usize).collect();
    let mut out = Vec::new();
    expand(g, BitCube::parse(g, &whole).unwrap(), &mut out);
    // Deduplicate (different split orders can produce the same partition).
    let mut seen = std::collections::BTreeSet::new();
    out.retain(|p| {
        let mut key: Vec<String> = p.iter().map(BitCube::pattern).collect();
        key.sort();
        seen.insert(key)
    });
    out
}

fn members(g: &Geometry, p: &[BitCube]) -> Vec<Vec<u32>> {
    p.iter()
        .map(|c| c.members(g).iter().map(|a| a.0).collect())
        .collect()
}

/// Theorem 2 exhaustively: EVERY binary-cube partition of the 8-node cube
/// MIN is contention-free and channel-balanced.
#[test]
fn theorem2_holds_for_every_binary_partition() {
    let g = Geometry::new(2, 3);
    let partitions = all_bitcube_partitions(&g);
    assert!(partitions.len() > 50, "only {} partitions generated", partitions.len());
    for p in &partitions {
        let clusters = members(&g, p);
        let a = UnidirPartitionAnalysis::analyze(g, UnidirKind::Cube, &clusters);
        assert!(a.is_contention_free(), "partition {p:?}");
        for c in 0..clusters.len() {
            assert!(a.is_channel_balanced(c), "partition {p:?} cluster {c}");
        }
    }
}

/// The same exhaustive sweep on the Omega network (the §6 claim that it
/// shares the cube's partitionability).
#[test]
fn omega_matches_cube_on_every_binary_partition() {
    let g = Geometry::new(2, 3);
    for p in all_bitcube_partitions(&g) {
        let clusters = members(&g, &p);
        let a = UnidirPartitionAnalysis::analyze(g, UnidirKind::Omega, &clusters);
        assert!(a.is_contention_free(), "partition {p:?}");
        for c in 0..clusters.len() {
            assert!(a.is_channel_balanced(c), "partition {p:?} cluster {c}");
        }
    }
}

/// The butterfly MIN, by contrast, fails balance (or would share) for
/// many of those partitions — Theorem 3 is not an isolated example.
#[test]
fn butterfly_fails_on_many_partitions() {
    let g = Geometry::new(2, 3);
    let mut bad = 0usize;
    let mut total = 0usize;
    for p in all_bitcube_partitions(&g) {
        if p.len() < 2 {
            continue; // the whole machine is trivially fine
        }
        total += 1;
        let clusters = members(&g, &p);
        let a = UnidirPartitionAnalysis::analyze(g, UnidirKind::Butterfly, &clusters);
        let clean = a.is_contention_free()
            && (0..clusters.len()).all(|c| a.is_channel_balanced(c));
        if !clean {
            bad += 1;
        }
    }
    assert!(
        bad * 2 > total,
        "only {bad} of {total} butterfly partitions degrade"
    );
}

/// Theorem 4 exhaustively over *base* cube partitions of the 16-node
/// BMIN: recursive MSD splits are contention-free and channel-balanced.
#[test]
fn theorem4_base_partitions_of_the_16_node_bmin() {
    let g = Geometry::new(2, 4);
    let net = build_bmin(g);
    // Base partitions = recursive splits always on the most significant
    // free bit: for each depth vector, the set of prefixes. Enumerate
    // partitions into equal-size base cubes of every size.
    for m in 0..=3u32 {
        let fixed = g.n() - m; // fixed MSB bits
        let clusters: Vec<Vec<u32>> = (0..1u32 << fixed)
            .map(|v| {
                let size = 1u32 << m;
                (v * size..(v + 1) * size).collect()
            })
            .collect();
        let a = BminPartitionAnalysis::analyze(&net, &clusters);
        assert!(a.is_contention_free(), "m = {m}");
        for c in 0..clusters.len() {
            assert!(a.is_channel_balanced(c), "m = {m} cluster {c}");
        }
    }
}
