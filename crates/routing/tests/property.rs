//! Property tests for the routing layer across random geometries.

use minnet_routing::{
    enumerate_paths, shortest_path_count, shortest_path_length, RouteLogic, RouteTable,
};
use minnet_topology::{
    build_bmin, build_unidir, Direction, Geometry, NetworkGraph, NodeAddr, UnidirKind,
};
use proptest::prelude::*;

fn geometry() -> impl Strategy<Value = Geometry> {
    prop_oneof![
        Just(Geometry::new(2, 2)),
        Just(Geometry::new(2, 3)),
        Just(Geometry::new(2, 4)),
        Just(Geometry::new(4, 2)),
        Just(Geometry::new(4, 3)),
        Just(Geometry::new(8, 2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn turnaround_paths_all_reach_and_count(
        g in geometry(),
        raw_s in 0u32..100_000,
        raw_d in 0u32..100_000,
    ) {
        let s = raw_s % g.nodes();
        let d = raw_d % g.nodes();
        prop_assume!(s != d);
        let net = build_bmin(g);
        let paths = enumerate_paths(&net, RouteLogic::Turnaround, s, d);
        // Theorem 1 in full generality.
        prop_assert_eq!(
            paths.len() as u64,
            shortest_path_count(&g, NodeAddr(s), NodeAddr(d)).unwrap()
        );
        let want_len = shortest_path_length(&g, true, NodeAddr(s), NodeAddr(d)).unwrap();
        for p in &paths {
            prop_assert_eq!(p.len() as u32, want_len);
            prop_assert_eq!(*p.last().unwrap(), net.eject(d));
            // Forward prefix then backward suffix: directions never go
            // back to forward.
            let dirs: Vec<Direction> = p.iter().map(|&c| net.channel(c).dir).collect();
            let first_back = dirs.iter().position(|&x| x == Direction::Backward).unwrap();
            for (i, &dir) in dirs.iter().enumerate() {
                if i < first_back {
                    prop_assert_eq!(dir, Direction::Forward);
                } else {
                    prop_assert_eq!(dir, Direction::Backward);
                }
            }
        }
        // Paths are pairwise distinct.
        let mut sorted = paths.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), paths.len());
    }

    #[test]
    fn destination_tag_is_unique_and_wiring_independent_in_length(
        g in geometry(),
        raw_s in 0u32..100_000,
        raw_d in 0u32..100_000,
        which in 0usize..4,
        dilation in 1u8..3,
    ) {
        let s = raw_s % g.nodes();
        let d = raw_d % g.nodes();
        prop_assume!(s != d);
        let kind = [
            UnidirKind::Cube,
            UnidirKind::Butterfly,
            UnidirKind::Omega,
            UnidirKind::Baseline,
        ][which];
        let net = build_unidir(g, kind, dilation);
        let logic = RouteLogic::for_kind(net.kind);
        let paths = enumerate_paths(&net, logic, s, d);
        // d^(n-1) lane combinations over one port path.
        prop_assert_eq!(paths.len() as u32, u32::from(dilation).pow(g.n() - 1));
        for p in &paths {
            prop_assert_eq!(p.len() as u32, g.n() + 1);
            prop_assert_eq!(*p.last().unwrap(), net.eject(d));
        }
    }

    // The thread-chunked table build is bitwise-identical to the serial
    // build across random network instances and thread counts — including
    // thread counts that exceed or don't divide the destination count.
    #[test]
    fn parallel_table_build_equals_serial(
        g in geometry(),
        which in 0usize..6,
        dilation in 1u8..3,
        threads in 1usize..5,
        ragged in 0usize..3,
    ) {
        let net: NetworkGraph = match which {
            0 => build_unidir(g, UnidirKind::Cube, dilation),
            1 => build_unidir(g, UnidirKind::Butterfly, dilation),
            2 => build_unidir(g, UnidirKind::Omega, dilation),
            3 => build_unidir(g, UnidirKind::Baseline, dilation),
            _ => build_bmin(g),
        };
        let serial = RouteTable::build(&net).unwrap();
        // A small thread count and a deliberately ragged one (odd, larger
        // than most block sizes) to exercise uneven block boundaries.
        let par = RouteTable::build_parallel(&net, threads).unwrap();
        prop_assert_eq!(&serial, &par);
        let ragged_threads = [3usize, 7, g.nodes() as usize + 1][ragged];
        let par = RouteTable::build_parallel(&net, ragged_threads).unwrap();
        prop_assert_eq!(&serial, &par);
    }
}
