//! [`RouteLogic`] — the routing function consumed by the simulation engine.
//!
//! Given the channel over which a worm's header has just arrived, the logic
//! returns every output channel the header may legally request next. Lane
//! and virtual-channel *selection* among these candidates is the engine's
//! allocation policy (the paper uses uniform random choice among the free
//! ones); the logic itself is deterministic.

use crate::turnaround::{turnaround_action, TurnaroundAction};
use minnet_topology::{
    ChannelId, Endpoint, NetworkGraph, NetworkKind, NodeAddr, NodeId, Side, UnidirKind,
};

/// A routing function for one of the paper's network families.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouteLogic {
    /// Destination-tag (self-routing) for unidirectional Delta MINs. At
    /// stage `G_i` the packet leaves through output port `t_i`; with
    /// dilation, every lane of that port is a candidate.
    DestinationTag(UnidirKind),
    /// Turnaround routing for the butterfly BMIN (Fig. 7). Moving forward
    /// below the turn stage, every forward output is a candidate
    /// (adaptivity); the turn and the backward walk are deterministic.
    Turnaround,
}

impl RouteLogic {
    /// The natural routing logic for a network kind.
    pub fn for_kind(kind: NetworkKind) -> RouteLogic {
        match kind {
            NetworkKind::Unidir { wiring, .. } => RouteLogic::DestinationTag(wiring),
            NetworkKind::Bmin => RouteLogic::Turnaround,
        }
    }

    /// Collect into `out` the output channels a header arriving over `at`
    /// may request next, for a packet travelling `src → dst`. `out` is
    /// empty exactly when `at` terminates at the destination node.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `at` terminates at a node other than
    /// `dst` — that would mean the logic previously misrouted.
    pub fn candidates(
        &self,
        net: &NetworkGraph,
        src: NodeId,
        dst: NodeId,
        at: ChannelId,
        out: &mut Vec<ChannelId>,
    ) {
        out.clear();
        let ch = net.channel(at);
        let (sw, side, port) = match ch.dst {
            Endpoint::Node(n) => {
                debug_assert_eq!(n, dst, "worm delivered to the wrong node");
                return;
            }
            Endpoint::Switch { sw, side, port } => (sw, side, port),
        };
        let swd = net.switch(sw);
        let g = &net.geometry;
        match *self {
            RouteLogic::DestinationTag(kind) => {
                debug_assert_eq!(side, Side::Left, "unidirectional inputs are left-side");
                let t = kind.tag_digit(g, NodeAddr(dst), swd.stage as u32);
                out.extend_from_slice(net.out_port(sw, t));
            }
            RouteLogic::Turnaround => {
                let k = g.k();
                match turnaround_action(g, swd.stage as u32, side, NodeAddr(src), NodeAddr(dst)) {
                    TurnaroundAction::ForwardAny => {
                        out.extend_from_slice(net.out_port_span(sw, k, 2 * k));
                    }
                    TurnaroundAction::Turn(p) => {
                        debug_assert_ne!(
                            p as u8, port,
                            "turnaround may not reuse the arrival port (Def. 4)"
                        );
                        out.extend_from_slice(net.out_port(sw, p));
                    }
                    TurnaroundAction::Backward(p) => {
                        out.extend_from_slice(net.out_port(sw, p));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnet_topology::{build_bmin, build_unidir, Geometry};

    /// Walk a worm from src to dst always taking the candidate at
    /// `pick % len`, returning the channel path.
    fn walk(
        net: &NetworkGraph,
        logic: RouteLogic,
        src: NodeId,
        dst: NodeId,
        mut pick: usize,
    ) -> Vec<ChannelId> {
        let mut path = vec![net.inject(src)];
        let mut cands = Vec::new();
        loop {
            logic.candidates(net, src, dst, *path.last().unwrap(), &mut cands);
            if cands.is_empty() {
                return path;
            }
            let c = cands[pick % cands.len()];
            pick = pick.wrapping_mul(2654435761).wrapping_add(1);
            path.push(c);
            assert!(path.len() <= 64, "routing loop detected");
        }
    }

    #[test]
    fn destination_tag_always_delivers() {
        for kind in [UnidirKind::Cube, UnidirKind::Butterfly] {
            let g = Geometry::new(4, 3);
            let net = build_unidir(g, kind, 2);
            let logic = RouteLogic::for_kind(net.kind);
            for s in 0..g.nodes() {
                for d in 0..g.nodes() {
                    if s == d {
                        continue;
                    }
                    for pick in 0..3 {
                        let path = walk(&net, logic, s, d, pick);
                        assert_eq!(path.len() as u32, g.n() + 1);
                        assert_eq!(net.channel(*path.last().unwrap()).dst.node(), Some(d));
                    }
                }
            }
        }
    }

    #[test]
    fn turnaround_always_delivers_with_correct_length() {
        let g = Geometry::new(4, 3);
        let net = build_bmin(g);
        let logic = RouteLogic::Turnaround;
        for s in 0..g.nodes() {
            for d in 0..g.nodes() {
                if s == d {
                    continue;
                }
                let t = g.first_difference(NodeAddr(s), NodeAddr(d)).unwrap();
                for pick in 0..5 {
                    let path = walk(&net, logic, s, d, pick);
                    assert_eq!(path.len() as u32, 2 * (t + 1), "{s}→{d}");
                    assert_eq!(net.channel(*path.last().unwrap()).dst.node(), Some(d));
                }
            }
        }
    }

    #[test]
    fn forward_candidates_have_full_fanout() {
        // Below the turn stage a forward header sees all k forward
        // channels (the BMIN's adaptivity).
        let g = Geometry::new(4, 3);
        let net = build_bmin(g);
        let logic = RouteLogic::Turnaround;
        let mut cands = Vec::new();
        // 0 → 63 has t = 2: at the stage-0 input the header may pick any
        // of the 4 forward channels.
        logic.candidates(&net, 0, 63, net.inject(0), &mut cands);
        assert_eq!(cands.len(), 4);
    }

    #[test]
    fn dilated_candidates_cover_all_lanes() {
        let g = Geometry::new(4, 3);
        let net = build_unidir(g, UnidirKind::Cube, 2);
        let logic = RouteLogic::for_kind(net.kind);
        let mut cands = Vec::new();
        logic.candidates(&net, 0, 63, net.inject(0), &mut cands);
        assert_eq!(cands.len(), 2); // one output port, two lanes
        let a = net.channel(cands[0]);
        let b = net.channel(cands[1]);
        assert_eq!(a.src, b.src);
        assert_ne!(a.lane, b.lane);
    }

    #[test]
    fn candidates_empty_at_destination() {
        let g = Geometry::new(2, 3);
        let net = build_unidir(g, UnidirKind::Cube, 1);
        let logic = RouteLogic::for_kind(net.kind);
        let mut cands = vec![99];
        logic.candidates(&net, 1, 5, net.eject(5), &mut cands);
        assert!(cands.is_empty());
    }
}
