//! Precomputed routing tables: [`RouteLogic`] flattened into a lookup.
//!
//! The paper's networks are *self-routing*: a header's legal next channels
//! depend only on where it is (the channel it arrived over) and where it
//! is going (the destination tag / turnaround digits) — never on the rest
//! of the path. That makes the whole routing function a finite table over
//! `(arrival channel, destination node)`, which [`RouteTable::build`]
//! precomputes once per network so the simulation engine's per-hop routing
//! is a slice lookup instead of re-deriving tag digits or turnaround
//! actions.
//!
//! ## Streaming construction
//!
//! The table is built by *walking* [`RouteLogic`] over every reachable
//! `(channel, destination)` state rather than by re-implementing the
//! routing rules. Per destination, one breadth-first union walk seeded
//! from **every** source's injection channel discovers the reachable
//! channels (recording a representative source per channel — legal because
//! the networks are self-routing, so any reaching source induces the same
//! candidates); the table is then filled in two passes — count, prefix-sum,
//! fill — directly into the final CSR arrays with no intermediate per-cell
//! allocations. Destinations are independent, so [`RouteTable::build_parallel`]
//! chunks them into contiguous blocks across threads; each block writes a
//! disjoint region of `starts`/`cands` at offsets fixed by the count pass,
//! making the result byte-identical for every thread count.
//!
//! [`RouteTable::build_grid`] keeps the original per-(src,dst) walk over an
//! `Option<Vec>` cell grid as a differential oracle: it cross-checks the
//! self-routing property between sources (the streaming build trusts it)
//! and the equivalence tests pin `build ≡ build_grid` on every fixture.
//!
//! Cells are laid out **destination-major** (`cell = dst·nch + channel`):
//! all cells of one destination are contiguous, which is what makes the
//! per-destination parallel fill expressible as disjoint slice borrows.
//! Unreachable cells stay empty and are never queried by the engine.

use crate::logic::RouteLogic;
use minnet_topology::{ChannelId, NetworkGraph, NodeId};

/// Flattened routing function of one network: for every reachable
/// `(arrival channel, destination)` pair, the candidate output channels in
/// exactly the order [`RouteLogic::candidates`] produces them.
///
/// Storage is CSR-style: `starts` has one offset entry per cell plus a
/// terminator, indexing into the shared `cands` pool; cells are
/// destination-major. For the paper's 64-node networks the whole table is
/// a few tens of kilobytes and is immutable after construction — share it
/// freely across sweep threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteTable {
    nodes: u32,
    nch: u32,
    starts: Vec<u32>,
    cands: Vec<ChannelId>,
}

/// Reusable per-thread scratch for the per-destination union walks: the
/// visited stamp, the representative source discovered for each channel,
/// and the BFS frontier. One allocation set per thread for the whole
/// build, regardless of network size or destination count.
struct DstWalk {
    logic: RouteLogic,
    stamp: Vec<u32>,
    rep: Vec<NodeId>,
    gen: u32,
    frontier: Vec<ChannelId>,
    scratch: Vec<ChannelId>,
}

impl DstWalk {
    fn new(net: &NetworkGraph) -> DstWalk {
        let nch = net.num_channels();
        DstWalk {
            logic: RouteLogic::for_kind(net.kind),
            stamp: vec![0; nch],
            rep: vec![0; nch],
            gen: 0,
            frontier: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Walk the union of every source's reachable channels toward `dst`,
    /// stamping each reachable channel with a representative source.
    /// Returns the total candidate count over all reached cells.
    fn walk(&mut self, net: &NetworkGraph, dst: NodeId) -> u64 {
        if self.gen == u32::MAX {
            self.stamp.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
        let gen = self.gen;
        self.frontier.clear();
        for src in 0..net.geometry.nodes() {
            if src == dst {
                continue;
            }
            let inj = net.inject(src);
            if self.stamp[inj as usize] != gen {
                self.stamp[inj as usize] = gen;
                self.rep[inj as usize] = src;
                self.frontier.push(inj);
            }
        }
        let mut total = 0u64;
        while let Some(at) = self.frontier.pop() {
            let rep = self.rep[at as usize];
            self.logic.candidates(net, rep, dst, at, &mut self.scratch);
            total += self.scratch.len() as u64;
            for &c in &self.scratch {
                if self.stamp[c as usize] != gen {
                    self.stamp[c as usize] = gen;
                    self.rep[c as usize] = rep;
                    self.frontier.push(c);
                }
            }
        }
        total
    }

    /// After [`Self::walk`]`(dst)`, re-derive each reached cell's
    /// candidates in ascending channel order and write them into `dst`'s
    /// slice of the final arrays. `starts_row` covers the `nch` cells of
    /// `dst`, `cands_seg` its candidate span, and `base` is the span's
    /// global offset.
    fn emit(
        &mut self,
        net: &NetworkGraph,
        dst: NodeId,
        base: u32,
        starts_row: &mut [u32],
        cands_seg: &mut [ChannelId],
    ) {
        let mut off = 0usize;
        for (ch, start) in starts_row.iter_mut().enumerate() {
            *start = base + off as u32;
            if self.stamp[ch] == self.gen {
                self.logic
                    .candidates(net, self.rep[ch], dst, ch as ChannelId, &mut self.scratch);
                cands_seg[off..off + self.scratch.len()].copy_from_slice(&self.scratch);
                off += self.scratch.len();
            }
        }
        debug_assert_eq!(off, cands_seg.len(), "count and fill walks disagree");
    }
}

/// Contiguous destination range of block `b` of `blocks`.
fn block_bounds(nodes: u32, blocks: usize, b: usize) -> (u32, u32) {
    let lo = (u64::from(nodes) * b as u64 / blocks as u64) as u32;
    let hi = (u64::from(nodes) * (b as u64 + 1) / blocks as u64) as u32;
    (lo, hi)
}

impl RouteTable {
    /// Precompute the routing table for `net` with the streaming
    /// per-destination build (single-threaded). See the module docs; the
    /// result is byte-identical to [`Self::build_grid`] and to
    /// [`Self::build_parallel`] at any thread count.
    ///
    /// # Errors
    ///
    /// Reports a table whose candidate pool would overflow the `u32` CSR
    /// offsets (only reachable beyond about four billion stored
    /// candidates — far past any geometry the cell cap admits).
    pub fn build(net: &NetworkGraph) -> Result<RouteTable, String> {
        RouteTable::build_parallel(net, 1)
    }

    /// [`Self::build`] with the count and fill passes chunked over
    /// contiguous destination blocks on `threads` OS threads (`0` = one
    /// per available core). Deterministic: every destination's cells are
    /// computed independently and land at offsets fixed by the serial
    /// prefix sum, so the output is byte-identical for every `threads`.
    pub fn build_parallel(net: &NetworkGraph, threads: usize) -> Result<RouteTable, String> {
        let nodes = net.geometry.nodes();
        let nch = net.num_channels();
        let ncells = nch * nodes as usize;
        let threads = match threads {
            0 => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            t => t,
        }
        .min(nodes as usize)
        .max(1);

        // Pass 1: per-destination candidate counts.
        let mut dst_total = vec![0u64; nodes as usize];
        if threads <= 1 {
            let mut w = DstWalk::new(net);
            for (dst, slot) in dst_total.iter_mut().enumerate() {
                *slot = w.walk(net, dst as NodeId);
            }
        } else {
            std::thread::scope(|s| {
                let mut rest: &mut [u64] = &mut dst_total;
                for b in 0..threads {
                    let (lo, hi) = block_bounds(nodes, threads, b);
                    let (blk, tail) = rest.split_at_mut((hi - lo) as usize);
                    rest = tail;
                    s.spawn(move || {
                        let mut w = DstWalk::new(net);
                        for (i, slot) in blk.iter_mut().enumerate() {
                            *slot = w.walk(net, lo + i as u32);
                        }
                    });
                }
            });
        }

        // Prefix-sum into per-destination base offsets.
        let total: u64 = dst_total.iter().sum();
        if total > u64::from(u32::MAX) {
            return Err(format!(
                "route table needs {total} candidate slots, overflowing u32 offsets"
            ));
        }
        let mut dst_base = vec![0u32; nodes as usize + 1];
        for (d, &t) in dst_total.iter().enumerate() {
            dst_base[d + 1] = dst_base[d] + t as u32;
        }

        // Pass 2: re-walk each destination and fill its disjoint slice of
        // the final arrays.
        let mut starts = vec![0u32; ncells + 1];
        starts[ncells] = total as u32;
        let mut cands = vec![0 as ChannelId; total as usize];
        if threads <= 1 {
            let mut w = DstWalk::new(net);
            for dst in 0..nodes {
                let (base, hi) = (dst_base[dst as usize], dst_base[dst as usize + 1]);
                w.walk(net, dst);
                w.emit(
                    net,
                    dst,
                    base,
                    &mut starts[dst as usize * nch..(dst as usize + 1) * nch],
                    &mut cands[base as usize..hi as usize],
                );
            }
        } else {
            std::thread::scope(|s| {
                let mut starts_rest: &mut [u32] = &mut starts[..ncells];
                let mut cands_rest: &mut [ChannelId] = &mut cands;
                for b in 0..threads {
                    let (lo, hi) = block_bounds(nodes, threads, b);
                    let (rows, stail) = starts_rest.split_at_mut((hi - lo) as usize * nch);
                    starts_rest = stail;
                    let seg_len = dst_base[hi as usize] - dst_base[lo as usize];
                    let (seg, ctail) = cands_rest.split_at_mut(seg_len as usize);
                    cands_rest = ctail;
                    let dst_base = &dst_base;
                    s.spawn(move || {
                        let mut w = DstWalk::new(net);
                        let block_base = dst_base[lo as usize];
                        for dst in lo..hi {
                            let (base, top) =
                                (dst_base[dst as usize], dst_base[dst as usize + 1]);
                            let i = (dst - lo) as usize;
                            w.walk(net, dst);
                            w.emit(
                                net,
                                dst,
                                base,
                                &mut rows[i * nch..(i + 1) * nch],
                                &mut seg[(base - block_base) as usize
                                    ..(top - block_base) as usize],
                            );
                        }
                    });
                }
            });
        }

        Ok(RouteTable {
            nodes,
            nch: nch as u32,
            starts,
            cands,
        })
    }

    /// The original cell-grid build: one walk per `(src, dst)` pair into a
    /// `Vec<Option<Vec<ChannelId>>>` grid, flattened to CSR at the end.
    /// O(channels × destinations) `Option<Vec>` cells and one heap
    /// allocation per reachable cell — kept as the differential oracle for
    /// the streaming build (and as the *self-routing cross-check*: it
    /// errors if two sources ever disagree about a cell, which the
    /// streaming build takes on trust). Returns the table plus an estimate
    /// of the build's peak heap footprint in bytes, for before/after
    /// accounting in the scale bench.
    ///
    /// # Errors
    ///
    /// Reports a routing inconsistency (two sources disagreeing about the
    /// candidates of the same `(channel, destination)` cell) — impossible
    /// for the self-routing networks this crate models, but checked so a
    /// future routing function that violates the assumption fails loudly
    /// at build time instead of silently mis-simulating.
    pub fn build_grid(net: &NetworkGraph) -> Result<(RouteTable, u64), String> {
        let logic = RouteLogic::for_kind(net.kind);
        let nodes = net.geometry.nodes();
        let nch = net.num_channels();
        let ncells = nch * nodes as usize;

        // Per-cell candidate lists, filled lazily as the walks reach them.
        // Destination-major, like the final layout.
        let mut cells: Vec<Option<Vec<ChannelId>>> = vec![None; ncells];
        // Visited stamp per channel, regenerated per (src, dst) walk.
        let mut stamp = vec![u32::MAX; nch];
        let mut frontier: Vec<ChannelId> = Vec::new();
        let mut scratch: Vec<ChannelId> = Vec::new();

        let mut generation = 0u32;
        for src in 0..nodes {
            for dst in 0..nodes {
                if src == dst {
                    continue;
                }
                frontier.clear();
                frontier.push(net.inject(src));
                stamp[net.inject(src) as usize] = generation;
                while let Some(at) = frontier.pop() {
                    let cell = dst as usize * nch + at as usize;
                    match &cells[cell] {
                        Some(prev) => {
                            // Already filled by an earlier source: the
                            // candidates must agree (self-routing), and the
                            // subtree below was already expanded then.
                            logic.candidates(net, src, dst, at, &mut scratch);
                            if *prev != scratch {
                                return Err(format!(
                                    "routing is not self-routing: channel {at} → node {dst} \
                                     yields {prev:?} from one source but {scratch:?} from {src}"
                                ));
                            }
                            continue;
                        }
                        None => {
                            logic.candidates(net, src, dst, at, &mut scratch);
                            for &c in &scratch {
                                if stamp[c as usize] != generation {
                                    stamp[c as usize] = generation;
                                    frontier.push(c);
                                }
                            }
                            cells[cell] = Some(scratch.clone());
                        }
                    }
                }
                generation = generation.wrapping_add(1);
            }
        }

        // Flatten to CSR (destination-major cell order is the vec order).
        let mut starts = Vec::with_capacity(ncells + 1);
        let total: usize = cells.iter().flatten().map(Vec::len).sum();
        let mut cands = Vec::with_capacity(total);
        for cell in &cells {
            starts.push(cands.len() as u32);
            if let Some(cs) = cell {
                cands.extend_from_slice(cs);
            }
        }
        starts.push(cands.len() as u32);
        // Peak footprint: the cell grid (control + per-cell heap) and the
        // final CSR coexist during the flatten.
        let grid_bytes = ncells as u64 * std::mem::size_of::<Option<Vec<ChannelId>>>() as u64
            + total as u64 * 4;
        let csr_bytes = (starts.len() as u64 + cands.len() as u64) * 4;
        let table = RouteTable {
            nodes,
            nch: nch as u32,
            starts,
            cands,
        };
        Ok((table, grid_bytes + csr_bytes))
    }

    /// The output channels a header arriving over `at` may request next on
    /// its way to `dst` — identical (contents *and* order) to what
    /// [`RouteLogic::candidates`] computes. Empty when `at` terminates at
    /// the destination node, and for `(at, dst)` pairs no legal route ever
    /// reaches.
    #[inline]
    pub fn candidates(&self, at: ChannelId, dst: NodeId) -> &[ChannelId] {
        let (lo, hi) = self.candidate_range(at, dst);
        &self.cands[lo as usize..hi as usize]
    }

    /// The `(lo, hi)` bounds of [`Self::candidates`]' slice within the
    /// flat CSR arena. A `(at, dst)` cell lookup walks a table too large
    /// for L1 on realistic networks; callers whose `(at, dst)` pair is
    /// stable across many queries (a blocked worm re-requesting every
    /// cycle) can cache the bounds and resolve them with
    /// [`Self::resolve_range`] instead.
    #[inline]
    pub fn candidate_range(&self, at: ChannelId, dst: NodeId) -> (u32, u32) {
        let cell = dst as usize * self.nch as usize + at as usize;
        (self.starts[cell], self.starts[cell + 1])
    }

    /// Resolve bounds previously obtained from [`Self::candidate_range`]
    /// on this same table.
    #[inline]
    pub fn resolve_range(&self, lo: u32, hi: u32) -> &[ChannelId] {
        &self.cands[lo as usize..hi as usize]
    }

    /// The fault-masked variant of this table: every candidate list is
    /// filtered down to channels over which the destination is still
    /// **deliverable** under `dead_channel` — alive *and* with a live
    /// continuation all the way to the ejection channel. Filtering by
    /// deliverability (not mere liveness) is what makes the adaptive
    /// networks degrade gracefully: a BMIN up-phase choice or DMIN lane
    /// whose subtree dead-ends at the fault is excluded *before* the worm
    /// commits to it, so a header that can advance can always finish —
    /// and an empty masked candidate list at a non-ejection cell is a
    /// definitive "disconnected from here" signal, not a maybe.
    ///
    /// Candidate order is preserved (the mask only deletes entries), so a
    /// masked table under an all-live mask is candidate-for-candidate the
    /// original — the engine's no-fault RNG stream is untouched. An
    /// all-live mask short-circuits to a plain clone (every candidate of
    /// an unmasked table is deliverable by construction); a faulted mask
    /// pre-counts the surviving candidates so both CSR arrays are
    /// allocated at exactly their final size.
    ///
    /// Deliverability is computed per destination in one transmit-order
    /// pass: the engine's downstream-first channel order visits every
    /// candidate before the channel that requests it.
    ///
    /// # Errors
    ///
    /// Reports a mask whose length does not match the channel count.
    pub fn masked(
        &self,
        net: &NetworkGraph,
        dead_channel: &[bool],
    ) -> Result<RouteTable, String> {
        let nch = net.num_channels();
        if dead_channel.len() != nch {
            return Err(format!(
                "fault mask covers {} channels but the network has {nch}",
                dead_channel.len()
            ));
        }
        if !dead_channel.contains(&true) {
            // Empty-fault fast path: nothing can be masked out.
            return Ok(self.clone());
        }
        let nodes = self.nodes as usize;
        let order = net.transmit_order();
        // deliver[dst * nch + ch] — `dst` can still be reached from the
        // head of `ch`.
        let mut deliver = vec![false; nch * nodes];
        for dst in 0..nodes {
            let drow = &mut deliver[dst * nch..(dst + 1) * nch];
            for &ch in order {
                let chi = ch as usize;
                if dead_channel[chi] {
                    continue;
                }
                let ok = net.eject(dst as NodeId) == ch
                    || self.candidates(ch, dst as NodeId).iter().any(|&c| {
                        debug_assert!(
                            net.channel(c).topo_rank < net.channel(ch).topo_rank,
                            "candidate {c} not downstream of {ch}"
                        );
                        drow[c as usize]
                    });
                drow[chi] = ok;
            }
        }
        // Count the survivors, then fill exactly-sized arrays.
        let mut total = 0usize;
        for dst in 0..nodes {
            let drow = &deliver[dst * nch..(dst + 1) * nch];
            for ch in 0..nch {
                total += self
                    .candidates(ch as ChannelId, dst as NodeId)
                    .iter()
                    .filter(|&&c| drow[c as usize])
                    .count();
            }
        }
        let mut starts = Vec::with_capacity(self.starts.len());
        let mut cands = Vec::with_capacity(total);
        for dst in 0..nodes {
            let drow = &deliver[dst * nch..(dst + 1) * nch];
            for ch in 0..nch {
                starts.push(cands.len() as u32);
                cands.extend(
                    self.candidates(ch as ChannelId, dst as NodeId)
                        .iter()
                        .filter(|&&c| drow[c as usize]),
                );
            }
        }
        starts.push(cands.len() as u32);
        debug_assert_eq!(cands.len(), total);
        Ok(RouteTable {
            nodes: self.nodes,
            nch: self.nch,
            starts,
            cands,
        })
    }

    /// Number of destination nodes the table was built for.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Total stored candidate entries (a size/health metric for benches).
    pub fn len(&self) -> usize {
        self.cands.len()
    }

    /// Whether the table stores no candidates at all (degenerate network).
    pub fn is_empty(&self) -> bool {
        self.cands.is_empty()
    }

    /// Approximate resident size of the table in bytes (both CSR arrays) —
    /// a memory-accounting metric for benches.
    pub fn approx_bytes(&self) -> u64 {
        std::mem::size_of::<Self>() as u64
            + (self.starts.len() as u64 + self.cands.len() as u64) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnet_topology::{build_bmin, build_unidir, Geometry, UnidirKind};

    fn nets() -> Vec<NetworkGraph> {
        let g = Geometry::new(4, 3);
        vec![
            build_unidir(g, UnidirKind::Cube, 1),
            build_unidir(g, UnidirKind::Cube, 2),
            build_unidir(g, UnidirKind::Butterfly, 1),
            build_bmin(g),
        ]
    }

    /// Walk every (src, dst) route with RouteLogic and check the table
    /// answers identically at every reachable channel.
    #[test]
    fn table_matches_logic_on_every_reachable_pair() {
        for net in nets() {
            let logic = RouteLogic::for_kind(net.kind);
            let table = RouteTable::build(&net).unwrap();
            let mut expect = Vec::new();
            let mut frontier = Vec::new();
            for src in 0..net.geometry.nodes() {
                for dst in 0..net.geometry.nodes() {
                    if src == dst {
                        continue;
                    }
                    frontier.clear();
                    frontier.push(net.inject(src));
                    let mut seen = vec![false; net.num_channels()];
                    seen[net.inject(src) as usize] = true;
                    while let Some(at) = frontier.pop() {
                        logic.candidates(&net, src, dst, at, &mut expect);
                        assert_eq!(
                            table.candidates(at, dst),
                            &expect[..],
                            "channel {at} → {dst}"
                        );
                        for &c in &expect {
                            if !seen[c as usize] {
                                seen[c as usize] = true;
                                frontier.push(c);
                            }
                        }
                    }
                }
            }
        }
    }

    /// The streaming build and the Option<Vec>-grid oracle agree byte for
    /// byte on every fixture — the tentpole's bit-identity pin.
    #[test]
    fn streaming_build_equals_grid_oracle() {
        for net in nets() {
            let stream = RouteTable::build(&net).unwrap();
            let (grid, peak) = RouteTable::build_grid(&net).unwrap();
            assert_eq!(stream, grid, "{:?}", net.kind);
            assert!(peak >= stream.approx_bytes(), "grid peak under-estimated");
        }
    }

    /// Thread-chunked builds are byte-identical to the serial build for
    /// every thread count, including counts that don't divide the
    /// destination count.
    #[test]
    fn parallel_build_is_thread_invariant() {
        for net in nets() {
            let serial = RouteTable::build(&net).unwrap();
            for threads in [2usize, 3, 7, 64, 200] {
                let par = RouteTable::build_parallel(&net, threads).unwrap();
                assert_eq!(serial, par, "{:?} threads={threads}", net.kind);
            }
            let auto = RouteTable::build_parallel(&net, 0).unwrap();
            assert_eq!(serial, auto);
        }
    }

    #[test]
    fn ejection_cells_are_empty() {
        for net in nets() {
            let table = RouteTable::build(&net).unwrap();
            for dst in 0..net.geometry.nodes() {
                assert!(table.candidates(net.eject(dst), dst).is_empty());
            }
        }
    }

    #[test]
    fn masked_with_all_live_mask_is_identical() {
        for net in nets() {
            let table = RouteTable::build(&net).unwrap();
            let masked = table
                .masked(&net, &vec![false; net.num_channels()])
                .unwrap();
            for ch in 0..net.num_channels() as u32 {
                for dst in 0..net.geometry.nodes() {
                    assert_eq!(
                        table.candidates(ch, dst),
                        masked.candidates(ch, dst),
                        "channel {ch} → {dst}"
                    );
                }
            }
        }
    }

    /// The empty-fault fast path returns a structural clone: both CSR
    /// arrays byte-identical to the original, with no shrunken rebuild.
    #[test]
    fn masked_empty_fault_fast_path_is_a_clone() {
        let net = build_bmin(Geometry::new(4, 3));
        let table = RouteTable::build(&net).unwrap();
        let masked = table
            .masked(&net, &vec![false; net.num_channels()])
            .unwrap();
        assert_eq!(table, masked);
        assert_eq!(table.approx_bytes(), masked.approx_bytes());
    }

    #[test]
    fn masked_rejects_wrong_mask_length() {
        let net = &nets()[0];
        let table = RouteTable::build(net).unwrap();
        assert!(table.masked(net, &[false; 3]).is_err());
    }

    /// Walk every masked candidate chain: a nonempty cell must lead to a
    /// nonempty (or ejection) cell — no masked route may dead-end.
    fn assert_no_dead_ends(net: &NetworkGraph, masked: &RouteTable) {
        for src in 0..net.geometry.nodes() {
            for dst in 0..net.geometry.nodes() {
                if src == dst {
                    continue;
                }
                let mut frontier = vec![net.inject(src)];
                let mut seen = vec![false; net.num_channels()];
                while let Some(at) = frontier.pop() {
                    for &c in masked.candidates(at, dst) {
                        if seen[c as usize] {
                            continue;
                        }
                        seen[c as usize] = true;
                        assert!(
                            c == net.eject(dst)
                                || !masked.candidates(c, dst).is_empty(),
                            "masked route {src}→{dst} dead-ends at channel {c}"
                        );
                        frontier.push(c);
                    }
                }
            }
        }
    }

    #[test]
    fn bmin_single_fault_keeps_all_pairs_deliverable() {
        // k^t alternative paths: one dead inter-stage link must leave
        // every (src, dst) cell deliverable, with no route dead-ending.
        let net = build_bmin(Geometry::new(4, 3));
        let table = RouteTable::build(&net).unwrap();
        let victim = (0..net.num_channels() as u32)
            .find(|&c| {
                let ch = net.channel(c);
                ch.src.switch().is_some() && ch.dst.switch().is_some()
            })
            .unwrap();
        let mut dead = vec![false; net.num_channels()];
        dead[victim as usize] = true;
        let masked = table.masked(&net, &dead).unwrap();
        for src in 0..net.geometry.nodes() {
            for dst in 0..net.geometry.nodes() {
                if src != dst {
                    assert!(
                        !masked.candidates(net.inject(src), dst).is_empty(),
                        "{src} → {dst} lost deliverability"
                    );
                }
            }
        }
        assert_no_dead_ends(&net, &masked);
    }

    #[test]
    fn tmin_single_fault_disconnects_crossing_pairs_only() {
        let net = build_unidir(Geometry::new(4, 3), UnidirKind::Cube, 1);
        let table = RouteTable::build(&net).unwrap();
        let victim = (0..net.num_channels() as u32)
            .find(|&c| {
                let ch = net.channel(c);
                ch.src.switch().is_some() && ch.dst.switch().is_some()
            })
            .unwrap();
        let mut dead = vec![false; net.num_channels()];
        dead[victim as usize] = true;
        let masked = table.masked(&net, &dead).unwrap();
        // Exactly the pairs whose unique path used the victim lose their
        // route; everything else is untouched.
        let mut disconnected = 0;
        for src in 0..net.geometry.nodes() {
            for dst in 0..net.geometry.nodes() {
                if src == dst {
                    continue;
                }
                let inj = net.inject(src);
                let uses_victim = {
                    let mut at = inj;
                    let mut hit = false;
                    while let Some(&next) = table.candidates(at, dst).first() {
                        if next == victim {
                            hit = true;
                        }
                        at = next;
                    }
                    hit
                };
                let masked_empty = masked.candidates(inj, dst).is_empty();
                assert_eq!(uses_victim, masked_empty, "{src} → {dst}");
                disconnected += usize::from(masked_empty);
            }
        }
        assert!(disconnected > 0, "an inter-stage link must carry some pair");
        assert_no_dead_ends(&net, &masked);
    }

    #[test]
    fn dmin_masked_candidates_skip_the_dead_lane() {
        // Dilated links: killing one parallel channel removes it from the
        // candidate lists but keeps every pair deliverable via its twin.
        let net = build_unidir(Geometry::new(4, 3), UnidirKind::Cube, 2);
        let table = RouteTable::build(&net).unwrap();
        let victim = (0..net.num_channels() as u32)
            .find(|&c| {
                let ch = net.channel(c);
                ch.src.switch().is_some() && ch.dst.switch().is_some()
            })
            .unwrap();
        let mut dead = vec![false; net.num_channels()];
        dead[victim as usize] = true;
        let masked = table.masked(&net, &dead).unwrap();
        let mut shrunk = 0;
        for ch in 0..net.num_channels() as u32 {
            for dst in 0..net.geometry.nodes() {
                let full = table.candidates(ch, dst);
                let kept = masked.candidates(ch, dst);
                assert!(!kept.contains(&victim), "dead channel offered");
                if full.contains(&victim) {
                    assert_eq!(kept.len(), full.len() - 1);
                    shrunk += 1;
                }
            }
        }
        assert!(shrunk > 0);
        for src in 0..net.geometry.nodes() {
            for dst in 0..net.geometry.nodes() {
                if src != dst {
                    assert!(
                        !masked.candidates(net.inject(src), dst).is_empty(),
                        "dilation must tolerate a single link fault"
                    );
                }
            }
        }
        assert_no_dead_ends(&net, &masked);
    }

    #[test]
    fn table_is_compact() {
        let g = Geometry::new(4, 3);
        let net = build_unidir(g, UnidirKind::Cube, 1);
        let table = RouteTable::build(&net).unwrap();
        // Every non-final channel × destination cell holds exactly one
        // candidate in a TMIN (one output port, one lane), and the walk
        // reaches n stages' worth of cells per pair.
        assert!(!table.is_empty());
        assert_eq!(table.nodes(), 64);
        assert!(table.len() < net.num_channels() * 64);
    }
}
