//! Precomputed routing tables: [`RouteLogic`] flattened into a lookup.
//!
//! The paper's networks are *self-routing*: a header's legal next channels
//! depend only on where it is (the channel it arrived over) and where it
//! is going (the destination tag / turnaround digits) — never on the rest
//! of the path. That makes the whole routing function a finite table over
//! `(arrival channel, destination node)`, which [`RouteTable::build`]
//! precomputes once per network so the simulation engine's per-hop routing
//! is a slice lookup instead of re-deriving tag digits or turnaround
//! actions.
//!
//! The table is built by *walking* [`RouteLogic`] over every reachable
//! `(channel, destination)` state — a breadth-first traversal from every
//! source's injection channel, for every destination — rather than by
//! re-implementing the routing rules. Whatever the logic answers is what
//! the table stores, so the two cannot disagree on a reachable pair; the
//! build errors out if two different sources ever induce different
//! candidate sets at the same cell (self-routing would be violated).
//! Unreachable cells stay empty and are never queried by the engine.

use crate::logic::RouteLogic;
use minnet_topology::{ChannelId, NetworkGraph, NodeId};

/// Flattened routing function of one network: for every reachable
/// `(arrival channel, destination)` pair, the candidate output channels in
/// exactly the order [`RouteLogic::candidates`] produces them.
///
/// Storage is CSR-style: `starts` has one `(offset)` entry per cell plus a
/// terminator, indexing into the shared `cands` pool. For the paper's
/// 64-node networks the whole table is a few tens of kilobytes and is
/// immutable after construction — share it freely across sweep threads.
#[derive(Clone, Debug)]
pub struct RouteTable {
    nodes: u32,
    starts: Vec<u32>,
    cands: Vec<ChannelId>,
}

impl RouteTable {
    /// Precompute the routing table for `net` by exhaustively walking
    /// [`RouteLogic::for_kind`] from every injection channel to every
    /// destination.
    ///
    /// # Errors
    ///
    /// Reports a routing inconsistency (two sources disagreeing about the
    /// candidates of the same `(channel, destination)` cell) — impossible
    /// for the self-routing networks this crate models, but checked so a
    /// future routing function that violates the assumption fails loudly
    /// at build time instead of silently mis-simulating.
    pub fn build(net: &NetworkGraph) -> Result<RouteTable, String> {
        let logic = RouteLogic::for_kind(net.kind);
        let nodes = net.geometry.nodes();
        let nch = net.num_channels();
        let ncells = nch * nodes as usize;

        // Per-cell candidate lists, filled lazily as the walks reach them.
        let mut cells: Vec<Option<Vec<ChannelId>>> = vec![None; ncells];
        // Visited stamp per channel, regenerated per (src, dst) walk.
        let mut stamp = vec![u32::MAX; nch];
        let mut frontier: Vec<ChannelId> = Vec::new();
        let mut scratch: Vec<ChannelId> = Vec::new();

        let mut generation = 0u32;
        for src in 0..nodes {
            for dst in 0..nodes {
                if src == dst {
                    continue;
                }
                frontier.clear();
                frontier.push(net.inject[src as usize]);
                stamp[net.inject[src as usize] as usize] = generation;
                while let Some(at) = frontier.pop() {
                    let cell = at as usize * nodes as usize + dst as usize;
                    match &cells[cell] {
                        Some(prev) => {
                            // Already filled by an earlier source: the
                            // candidates must agree (self-routing), and the
                            // subtree below was already expanded then.
                            logic.candidates(net, src, dst, at, &mut scratch);
                            if *prev != scratch {
                                return Err(format!(
                                    "routing is not self-routing: channel {at} → node {dst} \
                                     yields {prev:?} from one source but {scratch:?} from {src}"
                                ));
                            }
                            continue;
                        }
                        None => {
                            logic.candidates(net, src, dst, at, &mut scratch);
                            for &c in &scratch {
                                if stamp[c as usize] != generation {
                                    stamp[c as usize] = generation;
                                    frontier.push(c);
                                }
                            }
                            cells[cell] = Some(scratch.clone());
                        }
                    }
                }
                generation = generation.wrapping_add(1);
            }
        }

        // Flatten to CSR.
        let mut starts = Vec::with_capacity(ncells + 1);
        let total: usize = cells.iter().flatten().map(Vec::len).sum();
        let mut cands = Vec::with_capacity(total);
        for cell in &cells {
            starts.push(cands.len() as u32);
            if let Some(cs) = cell {
                cands.extend_from_slice(cs);
            }
        }
        starts.push(cands.len() as u32);
        Ok(RouteTable {
            nodes,
            starts,
            cands,
        })
    }

    /// The output channels a header arriving over `at` may request next on
    /// its way to `dst` — identical (contents *and* order) to what
    /// [`RouteLogic::candidates`] computes. Empty when `at` terminates at
    /// the destination node, and for `(at, dst)` pairs no legal route ever
    /// reaches.
    #[inline]
    pub fn candidates(&self, at: ChannelId, dst: NodeId) -> &[ChannelId] {
        let cell = at as usize * self.nodes as usize + dst as usize;
        let lo = self.starts[cell] as usize;
        let hi = self.starts[cell + 1] as usize;
        &self.cands[lo..hi]
    }

    /// Number of destination nodes the table was built for.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Total stored candidate entries (a size/health metric for benches).
    pub fn len(&self) -> usize {
        self.cands.len()
    }

    /// Whether the table stores no candidates at all (degenerate network).
    pub fn is_empty(&self) -> bool {
        self.cands.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnet_topology::{build_bmin, build_unidir, Geometry, UnidirKind};

    fn nets() -> Vec<NetworkGraph> {
        let g = Geometry::new(4, 3);
        vec![
            build_unidir(g, UnidirKind::Cube, 1),
            build_unidir(g, UnidirKind::Cube, 2),
            build_unidir(g, UnidirKind::Butterfly, 1),
            build_bmin(g),
        ]
    }

    /// Walk every (src, dst) route with RouteLogic and check the table
    /// answers identically at every reachable channel.
    #[test]
    fn table_matches_logic_on_every_reachable_pair() {
        for net in nets() {
            let logic = RouteLogic::for_kind(net.kind);
            let table = RouteTable::build(&net).unwrap();
            let mut expect = Vec::new();
            let mut frontier = Vec::new();
            for src in 0..net.geometry.nodes() {
                for dst in 0..net.geometry.nodes() {
                    if src == dst {
                        continue;
                    }
                    frontier.clear();
                    frontier.push(net.inject[src as usize]);
                    let mut seen = vec![false; net.num_channels()];
                    seen[net.inject[src as usize] as usize] = true;
                    while let Some(at) = frontier.pop() {
                        logic.candidates(&net, src, dst, at, &mut expect);
                        assert_eq!(
                            table.candidates(at, dst),
                            &expect[..],
                            "channel {at} → {dst}"
                        );
                        for &c in &expect {
                            if !seen[c as usize] {
                                seen[c as usize] = true;
                                frontier.push(c);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn ejection_cells_are_empty() {
        for net in nets() {
            let table = RouteTable::build(&net).unwrap();
            for dst in 0..net.geometry.nodes() {
                assert!(table.candidates(net.eject[dst as usize], dst).is_empty());
            }
        }
    }

    #[test]
    fn table_is_compact() {
        let g = Geometry::new(4, 3);
        let net = build_unidir(g, UnidirKind::Cube, 1);
        let table = RouteTable::build(&net).unwrap();
        // Every non-final channel × destination cell holds exactly one
        // candidate in a TMIN (one output port, one lane), and the walk
        // reaches n stages' worth of cells per pair.
        assert!(!table.is_empty());
        assert_eq!(table.nodes(), 64);
        assert!(table.len() < net.num_channels() * 64);
    }
}
