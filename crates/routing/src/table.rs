//! Precomputed routing tables: [`RouteLogic`] flattened into a lookup.
//!
//! The paper's networks are *self-routing*: a header's legal next channels
//! depend only on where it is (the channel it arrived over) and where it
//! is going (the destination tag / turnaround digits) — never on the rest
//! of the path. That makes the whole routing function a finite table over
//! `(arrival channel, destination node)`, which [`RouteTable::build`]
//! precomputes once per network so the simulation engine's per-hop routing
//! is a slice lookup instead of re-deriving tag digits or turnaround
//! actions.
//!
//! The table is built by *walking* [`RouteLogic`] over every reachable
//! `(channel, destination)` state — a breadth-first traversal from every
//! source's injection channel, for every destination — rather than by
//! re-implementing the routing rules. Whatever the logic answers is what
//! the table stores, so the two cannot disagree on a reachable pair; the
//! build errors out if two different sources ever induce different
//! candidate sets at the same cell (self-routing would be violated).
//! Unreachable cells stay empty and are never queried by the engine.

use crate::logic::RouteLogic;
use minnet_topology::{ChannelId, NetworkGraph, NodeId};

/// Flattened routing function of one network: for every reachable
/// `(arrival channel, destination)` pair, the candidate output channels in
/// exactly the order [`RouteLogic::candidates`] produces them.
///
/// Storage is CSR-style: `starts` has one `(offset)` entry per cell plus a
/// terminator, indexing into the shared `cands` pool. For the paper's
/// 64-node networks the whole table is a few tens of kilobytes and is
/// immutable after construction — share it freely across sweep threads.
#[derive(Clone, Debug)]
pub struct RouteTable {
    nodes: u32,
    starts: Vec<u32>,
    cands: Vec<ChannelId>,
}

impl RouteTable {
    /// Precompute the routing table for `net` by exhaustively walking
    /// [`RouteLogic::for_kind`] from every injection channel to every
    /// destination.
    ///
    /// # Errors
    ///
    /// Reports a routing inconsistency (two sources disagreeing about the
    /// candidates of the same `(channel, destination)` cell) — impossible
    /// for the self-routing networks this crate models, but checked so a
    /// future routing function that violates the assumption fails loudly
    /// at build time instead of silently mis-simulating.
    pub fn build(net: &NetworkGraph) -> Result<RouteTable, String> {
        let logic = RouteLogic::for_kind(net.kind);
        let nodes = net.geometry.nodes();
        let nch = net.num_channels();
        let ncells = nch * nodes as usize;

        // Per-cell candidate lists, filled lazily as the walks reach them.
        let mut cells: Vec<Option<Vec<ChannelId>>> = vec![None; ncells];
        // Visited stamp per channel, regenerated per (src, dst) walk.
        let mut stamp = vec![u32::MAX; nch];
        let mut frontier: Vec<ChannelId> = Vec::new();
        let mut scratch: Vec<ChannelId> = Vec::new();

        let mut generation = 0u32;
        for src in 0..nodes {
            for dst in 0..nodes {
                if src == dst {
                    continue;
                }
                frontier.clear();
                frontier.push(net.inject[src as usize]);
                stamp[net.inject[src as usize] as usize] = generation;
                while let Some(at) = frontier.pop() {
                    let cell = at as usize * nodes as usize + dst as usize;
                    match &cells[cell] {
                        Some(prev) => {
                            // Already filled by an earlier source: the
                            // candidates must agree (self-routing), and the
                            // subtree below was already expanded then.
                            logic.candidates(net, src, dst, at, &mut scratch);
                            if *prev != scratch {
                                return Err(format!(
                                    "routing is not self-routing: channel {at} → node {dst} \
                                     yields {prev:?} from one source but {scratch:?} from {src}"
                                ));
                            }
                            continue;
                        }
                        None => {
                            logic.candidates(net, src, dst, at, &mut scratch);
                            for &c in &scratch {
                                if stamp[c as usize] != generation {
                                    stamp[c as usize] = generation;
                                    frontier.push(c);
                                }
                            }
                            cells[cell] = Some(scratch.clone());
                        }
                    }
                }
                generation = generation.wrapping_add(1);
            }
        }

        // Flatten to CSR.
        let mut starts = Vec::with_capacity(ncells + 1);
        let total: usize = cells.iter().flatten().map(Vec::len).sum();
        let mut cands = Vec::with_capacity(total);
        for cell in &cells {
            starts.push(cands.len() as u32);
            if let Some(cs) = cell {
                cands.extend_from_slice(cs);
            }
        }
        starts.push(cands.len() as u32);
        Ok(RouteTable {
            nodes,
            starts,
            cands,
        })
    }

    /// The output channels a header arriving over `at` may request next on
    /// its way to `dst` — identical (contents *and* order) to what
    /// [`RouteLogic::candidates`] computes. Empty when `at` terminates at
    /// the destination node, and for `(at, dst)` pairs no legal route ever
    /// reaches.
    #[inline]
    pub fn candidates(&self, at: ChannelId, dst: NodeId) -> &[ChannelId] {
        let (lo, hi) = self.candidate_range(at, dst);
        &self.cands[lo as usize..hi as usize]
    }

    /// The `(lo, hi)` bounds of [`Self::candidates`]' slice within the
    /// flat CSR arena. A `(at, dst)` cell lookup walks a table too large
    /// for L1 on realistic networks; callers whose `(at, dst)` pair is
    /// stable across many queries (a blocked worm re-requesting every
    /// cycle) can cache the bounds and resolve them with
    /// [`Self::resolve_range`] instead.
    #[inline]
    pub fn candidate_range(&self, at: ChannelId, dst: NodeId) -> (u32, u32) {
        let cell = at as usize * self.nodes as usize + dst as usize;
        (self.starts[cell], self.starts[cell + 1])
    }

    /// Resolve bounds previously obtained from [`Self::candidate_range`]
    /// on this same table.
    #[inline]
    pub fn resolve_range(&self, lo: u32, hi: u32) -> &[ChannelId] {
        &self.cands[lo as usize..hi as usize]
    }

    /// The fault-masked variant of this table: every candidate list is
    /// filtered down to channels over which the destination is still
    /// **deliverable** under `dead_channel` — alive *and* with a live
    /// continuation all the way to the ejection channel. Filtering by
    /// deliverability (not mere liveness) is what makes the adaptive
    /// networks degrade gracefully: a BMIN up-phase choice or DMIN lane
    /// whose subtree dead-ends at the fault is excluded *before* the worm
    /// commits to it, so a header that can advance can always finish —
    /// and an empty masked candidate list at a non-ejection cell is a
    /// definitive "disconnected from here" signal, not a maybe.
    ///
    /// Candidate order is preserved (the mask only deletes entries), so a
    /// masked table under an all-live mask is candidate-for-candidate the
    /// original — the engine's no-fault RNG stream is untouched.
    ///
    /// Deliverability is computed per destination in one transmit-order
    /// pass: the engine's downstream-first channel order visits every
    /// candidate before the channel that requests it.
    ///
    /// # Errors
    ///
    /// Reports a mask whose length does not match the channel count.
    pub fn masked(
        &self,
        net: &NetworkGraph,
        dead_channel: &[bool],
    ) -> Result<RouteTable, String> {
        let nch = net.num_channels();
        if dead_channel.len() != nch {
            return Err(format!(
                "fault mask covers {} channels but the network has {nch}",
                dead_channel.len()
            ));
        }
        let nodes = self.nodes as usize;
        let order = net.transmit_order();
        // deliver[ch * nodes + dst] — `dst` can still be reached from the
        // head of `ch`.
        let mut deliver = vec![false; nch * nodes];
        for dst in 0..nodes {
            for &ch in &order {
                let chi = ch as usize;
                if dead_channel[chi] {
                    continue;
                }
                let ok = net.eject[dst] == ch
                    || self.candidates(ch, dst as NodeId).iter().any(|&c| {
                        debug_assert!(
                            net.channel(c).topo_rank < net.channel(ch).topo_rank,
                            "candidate {c} not downstream of {ch}"
                        );
                        deliver[c as usize * nodes + dst]
                    });
                deliver[chi * nodes + dst] = ok;
            }
        }
        let mut starts = Vec::with_capacity(self.starts.len());
        let mut cands = Vec::with_capacity(self.cands.len());
        for ch in 0..nch {
            for dst in 0..nodes {
                starts.push(cands.len() as u32);
                cands.extend(
                    self.candidates(ch as ChannelId, dst as NodeId)
                        .iter()
                        .filter(|&&c| deliver[c as usize * nodes + dst]),
                );
            }
        }
        starts.push(cands.len() as u32);
        Ok(RouteTable {
            nodes: self.nodes,
            starts,
            cands,
        })
    }

    /// Number of destination nodes the table was built for.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Total stored candidate entries (a size/health metric for benches).
    pub fn len(&self) -> usize {
        self.cands.len()
    }

    /// Whether the table stores no candidates at all (degenerate network).
    pub fn is_empty(&self) -> bool {
        self.cands.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnet_topology::{build_bmin, build_unidir, Geometry, UnidirKind};

    fn nets() -> Vec<NetworkGraph> {
        let g = Geometry::new(4, 3);
        vec![
            build_unidir(g, UnidirKind::Cube, 1),
            build_unidir(g, UnidirKind::Cube, 2),
            build_unidir(g, UnidirKind::Butterfly, 1),
            build_bmin(g),
        ]
    }

    /// Walk every (src, dst) route with RouteLogic and check the table
    /// answers identically at every reachable channel.
    #[test]
    fn table_matches_logic_on_every_reachable_pair() {
        for net in nets() {
            let logic = RouteLogic::for_kind(net.kind);
            let table = RouteTable::build(&net).unwrap();
            let mut expect = Vec::new();
            let mut frontier = Vec::new();
            for src in 0..net.geometry.nodes() {
                for dst in 0..net.geometry.nodes() {
                    if src == dst {
                        continue;
                    }
                    frontier.clear();
                    frontier.push(net.inject[src as usize]);
                    let mut seen = vec![false; net.num_channels()];
                    seen[net.inject[src as usize] as usize] = true;
                    while let Some(at) = frontier.pop() {
                        logic.candidates(&net, src, dst, at, &mut expect);
                        assert_eq!(
                            table.candidates(at, dst),
                            &expect[..],
                            "channel {at} → {dst}"
                        );
                        for &c in &expect {
                            if !seen[c as usize] {
                                seen[c as usize] = true;
                                frontier.push(c);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn ejection_cells_are_empty() {
        for net in nets() {
            let table = RouteTable::build(&net).unwrap();
            for dst in 0..net.geometry.nodes() {
                assert!(table.candidates(net.eject[dst as usize], dst).is_empty());
            }
        }
    }

    #[test]
    fn masked_with_all_live_mask_is_identical() {
        for net in nets() {
            let table = RouteTable::build(&net).unwrap();
            let masked = table
                .masked(&net, &vec![false; net.num_channels()])
                .unwrap();
            for ch in 0..net.num_channels() as u32 {
                for dst in 0..net.geometry.nodes() {
                    assert_eq!(
                        table.candidates(ch, dst),
                        masked.candidates(ch, dst),
                        "channel {ch} → {dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn masked_rejects_wrong_mask_length() {
        let net = &nets()[0];
        let table = RouteTable::build(net).unwrap();
        assert!(table.masked(net, &[false; 3]).is_err());
    }

    /// Walk every masked candidate chain: a nonempty cell must lead to a
    /// nonempty (or ejection) cell — no masked route may dead-end.
    fn assert_no_dead_ends(net: &NetworkGraph, masked: &RouteTable) {
        for src in 0..net.geometry.nodes() {
            for dst in 0..net.geometry.nodes() {
                if src == dst {
                    continue;
                }
                let mut frontier = vec![net.inject[src as usize]];
                let mut seen = vec![false; net.num_channels()];
                while let Some(at) = frontier.pop() {
                    for &c in masked.candidates(at, dst) {
                        if seen[c as usize] {
                            continue;
                        }
                        seen[c as usize] = true;
                        assert!(
                            c == net.eject[dst as usize]
                                || !masked.candidates(c, dst).is_empty(),
                            "masked route {src}→{dst} dead-ends at channel {c}"
                        );
                        frontier.push(c);
                    }
                }
            }
        }
    }

    #[test]
    fn bmin_single_fault_keeps_all_pairs_deliverable() {
        // k^t alternative paths: one dead inter-stage link must leave
        // every (src, dst) cell deliverable, with no route dead-ending.
        let net = build_bmin(Geometry::new(4, 3));
        let table = RouteTable::build(&net).unwrap();
        let victim = (0..net.num_channels() as u32)
            .find(|&c| {
                let ch = net.channel(c);
                ch.src.switch().is_some() && ch.dst.switch().is_some()
            })
            .unwrap();
        let mut dead = vec![false; net.num_channels()];
        dead[victim as usize] = true;
        let masked = table.masked(&net, &dead).unwrap();
        for src in 0..net.geometry.nodes() {
            for dst in 0..net.geometry.nodes() {
                if src != dst {
                    assert!(
                        !masked.candidates(net.inject[src as usize], dst).is_empty(),
                        "{src} → {dst} lost deliverability"
                    );
                }
            }
        }
        assert_no_dead_ends(&net, &masked);
    }

    #[test]
    fn tmin_single_fault_disconnects_crossing_pairs_only() {
        let net = build_unidir(Geometry::new(4, 3), UnidirKind::Cube, 1);
        let table = RouteTable::build(&net).unwrap();
        let victim = (0..net.num_channels() as u32)
            .find(|&c| {
                let ch = net.channel(c);
                ch.src.switch().is_some() && ch.dst.switch().is_some()
            })
            .unwrap();
        let mut dead = vec![false; net.num_channels()];
        dead[victim as usize] = true;
        let masked = table.masked(&net, &dead).unwrap();
        // Exactly the pairs whose unique path used the victim lose their
        // route; everything else is untouched.
        let mut disconnected = 0;
        for src in 0..net.geometry.nodes() {
            for dst in 0..net.geometry.nodes() {
                if src == dst {
                    continue;
                }
                let inj = net.inject[src as usize];
                let uses_victim = {
                    let mut at = inj;
                    let mut hit = false;
                    while let Some(&next) = table.candidates(at, dst).first() {
                        if next == victim {
                            hit = true;
                        }
                        at = next;
                    }
                    hit
                };
                let masked_empty = masked.candidates(inj, dst).is_empty();
                assert_eq!(uses_victim, masked_empty, "{src} → {dst}");
                disconnected += usize::from(masked_empty);
            }
        }
        assert!(disconnected > 0, "an inter-stage link must carry some pair");
        assert_no_dead_ends(&net, &masked);
    }

    #[test]
    fn dmin_masked_candidates_skip_the_dead_lane() {
        // Dilated links: killing one parallel channel removes it from the
        // candidate lists but keeps every pair deliverable via its twin.
        let net = build_unidir(Geometry::new(4, 3), UnidirKind::Cube, 2);
        let table = RouteTable::build(&net).unwrap();
        let victim = (0..net.num_channels() as u32)
            .find(|&c| {
                let ch = net.channel(c);
                ch.src.switch().is_some() && ch.dst.switch().is_some()
            })
            .unwrap();
        let mut dead = vec![false; net.num_channels()];
        dead[victim as usize] = true;
        let masked = table.masked(&net, &dead).unwrap();
        let mut shrunk = 0;
        for ch in 0..net.num_channels() as u32 {
            for dst in 0..net.geometry.nodes() {
                let full = table.candidates(ch, dst);
                let kept = masked.candidates(ch, dst);
                assert!(!kept.contains(&victim), "dead channel offered");
                if full.contains(&victim) {
                    assert_eq!(kept.len(), full.len() - 1);
                    shrunk += 1;
                }
            }
        }
        assert!(shrunk > 0);
        for src in 0..net.geometry.nodes() {
            for dst in 0..net.geometry.nodes() {
                if src != dst {
                    assert!(
                        !masked.candidates(net.inject[src as usize], dst).is_empty(),
                        "dilation must tolerate a single link fault"
                    );
                }
            }
        }
        assert_no_dead_ends(&net, &masked);
    }

    #[test]
    fn table_is_compact() {
        let g = Geometry::new(4, 3);
        let net = build_unidir(g, UnidirKind::Cube, 1);
        let table = RouteTable::build(&net).unwrap();
        // Every non-final channel × destination cell holds exactly one
        // candidate in a TMIN (one output port, one lane), and the walk
        // reaches n stages' worth of cells per pair.
        assert!(!table.is_empty());
        assert_eq!(table.nodes(), 64);
        assert!(table.len() < net.num_channels() * 64);
    }
}
