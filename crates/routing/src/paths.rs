//! Path enumeration and counting (Theorem 1, Figs. 8–11).
//!
//! [`enumerate_paths`] exhaustively lists the channel paths a routing logic
//! can generate; for the BMIN this materialises the `k^t` shortest paths of
//! Theorem 1, and for a d-dilated MIN the `d^{n-1}` lane combinations over
//! the unique port path. [`paths_share_channel`] detects collisions between
//! path pairs — the blocking phenomenon of Fig. 11.

use crate::logic::RouteLogic;
use minnet_topology::{ChannelId, Geometry, NetworkGraph, NodeAddr, NodeId};

/// Analytic shortest-path count of Theorem 1: `k^t` for the BMIN, where
/// `t = FirstDifference(S, D)`. Returns `None` when `s == d`.
pub fn shortest_path_count(g: &Geometry, s: NodeAddr, d: NodeAddr) -> Option<u64> {
    g.first_difference(s, d)
        .map(|t| (g.k() as u64).pow(t))
}

/// Analytic shortest-path length in channels: `n + 1` for unidirectional
/// MINs (constant, §3.2.3) and `2(t+1)` for the BMIN.
pub fn shortest_path_length(g: &Geometry, bidirectional: bool, s: NodeAddr, d: NodeAddr) -> Option<u32> {
    if bidirectional {
        g.first_difference(s, d).map(|t| 2 * (t + 1))
    } else if s == d {
        None
    } else {
        Some(g.n() + 1)
    }
}

/// Exhaustively enumerate every channel path the routing logic can produce
/// from `src` to `dst` (depth-first over the candidate sets). Each path
/// begins with the injection channel and ends with the ejection channel.
///
/// The result is bounded: `k^t` paths for turnaround routing,
/// `d^{n-1}` for a dilated destination-tag MIN.
pub fn enumerate_paths(
    net: &NetworkGraph,
    logic: RouteLogic,
    src: NodeId,
    dst: NodeId,
) -> Vec<Vec<ChannelId>> {
    let mut results = Vec::new();
    if src == dst {
        return results;
    }
    let mut stack = vec![net.inject(src)];
    dfs(net, logic, src, dst, &mut stack, &mut results);
    results
}

fn dfs(
    net: &NetworkGraph,
    logic: RouteLogic,
    src: NodeId,
    dst: NodeId,
    stack: &mut Vec<ChannelId>,
    results: &mut Vec<Vec<ChannelId>>,
) {
    let mut cands = Vec::new();
    logic.candidates(net, src, dst, *stack.last().unwrap(), &mut cands);
    if cands.is_empty() {
        results.push(stack.clone());
        return;
    }
    for c in cands {
        stack.push(c);
        dfs(net, logic, src, dst, stack, results);
        stack.pop();
    }
}

/// The first channel present in both paths, if any — a potential wormhole
/// blocking point (two worms needing the same channel serialise).
pub fn paths_share_channel(a: &[ChannelId], b: &[ChannelId]) -> Option<ChannelId> {
    a.iter().copied().find(|c| b.contains(c))
}

/// For two (src, dst) pairs, classify the contention between their path
/// sets: returns `(colliding_combinations, total_combinations)` over the
/// Cartesian product of path choices. `colliding == total` means the pairs
/// *always* contend; `colliding == 0` means they never do.
pub fn contention_profile(
    net: &NetworkGraph,
    logic: RouteLogic,
    pair_a: (NodeId, NodeId),
    pair_b: (NodeId, NodeId),
) -> (usize, usize) {
    let pa = enumerate_paths(net, logic, pair_a.0, pair_a.1);
    let pb = enumerate_paths(net, logic, pair_b.0, pair_b.1);
    let total = pa.len() * pb.len();
    let colliding = pa
        .iter()
        .flat_map(|a| pb.iter().map(move |b| (a, b)))
        .filter(|(a, b)| paths_share_channel(a, b).is_some())
        .count();
    (colliding, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnet_topology::{build_bmin, build_unidir, Direction, Geometry, UnidirKind};

    #[test]
    fn theorem1_enumeration_matches_formula() {
        for g in [Geometry::new(2, 3), Geometry::new(4, 2), Geometry::new(4, 3)] {
            let net = build_bmin(g);
            for s in g.addresses() {
                for d in g.addresses() {
                    if s == d {
                        continue;
                    }
                    let paths = enumerate_paths(&net, RouteLogic::Turnaround, s.0, d.0);
                    assert_eq!(
                        paths.len() as u64,
                        shortest_path_count(&g, s, d).unwrap(),
                        "{s}→{d}"
                    );
                    let want_len = shortest_path_length(&g, true, s, d).unwrap();
                    for p in &paths {
                        assert_eq!(p.len() as u32, want_len);
                    }
                }
            }
        }
    }

    #[test]
    fn turnaround_paths_satisfy_definition_4() {
        // Equal forward/backward channel counts, exactly one turnaround,
        // and no forward/backward channel from the same port pair.
        let g = Geometry::new(4, 3);
        let net = build_bmin(g);
        for (s, d) in [(0u32, 63u32), (5, 6), (17, 16), (0, 1), (33, 12)] {
            for p in enumerate_paths(&net, RouteLogic::Turnaround, s, d) {
                let fwd: Vec<_> = p
                    .iter()
                    .filter(|&&c| net.channel(c).dir == Direction::Forward)
                    .collect();
                let bwd: Vec<_> = p
                    .iter()
                    .filter(|&&c| net.channel(c).dir == Direction::Backward)
                    .collect();
                assert_eq!(fwd.len(), bwd.len());
                // Exactly one forward→backward transition.
                let transitions = p
                    .windows(2)
                    .filter(|w| {
                        net.channel(w[0]).dir == Direction::Forward
                            && net.channel(w[1]).dir == Direction::Backward
                    })
                    .count();
                assert_eq!(transitions, 1);
                // No channel pair of the same port: a forward channel and a
                // backward channel of one port have swapped src/dst.
                for &&f in &fwd {
                    for &&b in &bwd {
                        let cf = net.channel(f);
                        let cb = net.channel(b);
                        assert!(
                            !(cf.src == cb.dst && cf.dst == cb.src),
                            "path uses both directions of one port"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unique_path_in_tmin() {
        let g = Geometry::new(4, 3);
        let net = build_unidir(g, UnidirKind::Cube, 1);
        let logic = RouteLogic::for_kind(net.kind);
        for s in [0u32, 13, 62] {
            for d in 0..g.nodes() {
                if s == d {
                    continue;
                }
                assert_eq!(enumerate_paths(&net, logic, s, d).len(), 1);
            }
        }
    }

    #[test]
    fn dilated_path_count() {
        let g = Geometry::new(4, 3);
        let net = build_unidir(g, UnidirKind::Cube, 2);
        let logic = RouteLogic::for_kind(net.kind);
        // d^{n-1} = 2^2 lane combinations.
        assert_eq!(enumerate_paths(&net, logic, 0, 63).len(), 4);
    }

    #[test]
    fn fig11_blocking_example() {
        // Fig. 11: in the 8-node BMIN, messages 011→111 and 001→110 can
        // contend for a backward channel; but thanks to path multiplicity
        // they do not *always* contend, while two messages to the same
        // destination always share the ejection channel.
        let g = Geometry::new(2, 3);
        let net = build_bmin(g);
        let s1 = g.parse_addr("011").unwrap().0;
        let d1 = g.parse_addr("111").unwrap().0;
        let s2 = g.parse_addr("001").unwrap().0;
        let d2 = g.parse_addr("110").unwrap().0;
        let (colliding, total) =
            contention_profile(&net, RouteLogic::Turnaround, (s1, d1), (s2, d2));
        assert!(colliding > 0, "the Fig. 11 collision must be possible");
        assert!(colliding < total, "multiple paths let the messages avoid each other");
        // Same destination ⇒ guaranteed collision on the ejection channel.
        let (c2, t2) = contention_profile(&net, RouteLogic::Turnaround, (s1, d1), (s2, d1));
        assert_eq!(c2, t2);
    }

    #[test]
    fn fig8_paths_have_common_backward_tail() {
        // All four S=001 → D=101 paths turn at stage 2 and then follow the
        // *same ports* backward (the unique down-route), though through
        // different switches; every path ends at D's ejection channel.
        let g = Geometry::new(2, 3);
        let net = build_bmin(g);
        let s = g.parse_addr("001").unwrap().0;
        let d = g.parse_addr("101").unwrap().0;
        let paths = enumerate_paths(&net, RouteLogic::Turnaround, s, d);
        assert_eq!(paths.len(), 4);
        for p in &paths {
            assert_eq!(*p.last().unwrap(), net.eject(d));
            assert_eq!(p[0], net.inject(s));
        }
        // The four paths are pairwise distinct.
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                assert_ne!(paths[i], paths[j]);
            }
        }
    }

    #[test]
    fn share_channel_helper() {
        assert_eq!(paths_share_channel(&[1, 2, 3], &[4, 5, 3]), Some(3));
        assert_eq!(paths_share_channel(&[1, 2], &[4, 5]), None);
        assert_eq!(paths_share_channel(&[], &[1]), None);
    }
}
