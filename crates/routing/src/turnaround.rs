//! The turnaround routing algorithm (paper §3.1, Fig. 7).
//!
//! A turnaround path (Definition 4) consists of some forward channels, one
//! turnaround connection, and an equal number of backward channels. The
//! distributed algorithm executed by a switch at stage `j` for a message
//! from `S` to `D` with `t = FirstDifference(S, D)`:
//!
//! 1. if `j == t`, turn around to left output `l_{d_j}`;
//! 2. if `j < t` and the message arrived on a left input (moving forward),
//!    continue forward on *any* available right output;
//! 3. if `j < t` and the message arrived on a right input (moving
//!    backward), take left output `l_{d_j}`.

use minnet_topology::{Geometry, NodeAddr, Side};

/// The decision taken by a switch under turnaround routing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TurnaroundAction {
    /// Continue forward; any right-side output port is acceptable.
    ForwardAny,
    /// Turn around to this left-side output port.
    Turn(u32),
    /// Continue backward to this left-side output port.
    Backward(u32),
}

/// Execute the Fig. 7 algorithm at a switch of stage `j` for a message from
/// `src` to `dst` that arrived on `arrival_side` (`Left` = moving forward,
/// `Right` = moving backward).
///
/// # Panics
///
/// Panics if `src == dst` (no network routing is needed) or if `j` exceeds
/// `FirstDifference(src, dst)` while the message is still moving forward —
/// turnaround routing never ascends past stage `t`.
pub fn turnaround_action(
    g: &Geometry,
    j: u32,
    arrival_side: Side,
    src: NodeAddr,
    dst: NodeAddr,
) -> TurnaroundAction {
    let t = g
        .first_difference(src, dst)
        .expect("turnaround routing requires src != dst");
    match arrival_side {
        Side::Left => {
            assert!(j <= t, "forward message above the turn stage (j={j}, t={t})");
            if j == t {
                TurnaroundAction::Turn(g.digit(dst, j))
            } else {
                TurnaroundAction::ForwardAny
            }
        }
        Side::Right => TurnaroundAction::Backward(g.digit(dst, j)),
    }
}

/// Length in channels of any turnaround path: `2 (t + 1)` (paper §3.2.3).
pub fn turnaround_path_length(g: &Geometry, src: NodeAddr, dst: NodeAddr) -> Option<u32> {
    g.first_difference(src, dst).map(|t| 2 * (t + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_example_decisions() {
        // S = 001, D = 101, k = 2: FirstDifference = 2. Forward at stages
        // 0 and 1, turn at stage 2 to l_{d_2} = l_1, then backward taking
        // l_{d_1} = l_0 at stage 1 and l_{d_0} = l_1 at stage 0.
        let g = Geometry::new(2, 3);
        let s = g.parse_addr("001").unwrap();
        let d = g.parse_addr("101").unwrap();
        assert_eq!(
            turnaround_action(&g, 0, Side::Left, s, d),
            TurnaroundAction::ForwardAny
        );
        assert_eq!(
            turnaround_action(&g, 1, Side::Left, s, d),
            TurnaroundAction::ForwardAny
        );
        assert_eq!(
            turnaround_action(&g, 2, Side::Left, s, d),
            TurnaroundAction::Turn(1)
        );
        assert_eq!(
            turnaround_action(&g, 1, Side::Right, s, d),
            TurnaroundAction::Backward(0)
        );
        assert_eq!(
            turnaround_action(&g, 0, Side::Right, s, d),
            TurnaroundAction::Backward(1)
        );
    }

    #[test]
    fn immediate_turn_when_only_digit0_differs() {
        let g = Geometry::new(4, 3);
        let s = g.parse_addr("120").unwrap();
        let d = g.parse_addr("123").unwrap();
        assert_eq!(
            turnaround_action(&g, 0, Side::Left, s, d),
            TurnaroundAction::Turn(3)
        );
        assert_eq!(turnaround_path_length(&g, s, d), Some(2));
    }

    #[test]
    fn path_length_formula() {
        let g = Geometry::new(4, 3);
        for s in g.addresses() {
            for d in g.addresses() {
                match g.first_difference(s, d) {
                    None => assert_eq!(turnaround_path_length(&g, s, d), None),
                    Some(t) => assert_eq!(turnaround_path_length(&g, s, d), Some(2 * (t + 1))),
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "above the turn stage")]
    fn panics_past_turn_stage() {
        let g = Geometry::new(2, 3);
        let s = g.parse_addr("000").unwrap();
        let d = g.parse_addr("001").unwrap(); // t = 0
        let _ = turnaround_action(&g, 1, Side::Left, s, d);
    }

    #[test]
    #[should_panic(expected = "src != dst")]
    fn panics_on_self_route() {
        let g = Geometry::new(2, 3);
        let s = g.parse_addr("010").unwrap();
        let _ = turnaround_action(&g, 0, Side::Left, s, s);
    }
}
