//! Channel-dependency-graph deadlock analysis (paper §3.2.1).
//!
//! Wormhole routing is deadlock-free iff the channel dependency graph (CDG)
//! is acyclic [Dally & Seitz]. A worm holding channel `c1` *depends on*
//! channel `c2` if it may request `c2` while holding `c1`. We build the CDG
//! from the switch connection rules and check it with a DFS cycle search.
//!
//! Two rule sets are provided:
//!
//! * [`DependencyRule::Paper`] — the legal connections of Fig. 2 (no
//!   `r → r` connection in bidirectional switches). The paper argues the
//!   resulting turnaround routing is deadlock-free because a message turns
//!   exactly once; the CDG is indeed acyclic.
//! * [`DependencyRule::AllowReascend`] — a *negative control* that admits
//!   the forbidden `r → r` connection (a message descending could ascend
//!   again). The CDG then contains cycles, demonstrating both why the rule
//!   exists and that the analysis is not vacuous.

use minnet_topology::equivalence::legal_successors;
use minnet_topology::{ChannelId, Endpoint, NetworkGraph, Side};

/// Which connection rules to admit when building the CDG.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DependencyRule {
    /// The paper's legal connections (Fig. 2).
    Paper,
    /// Additionally allow the forbidden `r → r` (re-ascend) connection.
    AllowReascend,
}

/// Build the channel dependency graph: `adj[c]` lists the channels a worm
/// holding `c` may request next.
pub fn dependency_graph(net: &NetworkGraph, rule: DependencyRule) -> Vec<Vec<ChannelId>> {
    let mut adj = vec![Vec::new(); net.num_channels()];
    let mut buf = Vec::new();
    for c in 0..net.num_channels() as ChannelId {
        legal_successors(net, c, &mut buf);
        adj[c as usize].extend_from_slice(&buf);
        if rule == DependencyRule::AllowReascend && net.kind.is_bidirectional() {
            // Add r-input → r-output edges.
            if let Endpoint::Switch {
                sw,
                side: Side::Right,
                ..
            } = net.channel(c).dst
            {
                let k = net.geometry.k();
                adj[c as usize].extend_from_slice(net.out_port_span(sw, k, 2 * k));
            }
        }
    }
    adj
}

/// Find a cycle in the dependency graph, returned as the channel sequence
/// `c_0 → c_1 → … → c_0`, or `None` if the graph is acyclic.
pub fn find_cycle(adj: &[Vec<ChannelId>]) -> Option<Vec<ChannelId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Gray,
        Black,
    }
    let mut mark = vec![Mark::White; adj.len()];
    let mut parent = vec![u32::MAX; adj.len()];
    for start in 0..adj.len() {
        if mark[start] != Mark::White {
            continue;
        }
        // Iterative DFS with an explicit edge stack.
        let mut stack: Vec<(u32, usize)> = vec![(start as u32, 0)];
        mark[start] = Mark::Gray;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < adj[v as usize].len() {
                let w = adj[v as usize][*i];
                *i += 1;
                match mark[w as usize] {
                    Mark::White => {
                        mark[w as usize] = Mark::Gray;
                        parent[w as usize] = v;
                        stack.push((w, 0));
                    }
                    Mark::Gray => {
                        // Found a back edge v → w: reconstruct the cycle.
                        let mut cycle = vec![w];
                        let mut cur = v;
                        while cur != w {
                            cycle.push(cur);
                            cur = parent[cur as usize];
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Mark::Black => {}
                }
            } else {
                mark[v as usize] = Mark::Black;
                stack.pop();
            }
        }
    }
    None
}

/// Convenience: whether the network's CDG under `rule` is acyclic
/// (deadlock-free for any routing restricted to these connections).
pub fn is_deadlock_free(net: &NetworkGraph, rule: DependencyRule) -> bool {
    find_cycle(&dependency_graph(net, rule)).is_none()
}

/// The CDG of the network with `dead_channel` removed: dead channels keep
/// no outgoing edges and appear in no one's successor list. A subgraph of
/// an acyclic graph is acyclic, so masking can never *introduce* a cycle
/// — the fault-compilation path still runs [`find_cycle`] over this graph
/// as a belt-and-braces re-check each fault epoch, so a future routing
/// rule whose masked network deadlocks fails loudly at compile time.
pub fn masked_dependency_graph(
    net: &NetworkGraph,
    rule: DependencyRule,
    dead_channel: &[bool],
) -> Vec<Vec<ChannelId>> {
    let mut adj = dependency_graph(net, rule);
    for (c, succ) in adj.iter_mut().enumerate() {
        if dead_channel[c] {
            succ.clear();
        } else {
            succ.retain(|&s| !dead_channel[s as usize]);
        }
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnet_topology::{build_bmin, build_unidir, Geometry, UnidirKind};

    #[test]
    fn unidirectional_mins_are_acyclic() {
        for kind in [UnidirKind::Cube, UnidirKind::Butterfly] {
            for d in [1u8, 2] {
                let net = build_unidir(Geometry::new(4, 3), kind, d);
                assert!(is_deadlock_free(&net, DependencyRule::Paper));
            }
        }
    }

    #[test]
    fn bmin_turnaround_is_deadlock_free() {
        for g in [Geometry::new(2, 3), Geometry::new(4, 3), Geometry::new(2, 4)] {
            let net = build_bmin(g);
            assert!(is_deadlock_free(&net, DependencyRule::Paper), "{g:?}");
        }
    }

    #[test]
    fn forbidden_reascend_creates_cycles() {
        let net = build_bmin(Geometry::new(2, 3));
        let adj = dependency_graph(&net, DependencyRule::AllowReascend);
        let cycle = find_cycle(&adj).expect("r→r connections must create a CDG cycle");
        assert!(cycle.len() >= 2);
        // Verify it really is a cycle in the graph.
        for w in cycle.windows(2) {
            assert!(adj[w[0] as usize].contains(&w[1]));
        }
        assert!(adj[*cycle.last().unwrap() as usize].contains(&cycle[0]));
    }

    #[test]
    fn reascend_does_not_affect_unidirectional_graphs() {
        let net = build_unidir(Geometry::new(2, 3), UnidirKind::Cube, 1);
        assert!(is_deadlock_free(&net, DependencyRule::AllowReascend));
    }

    #[test]
    fn masked_cdg_stays_acyclic_and_drops_dead_edges() {
        let net = build_bmin(Geometry::new(4, 3));
        let mut dead = vec![false; net.num_channels()];
        dead[3] = true;
        dead[100] = true;
        let adj = masked_dependency_graph(&net, DependencyRule::Paper, &dead);
        assert!(adj[3].is_empty() && adj[100].is_empty());
        for succ in &adj {
            assert!(!succ.contains(&3) && !succ.contains(&100));
        }
        assert!(find_cycle(&adj).is_none());
        // Even a graph made cyclic by AllowReascend loses its cycles once
        // enough channels die.
        let all_dead = vec![true; net.num_channels()];
        let adj = masked_dependency_graph(&net, DependencyRule::AllowReascend, &all_dead);
        assert!(find_cycle(&adj).is_none());
    }

    #[test]
    fn find_cycle_on_handmade_graphs() {
        // Acyclic chain.
        assert_eq!(find_cycle(&[vec![1], vec![2], vec![]]), None);
        // Simple 3-cycle.
        let c = find_cycle(&[vec![1], vec![2], vec![0]]).unwrap();
        assert_eq!(c.len(), 3);
        // Self-loop.
        let s = find_cycle(&[vec![0]]).unwrap();
        assert_eq!(s, vec![0]);
        // Diamond (acyclic despite reconvergence).
        assert_eq!(find_cycle(&[vec![1, 2], vec![3], vec![3], vec![]]), None);
    }
}
