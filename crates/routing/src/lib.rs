//! # minnet-routing
//!
//! Routing layer for the four switch-based wormhole networks of Ni, Gui and
//! Moore: destination-tag routing for the unidirectional MINs (§2),
//! turnaround routing for the bidirectional butterfly MIN (§3.1, Fig. 7),
//! shortest-path enumeration (Theorem 1), and deadlock analysis on the
//! channel-dependency graph (§3.2.1).
//!
//! The central type is [`RouteLogic`]: given a header flit that has just
//! arrived at a switch input, it lists the output channels the worm may
//! request next. The simulation engine (`minnet-sim`) applies an allocation
//! policy (random free lane / VC) on top of these candidates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deadlock;
pub mod logic;
pub mod paths;
pub mod table;
pub mod turnaround;

pub use deadlock::{dependency_graph, find_cycle, masked_dependency_graph, DependencyRule};
pub use logic::RouteLogic;
pub use table::RouteTable;
pub use paths::{enumerate_paths, paths_share_channel, shortest_path_count, shortest_path_length};
pub use turnaround::{turnaround_action, TurnaroundAction};
