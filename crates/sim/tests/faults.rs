//! Fault-layer integration tests.
//!
//! The two load-bearing properties:
//!
//! 1. **The fast path is untouched.** An *empty* fault plan must produce
//!    bit-identical reports to the plain faultless entry points, across
//!    all four network designs and both Poisson and scripted traffic —
//!    the fault layer is pay-for-what-you-use.
//! 2. **Degradation is graceful and structured.** A single dead
//!    inter-stage link in a BMIN (which keeps path diversity) still
//!    delivers every packet; in a TMIN (unique paths) the disconnected
//!    traffic is refused with accounting; a network wedged on purpose
//!    trips the no-progress watchdog with a diagnostic instead of
//!    hanging.

use minnet_sim::{
    CompiledNet, EngineConfig, EngineState, ScriptedMsg, SimError,
    engine::Script,
};
use minnet_topology::{
    build_bmin, build_unidir, Fault, FaultPlan, FaultTarget, Geometry, NetworkGraph, UnidirKind,
};
use minnet_traffic::{Clustering, MessageSizeDist, TrafficPattern, Workload, WorkloadSpec};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone, Copy)]
enum NetChoice {
    Tmin,
    Dmin,
    Vmin,
    Bmin,
}

fn build(choice: NetChoice, g: Geometry) -> (NetworkGraph, u8) {
    match choice {
        NetChoice::Tmin => (build_unidir(g, UnidirKind::Cube, 1), 1),
        NetChoice::Dmin => (build_unidir(g, UnidirKind::Cube, 2), 1),
        NetChoice::Vmin => (build_unidir(g, UnidirKind::Cube, 1), 2),
        NetChoice::Bmin => (build_bmin(g), 1),
    }
}

fn compiled(choice: NetChoice, g: Geometry, cfg: EngineConfig) -> CompiledNet {
    let (net, vcs) = build(choice, g);
    let cfg = EngineConfig { vcs, ..cfg };
    CompiledNet::new(Arc::new(net), cfg).unwrap()
}

fn uniform_workload(g: Geometry, load: f64) -> Workload {
    let spec = WorkloadSpec {
        offered_load: load,
        pattern: TrafficPattern::Uniform,
        clustering: Clustering::Global,
        rates: None,
        sizes: MessageSizeDist::Fixed(16),
    };
    Workload::compile(g, &spec).unwrap()
}

fn inter_stage_channels(net: &NetworkGraph) -> Vec<u32> {
    (0..net.num_channels() as u32)
        .filter(|&c| {
            let ch = net.channel(c);
            ch.src.switch().is_some() && ch.dst.switch().is_some()
        })
        .collect()
}

fn scripted(g: Geometry, raw: &[(u64, u32, u32, u32)]) -> Script {
    let n = g.nodes();
    let msgs: Vec<ScriptedMsg> = raw
        .iter()
        .map(|&(time, s, d, len)| {
            let src = s % n;
            let mut dst = d % n;
            if dst == src {
                dst = (dst + 1) % n;
            }
            ScriptedMsg { time, src, dst, len }
        })
        .collect();
    Script::compile(g, &msgs).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Property 1, Poisson half: an empty `FaultPlan` compiles to a
    // trivial schedule the engine normalises away — bit-identical to the
    // plain path, for every network design.
    #[test]
    fn empty_plan_is_bitwise_identical_poisson(
        choice in prop_oneof![
            Just(NetChoice::Tmin), Just(NetChoice::Dmin),
            Just(NetChoice::Vmin), Just(NetChoice::Bmin),
        ],
        load in 0.05f64..0.5,
        seed in 0u64..1000,
    ) {
        let g = Geometry::new(4, 2);
        let cfg = EngineConfig { warmup: 200, measure: 2_000, ..EngineConfig::default() };
        let net = compiled(choice, g, cfg);
        let wl = uniform_workload(g, load);
        let faults = net.compile_faults(&FaultPlan::new()).unwrap();
        prop_assert!(faults.is_trivial());
        let mut st = EngineState::new();
        let plain = net.run_poisson(&wl, seed, &mut st).unwrap();
        let faulted = net.run_poisson_faulted(&wl, Some(&faults), seed, &mut st).unwrap();
        prop_assert!(plain.bitwise_eq(&faulted), "empty plan changed a {choice:?} run");
    }

    // Property 1, scripted half.
    #[test]
    fn empty_plan_is_bitwise_identical_scripted(
        choice in prop_oneof![
            Just(NetChoice::Tmin), Just(NetChoice::Dmin),
            Just(NetChoice::Vmin), Just(NetChoice::Bmin),
        ],
        raw in proptest::collection::vec((0u64..200, 0u32..64, 0u32..64, 1u32..64), 1..16),
        seed in 0u64..1000,
    ) {
        let g = Geometry::new(4, 2);
        let cfg = EngineConfig { warmup: 0, measure: 1_000_000, ..EngineConfig::default() };
        let net = compiled(choice, g, cfg);
        let script = scripted(g, &raw);
        let faults = net.compile_faults(&FaultPlan::new()).unwrap();
        let mut st = EngineState::new();
        let plain = net.run_script(&script, seed, &mut st).unwrap();
        let faulted = net.run_script_faulted(&script, Some(&faults), seed, &mut st).unwrap();
        prop_assert!(plain.bitwise_eq(&faulted), "empty plan changed a {choice:?} run");
    }

    // Property 2, BMIN half: *any* single inter-stage link fault leaves
    // the BMIN fully connected (every stage-0 switch keeps k-1 live
    // parents), so every scripted message is still delivered.
    #[test]
    fn bmin_delivers_everything_under_any_single_link_fault(
        victim_idx in 0usize..1000,
        raw in proptest::collection::vec((0u64..200, 0u32..64, 0u32..64, 1u32..64), 1..16),
        seed in 0u64..1000,
    ) {
        let g = Geometry::new(4, 2);
        let cfg = EngineConfig { warmup: 0, measure: 1_000_000, ..EngineConfig::default() };
        let net = compiled(NetChoice::Bmin, g, cfg);
        let pool = inter_stage_channels(net.network());
        let victim = pool[victim_idx % pool.len()];
        let plan = FaultPlan::new().with(Fault::permanent(FaultTarget::Channel(victim)));
        let faults = net.compile_faults(&plan).unwrap();
        prop_assert!(!faults.is_trivial());
        let script = scripted(g, &raw);
        let mut st = EngineState::new();
        let report = net.run_script_faulted(&script, Some(&faults), seed, &mut st).unwrap();
        let n_msgs = raw.len();
        prop_assert_eq!(report.undeliverable_packets, 0, "channel {} disconnected a BMIN", victim);
        prop_assert_eq!(report.deliveries.unwrap().len(), n_msgs);
        prop_assert_eq!(report.in_flight_at_end, 0);
    }

    // The word-parallel kernels fold the per-epoch dead-lane masks into
    // their eligibility words; under an arbitrary transient fault they
    // must stay bit-identical to the scalar path (toggle forced in the
    // config, independent of the environment default).
    #[test]
    fn word_kernel_toggle_is_bitwise_identical_under_faults(
        choice in prop_oneof![
            Just(NetChoice::Tmin), Just(NetChoice::Dmin),
            Just(NetChoice::Vmin), Just(NetChoice::Bmin),
        ],
        victim_idx in 0usize..1000,
        start in 0u64..2000,
        len in 1u64..3000,
        load in 0.1f64..0.5,
        seed in 0u64..1000,
    ) {
        let g = Geometry::new(4, 2);
        let cfg = EngineConfig { warmup: 200, measure: 2_000, ..EngineConfig::default() };
        let net = compiled(choice, g, cfg);
        let pool = inter_stage_channels(net.network());
        let victim = pool[victim_idx % pool.len()];
        let plan = FaultPlan::new()
            .with(Fault::transient(FaultTarget::Channel(victim), start, start + len));
        let faults = net.compile_faults(&plan).unwrap();
        let wl = uniform_workload(g, load);
        let mut st = EngineState::new();
        let on = net
            .with_word_kernels(true)
            .run_poisson_faulted(&wl, Some(&faults), seed, &mut st)
            .unwrap();
        let off = net
            .with_word_kernels(false)
            .run_poisson_faulted(&wl, Some(&faults), seed, &mut st)
            .unwrap();
        prop_assert!(
            on.bitwise_eq(&off),
            "{choice:?} victim {victim} window [{start}, {}): kernels diverge under faults",
            start + len
        );
    }
}

/// Property 2, TMIN half: unique paths mean a dead inter-stage link
/// disconnects some (src, dst) pairs. The run must terminate normally,
/// keep delivering the connected traffic, and report the rest as
/// structured refusals — never panic, never hang.
#[test]
fn tmin_reports_structured_disconnection() {
    let g = Geometry::new(4, 3);
    let cfg = EngineConfig { warmup: 100, measure: 4_000, ..EngineConfig::default() };
    let net = compiled(NetChoice::Tmin, g, cfg);
    let victim = inter_stage_channels(net.network())[0];
    let plan = FaultPlan::new().with(Fault::permanent(FaultTarget::Channel(victim)));
    let faults = net.compile_faults(&plan).unwrap();
    let wl = uniform_workload(g, 0.3);
    let mut st = EngineState::new();
    let report = net.run_poisson_faulted(&wl, Some(&faults), 7, &mut st).unwrap();
    assert!(report.delivered_packets > 0, "connected pairs must keep flowing");
    assert!(
        report.undeliverable_packets > 0,
        "uniform traffic must hit a disconnected pair"
    );
    assert_eq!(report.aborted_packets, 0, "a cycle-0 fault catches no worm mid-flight");
}

/// A transient fault aborts the worms it catches mid-flight, refuses the
/// unreachable traffic during the outage, and lets traffic flow again
/// after repair — scripted, so each phase is pinned.
#[test]
fn transient_fault_aborts_refuses_then_recovers() {
    let g = Geometry::new(4, 2);
    let cfg = EngineConfig {
        warmup: 0,
        measure: 50_000,
        collect_trace: true,
        ..EngineConfig::default()
    };
    let net = compiled(NetChoice::Tmin, g, cfg.clone());

    // Find the path of a long faultless worm, then fault its middle hop.
    let probe = Script::compile(
        g,
        &[ScriptedMsg { time: 0, src: 0, dst: g.nodes() - 1, len: 3_000 }],
    )
    .unwrap();
    let mut st = EngineState::new();
    let clean = net.run_script(&probe, 7, &mut st).unwrap();
    let path = clean.trace.as_ref().unwrap().channel_path(0);
    let victim = path[path.len() / 2];

    // The worm streams over [0, ~3000]; the fault hits at 1000 and heals
    // at 5000. A second identical message becomes available at 10_000,
    // safely after repair.
    let script = Script::compile(
        g,
        &[
            ScriptedMsg { time: 0, src: 0, dst: g.nodes() - 1, len: 3_000 },
            ScriptedMsg { time: 2_000, src: 0, dst: g.nodes() - 1, len: 8 },
            ScriptedMsg { time: 10_000, src: 0, dst: g.nodes() - 1, len: 8 },
        ],
    )
    .unwrap();
    let plan = FaultPlan::new().with(Fault::transient(FaultTarget::Channel(victim), 1_000, 5_000));
    let faults = net.compile_faults(&plan).unwrap();
    let report = net.run_script_faulted(&script, Some(&faults), 7, &mut st).unwrap();

    assert_eq!(report.aborted_packets, 1, "the streaming worm is caught at onset");
    assert_eq!(
        report.undeliverable_packets, 1,
        "the mid-outage message is refused"
    );
    let deliveries = report.deliveries.unwrap();
    assert_eq!(deliveries.len(), 1, "only the post-repair message completes");
    assert_eq!(deliveries[0].gen_time, 10_000);
    assert_eq!(report.in_flight_at_end, 0);
}

/// The watchdog: with packet aborts disabled (test knob), a worm wedged on
/// a dead lane stalls the drain forever — the engine must return a
/// structured [`SimError::NoProgress`] naming the stalled packet and its
/// held channels, not hang.
#[test]
fn watchdog_fires_with_diagnostic_on_wedged_network() {
    let g = Geometry::new(4, 2);
    let cfg = EngineConfig {
        warmup: 0,
        measure: 1_000_000,
        collect_trace: true,
        fault_abort: false,
        watchdog_window: 500,
        ..EngineConfig::default()
    };
    let net = compiled(NetChoice::Tmin, g, cfg);
    let dst = g.nodes() - 1;
    let script = Script::compile(
        g,
        &[ScriptedMsg { time: 0, src: 0, dst, len: 3_000 }],
    )
    .unwrap();
    let mut st = EngineState::new();
    let clean = net.run_script(&script, 7, &mut st).unwrap();
    let path = clean.trace.as_ref().unwrap().channel_path(0);
    let victim = path[path.len() / 2];

    let plan = FaultPlan::new().with(Fault::transient(FaultTarget::Channel(victim), 100, u64::MAX));
    let faults = net.compile_faults(&plan).unwrap();
    match net.run_script_faulted(&script, Some(&faults), 7, &mut st) {
        Err(SimError::NoProgress(diag)) => {
            assert_eq!(diag.window, 500);
            assert!(diag.cycle >= 100 + 500, "cannot trip before onset + window");
            assert_eq!(diag.stalled.len(), 1);
            assert_eq!(diag.stalled[0].src, 0);
            assert_eq!(diag.stalled[0].dst, dst);
            assert!(diag.stalled[0].sent < 3_000, "the worm must be caught mid-stream");
            assert!(!diag.held_channels.is_empty());
            assert!(
                diag.held_channels.contains(&victim),
                "the dead channel {victim} is among the held ones {:?}",
                diag.held_channels
            );
            // A single wedged worm waits on a dead lane, not on another
            // packet — there is no cycle to report.
            assert!(diag.suspected_cycle.is_none());
        }
        other => panic!("expected a watchdog trip, got {other:?}"),
    }
}

/// The watchdog never fires on a healthy (faultless) network, even with
/// an aggressively small window: some flit moves every cycle whenever
/// worms are in flight.
#[test]
fn watchdog_is_silent_on_healthy_runs() {
    let g = Geometry::new(4, 2);
    let cfg = EngineConfig {
        warmup: 100,
        measure: 3_000,
        watchdog_window: 1,
        ..EngineConfig::default()
    };
    for choice in [NetChoice::Tmin, NetChoice::Dmin, NetChoice::Vmin, NetChoice::Bmin] {
        let net = compiled(choice, g, cfg.clone());
        let wl = uniform_workload(g, 0.4);
        let mut st = EngineState::new();
        net.run_poisson(&wl, 7, &mut st)
            .unwrap_or_else(|e| panic!("{choice:?}: spurious watchdog trip: {e}"));
    }
}
