//! Deterministic scenario tests pinning down the engine's wormhole
//! semantics: exact unloaded latencies, blocking, lane/VC sharing, and
//! stochastic sanity (determinism, conservation, sustainability).

use minnet_sim::{run_scripted, run_simulation, EngineConfig, ScriptedMsg, TransmitOrder};
use minnet_switch::VcMuxPolicy;
use minnet_topology::{build_bmin, build_unidir, Geometry, NodeAddr, UnidirKind};
use minnet_traffic::{MessageSizeDist, Workload, WorkloadSpec};

fn scripted_cfg() -> EngineConfig {
    EngineConfig {
        warmup: 0,
        measure: 1_000_000,
        ..EngineConfig::default()
    }
}

/// Unloaded wormhole latency over P channels with L flits is P + L - 1
/// cycles: the header pays one cycle per hop, the tail streams behind.
#[test]
fn tmin_single_message_exact_latency() {
    for kind in [UnidirKind::Cube, UnidirKind::Butterfly] {
        let g = Geometry::new(2, 3);
        let net = build_unidir(g, kind, 1);
        for len in [1u32, 8, 100] {
            let report = run_scripted(
                &net,
                &[ScriptedMsg { time: 0, src: 0, dst: 7, len }],
                &scripted_cfg(),
            )
            .unwrap();
            let deliveries = report.deliveries.unwrap();
            assert_eq!(deliveries.len(), 1);
            let expect = (g.n() + 1) as u64 + len as u64 - 1;
            assert_eq!(deliveries[0].done_time, expect, "{kind:?} len {len}");
        }
    }
}

/// BMIN: path length 2(t+1), so unloaded latency is 2(t+1) + L - 1 and is
/// *distance-sensitive* only in the additive path term (the wormhole
/// distance-insensitivity property).
#[test]
fn bmin_single_message_exact_latency() {
    let g = Geometry::new(4, 3);
    let net = build_bmin(g);
    let len = 16u32;
    for (src, dst) in [(0u32, 1u32), (0, 4), (0, 63), (17, 16), (5, 62)] {
        let t = g
            .first_difference(NodeAddr(src), NodeAddr(dst))
            .unwrap();
        let report = run_scripted(
            &net,
            &[ScriptedMsg { time: 0, src, dst, len }],
            &scripted_cfg(),
        )
        .unwrap();
        let d = &report.deliveries.unwrap()[0];
        assert_eq!(
            d.done_time,
            (2 * (t + 1)) as u64 + len as u64 - 1,
            "{src}→{dst}"
        );
    }
}

/// Wormhole switching is distance-insensitive when there is no contention:
/// doubling the path length adds hops, not serialization time.
#[test]
fn distance_insensitivity() {
    let g = Geometry::new(4, 3);
    let net = build_bmin(g);
    let len = 512u32;
    let near = run_scripted(&net, &[ScriptedMsg { time: 0, src: 0, dst: 1, len }], &scripted_cfg())
        .unwrap()
        .deliveries
        .unwrap()[0]
        .done_time;
    let far = run_scripted(&net, &[ScriptedMsg { time: 0, src: 0, dst: 63, len }], &scripted_cfg())
        .unwrap()
        .deliveries
        .unwrap()[0]
        .done_time;
    // 4 extra channels on a 512-flit message: under 1% extra latency.
    assert_eq!(far - near, 4);
    let rel = (far - near) as f64 / near as f64;
    assert!(rel < 0.01);
}

/// Two messages to the same destination serialize on the ejection channel.
#[test]
fn output_contention_serializes() {
    let g = Geometry::new(2, 3);
    let net = build_unidir(g, UnidirKind::Cube, 1);
    let len = 32u32;
    let report = run_scripted(
        &net,
        &[
            ScriptedMsg { time: 0, src: 0, dst: 7, len },
            ScriptedMsg { time: 0, src: 1, dst: 7, len },
        ],
        &scripted_cfg(),
    )
    .unwrap();
    let ds = report.deliveries.unwrap();
    assert_eq!(ds.len(), 2);
    let (first, second) = (ds[0].done_time, ds[1].done_time);
    assert!(second > first);
    // The loser cannot finish sooner than a full serialization after the
    // winner's tail frees the shared channel.
    assert!(second - first >= len as u64, "spread {}", second - first);
}

/// With dilation 2, two worms crossing the same switch output port proceed
/// in parallel on separate lanes.
///
/// Under cube routing, 0→6 and 4→7 enter the *same* stage-0 switch
/// (shuffle maps both into switch 0) and demand the same output ports at
/// stages 0 and 1 (tag digits 1, 1), diverging only at stage 2 — so they
/// contend for two shared channels in a TMIN but for none in a DMIN.
#[test]
fn dilation_removes_port_serialization() {
    let g = Geometry::new(2, 3);
    let len = 64u32;
    let msgs = [
        ScriptedMsg { time: 0, src: 0, dst: 6, len },
        ScriptedMsg { time: 0, src: 4, dst: 7, len },
    ];
    let solo = run_scripted(
        &build_unidir(g, UnidirKind::Cube, 1),
        &msgs[..1],
        &scripted_cfg(),
    )
    .unwrap()
    .deliveries
    .unwrap()[0]
        .done_time;

    let tmin = run_scripted(&build_unidir(g, UnidirKind::Cube, 1), &msgs, &scripted_cfg()).unwrap();
    let dmin = run_scripted(&build_unidir(g, UnidirKind::Cube, 2), &msgs, &scripted_cfg()).unwrap();
    let tmax = tmin.deliveries.unwrap().iter().map(|d| d.done_time).max().unwrap();
    let dmax = dmin.deliveries.unwrap().iter().map(|d| d.done_time).max().unwrap();
    // TMIN: the two worms serialize on a shared channel. DMIN: both run at
    // full speed on separate lanes and finish together.
    assert!(tmax >= solo + len as u64 - 4, "tmin {tmax} vs solo {solo}");
    assert_eq!(dmax, solo, "dilated lanes must remove the serialization");
}

/// Virtual channels interleave two worms over one physical channel at
/// flit granularity: with fair round-robin both finish together (each at
/// half bandwidth over the shared stretch); with one lane (TMIN) the loser
/// waits for the winner's tail.
#[test]
fn vc_interleaving_shares_bandwidth_fairly() {
    let g = Geometry::new(2, 3);
    let len = 64u32;
    let msgs = [
        ScriptedMsg { time: 0, src: 0, dst: 6, len },
        ScriptedMsg { time: 0, src: 4, dst: 7, len },
    ];
    let net = build_unidir(g, UnidirKind::Cube, 1);
    let tmin = run_scripted(&net, &msgs, &scripted_cfg()).unwrap();
    let vmin = run_scripted(
        &net,
        &msgs,
        &EngineConfig { vcs: 2, ..scripted_cfg() },
    )
    .unwrap();
    let t: Vec<u64> = tmin.deliveries.unwrap().iter().map(|d| d.done_time).collect();
    let v: Vec<u64> = vmin.deliveries.unwrap().iter().map(|d| d.done_time).collect();
    // TMIN: one worm blocks. Its completions are far apart.
    assert!(t[1] - t[0] >= len as u64 - 4);
    // VMIN round-robin: both worms share the channel and finish within a
    // few cycles of each other...
    assert!(v[1] - v[0] <= 4, "VC completions {v:?}");
    // ...and the first VMIN completion is *later* than the first TMIN
    // completion (fairness spreads bandwidth instead of racing one worm).
    assert!(v[0] > t[0]);
}

/// Winner-holds multiplexing degenerates to TMIN-like serialization.
#[test]
fn vc_winner_holds_ablation() {
    let g = Geometry::new(2, 3);
    let len = 64u32;
    let msgs = [
        ScriptedMsg { time: 0, src: 0, dst: 6, len },
        ScriptedMsg { time: 0, src: 4, dst: 7, len },
    ];
    let net = build_unidir(g, UnidirKind::Cube, 1);
    let wh = run_scripted(
        &net,
        &msgs,
        &EngineConfig { vcs: 2, vc_mux: VcMuxPolicy::WinnerHolds, ..scripted_cfg() },
    )
    .unwrap();
    let w: Vec<u64> = wh.deliveries.unwrap().iter().map(|d| d.done_time).collect();
    // The held worm streams at full bandwidth; completions are spread.
    assert!(w[1] - w[0] >= len as u64 / 2, "winner-holds spread {w:?}");
}

/// One-port rule: a source transmits packets strictly in sequence even
/// when virtual channels would allow interleaving at the injection link.
#[test]
fn one_port_injection_is_sequential() {
    let g = Geometry::new(2, 3);
    let len = 50u32;
    let net = build_unidir(g, UnidirKind::Cube, 1);
    let report = run_scripted(
        &net,
        &[
            ScriptedMsg { time: 0, src: 0, dst: 5, len },
            ScriptedMsg { time: 0, src: 0, dst: 6, len },
        ],
        &EngineConfig { vcs: 2, ..scripted_cfg() },
    )
    .unwrap();
    let ds = report.deliveries.unwrap();
    // The second message cannot finish before the first has fully left the
    // source (len cycles) plus its own serialization.
    let second = ds.iter().map(|d| d.done_time).max().unwrap();
    assert!(second >= 2 * len as u64, "second completion {second}");
}

/// BMIN turnaround routing delivers under load with no deadlock and no
/// misrouting (the engine asserts delivery-to-destination internally).
#[test]
fn bmin_delivers_under_scripted_burst() {
    let g = Geometry::new(4, 3);
    let net = build_bmin(g);
    let mut msgs = Vec::new();
    for s in 0..64u32 {
        let d = (s + 21) % 64;
        if s != d {
            msgs.push(ScriptedMsg { time: (s as u64) % 7, src: s, dst: d, len: 24 });
        }
    }
    let report = run_scripted(&net, &msgs, &scripted_cfg()).unwrap();
    assert_eq!(report.deliveries.unwrap().len(), msgs.len());
}

/// Transmit-order ablation: every channel still carries at most one flit
/// per cycle in either order, so the steady-state timing of a single
/// unblocked worm is *identical* — the orders only differ in how quickly
/// bubbles close inside contended worms.
#[test]
fn transmit_order_single_worm_is_order_insensitive() {
    let g = Geometry::new(2, 3);
    let net = build_unidir(g, UnidirKind::Cube, 1);
    let msg = [ScriptedMsg { time: 0, src: 0, dst: 7, len: 16 }];
    let topo = run_scripted(&net, &msg, &scripted_cfg()).unwrap();
    let build = run_scripted(
        &net,
        &msg,
        &EngineConfig { transmit_order: TransmitOrder::BuildOrder, ..scripted_cfg() },
    )
    .unwrap();
    assert_eq!(
        topo.deliveries.unwrap()[0].done_time,
        build.deliveries.unwrap()[0].done_time
    );
}

/// Crossbar validation (Fig. 2 legality) holds over a loaded run on every
/// network type.
#[test]
fn crossbar_legality_holds_under_load() {
    let cfg = EngineConfig {
        warmup: 500,
        measure: 4_000,
        validate_crossbars: true,
        ..EngineConfig::default()
    };
    let g = Geometry::new(2, 3);
    let spec = WorkloadSpec {
        sizes: MessageSizeDist::Fixed(16),
        ..WorkloadSpec::global_uniform(0.6)
    };
    let wl = Workload::compile(g, &spec).unwrap();
    for net in [
        build_unidir(g, UnidirKind::Cube, 1),
        build_unidir(g, UnidirKind::Butterfly, 1),
        build_unidir(g, UnidirKind::Cube, 2),
        build_bmin(g),
    ] {
        let report = run_simulation(&net, &wl, &cfg).unwrap();
        assert!(report.delivered_packets > 0);
    }
}

/// Same seed ⇒ bit-identical results; different seed ⇒ different sample
/// path but similar throughput.
#[test]
fn determinism_and_seed_sensitivity() {
    let g = Geometry::new(4, 3);
    let net = build_unidir(g, UnidirKind::Cube, 1);
    let wl = Workload::compile(
        g,
        &WorkloadSpec {
            sizes: MessageSizeDist::Fixed(32),
            ..WorkloadSpec::global_uniform(0.3)
        },
    )
    .unwrap();
    let cfg = EngineConfig { warmup: 1_000, measure: 8_000, ..EngineConfig::default() };
    let a = run_simulation(&net, &wl, &cfg).unwrap();
    let b = run_simulation(&net, &wl, &cfg).unwrap();
    assert_eq!(a.delivered_packets, b.delivered_packets);
    assert_eq!(a.mean_latency_cycles, b.mean_latency_cycles);
    assert_eq!(a.max_latency_cycles, b.max_latency_cycles);
    let c = run_simulation(&net, &wl, &EngineConfig { seed: 99, ..cfg }).unwrap();
    assert_ne!(a.mean_latency_cycles, c.mean_latency_cycles);
    let rel = (a.accepted_flits_per_node_cycle - c.accepted_flits_per_node_cycle).abs()
        / a.accepted_flits_per_node_cycle;
    assert!(rel < 0.15, "seed changed throughput by {rel}");
}

/// Flit conservation at low load: everything generated is delivered (plus
/// possibly a handful still in flight), and latency sits near the
/// unloaded value.
#[test]
fn low_load_conservation_and_latency() {
    let g = Geometry::new(4, 3);
    let net = build_unidir(g, UnidirKind::Cube, 1);
    let wl = Workload::compile(
        g,
        &WorkloadSpec {
            sizes: MessageSizeDist::Fixed(32),
            ..WorkloadSpec::global_uniform(0.05)
        },
    )
    .unwrap();
    let cfg = EngineConfig { warmup: 2_000, measure: 20_000, ..EngineConfig::default() };
    let r = run_simulation(&net, &wl, &cfg).unwrap();
    assert!(r.sustainable);
    assert!(r.delivered_packets > 100, "not enough samples: {}", r.delivered_packets);
    // Unloaded: 4 hops + 31 = 35 cycles; allow mild queueing.
    assert!(r.mean_latency_cycles >= 35.0);
    assert!(r.mean_latency_cycles < 45.0, "latency {}", r.mean_latency_cycles);
    // Accepted ≈ offered.
    let rel = (r.accepted_flits_per_node_cycle - r.offered_flits_per_node_cycle).abs()
        / r.offered_flits_per_node_cycle;
    assert!(rel < 0.05, "accepted deviates from offered by {rel}");
}

/// Offered load beyond the one-port bound cannot be sustained: queues
/// blow through the paper's 100-message limit.
#[test]
fn overload_is_unsustainable() {
    let g = Geometry::new(2, 3);
    let net = build_unidir(g, UnidirKind::Cube, 1);
    let wl = Workload::compile(
        g,
        &WorkloadSpec {
            sizes: MessageSizeDist::Fixed(16),
            ..WorkloadSpec::global_uniform(2.0)
        },
    )
    .unwrap();
    let cfg = EngineConfig { warmup: 0, measure: 40_000, ..EngineConfig::default() };
    let r = run_simulation(&net, &wl, &cfg).unwrap();
    assert!(!r.sustainable, "max queue {}", r.max_queue);
    assert!(r.max_queue > 100);
    // Accepted throughput saturates strictly below the offered rate.
    assert!(r.accepted_flits_per_node_cycle < 0.9 * r.offered_flits_per_node_cycle);
}

/// Channel-utilization collection: injection channels of active sources
/// are busy, utilization is within [0, 1].
#[test]
fn channel_utilization_collection() {
    let g = Geometry::new(2, 3);
    let net = build_unidir(g, UnidirKind::Cube, 1);
    let wl = Workload::compile(
        g,
        &WorkloadSpec {
            sizes: MessageSizeDist::Fixed(16),
            ..WorkloadSpec::global_uniform(0.4)
        },
    )
    .unwrap();
    let cfg = EngineConfig {
        warmup: 1_000,
        measure: 10_000,
        collect_channel_util: true,
        ..EngineConfig::default()
    };
    let r = run_simulation(&net, &wl, &cfg).unwrap();
    let util = r.channel_utilization.unwrap();
    assert_eq!(util.len(), net.num_channels());
    assert!(util.iter().all(|&u| (0.0..=1.0).contains(&u)));
    let mean: f64 = util.iter().sum::<f64>() / util.len() as f64;
    assert!(mean > 0.2, "mean utilization {mean}");
}

/// Deeper channel buffers do not change uncontended timing …
#[test]
fn buffer_depth_preserves_unloaded_latency() {
    let g = Geometry::new(2, 3);
    let net = build_unidir(g, UnidirKind::Cube, 1);
    let msg = [ScriptedMsg { time: 0, src: 0, dst: 7, len: 32 }];
    let d1 = run_scripted(&net, &msg, &scripted_cfg()).unwrap();
    let d8 = run_scripted(
        &net,
        &msg,
        &EngineConfig { buffer_depth: 8, ..scripted_cfg() },
    )
    .unwrap();
    assert_eq!(
        d1.deliveries.unwrap()[0].done_time,
        d8.deliveries.unwrap()[0].done_time
    );
}

/// … but they let a blocked worm compress into buffers, releasing its
/// upstream channels early — the mechanism the paper's "only one flit
/// buffer" condition suppresses.
///
/// Scenario (cube TMIN): A (1→7, 300 flits) occupies node 7's ejection
/// channel. B (4→7, 6 flits) blocks behind A; its worm parks in the
/// buffers of its level-2 channel. C (0→4, 16 flits) needs only B's
/// *level-1* channel and diverges before the parking spot. With one-flit
/// buffers B's tail cannot cross level 1 until A drains, so C waits out
/// most of A; with depth-8 buffers all six of B's flits compress past
/// level 1 within a few cycles and C sails through.
#[test]
fn buffer_depth_releases_blocked_chains() {
    let g = Geometry::new(2, 3);
    let net = build_unidir(g, UnidirKind::Cube, 1);
    let msgs = [
        ScriptedMsg { time: 0, src: 1, dst: 7, len: 300 },
        ScriptedMsg { time: 2, src: 4, dst: 7, len: 6 },
        ScriptedMsg { time: 8, src: 0, dst: 4, len: 16 },
    ];
    let done_c = |depth: u16| {
        let r = run_scripted(
            &net,
            &msgs,
            &EngineConfig { buffer_depth: depth, ..scripted_cfg() },
        )
        .unwrap();
        r.deliveries
            .unwrap()
            .iter()
            .find(|d| d.dst == 4)
            .expect("C delivered")
            .done_time
    };
    let shallow = done_c(1);
    let deep = done_c(8);
    assert!(
        deep + 100 < shallow,
        "depth 8 ({deep}) should beat depth 1 ({shallow}) by ~A's residual length"
    );
}

/// The BMIN's random forward-channel choice spreads load: under global
/// uniform traffic every forward channel at each level carries nearly the
/// same traffic (coefficient of variation small), and backward channels
/// are symmetric by the uniform destinations.
#[test]
fn bmin_adaptive_up_routing_balances_channels() {
    use minnet_topology::Direction;
    let g = Geometry::new(4, 3);
    let net = build_bmin(g);
    let wl = Workload::compile(
        g,
        &WorkloadSpec {
            sizes: MessageSizeDist::Fixed(32),
            ..WorkloadSpec::global_uniform(0.3)
        },
    )
    .unwrap();
    let cfg = EngineConfig {
        warmup: 3_000,
        measure: 30_000,
        collect_channel_util: true,
        ..EngineConfig::default()
    };
    let r = run_simulation(&net, &wl, &cfg).unwrap();
    let util = r.channel_utilization.unwrap();
    for level in 0..g.n() as u8 {
        for dir in [Direction::Forward, Direction::Backward] {
            let us: Vec<f64> = net
                .channels_at_level(level, dir)
                .iter()
                .map(|&c| util[c as usize])
                .collect();
            let mean = us.iter().sum::<f64>() / us.len() as f64;
            assert!(mean > 0.0, "level {level} {dir:?} idle");
            let var = us.iter().map(|u| (u - mean) * (u - mean)).sum::<f64>() / us.len() as f64;
            let cov = var.sqrt() / mean;
            assert!(
                cov < 0.25,
                "level {level} {dir:?}: utilization imbalance cov = {cov:.3}"
            );
        }
    }
}

/// Report internal consistency under load: percentiles are ordered, the
/// CI is finite, and accepted throughput never exceeds offered or the
/// one-port bound.
#[test]
fn report_metric_consistency() {
    let g = Geometry::new(4, 3);
    let net = build_unidir(g, UnidirKind::Cube, 2);
    let wl = Workload::compile(
        g,
        &WorkloadSpec {
            sizes: MessageSizeDist::PAPER,
            ..WorkloadSpec::global_uniform(0.5)
        },
    )
    .unwrap();
    let cfg = EngineConfig { warmup: 3_000, measure: 20_000, ..EngineConfig::default() };
    let r = run_simulation(&net, &wl, &cfg).unwrap();
    assert!(r.p50_latency_cycles <= r.p95_latency_cycles);
    assert!(r.p95_latency_cycles <= r.p99_latency_cycles);
    assert!(r.p99_latency_cycles <= r.max_latency_cycles);
    assert!((r.p50_latency_cycles as f64) < 2.0 * r.mean_latency_cycles);
    assert!(r.latency_ci95_cycles.is_finite() && r.latency_ci95_cycles >= 0.0);
    assert!(r.accepted_flits_per_node_cycle <= 1.0);
    assert!(r.accepted_flits_per_node_cycle <= r.offered_flits_per_node_cycle * 1.05);
    assert!(r.mean_queue >= 0.0);
    assert_eq!(r.cycles, 23_000);
}

/// Chained messages: a relay's send starts exactly `overhead` cycles
/// after its enabling delivery, so a two-hop chain's exact timing is the
/// sum of unloaded latencies plus the overhead.
#[test]
fn chained_messages_exact_relay_timing() {
    use minnet_sim::{run_chained, ChainedMsg};
    let g = Geometry::new(2, 3);
    let net = build_unidir(g, UnidirKind::Cube, 1);
    let len = 20u32;
    let overhead = 7u64;
    let msgs = [
        ChainedMsg { src: 0, dst: 3, len, earliest: 5, after: None },
        ChainedMsg { src: 3, dst: 6, len, earliest: 0, after: Some(0) },
    ];
    let cfg = EngineConfig { warmup: 0, measure: 100_000, ..EngineConfig::default() };
    let r = run_chained(&net, &msgs, overhead, &cfg).unwrap();
    let ds = r.deliveries.unwrap();
    assert_eq!(ds.len(), 2);
    let hop = (g.n() + 1) as u64 + len as u64 - 1; // 23 cycles unloaded
    let first = ds.iter().find(|d| d.tag == 0).unwrap();
    let second = ds.iter().find(|d| d.tag == 1).unwrap();
    assert_eq!(first.done_time, 5 + hop);
    assert_eq!(second.gen_time, first.done_time + overhead);
    assert_eq!(second.done_time, first.done_time + overhead + hop);
}

/// Chained validation: forward references and self-sends are rejected.
#[test]
fn chained_input_validation() {
    use minnet_sim::{run_chained, ChainedMsg};
    let g = Geometry::new(2, 3);
    let net = build_unidir(g, UnidirKind::Cube, 1);
    let cfg = EngineConfig { warmup: 0, measure: 1_000, ..EngineConfig::default() };
    // Forward dependency.
    let bad = [
        ChainedMsg { src: 0, dst: 1, len: 8, earliest: 0, after: Some(1) },
        ChainedMsg { src: 1, dst: 2, len: 8, earliest: 0, after: None },
    ];
    assert!(run_chained(&net, &bad, 0, &cfg).is_err());
    // Self-send.
    let selfy = [ChainedMsg { src: 2, dst: 2, len: 8, earliest: 0, after: None }];
    assert!(run_chained(&net, &selfy, 0, &cfg).is_err());
}

/// Scripted-run input validation.
#[test]
fn scripted_input_validation() {
    let g = Geometry::new(2, 3);
    let net = build_unidir(g, UnidirKind::Cube, 1);
    assert!(run_scripted(&net, &[ScriptedMsg { time: 0, src: 3, dst: 3, len: 8 }], &scripted_cfg()).is_err());
    assert!(run_scripted(&net, &[ScriptedMsg { time: 0, src: 0, dst: 99, len: 8 }], &scripted_cfg()).is_err());
    assert!(run_scripted(&net, &[ScriptedMsg { time: 0, src: 0, dst: 1, len: 0 }], &scripted_cfg()).is_err());
}
