//! Trace audits: the engine's recorded behaviour must agree with the
//! independent static analyses (routing enumeration, timing formulas).

use minnet_sim::{run_scripted, EngineConfig, ScriptedMsg, TraceEvent};
use minnet_topology::{build_bmin, build_unidir, Geometry, UnidirKind};

fn traced_cfg() -> EngineConfig {
    EngineConfig {
        warmup: 0,
        measure: 1_000_000,
        collect_trace: true,
        ..EngineConfig::default()
    }
}

/// A traced worm's channel path is one of the paths the routing logic can
/// generate — verified against `minnet-routing`'s exhaustive enumeration.
#[test]
fn traced_path_is_a_legal_routing_path() {
    use minnet_routing::{enumerate_paths, RouteLogic};
    for (net, pairs) in [
        (
            build_unidir(Geometry::new(4, 3), UnidirKind::Cube, 2),
            [(0u32, 63u32), (17, 4), (33, 32)],
        ),
        (build_bmin(Geometry::new(4, 3)), [(0, 63), (17, 4), (33, 32)]),
    ] {
        let logic = RouteLogic::for_kind(net.kind);
        for (src, dst) in pairs {
            let r = run_scripted(
                &net,
                &[ScriptedMsg { time: 0, src, dst, len: 16 }],
                &traced_cfg(),
            )
            .unwrap();
            let trace = r.trace.unwrap();
            let path = trace.channel_path(0);
            let legal = enumerate_paths(&net, logic, src, dst);
            assert!(
                legal.contains(&path),
                "traced path {path:?} not among the {} legal paths for {src}→{dst}",
                legal.len()
            );
        }
    }
}

/// Event ordering per message: queued → injected → hops (one per channel)
/// → delivered, with non-decreasing times and an unloaded one-hop-per-
/// cycle header schedule.
#[test]
fn trace_event_ordering_and_timing() {
    let g = Geometry::new(2, 3);
    let net = build_unidir(g, UnidirKind::Cube, 1);
    let r = run_scripted(
        &net,
        &[ScriptedMsg { time: 3, src: 2, dst: 5, len: 10 }],
        &traced_cfg(),
    )
    .unwrap();
    let trace = r.trace.unwrap();
    let evs = trace.of_message(0);
    assert!(matches!(evs[0], TraceEvent::Queued { time: 3, src: 2, dst: 5, len: 10, .. }));
    assert!(matches!(evs[1], TraceEvent::Injected { time: 3, .. }));
    // Four hops (n+1 channels), allocated one per cycle starting at t=3.
    let hops: Vec<&TraceEvent> = evs
        .iter()
        .filter(|e| matches!(e, TraceEvent::Hop { .. }))
        .collect();
    assert_eq!(hops.len(), 4);
    for (i, h) in hops.iter().enumerate() {
        assert_eq!(h.time(), 3 + i as u64, "hop {i}");
    }
    let last = evs.last().unwrap();
    assert!(matches!(last, TraceEvent::Delivered { .. }));
    // Unloaded: done = gen + path + len - 1 = 3 + 4 + 10 - 1.
    assert_eq!(last.time(), 16);
    // Times never decrease.
    for w in evs.windows(2) {
        assert!(w[0].time() <= w[1].time());
    }
}

/// Tracing is orthogonal to results: the same run with and without the
/// trace produces identical deliveries.
#[test]
fn tracing_does_not_perturb_the_simulation() {
    let g = Geometry::new(4, 3);
    let net = build_bmin(g);
    let msgs: Vec<ScriptedMsg> = (0u32..40)
        .map(|i| ScriptedMsg {
            time: u64::from(i % 5),
            src: (i * 7) % 64,
            dst: (i * 7 + 13) % 64,
            len: 8 + (i % 30),
        })
        .collect();
    let plain = run_scripted(&net, &msgs, &EngineConfig { collect_trace: false, ..traced_cfg() })
        .unwrap();
    let traced = run_scripted(&net, &msgs, &traced_cfg()).unwrap();
    assert_eq!(plain.deliveries.unwrap(), traced.deliveries.unwrap());
    assert!(traced.trace.is_some());
    assert!(plain.trace.is_none());
}
