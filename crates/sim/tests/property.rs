//! Property-based engine tests: for arbitrary small scripted workloads on
//! arbitrary network types, the engine must deliver every message, respect
//! the unloaded-latency lower bound, conserve flits, and be deterministic.

use minnet_sim::{run_scripted, EngineConfig, ScriptedMsg};
use minnet_topology::{build_bmin, build_unidir, Geometry, NetworkGraph, NodeAddr, UnidirKind};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum NetChoice {
    Tmin(UnidirKind),
    Dmin,
    Vmin,
    Bmin,
}

fn net_choice() -> impl Strategy<Value = NetChoice> {
    prop_oneof![
        Just(NetChoice::Tmin(UnidirKind::Cube)),
        Just(NetChoice::Tmin(UnidirKind::Butterfly)),
        Just(NetChoice::Tmin(UnidirKind::Omega)),
        Just(NetChoice::Tmin(UnidirKind::Baseline)),
        Just(NetChoice::Dmin),
        Just(NetChoice::Vmin),
        Just(NetChoice::Bmin),
    ]
}

fn build(choice: NetChoice, g: Geometry) -> (NetworkGraph, u8) {
    match choice {
        NetChoice::Tmin(kind) => (build_unidir(g, kind, 1), 1),
        NetChoice::Dmin => (build_unidir(g, UnidirKind::Cube, 2), 1),
        NetChoice::Vmin => (build_unidir(g, UnidirKind::Cube, 1), 2),
        NetChoice::Bmin => (build_bmin(g), 1),
    }
}

fn geometry() -> impl Strategy<Value = Geometry> {
    prop_oneof![
        Just(Geometry::new(2, 2)),
        Just(Geometry::new(2, 3)),
        Just(Geometry::new(4, 2)),
    ]
}

fn path_channels(net: &NetworkGraph, s: u32, d: u32) -> u64 {
    if net.kind.is_bidirectional() {
        let t = net
            .geometry
            .first_difference(NodeAddr(s), NodeAddr(d))
            .expect("distinct nodes");
        2 * (t as u64 + 1)
    } else {
        net.geometry.n() as u64 + 1
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_message_is_delivered_with_sane_latency(
        choice in net_choice(),
        g in geometry(),
        raw in proptest::collection::vec((0u64..200, 0u32..64, 0u32..64, 1u32..96), 1..24),
        seed in 0u64..1000,
    ) {
        let (net, vcs) = build(choice, g);
        let n = g.nodes();
        let msgs: Vec<ScriptedMsg> = raw
            .iter()
            .map(|&(time, s, d, len)| {
                let src = s % n;
                let mut dst = d % n;
                if dst == src {
                    dst = (dst + 1) % n;
                }
                ScriptedMsg { time, src, dst, len }
            })
            .collect();
        let cfg = EngineConfig {
            vcs,
            warmup: 0,
            measure: 3_000_000, // generous horizon; the run exits when drained
            seed,
            ..EngineConfig::default()
        };
        let report = run_scripted(&net, &msgs, &cfg).unwrap();
        let deliveries = report.deliveries.clone().unwrap();

        // 1. Everything injected is delivered (deadlock/livelock freedom).
        prop_assert_eq!(deliveries.len(), msgs.len());
        prop_assert_eq!(report.in_flight_at_end, 0);

        // 2. Flit conservation: delivered lengths match the script's
        //    multiset of (src, dst, len, gen_time).
        let mut want: Vec<(u32, u32, u32, u64)> =
            msgs.iter().map(|m| (m.src, m.dst, m.len, m.time)).collect();
        let mut got: Vec<(u32, u32, u32, u64)> = deliveries
            .iter()
            .map(|d| (d.src, d.dst, d.len, d.gen_time))
            .collect();
        want.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(want, got);

        // 3. Latency lower bound: a message can never beat its unloaded
        //    pipeline time (it may also wait in the source queue).
        for d in &deliveries {
            let bound = d.gen_time + path_channels(&net, d.src, d.dst) + d.len as u64 - 1;
            prop_assert!(
                d.done_time >= bound,
                "{}→{} len {} finished at {} before bound {}",
                d.src, d.dst, d.len, d.done_time, bound
            );
        }

        // 4. Determinism: replaying the same script and seed reproduces
        //    every completion time.
        let replay = run_scripted(&net, &msgs, &cfg).unwrap();
        prop_assert_eq!(replay.deliveries.unwrap(), deliveries);
    }

    #[test]
    fn per_source_messages_complete_in_fifo_order(
        choice in net_choice(),
        lens in proptest::collection::vec(1u32..64, 2..8),
        seed in 0u64..1000,
    ) {
        // All messages from one source to one destination: the one-port
        // FCFS source queue must preserve completion order.
        let g = Geometry::new(2, 3);
        let (net, vcs) = build(choice, g);
        let msgs: Vec<ScriptedMsg> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| ScriptedMsg { time: i as u64, src: 0, dst: 5, len })
            .collect();
        let cfg = EngineConfig {
            vcs,
            warmup: 0,
            measure: 1_000_000,
            seed,
            ..EngineConfig::default()
        };
        let report = run_scripted(&net, &msgs, &cfg).unwrap();
        let deliveries = report.deliveries.unwrap();
        prop_assert_eq!(deliveries.len(), msgs.len());
        // Completion order equals generation order.
        for w in deliveries.windows(2) {
            prop_assert!(w[0].gen_time < w[1].gen_time);
        }
    }
}

// ---- word-kernel / scalar differential twins ------------------------
//
// The word-parallel allocate/transmit kernels must be pure
// acceleration: for arbitrary network shapes, VC counts, buffer
// depths, loads, and seeds, a run with the kernels forced on is
// bit-identical to the same run with them forced off (the scalar
// oracle). The toggle is forced in the config so the properties hold
// regardless of the `MINNET_WORD_KERNELS` environment default.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn word_kernels_match_scalar_poisson(
        choice in net_choice(),
        g in geometry(),
        depth in 1u16..4,
        load in 0.05f64..0.6,
        seed in 0u64..1000,
    ) {
        use minnet_sim::{CompiledNet, EngineState};
        use minnet_traffic::{Workload, WorkloadSpec};
        let (net, vcs) = build(choice, g);
        let cfg = EngineConfig {
            vcs,
            buffer_depth: depth,
            warmup: 100,
            measure: 1_500,
            ..EngineConfig::default()
        };
        let compiled = CompiledNet::new(std::sync::Arc::new(net), cfg).unwrap();
        let wl = Workload::compile(g, &WorkloadSpec::global_uniform(load)).unwrap();
        let mut st = EngineState::new();
        let on = compiled.with_word_kernels(true).run_poisson(&wl, seed, &mut st).unwrap();
        let off = compiled.with_word_kernels(false).run_poisson(&wl, seed, &mut st).unwrap();
        prop_assert!(on.bitwise_eq(&off), "{choice:?} depth {depth} load {load}: kernels diverge from scalar\n  on:  {on:?}\n  off: {off:?}");
    }

    #[test]
    fn word_kernels_match_scalar_scripted(
        choice in net_choice(),
        g in geometry(),
        depth in 1u16..4,
        raw in proptest::collection::vec((0u64..200, 0u32..64, 0u32..64, 1u32..96), 1..24),
        seed in 0u64..1000,
    ) {
        use minnet_sim::{engine::Script, CompiledNet, EngineState};
        let (net, vcs) = build(choice, g);
        let n = g.nodes();
        let msgs: Vec<ScriptedMsg> = raw
            .iter()
            .map(|&(time, s, d, len)| {
                let src = s % n;
                let mut dst = d % n;
                if dst == src {
                    dst = (dst + 1) % n;
                }
                ScriptedMsg { time, src, dst, len }
            })
            .collect();
        let script = Script::compile(g, &msgs).unwrap();
        let cfg = EngineConfig {
            vcs,
            buffer_depth: depth,
            warmup: 0,
            measure: 1_000_000,
            ..EngineConfig::default()
        };
        let compiled = CompiledNet::new(std::sync::Arc::new(net), cfg).unwrap();
        let mut st = EngineState::new();
        let on = compiled.with_word_kernels(true).run_script(&script, seed, &mut st).unwrap();
        let off = compiled.with_word_kernels(false).run_script(&script, seed, &mut st).unwrap();
        prop_assert!(on.bitwise_eq(&off), "{choice:?} depth {depth}: kernels diverge from scalar on script\n  on:  {on:?}\n  off: {off:?}");
    }
}
