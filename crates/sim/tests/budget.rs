//! Run-budget integration tests.
//!
//! The contract under test (see `RunBudget` in `config.rs`):
//!
//! 1. A `max_cycles` budget below the run horizon cuts the run at
//!    exactly that cycle and returns `SimError::BudgetExceeded` with a
//!    valid partial report — the *same* report a shorter configured run
//!    would have produced (pinned bitwise).
//! 2. A budget at or above the horizon never fires: the run completes
//!    bit-identically to an unbudgeted one.
//! 3. A wall-clock budget of ~zero fires on any non-trivial run and
//!    reports `BudgetKind::WallClock`.

use minnet_sim::{
    BudgetKind, CompiledNet, EngineConfig, EngineState, RunBudget, SimError,
};
use minnet_topology::{build_unidir, Geometry, UnidirKind};
use minnet_traffic::{Clustering, MessageSizeDist, TrafficPattern, Workload, WorkloadSpec};
use std::sync::Arc;

fn tmin(cfg: EngineConfig) -> CompiledNet {
    let g = Geometry::new(2, 4); // 16 nodes
    let net = build_unidir(g, UnidirKind::Cube, 1);
    CompiledNet::new(Arc::new(net), cfg).unwrap()
}

fn workload(load: f64) -> Workload {
    let spec = WorkloadSpec {
        offered_load: load,
        pattern: TrafficPattern::Uniform,
        clustering: Clustering::Global,
        rates: None,
        sizes: MessageSizeDist::Fixed(16),
    };
    Workload::compile(Geometry::new(2, 4), &spec).unwrap()
}

/// Base config: fast-forward off so the budget equivalence below compares
/// two runs that execute every cycle (a fast-forward jump may legally
/// overshoot a mid-air cycle limit; see the `RunBudget` docs).
fn cfg(warmup: u64, measure: u64) -> EngineConfig {
    EngineConfig {
        warmup,
        measure,
        fast_forward: false,
        ..EngineConfig::default()
    }
}

#[test]
fn cycle_budget_cuts_at_exactly_the_limit() {
    let limit = 1_500u64;
    let net = tmin(EngineConfig {
        budget: RunBudget {
            max_cycles: limit,
            max_wall_ms: 0,
        },
        ..cfg(500, 4_000)
    });
    let wl = workload(0.2);
    let mut st = EngineState::new();
    let err = net.run_poisson(&wl, 7, &mut st).unwrap_err();
    let SimError::BudgetExceeded(partial) = err else {
        panic!("expected BudgetExceeded, got something else");
    };
    assert_eq!(partial.kind, BudgetKind::Cycles);
    assert_eq!(partial.limit, limit);
    assert_eq!(partial.spent_cycles, limit);
    assert_eq!(partial.report.cycles, limit);
    assert_eq!(partial.report.measured_cycles, limit - 500);
    assert!(partial.report.delivered_packets > 0);
}

#[test]
fn partial_report_matches_equally_short_configured_run() {
    // A budget cut at warmup + k must produce the very report a run
    // *configured* with measure = k produces: same finalization path,
    // same accounting — bitwise.
    let warmup = 500u64;
    let k = 1_000u64;
    let wl = workload(0.2);

    let budgeted = tmin(EngineConfig {
        budget: RunBudget {
            max_cycles: warmup + k,
            max_wall_ms: 0,
        },
        ..cfg(warmup, 4_000)
    });
    let mut st = EngineState::new();
    let err = budgeted.run_poisson(&wl, 11, &mut st).unwrap_err();
    let SimError::BudgetExceeded(partial) = err else {
        panic!("expected BudgetExceeded");
    };

    let short = tmin(cfg(warmup, k));
    let mut st2 = EngineState::new();
    let full = short.run_poisson(&wl, 11, &mut st2).unwrap();
    assert!(
        partial.report.bitwise_eq(&full),
        "partial report at cycle {} diverged from configured short run",
        warmup + k
    );
}

#[test]
fn budget_at_or_above_horizon_never_fires() {
    let warmup = 500u64;
    let measure = 2_000u64;
    let wl = workload(0.15);

    let plain = tmin(cfg(warmup, measure));
    let mut st = EngineState::new();
    let reference = plain.run_poisson(&wl, 3, &mut st).unwrap();

    for extra in [0u64, 1, 10_000] {
        let budgeted = tmin(EngineConfig {
            budget: RunBudget {
                max_cycles: warmup + measure + extra,
                max_wall_ms: 0,
            },
            ..cfg(warmup, measure)
        });
        let mut st = EngineState::new();
        let report = budgeted.run_poisson(&wl, 3, &mut st).unwrap();
        assert!(
            report.bitwise_eq(&reference),
            "budget {} above horizon changed the run",
            warmup + measure + extra
        );
    }
}

#[test]
fn wall_clock_budget_fires_and_reports_kind() {
    // Wall limit ~0 with a huge horizon: the first 1024-cycle check
    // already sees elapsed >= 0ms... use 1ms so only genuinely long runs
    // trip. A 5M-cycle horizon at moderate load takes well over 1ms.
    let net = tmin(EngineConfig {
        budget: RunBudget {
            max_cycles: 0,
            max_wall_ms: 1,
        },
        ..cfg(1_000, 5_000_000)
    });
    let wl = workload(0.3);
    let mut st = EngineState::new();
    let err = net.run_poisson(&wl, 42, &mut st).unwrap_err();
    let SimError::BudgetExceeded(partial) = err else {
        panic!("expected BudgetExceeded");
    };
    assert_eq!(partial.kind, BudgetKind::WallClock);
    assert_eq!(partial.limit, 1);
    assert!(partial.spent_cycles > 0);
    assert!(partial.spent_cycles < 1_001_000);
    let msg = SimError::BudgetExceeded(partial).to_string();
    assert!(msg.contains("wall-clock"), "display: {msg}");
}

#[test]
fn wall_clock_budget_fires_on_fast_forward_jumps() {
    // Regression: the wall-clock check used to run only every 1024
    // *executed* cycles, but a near-quiescent fast-forwarded run
    // executes almost no cycles — each loop iteration swallows a whole
    // inter-event gap in one jump, so a 1024-iteration granule could
    // overshoot `max_wall_ms` by arbitrarily many jumps. The budget is
    // now also checked after every jump that skipped cycles, bounding
    // the overshoot to one jump's wall time. A scripted workload of
    // tens of thousands of sparse one-flit worms (gap 5_000 cycles)
    // keeps the run FF-dominated for well past 1ms of wall time.
    let g = Geometry::new(2, 4);
    let msgs: Vec<minnet_sim::ScriptedMsg> = (0..60_000u32)
        .map(|i| minnet_sim::ScriptedMsg {
            time: u64::from(i) * 5_000,
            src: i % 16,
            dst: (i + 7) % 16,
            len: 1,
        })
        .collect();
    let script = minnet_sim::Script::compile(g, &msgs).unwrap();
    let net = tmin(EngineConfig {
        budget: RunBudget {
            max_cycles: 0,
            max_wall_ms: 1,
        },
        fast_forward: true, // the path under test — cfg() turns it off
        ..cfg(0, u64::MAX / 2)
    });
    let mut st = EngineState::new();
    let err = net.run_script(&script, 42, &mut st).unwrap_err();
    let SimError::BudgetExceeded(partial) = err else {
        panic!("expected BudgetExceeded, got a completed run");
    };
    assert_eq!(partial.kind, BudgetKind::WallClock);
    assert_eq!(partial.limit, 1);
    // A sane truncated sample: the cut lands mid-script, not at the end
    // (the drain would finish long after 1ms), and some worms landed.
    assert!(partial.report.delivered_packets > 0);
    assert!(
        (partial.report.delivered_packets as usize) < msgs.len(),
        "run completed under the wall budget; the workload is too small \
         to pin the jump-path check"
    );
}

#[test]
fn budget_armed_lockstep_falls_back_to_scalar_bitwise() {
    // A budget-armed configuration is ineligible for lockstep fleets
    // (per-run budget accounting has no shared-clock equivalent); the
    // lockstep entry must transparently run each lane scalar — and cut
    // it — exactly as the scalar entry does.
    let limit = 1_500u64;
    let net = tmin(EngineConfig {
        budget: RunBudget {
            max_cycles: limit,
            max_wall_ms: 0,
        },
        ..cfg(500, 4_000)
    });
    assert!(!net.lockstep_eligible());
    let wl = workload(0.2);
    let seeds = [7u64, 11, 13];
    let mut ls = minnet_sim::LockstepState::new();
    let results = net.run_poisson_lockstep(&wl, &seeds, 2, &mut ls);
    let mut st = EngineState::new();
    for (res, &seed) in results.into_iter().zip(&seeds) {
        let SimError::BudgetExceeded(got) = res.unwrap_err() else {
            panic!("expected BudgetExceeded");
        };
        let SimError::BudgetExceeded(want) =
            net.run_poisson(&wl, seed, &mut st).unwrap_err()
        else {
            panic!("expected BudgetExceeded");
        };
        assert_eq!(got.kind, BudgetKind::Cycles);
        assert_eq!(got.spent_cycles, want.spent_cycles);
        assert!(
            got.report.bitwise_eq(&want.report),
            "seed {seed:#x}: budget-armed lockstep fallback diverged"
        );
    }
}

#[test]
fn unlimited_budget_is_default_and_inert() {
    assert!(RunBudget::UNLIMITED.is_unlimited());
    assert_eq!(EngineConfig::default().budget, RunBudget::UNLIMITED);
    let net = tmin(cfg(200, 800));
    let wl = workload(0.1);
    let mut st = EngineState::new();
    net.run_poisson(&wl, 1, &mut st).unwrap();
}
