//! Run-budget integration tests.
//!
//! The contract under test (see `RunBudget` in `config.rs`):
//!
//! 1. A `max_cycles` budget below the run horizon cuts the run at
//!    exactly that cycle and returns `SimError::BudgetExceeded` with a
//!    valid partial report — the *same* report a shorter configured run
//!    would have produced (pinned bitwise).
//! 2. A budget at or above the horizon never fires: the run completes
//!    bit-identically to an unbudgeted one.
//! 3. A wall-clock budget of ~zero fires on any non-trivial run and
//!    reports `BudgetKind::WallClock`.

use minnet_sim::{
    BudgetKind, CompiledNet, EngineConfig, EngineState, RunBudget, SimError,
};
use minnet_topology::{build_unidir, Geometry, UnidirKind};
use minnet_traffic::{Clustering, MessageSizeDist, TrafficPattern, Workload, WorkloadSpec};
use std::sync::Arc;

fn tmin(cfg: EngineConfig) -> CompiledNet {
    let g = Geometry::new(2, 4); // 16 nodes
    let net = build_unidir(g, UnidirKind::Cube, 1);
    CompiledNet::new(Arc::new(net), cfg).unwrap()
}

fn workload(load: f64) -> Workload {
    let spec = WorkloadSpec {
        offered_load: load,
        pattern: TrafficPattern::Uniform,
        clustering: Clustering::Global,
        rates: None,
        sizes: MessageSizeDist::Fixed(16),
    };
    Workload::compile(Geometry::new(2, 4), &spec).unwrap()
}

/// Base config: fast-forward off so the budget equivalence below compares
/// two runs that execute every cycle (a fast-forward jump may legally
/// overshoot a mid-air cycle limit; see the `RunBudget` docs).
fn cfg(warmup: u64, measure: u64) -> EngineConfig {
    EngineConfig {
        warmup,
        measure,
        fast_forward: false,
        ..EngineConfig::default()
    }
}

#[test]
fn cycle_budget_cuts_at_exactly_the_limit() {
    let limit = 1_500u64;
    let net = tmin(EngineConfig {
        budget: RunBudget {
            max_cycles: limit,
            max_wall_ms: 0,
        },
        ..cfg(500, 4_000)
    });
    let wl = workload(0.2);
    let mut st = EngineState::new();
    let err = net.run_poisson(&wl, 7, &mut st).unwrap_err();
    let SimError::BudgetExceeded(partial) = err else {
        panic!("expected BudgetExceeded, got something else");
    };
    assert_eq!(partial.kind, BudgetKind::Cycles);
    assert_eq!(partial.limit, limit);
    assert_eq!(partial.spent_cycles, limit);
    assert_eq!(partial.report.cycles, limit);
    assert_eq!(partial.report.measured_cycles, limit - 500);
    assert!(partial.report.delivered_packets > 0);
}

#[test]
fn partial_report_matches_equally_short_configured_run() {
    // A budget cut at warmup + k must produce the very report a run
    // *configured* with measure = k produces: same finalization path,
    // same accounting — bitwise.
    let warmup = 500u64;
    let k = 1_000u64;
    let wl = workload(0.2);

    let budgeted = tmin(EngineConfig {
        budget: RunBudget {
            max_cycles: warmup + k,
            max_wall_ms: 0,
        },
        ..cfg(warmup, 4_000)
    });
    let mut st = EngineState::new();
    let err = budgeted.run_poisson(&wl, 11, &mut st).unwrap_err();
    let SimError::BudgetExceeded(partial) = err else {
        panic!("expected BudgetExceeded");
    };

    let short = tmin(cfg(warmup, k));
    let mut st2 = EngineState::new();
    let full = short.run_poisson(&wl, 11, &mut st2).unwrap();
    assert!(
        partial.report.bitwise_eq(&full),
        "partial report at cycle {} diverged from configured short run",
        warmup + k
    );
}

#[test]
fn budget_at_or_above_horizon_never_fires() {
    let warmup = 500u64;
    let measure = 2_000u64;
    let wl = workload(0.15);

    let plain = tmin(cfg(warmup, measure));
    let mut st = EngineState::new();
    let reference = plain.run_poisson(&wl, 3, &mut st).unwrap();

    for extra in [0u64, 1, 10_000] {
        let budgeted = tmin(EngineConfig {
            budget: RunBudget {
                max_cycles: warmup + measure + extra,
                max_wall_ms: 0,
            },
            ..cfg(warmup, measure)
        });
        let mut st = EngineState::new();
        let report = budgeted.run_poisson(&wl, 3, &mut st).unwrap();
        assert!(
            report.bitwise_eq(&reference),
            "budget {} above horizon changed the run",
            warmup + measure + extra
        );
    }
}

#[test]
fn wall_clock_budget_fires_and_reports_kind() {
    // Wall limit ~0 with a huge horizon: the first 1024-cycle check
    // already sees elapsed >= 0ms... use 1ms so only genuinely long runs
    // trip. A 5M-cycle horizon at moderate load takes well over 1ms.
    let net = tmin(EngineConfig {
        budget: RunBudget {
            max_cycles: 0,
            max_wall_ms: 1,
        },
        ..cfg(1_000, 5_000_000)
    });
    let wl = workload(0.3);
    let mut st = EngineState::new();
    let err = net.run_poisson(&wl, 42, &mut st).unwrap_err();
    let SimError::BudgetExceeded(partial) = err else {
        panic!("expected BudgetExceeded");
    };
    assert_eq!(partial.kind, BudgetKind::WallClock);
    assert_eq!(partial.limit, 1);
    assert!(partial.spent_cycles > 0);
    assert!(partial.spent_cycles < 1_001_000);
    let msg = SimError::BudgetExceeded(partial).to_string();
    assert!(msg.contains("wall-clock"), "display: {msg}");
}

#[test]
fn unlimited_budget_is_default_and_inert() {
    assert!(RunBudget::UNLIMITED.is_unlimited());
    assert_eq!(EngineConfig::default().budget, RunBudget::UNLIMITED);
    let net = tmin(cfg(200, 800));
    let wl = workload(0.1);
    let mut st = EngineState::new();
    net.run_poisson(&wl, 1, &mut st).unwrap();
}
