//! Feature-gated hot-path instrumentation (`hotstats`).
//!
//! When the `hotstats` feature is on, every engine run accumulates a
//! per-phase breakdown — wall time in the arrivals / allocate / transmit
//! phases, cycles actually executed, and cycles skipped by the
//! event-horizon fast-forward — into a process-wide set of atomic
//! counters. Harnesses (`sweep_smoke` in `minnet-bench`) drain them
//! with [`take`] after a timed section to report where the cycle budget
//! went. The counters are global and lock-free so sweeps that fan runs
//! out over worker threads still aggregate correctly.
//!
//! Beyond wall time, the allocate and transmit phases each report a
//! **words-scanned / bits-processed pair**: how many `u64` mask words
//! their sweeps loaded versus how many set bits (requests served,
//! channel visits) they actually processed. The ratio is the mask
//! density the word-parallel kernels exploit — a speedup claim is
//! attributable when bits-per-word rises with load while the word count
//! stays flat.
//!
//! With the feature off this module does not exist and the engine's
//! probe type compiles to a zero-sized no-op, so the production hot loop
//! pays nothing.

use std::sync::atomic::{AtomicU64, Ordering};

static RUNS: AtomicU64 = AtomicU64::new(0);
static CYCLES_EXECUTED: AtomicU64 = AtomicU64::new(0);
static CYCLES_SKIPPED: AtomicU64 = AtomicU64::new(0);
static FF_JUMPS: AtomicU64 = AtomicU64::new(0);
static ARRIVALS_NS: AtomicU64 = AtomicU64::new(0);
static ALLOCATE_NS: AtomicU64 = AtomicU64::new(0);
static TRANSMIT_NS: AtomicU64 = AtomicU64::new(0);
static ALLOC_WORDS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BITS: AtomicU64 = AtomicU64::new(0);
static TRANSMIT_WORDS: AtomicU64 = AtomicU64::new(0);
static TRANSMIT_BITS: AtomicU64 = AtomicU64::new(0);

/// One snapshot of the hot-path counters (or one run's contribution).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HotStats {
    /// Engine runs that flushed into the counters.
    pub runs: u64,
    /// Cycles the three-phase loop actually executed.
    pub cycles_executed: u64,
    /// Cycles skipped by event-horizon fast-forward jumps.
    pub cycles_skipped: u64,
    /// Number of fast-forward jumps taken.
    pub ff_jumps: u64,
    /// Wall nanoseconds in the arrivals phase.
    pub arrivals_ns: u64,
    /// Wall nanoseconds in the routing/allocation phase.
    pub allocate_ns: u64,
    /// Wall nanoseconds in the transmission phase.
    pub transmit_ns: u64,
    /// Injectable-mask words the allocate phase scanned.
    pub alloc_words_scanned: u64,
    /// Allocation requests (injects + advances) the phase processed.
    pub alloc_bits_processed: u64,
    /// Ready/maybe-ready mask words the transmit sweep scanned.
    pub transmit_words_scanned: u64,
    /// Channel visits the transmit sweep processed.
    pub transmit_bits_processed: u64,
}

impl HotStats {
    /// Fraction of simulated cycles the fast-forward skipped
    /// (`skipped / (executed + skipped)`; 0 when nothing ran).
    pub fn skipped_fraction(&self) -> f64 {
        let total = self.cycles_executed + self.cycles_skipped;
        if total == 0 {
            0.0
        } else {
            self.cycles_skipped as f64 / total as f64
        }
    }

    /// Set bits the transmit sweep processed per mask word scanned —
    /// the occupancy density the word-parallel kernels amortize over.
    pub fn transmit_bits_per_word(&self) -> f64 {
        if self.transmit_words_scanned == 0 {
            0.0
        } else {
            self.transmit_bits_processed as f64 / self.transmit_words_scanned as f64
        }
    }
}

/// Add one run's counters to the process-wide totals.
pub(crate) fn record(h: &HotStats) {
    RUNS.fetch_add(h.runs, Ordering::Relaxed);
    CYCLES_EXECUTED.fetch_add(h.cycles_executed, Ordering::Relaxed);
    CYCLES_SKIPPED.fetch_add(h.cycles_skipped, Ordering::Relaxed);
    FF_JUMPS.fetch_add(h.ff_jumps, Ordering::Relaxed);
    ARRIVALS_NS.fetch_add(h.arrivals_ns, Ordering::Relaxed);
    ALLOCATE_NS.fetch_add(h.allocate_ns, Ordering::Relaxed);
    TRANSMIT_NS.fetch_add(h.transmit_ns, Ordering::Relaxed);
    ALLOC_WORDS.fetch_add(h.alloc_words_scanned, Ordering::Relaxed);
    ALLOC_BITS.fetch_add(h.alloc_bits_processed, Ordering::Relaxed);
    TRANSMIT_WORDS.fetch_add(h.transmit_words_scanned, Ordering::Relaxed);
    TRANSMIT_BITS.fetch_add(h.transmit_bits_processed, Ordering::Relaxed);
}

/// Read the totals without clearing them.
pub fn snapshot() -> HotStats {
    HotStats {
        runs: RUNS.load(Ordering::Relaxed),
        cycles_executed: CYCLES_EXECUTED.load(Ordering::Relaxed),
        cycles_skipped: CYCLES_SKIPPED.load(Ordering::Relaxed),
        ff_jumps: FF_JUMPS.load(Ordering::Relaxed),
        arrivals_ns: ARRIVALS_NS.load(Ordering::Relaxed),
        allocate_ns: ALLOCATE_NS.load(Ordering::Relaxed),
        transmit_ns: TRANSMIT_NS.load(Ordering::Relaxed),
        alloc_words_scanned: ALLOC_WORDS.load(Ordering::Relaxed),
        alloc_bits_processed: ALLOC_BITS.load(Ordering::Relaxed),
        transmit_words_scanned: TRANSMIT_WORDS.load(Ordering::Relaxed),
        transmit_bits_processed: TRANSMIT_BITS.load(Ordering::Relaxed),
    }
}

/// Read and zero the totals — the per-section drain harnesses use
/// between timed segments.
pub fn take() -> HotStats {
    HotStats {
        runs: RUNS.swap(0, Ordering::Relaxed),
        cycles_executed: CYCLES_EXECUTED.swap(0, Ordering::Relaxed),
        cycles_skipped: CYCLES_SKIPPED.swap(0, Ordering::Relaxed),
        ff_jumps: FF_JUMPS.swap(0, Ordering::Relaxed),
        arrivals_ns: ARRIVALS_NS.swap(0, Ordering::Relaxed),
        allocate_ns: ALLOCATE_NS.swap(0, Ordering::Relaxed),
        transmit_ns: TRANSMIT_NS.swap(0, Ordering::Relaxed),
        alloc_words_scanned: ALLOC_WORDS.swap(0, Ordering::Relaxed),
        alloc_bits_processed: ALLOC_BITS.swap(0, Ordering::Relaxed),
        transmit_words_scanned: TRANSMIT_WORDS.swap(0, Ordering::Relaxed),
        transmit_bits_processed: TRANSMIT_BITS.swap(0, Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_take_snapshot_round_trip() {
        // Drain whatever other tests left behind first.
        let _ = take();
        let one = HotStats {
            runs: 1,
            cycles_executed: 100,
            cycles_skipped: 50,
            ff_jumps: 5,
            arrivals_ns: 10,
            allocate_ns: 20,
            transmit_ns: 30,
            alloc_words_scanned: 8,
            alloc_bits_processed: 4,
            transmit_words_scanned: 16,
            transmit_bits_processed: 40,
        };
        record(&one);
        record(&one);
        let snap = snapshot();
        assert!(snap.cycles_executed >= 200);
        let taken = take();
        assert!(taken.runs >= 2 && taken.ff_jumps >= 10);
        assert!(taken.alloc_words_scanned >= 16 && taken.transmit_bits_processed >= 80);
        assert!((taken.skipped_fraction() - 1.0 / 3.0).abs() < 0.2);
    }

    #[test]
    fn skipped_fraction_handles_empty() {
        assert_eq!(HotStats::default().skipped_fraction(), 0.0);
        assert_eq!(HotStats::default().transmit_bits_per_word(), 0.0);
    }

    #[test]
    fn bits_per_word_density() {
        let h = HotStats {
            transmit_words_scanned: 10,
            transmit_bits_processed: 25,
            ..HotStats::default()
        };
        assert!((h.transmit_bits_per_word() - 2.5).abs() < 1e-12);
    }
}
