//! Run-time compilation of a [`FaultPlan`] against a network: one masked
//! routing table per fault epoch, re-checked for deadlock freedom.
//!
//! A [`minnet_topology::FaultSchedule`] knows *which lanes are dead when*;
//! the engine additionally needs to know *where worms may still go* under
//! each epoch's mask. [`CompiledFaults`] pairs every epoch with a
//! deliverability-pruned [`RouteTable`] ([`RouteTable::masked`]): a
//! candidate survives only if it is alive **and** still reaches the
//! destination's ejection channel through live channels. The engine then
//! never routes a worm into a dead end — an empty masked candidate list at
//! a non-ejection cell is a definitive "this destination is unreachable",
//! which drives both injection refusal and mid-route aborts.
//!
//! Each epoch's masked channel-dependency graph is re-checked with
//! [`minnet_routing::find_cycle`] at compile time. A subgraph of an
//! acyclic CDG is acyclic, so today this can never fire; it is kept so a
//! future routing rule whose masked network *could* deadlock fails loudly
//! here instead of hanging a run (the watchdog would catch that too, but
//! later and per-run).
//!
//! Compilation is the slow path — per epoch it costs a masked-table build
//! plus a CDG check — and happens once per `(network, plan)`; runs then
//! share the `CompiledFaults` read-only, exactly like [`crate::CompiledNet`].

use crate::error::SimError;
use minnet_routing::{find_cycle, masked_dependency_graph, DependencyRule, RouteTable};
use minnet_topology::{FaultPlan, NetworkGraph};

/// One fault epoch as the engine consumes it: the dead-lane mask plus the
/// deliverability-pruned routing table valid while the epoch lasts.
#[derive(Clone, Debug)]
pub(crate) struct CompiledEpoch {
    /// First cycle of the epoch.
    pub(crate) start: u64,
    /// `dead_lane[channel * vcs + vc]` — lane is failed this epoch.
    pub(crate) dead_lane: Vec<bool>,
    /// The same mask packed as `u64` words (bit `li % 64` of word
    /// `li / 64`), so the engine's word-parallel kernels fold the epoch's
    /// dead lanes into their per-word eligibility masks — and rebuild
    /// their permuted alive mask at an epoch boundary — by iterating set
    /// bits instead of scanning every lane's `bool`.
    pub(crate) dead_lane_words: Vec<u64>,
    /// Whether any lane is dead this epoch (fast-path gate).
    pub(crate) any_dead: bool,
    /// Masked routing table: candidates are alive and deliverable.
    pub(crate) routes: RouteTable,
}

/// A [`FaultPlan`] compiled against one network and routing table:
/// per-epoch dead-lane masks and masked routing tables, ready for
/// [`crate::CompiledNet::run_poisson_faulted`] and friends.
#[derive(Clone, Debug)]
pub struct CompiledFaults {
    pub(crate) epochs: Vec<CompiledEpoch>,
    trivial: bool,
}

impl CompiledFaults {
    /// Compile `plan` for `net`, pruning `base` per epoch and re-checking
    /// each masked CDG for cycles.
    ///
    /// # Errors
    ///
    /// Reports out-of-range fault targets, inverted repair windows, mask
    /// mismatches, and (defensively) a masked CDG cycle.
    pub(crate) fn compile(
        net: &NetworkGraph,
        base: &RouteTable,
        plan: &FaultPlan,
        vcs: u8,
    ) -> Result<CompiledFaults, SimError> {
        let schedule = plan.compile(net, vcs).map_err(SimError::Fault)?;
        let trivial = schedule.is_trivial();
        let mut epochs = Vec::with_capacity(schedule.epochs().len());
        for ep in schedule.epochs() {
            let routes = if ep.any_dead {
                if let Some(cycle) =
                    find_cycle(&masked_dependency_graph(net, DependencyRule::Paper, &ep.dead_channel))
                {
                    return Err(SimError::Fault(format!(
                        "masked channel-dependency graph has a cycle through channels \
                         {cycle:?} in the epoch starting at cycle {}",
                        ep.start
                    )));
                }
                base.masked(net, &ep.dead_channel).map_err(SimError::Routing)?
            } else {
                base.clone()
            };
            let mut dead_lane_words = vec![0u64; ep.dead_lane.len().div_ceil(64)];
            for (li, &dead) in ep.dead_lane.iter().enumerate() {
                if dead {
                    dead_lane_words[li / 64] |= 1u64 << (li % 64);
                }
            }
            epochs.push(CompiledEpoch {
                start: ep.start,
                dead_lane: ep.dead_lane.clone(),
                dead_lane_words,
                any_dead: ep.any_dead,
                routes,
            });
        }
        Ok(CompiledFaults { epochs, trivial })
    }

    /// Number of fault epochs (the initial epoch at cycle 0 included).
    pub fn num_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Whether no epoch kills any lane — the engine treats a trivial
    /// schedule exactly like no schedule at all, so such runs stay
    /// bit-identical to faultless ones.
    pub fn is_trivial(&self) -> bool {
        self.trivial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnet_topology::{build_bmin, build_unidir, Fault, FaultTarget, Geometry, UnidirKind};

    #[test]
    fn empty_plan_compiles_trivial_with_one_epoch() {
        let net = build_bmin(Geometry::new(2, 3));
        let base = RouteTable::build(&net).unwrap();
        let cf = CompiledFaults::compile(&net, &base, &FaultPlan::new(), 1).unwrap();
        assert!(cf.is_trivial());
        assert_eq!(cf.num_epochs(), 1);
        assert_eq!(cf.epochs[0].start, 0);
        assert!(!cf.epochs[0].any_dead);
    }

    #[test]
    fn transient_fault_yields_three_epochs_and_restored_routes() {
        let net = build_unidir(Geometry::new(2, 3), UnidirKind::Cube, 1);
        let base = RouteTable::build(&net).unwrap();
        // Pick an inter-stage channel so the fault actually prunes routes.
        let victim = (0..net.num_channels() as u32)
            .find(|&c| {
                let d = net.channel(c);
                d.src.switch().is_some() && d.dst.switch().is_some()
            })
            .unwrap();
        let plan =
            FaultPlan::new().with(Fault::transient(FaultTarget::Channel(victim), 100, 500));
        let cf = CompiledFaults::compile(&net, &base, &plan, 1).unwrap();
        assert!(!cf.is_trivial());
        assert_eq!(cf.num_epochs(), 3);
        assert_eq!(
            cf.epochs.iter().map(|e| e.start).collect::<Vec<_>>(),
            vec![0, 100, 500]
        );
        assert!(!cf.epochs[0].any_dead && cf.epochs[1].any_dead && !cf.epochs[2].any_dead);
        // Outside the fault window the masked table is the base table.
        for ep in [&cf.epochs[0], &cf.epochs[2]] {
            for dst in 0..net.geometry.nodes() {
                for ch in 0..net.num_channels() as u32 {
                    assert_eq!(ep.routes.candidates(ch, dst), base.candidates(ch, dst));
                }
            }
        }
        // Inside it, nothing routes over the victim.
        for dst in 0..net.geometry.nodes() {
            for ch in 0..net.num_channels() as u32 {
                assert!(!cf.epochs[1].routes.candidates(ch, dst).contains(&victim));
            }
        }
    }

    #[test]
    fn dead_lane_words_mirror_the_bool_mask() {
        let net = build_unidir(Geometry::new(4, 3), UnidirKind::Cube, 1);
        let base = RouteTable::build(&net).unwrap();
        let victim = (0..net.num_channels() as u32)
            .find(|&c| {
                let d = net.channel(c);
                d.src.switch().is_some() && d.dst.switch().is_some()
            })
            .unwrap();
        let plan =
            FaultPlan::new().with(Fault::transient(FaultTarget::Channel(victim), 10, 20));
        for vcs in [1u8, 2] {
            let cf = CompiledFaults::compile(&net, &base, &plan, vcs).unwrap();
            for ep in &cf.epochs {
                assert_eq!(ep.dead_lane_words.len(), ep.dead_lane.len().div_ceil(64));
                for (li, &dead) in ep.dead_lane.iter().enumerate() {
                    let bit = ep.dead_lane_words[li / 64] >> (li % 64) & 1 == 1;
                    assert_eq!(bit, dead, "vcs={vcs} lane {li}");
                }
            }
        }
    }

    #[test]
    fn invalid_plan_surfaces_as_fault_error() {
        let net = build_bmin(Geometry::new(2, 3));
        let base = RouteTable::build(&net).unwrap();
        let plan = FaultPlan::new().with(Fault::permanent(FaultTarget::Channel(99_999)));
        let err = CompiledFaults::compile(&net, &base, &plan, 1).unwrap_err();
        assert!(matches!(err, SimError::Fault(_)), "{err}");
    }
}
