//! Packed per-replication state for lockstep replication fleets.
//!
//! A replicated sweep runs `R` independent seeds of the same compiled
//! network. Run scalar, each replication re-walks the shared read-only
//! artifacts — routing table, transmit order, channel table — from a
//! cold cache, and pays the per-cycle sweep bookkeeping alone. The
//! lockstep path (see `CompiledNet::run_poisson_lockstep`) instead
//! drives the `R` lanes as one *fleet*: every live lane executes the
//! same simulated cycle before any lane starts the next, so the shared
//! artifacts stay hot across the whole fleet and the allocate/transmit
//! scans amortize R-fold.
//!
//! [`LockstepState`] is the fleet-side analogue of
//! [`EngineState`](crate::EngineState): one resettable engine state per
//! lane, grown on demand and reused — allocations included — across
//! fleets, exactly like the sweep layer's per-worker state pool.
//!
//! Determinism: each lane owns its state and its seed; the fleet never
//! lets lanes interact. Every lane's report is **bit-identical** to the
//! scalar run of the same `(network, config, seed)` — pinned by the
//! scalar≡lockstep differential suite in `tests/engine_equivalence.rs`
//! and the replication-count proptest in `tests/compiled_pipeline.rs`.
//!
//! The fleet composes with the word-parallel kernels
//! (`EngineConfig::word_kernels`): each lane runs whichever engine path
//! the compiled config selects, and since both paths are bit-identical,
//! the lockstep contract is toggle-invariant — the two accelerations
//! multiply (kernels speed each lane; the fleet amortizes shared
//! artifacts across lanes) rather than interact.

use crate::engine::EngineState;

/// Packed per-replication engine states for a lockstep fleet: lane `r`
/// of the fleet runs on `lanes[r]`. Reuse one `LockstepState` across
/// fleets (sweep workers hold one each) to keep every lane's
/// allocations warm, the same contract as reusing an
/// [`EngineState`](crate::EngineState) across scalar runs.
#[derive(Debug, Default)]
pub struct LockstepState {
    pub(crate) lanes: Vec<EngineState>,
}

impl LockstepState {
    /// An empty state pool; lanes are allocated on first use.
    pub fn new() -> LockstepState {
        LockstepState { lanes: Vec::new() }
    }

    /// How many lane states this pool currently holds.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The first `n` lane states, growing the pool as needed. Each
    /// state resets in place on run entry, so stale contents are
    /// harmless — this is an allocation pool, not a cache of results.
    pub(crate) fn lane_block(&mut self, n: usize) -> &mut [EngineState] {
        while self.lanes.len() < n {
            self.lanes.push(EngineState::new());
        }
        &mut self.lanes[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_block_grows_and_reuses() {
        let mut ls = LockstepState::new();
        assert_eq!(ls.lane_count(), 0);
        assert_eq!(ls.lane_block(3).len(), 3);
        assert_eq!(ls.lane_count(), 3);
        // Asking for fewer lanes reuses the pool without shrinking it.
        assert_eq!(ls.lane_block(2).len(), 2);
        assert_eq!(ls.lane_count(), 3);
        assert_eq!(ls.lane_block(5).len(), 5);
        assert_eq!(ls.lane_count(), 5);
    }
}
