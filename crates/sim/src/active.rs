//! Dense index sets and flat lane-buffer storage for the engine's
//! occupancy-scaled hot loop.
//!
//! The engine keeps three active sets so its per-cycle cost tracks
//! *occupancy* (in-flight worms, nonempty sources, claimed channels)
//! instead of network size:
//!
//! * injectable sources — nodes whose FCFS queue is nonempty while the
//!   injection channel is idle;
//! * occupied channels — channels with at least one owned lane, indexed
//!   by their *transmit-order position* so a sweep visits them in
//!   reverse-topological order;
//! * active packets — already a dense list in the engine itself.
//!
//! [`DenseBitSet`] backs the first two: membership flips are O(1) and
//! ascending-order iteration costs O(words + members), where `words` is
//! `capacity / 64` — a handful of cache lines even for thousands of
//! channels, and far cheaper than touching every `Lane` or `Source`.
//! Iteration order is always ascending index, which is what keeps the
//! optimized engine's request ordering (and thus its RNG stream)
//! bit-identical to the reference engine's full scans.

use minnet_switch::FlitRef;

/// Flat struct-of-arrays storage for every lane's flit FIFO.
///
/// The engine used to keep one heap-allocated `VecDeque`-backed
/// [`minnet_switch::FlitFifo`] per lane inside an array-of-structs
/// `Lane`; every buffer probe in the allocate/transmit sweeps then chased
/// a pointer to a separately-allocated ring. This repack stores all
/// buffers in **three dense arrays** — `store` (the rings themselves,
/// `depth` slots per lane), `head`, and `len` — so occupancy checks touch
/// contiguous `u32` lanes and the common `depth == 1` case reads the flit
/// straight out of a flat array. Semantics are exactly a per-lane bounded
/// FIFO; only the memory layout changed.
#[derive(Clone, Debug, Default)]
pub struct LaneBufs {
    store: Vec<FlitRef>,
    head: Vec<u32>,
    len: Vec<u32>,
    depth: u32,
}

impl LaneBufs {
    /// Empty all buffers and re-dimension for `lanes` lanes of `depth`
    /// flits each, keeping allocations when dimensions allow.
    pub fn reset(&mut self, lanes: usize, depth: u32) {
        assert!(depth >= 1, "a channel buffer holds at least one flit");
        self.depth = depth;
        let filler = FlitRef { packet: 0, index: 0 };
        self.store.clear();
        self.store.resize(lanes * depth as usize, filler);
        self.head.clear();
        self.head.resize(lanes, 0);
        self.len.clear();
        self.len.resize(lanes, 0);
    }

    /// Buffer capacity per lane.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Whether lane `li` buffers no flit.
    #[inline]
    pub fn is_empty(&self, li: usize) -> bool {
        self.len[li] == 0
    }

    /// Whether lane `li`'s buffer is full.
    #[inline]
    pub fn is_full(&self, li: usize) -> bool {
        self.len[li] == self.depth
    }

    /// The oldest flit buffered in lane `li`, if any.
    #[inline]
    pub fn front(&self, li: usize) -> Option<FlitRef> {
        if self.len[li] == 0 {
            None
        } else if self.depth == 1 {
            Some(self.store[li])
        } else {
            Some(self.store[li * self.depth as usize + self.head[li] as usize])
        }
    }

    /// Remove and return lane `li`'s oldest flit.
    #[inline]
    pub fn pop(&mut self, li: usize) -> Option<FlitRef> {
        if self.len[li] == 0 {
            return None;
        }
        // Single-slot buffers (the paper's default) skip the ring
        // arithmetic entirely: `head` is pinned at 0, the slot is `li`.
        if self.depth == 1 {
            self.len[li] = 0;
            return Some(self.store[li]);
        }
        let f = self.store[li * self.depth as usize + self.head[li] as usize];
        // `head < depth` always, so one conditional wrap replaces the
        // (runtime-divisor) modulo on the hot flit-move path.
        let h = self.head[li] + 1;
        self.head[li] = if h == self.depth { 0 } else { h };
        self.len[li] -= 1;
        Some(f)
    }

    /// Append a flit to lane `li`. Returns `false` (dropping the flit)
    /// if the lane's buffer is full — the engine checks
    /// [`LaneBufs::is_full`] before moving a flit and treats a refused
    /// push as a violated invariant, surfaced as a typed error rather
    /// than a panic.
    #[inline]
    #[must_use]
    pub fn push(&mut self, li: usize, f: FlitRef) -> bool {
        if self.len[li] == self.depth {
            return false;
        }
        // Depth-1 twin of the `pop` fast path: `len` was 0, `head` is 0.
        if self.depth == 1 {
            self.store[li] = f;
            self.len[li] = 1;
            return true;
        }
        // `head < depth` and `len < depth` here, so the ring offset needs
        // at most one wrap — no runtime-divisor modulo.
        let s = self.head[li] + self.len[li];
        let slot = if s >= self.depth { s - self.depth } else { s };
        self.store[li * self.depth as usize + slot as usize] = f;
        self.len[li] += 1;
        true
    }
}

/// Word-level iterator over the set bits of a `u64` word slice, in
/// ascending index order.
///
/// This is the one scan primitive behind every bitset traversal in the
/// engine: it walks whole words and extracts members with
/// `trailing_zeros`, so a sweep costs O(words + members) regardless of
/// how the members cluster. [`DenseBitSet::iter_set`] hands one out over
/// a set's own words; [`SetBits::over`] runs the same kernel over any
/// raw mask slice (the per-epoch dead-lane words, scratch masks).
pub struct SetBits<'a> {
    words: &'a [u64],
    /// Index of the next word to load.
    next_word: usize,
    /// Remaining bits of the current word (already consumed bits cleared).
    current: u64,
    /// Bit index of the current word's bit 0.
    base: u32,
}

impl<'a> SetBits<'a> {
    /// Iterate the set bits of an arbitrary word slice (bit `64·w + b` of
    /// word `w` is index `64·w + b`).
    pub fn over(words: &'a [u64]) -> SetBits<'a> {
        SetBits {
            words,
            next_word: 0,
            current: 0,
            base: 0,
        }
    }
}

impl Iterator for SetBits<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            let &w = self.words.get(self.next_word)?;
            self.base = (self.next_word * 64) as u32;
            self.next_word += 1;
            self.current = w;
        }
        let b = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some(self.base + b)
    }
}

/// A fixed-capacity bitset over dense `u32` indices with ascending
/// iteration.
#[derive(Clone, Debug)]
pub struct DenseBitSet {
    words: Vec<u64>,
}

impl DenseBitSet {
    /// An empty set able to hold indices `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        DenseBitSet {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Empty the set and re-dimension it for indices `0..capacity`,
    /// keeping the word allocation when it suffices (the engine-state
    /// pool resets in place between runs).
    pub fn reset(&mut self, capacity: usize) {
        self.words.clear();
        self.words.resize(capacity.div_ceil(64), 0);
    }

    /// Grow the capacity to at least `capacity` indices, preserving the
    /// current members (the engine's per-packet-slot set grows with the
    /// slot table). Never shrinks.
    pub fn grow(&mut self, capacity: usize) {
        let want = capacity.div_ceil(64);
        if want > self.words.len() {
            self.words.resize(want, 0);
        }
    }

    /// Insert `i`. Idempotent.
    #[inline]
    pub fn set(&mut self, i: u32) {
        self.words[i as usize / 64] |= 1u64 << (i % 64);
    }

    /// Remove `i`. Idempotent.
    #[inline]
    pub fn clear(&mut self, i: u32) {
        self.words[i as usize / 64] &= !(1u64 << (i % 64));
    }

    /// Whether `i` is in the set.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        self.words[i as usize / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of 64-bit words backing the set.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// The raw word at index `w` (bits `64·w .. 64·w+63`). Word-blocked
    /// sweeps (the engine's ready-channel kernel) re-read a word between
    /// members so bits set *ahead of the cursor* during the sweep are
    /// still caught within the same pass.
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Make `self` an exact copy of `other` (same capacity, same
    /// members), reusing the word allocation.
    pub fn copy_from(&mut self, other: &DenseBitSet) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    /// Whether no index is set. A word-level scan — the quiescence-style
    /// checks use this instead of iterating members.
    #[inline]
    pub fn is_empty_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Word-level iterator over the members in ascending order.
    #[inline]
    pub fn iter_set(&self) -> SetBits<'_> {
        SetBits::over(&self.words)
    }

    /// Visit members in ascending order, appending them to `out`
    /// (cleared first). Collecting into a caller-owned scratch buffer —
    /// rather than handing out an iterator — lets the engine mutate the
    /// set while processing the snapshot.
    pub fn collect_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.iter_set());
    }

    /// Call `f` on each member in ascending order. `f` must not mutate
    /// the set (enforced by the shared borrow).
    pub fn for_each(&self, mut f: impl FnMut(u32)) {
        for i in self.iter_set() {
            f(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_bufs_fifo_semantics() {
        let mut b = LaneBufs::default();
        b.reset(3, 2);
        assert!(b.is_empty(0) && !b.is_full(0));
        assert!(b.push(1, FlitRef { packet: 7, index: 0 }));
        assert!(b.push(1, FlitRef { packet: 7, index: 1 }));
        assert!(b.is_full(1));
        assert!(b.is_empty(0) && b.is_empty(2), "lanes are independent");
        assert_eq!(b.front(1), Some(FlitRef { packet: 7, index: 0 }));
        assert_eq!(b.pop(1), Some(FlitRef { packet: 7, index: 0 }));
        // Wraparound: push after a pop reuses the freed ring slot.
        assert!(b.push(1, FlitRef { packet: 7, index: 2 }));
        assert_eq!(b.pop(1), Some(FlitRef { packet: 7, index: 1 }));
        assert_eq!(b.pop(1), Some(FlitRef { packet: 7, index: 2 }));
        assert_eq!(b.pop(1), None);
    }

    #[test]
    fn lane_bufs_reset_empties_and_redimensions() {
        let mut b = LaneBufs::default();
        b.reset(2, 1);
        assert!(b.push(0, FlitRef { packet: 1, index: 0 }));
        b.reset(4, 3);
        assert_eq!(b.depth(), 3);
        for li in 0..4 {
            assert!(b.is_empty(li));
        }
    }

    #[test]
    fn lane_bufs_reject_overfill() {
        let mut b = LaneBufs::default();
        b.reset(1, 1);
        assert!(b.push(0, FlitRef { packet: 0, index: 0 }));
        assert!(!b.push(0, FlitRef { packet: 0, index: 1 }), "full lane refuses the flit");
        assert_eq!(b.front(0), Some(FlitRef { packet: 0, index: 0 }), "refused push leaves the buffer intact");
    }

    #[test]
    fn set_clear_contains() {
        let mut s = DenseBitSet::with_capacity(130);
        assert!(!s.contains(0));
        s.set(0);
        s.set(63);
        s.set(64);
        s.set(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        s.clear(64);
        assert!(!s.contains(64));
        s.set(0); // idempotent
        assert!(s.contains(0));
    }

    #[test]
    fn iteration_is_ascending_and_complete() {
        let mut s = DenseBitSet::with_capacity(200);
        let members = [199u32, 3, 64, 65, 0, 127, 128, 31];
        for &m in &members {
            s.set(m);
        }
        let mut got = Vec::new();
        s.collect_into(&mut got);
        let mut want: Vec<u32> = members.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
        let mut via_fn = Vec::new();
        s.for_each(|i| via_fn.push(i));
        assert_eq!(via_fn, want);
    }

    #[test]
    fn collect_clears_previous_contents() {
        let mut s = DenseBitSet::with_capacity(10);
        s.set(5);
        let mut out = vec![1, 2, 3];
        s.collect_into(&mut out);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn word_access_matches_membership() {
        let mut s = DenseBitSet::with_capacity(130);
        assert_eq!(s.num_words(), 3);
        s.set(1);
        s.set(64);
        s.set(129);
        assert_eq!(s.word(0), 1u64 << 1);
        assert_eq!(s.word(1), 1u64 << 0);
        assert_eq!(s.word(2), 1u64 << 1);
        s.clear(64);
        assert_eq!(s.word(1), 0);
    }

    #[test]
    fn copy_from_replicates_capacity_and_members() {
        let mut a = DenseBitSet::with_capacity(130);
        a.set(0);
        a.set(129);
        let mut b = DenseBitSet::with_capacity(10);
        b.set(3);
        b.copy_from(&a);
        assert_eq!(b.num_words(), a.num_words());
        assert!(b.contains(0) && b.contains(129));
        assert!(!b.contains(3));
    }

    #[test]
    fn set_bits_crosses_word_boundaries() {
        // Members straddling every word seam of a 3-word set, including
        // both sides of each boundary (63|64, 127|128).
        let mut s = DenseBitSet::with_capacity(192);
        let members = [0u32, 62, 63, 64, 65, 126, 127, 128, 191];
        for &m in &members {
            s.set(m);
        }
        assert_eq!(s.iter_set().collect::<Vec<_>>(), members);
        // A fully-set middle word between sparse neighbours.
        let mut s = DenseBitSet::with_capacity(192);
        s.set(5);
        for i in 64..128 {
            s.set(i);
        }
        s.set(130);
        let got: Vec<u32> = s.iter_set().collect();
        assert_eq!(got.len(), 66);
        assert_eq!(got[0], 5);
        assert_eq!(&got[1..65], (64..128).collect::<Vec<_>>().as_slice());
        assert_eq!(got[65], 130);
    }

    #[test]
    fn set_bits_trailing_partial_word() {
        // Capacity 150 leaves a 22-bit tail in the third word; the
        // iterator must stop at the last member, and the unused high
        // bits of the trailing word stay zero.
        let mut s = DenseBitSet::with_capacity(150);
        s.set(149);
        s.set(128);
        assert_eq!(s.iter_set().collect::<Vec<_>>(), vec![128, 149]);
        assert_eq!(s.word(2) >> 22, 0, "no bits beyond the capacity tail");
        s.clear(149);
        s.clear(128);
        assert!(s.is_empty_set());
    }

    #[test]
    fn set_bits_over_raw_words() {
        let words = [0u64, 1 << 3 | 1 << 63, 0, 1];
        assert_eq!(
            SetBits::over(&words).collect::<Vec<_>>(),
            vec![67, 127, 192]
        );
        assert_eq!(SetBits::over(&[]).count(), 0);
        assert_eq!(SetBits::over(&[0, 0]).count(), 0);
    }

    #[test]
    fn grow_preserves_members() {
        let mut s = DenseBitSet::with_capacity(10);
        s.set(9);
        s.grow(200);
        assert!(s.contains(9));
        assert_eq!(s.num_words(), 4);
        s.set(199);
        assert_eq!(s.iter_set().collect::<Vec<_>>(), vec![9, 199]);
        s.grow(50); // never shrinks
        assert_eq!(s.num_words(), 4);
    }

    #[test]
    fn is_empty_set_tracks_membership() {
        let mut s = DenseBitSet::with_capacity(130);
        assert!(s.is_empty_set());
        s.set(129);
        assert!(!s.is_empty_set());
        s.clear(129);
        assert!(s.is_empty_set());
    }

    #[test]
    fn empty_and_full_words() {
        let s = DenseBitSet::with_capacity(0);
        let mut out = Vec::new();
        s.collect_into(&mut out);
        assert!(out.is_empty());

        let mut s = DenseBitSet::with_capacity(64);
        for i in 0..64 {
            s.set(i);
        }
        s.collect_into(&mut out);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }
}
