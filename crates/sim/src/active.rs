//! Dense index sets and flat lane-buffer storage for the engine's
//! occupancy-scaled hot loop.
//!
//! The engine keeps three active sets so its per-cycle cost tracks
//! *occupancy* (in-flight worms, nonempty sources, claimed channels)
//! instead of network size:
//!
//! * injectable sources — nodes whose FCFS queue is nonempty while the
//!   injection channel is idle;
//! * occupied channels — channels with at least one owned lane, indexed
//!   by their *transmit-order position* so a sweep visits them in
//!   reverse-topological order;
//! * active packets — already a dense list in the engine itself.
//!
//! [`DenseBitSet`] backs the first two: membership flips are O(1) and
//! ascending-order iteration costs O(words + members), where `words` is
//! `capacity / 64` — a handful of cache lines even for thousands of
//! channels, and far cheaper than touching every `Lane` or `Source`.
//! Iteration order is always ascending index, which is what keeps the
//! optimized engine's request ordering (and thus its RNG stream)
//! bit-identical to the reference engine's full scans.

use minnet_switch::FlitRef;

/// Flat struct-of-arrays storage for every lane's flit FIFO.
///
/// The engine used to keep one heap-allocated `VecDeque`-backed
/// [`minnet_switch::FlitFifo`] per lane inside an array-of-structs
/// `Lane`; every buffer probe in the allocate/transmit sweeps then chased
/// a pointer to a separately-allocated ring. This repack stores all
/// buffers in **three dense arrays** — `store` (the rings themselves,
/// `depth` slots per lane), `head`, and `len` — so occupancy checks touch
/// contiguous `u32` lanes and the common `depth == 1` case reads the flit
/// straight out of a flat array. Semantics are exactly a per-lane bounded
/// FIFO; only the memory layout changed.
#[derive(Clone, Debug, Default)]
pub struct LaneBufs {
    store: Vec<FlitRef>,
    head: Vec<u32>,
    len: Vec<u32>,
    depth: u32,
}

impl LaneBufs {
    /// Empty all buffers and re-dimension for `lanes` lanes of `depth`
    /// flits each, keeping allocations when dimensions allow.
    pub fn reset(&mut self, lanes: usize, depth: u32) {
        assert!(depth >= 1, "a channel buffer holds at least one flit");
        self.depth = depth;
        let filler = FlitRef { packet: 0, index: 0 };
        self.store.clear();
        self.store.resize(lanes * depth as usize, filler);
        self.head.clear();
        self.head.resize(lanes, 0);
        self.len.clear();
        self.len.resize(lanes, 0);
    }

    /// Buffer capacity per lane.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Whether lane `li` buffers no flit.
    #[inline]
    pub fn is_empty(&self, li: usize) -> bool {
        self.len[li] == 0
    }

    /// Whether lane `li`'s buffer is full.
    #[inline]
    pub fn is_full(&self, li: usize) -> bool {
        self.len[li] == self.depth
    }

    /// The oldest flit buffered in lane `li`, if any.
    #[inline]
    pub fn front(&self, li: usize) -> Option<FlitRef> {
        if self.len[li] == 0 {
            None
        } else {
            Some(self.store[li * self.depth as usize + self.head[li] as usize])
        }
    }

    /// Remove and return lane `li`'s oldest flit.
    #[inline]
    pub fn pop(&mut self, li: usize) -> Option<FlitRef> {
        if self.len[li] == 0 {
            return None;
        }
        let f = self.store[li * self.depth as usize + self.head[li] as usize];
        // `head < depth` always, so one conditional wrap replaces the
        // (runtime-divisor) modulo on the hot flit-move path.
        let h = self.head[li] + 1;
        self.head[li] = if h == self.depth { 0 } else { h };
        self.len[li] -= 1;
        Some(f)
    }

    /// Append a flit to lane `li`. Returns `false` (dropping the flit)
    /// if the lane's buffer is full — the engine checks
    /// [`LaneBufs::is_full`] before moving a flit and treats a refused
    /// push as a violated invariant, surfaced as a typed error rather
    /// than a panic.
    #[inline]
    #[must_use]
    pub fn push(&mut self, li: usize, f: FlitRef) -> bool {
        if self.len[li] == self.depth {
            return false;
        }
        // `head < depth` and `len < depth` here, so the ring offset needs
        // at most one wrap — no runtime-divisor modulo.
        let s = self.head[li] + self.len[li];
        let slot = if s >= self.depth { s - self.depth } else { s };
        self.store[li * self.depth as usize + slot as usize] = f;
        self.len[li] += 1;
        true
    }
}

/// A fixed-capacity bitset over dense `u32` indices with ascending
/// iteration.
#[derive(Clone, Debug)]
pub struct DenseBitSet {
    words: Vec<u64>,
}

impl DenseBitSet {
    /// An empty set able to hold indices `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        DenseBitSet {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Empty the set and re-dimension it for indices `0..capacity`,
    /// keeping the word allocation when it suffices (the engine-state
    /// pool resets in place between runs).
    pub fn reset(&mut self, capacity: usize) {
        self.words.clear();
        self.words.resize(capacity.div_ceil(64), 0);
    }

    /// Insert `i`. Idempotent.
    #[inline]
    pub fn set(&mut self, i: u32) {
        self.words[i as usize / 64] |= 1u64 << (i % 64);
    }

    /// Remove `i`. Idempotent.
    #[inline]
    pub fn clear(&mut self, i: u32) {
        self.words[i as usize / 64] &= !(1u64 << (i % 64));
    }

    /// Whether `i` is in the set.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        self.words[i as usize / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of 64-bit words backing the set.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// The raw word at index `w` (bits `64·w .. 64·w+63`). Word-blocked
    /// sweeps (the engine's ready-channel kernel) re-read a word between
    /// members so bits set *ahead of the cursor* during the sweep are
    /// still caught within the same pass.
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Make `self` an exact copy of `other` (same capacity, same
    /// members), reusing the word allocation.
    pub fn copy_from(&mut self, other: &DenseBitSet) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    /// Visit members in ascending order, appending them to `out`
    /// (cleared first). Collecting into a caller-owned scratch buffer —
    /// rather than handing out an iterator — lets the engine mutate the
    /// set while processing the snapshot.
    pub fn collect_into(&self, out: &mut Vec<u32>) {
        out.clear();
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push((w * 64) as u32 + b);
                bits &= bits - 1;
            }
        }
    }

    /// Call `f` on each member in ascending order. `f` must not mutate
    /// the set (enforced by the shared borrow).
    pub fn for_each(&self, mut f: impl FnMut(u32)) {
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros();
                f((w * 64) as u32 + b);
                bits &= bits - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_bufs_fifo_semantics() {
        let mut b = LaneBufs::default();
        b.reset(3, 2);
        assert!(b.is_empty(0) && !b.is_full(0));
        assert!(b.push(1, FlitRef { packet: 7, index: 0 }));
        assert!(b.push(1, FlitRef { packet: 7, index: 1 }));
        assert!(b.is_full(1));
        assert!(b.is_empty(0) && b.is_empty(2), "lanes are independent");
        assert_eq!(b.front(1), Some(FlitRef { packet: 7, index: 0 }));
        assert_eq!(b.pop(1), Some(FlitRef { packet: 7, index: 0 }));
        // Wraparound: push after a pop reuses the freed ring slot.
        assert!(b.push(1, FlitRef { packet: 7, index: 2 }));
        assert_eq!(b.pop(1), Some(FlitRef { packet: 7, index: 1 }));
        assert_eq!(b.pop(1), Some(FlitRef { packet: 7, index: 2 }));
        assert_eq!(b.pop(1), None);
    }

    #[test]
    fn lane_bufs_reset_empties_and_redimensions() {
        let mut b = LaneBufs::default();
        b.reset(2, 1);
        assert!(b.push(0, FlitRef { packet: 1, index: 0 }));
        b.reset(4, 3);
        assert_eq!(b.depth(), 3);
        for li in 0..4 {
            assert!(b.is_empty(li));
        }
    }

    #[test]
    fn lane_bufs_reject_overfill() {
        let mut b = LaneBufs::default();
        b.reset(1, 1);
        assert!(b.push(0, FlitRef { packet: 0, index: 0 }));
        assert!(!b.push(0, FlitRef { packet: 0, index: 1 }), "full lane refuses the flit");
        assert_eq!(b.front(0), Some(FlitRef { packet: 0, index: 0 }), "refused push leaves the buffer intact");
    }

    #[test]
    fn set_clear_contains() {
        let mut s = DenseBitSet::with_capacity(130);
        assert!(!s.contains(0));
        s.set(0);
        s.set(63);
        s.set(64);
        s.set(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        s.clear(64);
        assert!(!s.contains(64));
        s.set(0); // idempotent
        assert!(s.contains(0));
    }

    #[test]
    fn iteration_is_ascending_and_complete() {
        let mut s = DenseBitSet::with_capacity(200);
        let members = [199u32, 3, 64, 65, 0, 127, 128, 31];
        for &m in &members {
            s.set(m);
        }
        let mut got = Vec::new();
        s.collect_into(&mut got);
        let mut want: Vec<u32> = members.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
        let mut via_fn = Vec::new();
        s.for_each(|i| via_fn.push(i));
        assert_eq!(via_fn, want);
    }

    #[test]
    fn collect_clears_previous_contents() {
        let mut s = DenseBitSet::with_capacity(10);
        s.set(5);
        let mut out = vec![1, 2, 3];
        s.collect_into(&mut out);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn word_access_matches_membership() {
        let mut s = DenseBitSet::with_capacity(130);
        assert_eq!(s.num_words(), 3);
        s.set(1);
        s.set(64);
        s.set(129);
        assert_eq!(s.word(0), 1u64 << 1);
        assert_eq!(s.word(1), 1u64 << 0);
        assert_eq!(s.word(2), 1u64 << 1);
        s.clear(64);
        assert_eq!(s.word(1), 0);
    }

    #[test]
    fn copy_from_replicates_capacity_and_members() {
        let mut a = DenseBitSet::with_capacity(130);
        a.set(0);
        a.set(129);
        let mut b = DenseBitSet::with_capacity(10);
        b.set(3);
        b.copy_from(&a);
        assert_eq!(b.num_words(), a.num_words());
        assert!(b.contains(0) && b.contains(129));
        assert!(!b.contains(3));
    }

    #[test]
    fn empty_and_full_words() {
        let s = DenseBitSet::with_capacity(0);
        let mut out = Vec::new();
        s.collect_into(&mut out);
        assert!(out.is_empty());

        let mut s = DenseBitSet::with_capacity(64);
        for i in 0..64 {
            s.set(i);
        }
        s.collect_into(&mut out);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }
}
