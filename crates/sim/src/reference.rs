//! The *reference* engine: the original scan-everything implementation,
//! frozen as a differential-testing oracle.
//!
//! [`crate::engine`] optimizes the per-cycle hot loop to scale with
//! *occupancy* (active worms, nonempty sources, claimed channels) rather
//! than network size. This module preserves the pre-optimization
//! scheduling verbatim — every cycle it scans all sources for injection
//! requests, all channels for ready lanes, and sums every source queue —
//! so `tests/engine_equivalence.rs` can require **bit-identical
//! [`SimReport`]s** from the two engines for the same seed across every
//! network kind and traffic mode. Any divergence pinpoints a bug in the
//! optimized engine's active-set bookkeeping.
//!
//! The two measurement-accounting fixes (rates divided by *elapsed*
//! measured cycles, delivered flits honoring the per-packet `measured`
//! flag — see the `engine` module header) are applied here too: the
//! oracle differs from the optimized engine only in scheduling data
//! structures, never in semantics.
//!
//! Compiled only with the `reference-engine` feature (enabled by the
//! differential tests and the `engine_idle`/`engine_saturated` benches);
//! production consumers get the optimized engine alone.

use crate::config::{Delivery, EngineConfig, SimReport, TransmitOrder};
use crate::engine::{ChainedMsg, ScriptedMsg};
use crate::stats::{BatchMeans, LatencyHistogram, Welford};
use crate::trace::{Trace, TraceEvent};
use minnet_routing::RouteLogic;
use minnet_switch::{Arbiter, Crossbar, FlitFifo, FlitRef, VcMux};
use minnet_topology::{ChannelId, Endpoint, NetworkGraph, Side};
use minnet_traffic::Workload;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

const NONE: u32 = u32::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Upstream {
    Exhausted,
    Source(u32),
    Lane(u32),
}

#[derive(Clone, Debug)]
struct Lane {
    owner: u32,
    buf: FlitFifo,
    upstream: Upstream,
}

#[derive(Clone, Debug)]
struct Packet {
    src: u32,
    dst: u32,
    len: u32,
    gen_time: u64,
    sent: u32,
    delivered: u32,
    head_lane: u32,
    measured: bool,
    tag: u32,
}

#[derive(Clone, Copy, Debug)]
struct QueuedMsg {
    dst: u32,
    len: u32,
    gen_time: u64,
    tag: u32,
}

#[derive(Clone, Debug)]
struct Source {
    queue: VecDeque<QueuedMsg>,
    injecting: u32,
    next_arrival: f64,
}

enum Traffic<'a> {
    Poisson(&'a Workload),
    Scripted {
        msgs: Vec<ScriptedMsg>,
        next: usize,
    },
    Chained {
        msgs: Vec<ChainedMsg>,
        dependents: Vec<Vec<u32>>,
        release: Vec<Option<u64>>,
        enqueued: Vec<bool>,
        remaining: usize,
        overhead: u64,
    },
}

enum Req {
    Inject(u32),
    Advance(u32),
}

struct Engine<'a> {
    net: &'a NetworkGraph,
    cfg: EngineConfig,
    logic: RouteLogic,
    traffic: Traffic<'a>,
    vcs: usize,
    lanes: Vec<Lane>,
    mux: Vec<VcMux>,
    order: Vec<ChannelId>,
    dst_is_node: Vec<bool>,
    packets: Vec<Packet>,
    free_slots: Vec<u32>,
    active: Vec<u32>,
    sources: Vec<Source>,
    crossbars: Option<Vec<Crossbar>>,
    arbiter: Arbiter,
    rng: SmallRng,
    now: u64,
    end: u64,
    generated_pkts: u64,
    generated_flits: u64,
    delivered_pkts: u64,
    delivered_flits: u64,
    latency: Welford,
    latency_hist: LatencyHistogram,
    latency_batches: BatchMeans,
    /// Exact integer accumulator behind `mean_queue` (kept in lockstep
    /// with the optimized engine's: the division happens once, in
    /// `finish`, so both engines produce the identical f64).
    queue_sum: u64,
    queue_cycles: u64,
    max_queue: usize,
    util: Vec<u64>,
    deliveries: Option<Vec<Delivery>>,
    trace: Option<Trace>,
    cand: Vec<ChannelId>,
    elig: Vec<u32>,
    elig_flags: Vec<bool>,
    ready: Vec<bool>,
}

impl<'a> Engine<'a> {
    fn new(
        net: &'a NetworkGraph,
        traffic: Traffic<'a>,
        cfg: EngineConfig,
    ) -> Result<Engine<'a>, String> {
        cfg.validate()?;
        let vcs = cfg.vcs as usize;
        let nch = net.num_channels();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let n_nodes = net.geometry.nodes() as usize;

        let mut sources: Vec<Source> = (0..n_nodes)
            .map(|_| Source {
                queue: VecDeque::new(),
                injecting: NONE,
                next_arrival: f64::INFINITY,
            })
            .collect();
        if let Traffic::Poisson(wl) = &traffic {
            if wl.geometry() != net.geometry {
                return Err("workload geometry does not match the network".into());
            }
            for (node, s) in sources.iter_mut().enumerate() {
                let rate = wl.message_rate(node as u32);
                if rate > 0.0 {
                    let u: f64 = 1.0 - rng.random::<f64>();
                    s.next_arrival = -u.ln() / rate;
                }
            }
        }

        let crossbars = if cfg.validate_crossbars {
            let k = net.geometry.k() as u8;
            let d = net.kind.dilation();
            Some(
                (0..net.num_switches())
                    .map(|_| {
                        if net.kind.is_bidirectional() {
                            Crossbar::new(k, true)
                        } else {
                            Crossbar::new(k * d, false)
                        }
                    })
                    .collect(),
            )
        } else {
            None
        };

        let order = match cfg.transmit_order {
            TransmitOrder::ReverseTopo => net.transmit_order().to_vec(),
            TransmitOrder::BuildOrder => (0..nch as u32).collect(),
        };
        let deterministic = !matches!(traffic, Traffic::Poisson(_));

        Ok(Engine {
            net,
            logic: RouteLogic::for_kind(net.kind),
            traffic,
            vcs,
            lanes: vec![
                Lane {
                    owner: NONE,
                    buf: FlitFifo::new(cfg.buffer_depth as usize),
                    upstream: Upstream::Exhausted,
                };
                nch * vcs
            ],
            mux: vec![VcMux::new(cfg.vc_mux); nch],
            order,
            dst_is_node: net
                .channels
                .iter()
                .map(|c| matches!(c.dst, Endpoint::Node(_)))
                .collect(),
            packets: Vec::new(),
            free_slots: Vec::new(),
            active: Vec::new(),
            sources,
            crossbars,
            arbiter: Arbiter::new(cfg.alloc),
            rng,
            now: 0,
            end: cfg.warmup + cfg.measure,
            generated_pkts: 0,
            generated_flits: 0,
            delivered_pkts: 0,
            delivered_flits: 0,
            latency: Welford::new(),
            latency_hist: LatencyHistogram::new(),
            latency_batches: BatchMeans::new(16, 64.max(cfg.measure / 2048)),
            queue_sum: 0,
            queue_cycles: 0,
            max_queue: 0,
            util: if cfg.collect_channel_util {
                vec![0; nch]
            } else {
                Vec::new()
            },
            deliveries: if deterministic { Some(Vec::new()) } else { None },
            trace: if cfg.collect_trace {
                Some(Trace::default())
            } else {
                None
            },
            cand: Vec::new(),
            elig: Vec::new(),
            elig_flags: Vec::new(),
            ready: vec![false; vcs],
            cfg,
        })
    }

    #[inline]
    fn measuring(&self) -> bool {
        self.now >= self.cfg.warmup
    }

    fn in_code(&self, ch: ChannelId) -> (u32, u8) {
        let c = self.net.channel(ch);
        match c.dst {
            Endpoint::Switch { sw, side, port } => {
                let code = self.port_code(side, port, c.lane);
                (sw, code)
            }
            Endpoint::Node(_) => unreachable!("in_code of an ejection channel"),
        }
    }

    fn out_code(&self, ch: ChannelId) -> (u32, u8) {
        let c = self.net.channel(ch);
        match c.src {
            Endpoint::Switch { sw, side, port } => {
                let code = self.port_code(side, port, c.lane);
                (sw, code)
            }
            Endpoint::Node(_) => unreachable!("out_code of an injection channel"),
        }
    }

    fn port_code(&self, side: Side, port: u8, lane: u8) -> u8 {
        if self.net.kind.is_bidirectional() {
            let k = self.net.geometry.k() as u8;
            match side {
                Side::Left => port,
                Side::Right => k + port,
            }
        } else {
            port * self.net.kind.dilation() + lane
        }
    }

    // ---- phase 1: arrivals (full scan over sources / script entries) ---

    fn generate_arrivals(&mut self) {
        let now_f = self.now as f64;
        let measuring = self.measuring();
        match &mut self.traffic {
            Traffic::Poisson(wl) => {
                for node in 0..self.sources.len() as u32 {
                    let src = &mut self.sources[node as usize];
                    while src.next_arrival <= now_f {
                        let dst = wl.draw_destination(node, &mut self.rng);
                        let len = wl.draw_length(&mut self.rng);
                        src.queue.push_back(QueuedMsg {
                            dst,
                            len,
                            gen_time: self.now,
                            tag: NONE,
                        });
                        if let Some(tr) = &mut self.trace {
                            tr.events.push(TraceEvent::Queued {
                                tag: NONE,
                                time: self.now,
                                src: node,
                                dst,
                                len,
                            });
                        }
                        if measuring {
                            self.generated_pkts += 1;
                            self.generated_flits += u64::from(len);
                            self.max_queue = self.max_queue.max(src.queue.len());
                        }
                        let rate = wl.message_rate(node);
                        let u: f64 = 1.0 - self.rng.random::<f64>();
                        src.next_arrival += -u.ln() / rate;
                    }
                }
            }
            Traffic::Scripted { msgs, next } => {
                while *next < msgs.len() && msgs[*next].time <= self.now {
                    let m = msgs[*next];
                    let tag = *next as u32;
                    *next += 1;
                    let src = &mut self.sources[m.src as usize];
                    src.queue.push_back(QueuedMsg {
                        dst: m.dst,
                        len: m.len,
                        gen_time: m.time,
                        tag,
                    });
                    if let Some(tr) = &mut self.trace {
                        tr.events.push(TraceEvent::Queued {
                            tag,
                            time: self.now,
                            src: m.src,
                            dst: m.dst,
                            len: m.len,
                        });
                    }
                    if measuring {
                        self.generated_pkts += 1;
                        self.generated_flits += u64::from(m.len);
                        self.max_queue = self.max_queue.max(src.queue.len());
                    }
                }
            }
            Traffic::Chained {
                msgs,
                release,
                enqueued,
                ..
            } => {
                for i in 0..msgs.len() {
                    if enqueued[i] {
                        continue;
                    }
                    let Some(t) = release[i] else { continue };
                    if t > self.now {
                        continue;
                    }
                    enqueued[i] = true;
                    let m = msgs[i];
                    let src = &mut self.sources[m.src as usize];
                    src.queue.push_back(QueuedMsg {
                        dst: m.dst,
                        len: m.len,
                        gen_time: t,
                        tag: i as u32,
                    });
                    if let Some(tr) = &mut self.trace {
                        tr.events.push(TraceEvent::Queued {
                            tag: i as u32,
                            time: self.now,
                            src: m.src,
                            dst: m.dst,
                            len: m.len,
                        });
                    }
                    if measuring {
                        self.generated_pkts += 1;
                        self.generated_flits += u64::from(m.len);
                        self.max_queue = self.max_queue.max(src.queue.len());
                    }
                }
            }
        }
    }

    // ---- phase 2: routing and lane allocation (full source scan) ------

    fn allocate(&mut self) {
        let mut reqs: Vec<Req> = Vec::new();
        for (node, s) in self.sources.iter().enumerate() {
            if s.injecting == NONE && !s.queue.is_empty() {
                reqs.push(Req::Inject(node as u32));
            }
        }
        for &p in &self.active {
            let pkt = &self.packets[p as usize];
            let hl = pkt.head_lane;
            debug_assert_ne!(hl, NONE);
            let ch = (hl as usize / self.vcs) as u32;
            if self.dst_is_node[ch as usize] {
                continue;
            }
            if let Some(flit) = self.lanes[hl as usize].buf.front() {
                if flit.packet == p && flit.is_header() {
                    reqs.push(Req::Advance(p));
                }
            }
        }
        let n = reqs.len();
        for i in (1..n).rev() {
            let j = self.rng.random_range(0..=i);
            reqs.swap(i, j);
        }
        for req in reqs {
            match req {
                Req::Inject(node) => self.try_inject(node),
                Req::Advance(p) => self.try_advance(p),
            }
        }
    }

    /// Claim a free lane among `self.cand` channels, via the original
    /// all-`true` flag-slice arbiter round-trip.
    fn claim_lane(&mut self, owner_hint: u32) -> Option<u32> {
        self.elig.clear();
        for &ch in &self.cand {
            for vc in 0..self.vcs {
                let li = ch as usize * self.vcs + vc;
                if self.lanes[li].owner == NONE {
                    self.elig.push(li as u32);
                }
            }
        }
        if self.elig.is_empty() {
            return None;
        }
        self.elig_flags.clear();
        self.elig_flags.resize(self.elig.len(), true);
        let idx = self
            .arbiter
            .pick(&self.elig_flags, &mut self.rng)
            .expect("nonempty eligible set");
        let lane = self.elig[idx];
        self.lanes[lane as usize].owner = owner_hint;
        Some(lane)
    }

    fn try_inject(&mut self, node: u32) {
        self.cand.clear();
        self.cand.push(self.net.inject(node));
        let Some(lane) = self.claim_lane(NONE - 1) else {
            return;
        };
        let msg = self.sources[node as usize]
            .queue
            .pop_front()
            .expect("inject request without a queued message");
        let pkt = Packet {
            src: node,
            dst: msg.dst,
            len: msg.len,
            gen_time: msg.gen_time,
            sent: 0,
            delivered: 0,
            head_lane: lane,
            measured: msg.gen_time >= self.cfg.warmup,
            tag: msg.tag,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.packets[s as usize] = pkt;
                s
            }
            None => {
                self.packets.push(pkt);
                (self.packets.len() - 1) as u32
            }
        };
        let l = &mut self.lanes[lane as usize];
        l.owner = slot;
        l.upstream = Upstream::Source(node);
        self.sources[node as usize].injecting = slot;
        self.active.push(slot);
        if let Some(tr) = &mut self.trace {
            let tag = self.packets[slot as usize].tag;
            tr.events.push(TraceEvent::Injected { tag, time: self.now });
            tr.events.push(TraceEvent::Hop {
                tag,
                time: self.now,
                channel: (lane as usize / self.vcs) as u32,
            });
        }
    }

    fn try_advance(&mut self, p: u32) {
        let (src, dst, at_lane) = {
            let pkt = &self.packets[p as usize];
            (pkt.src, pkt.dst, pkt.head_lane)
        };
        let at_ch = (at_lane as usize / self.vcs) as u32;
        self.logic
            .candidates(self.net, src, dst, at_ch, &mut self.cand);
        debug_assert!(!self.cand.is_empty(), "advance request at the destination");
        let Some(lane) = self.claim_lane(p) else {
            return;
        };
        let new_ch = (lane as usize / self.vcs) as u32;
        self.lanes[lane as usize].upstream = Upstream::Lane(at_lane);
        self.packets[p as usize].head_lane = lane;
        if let Some(tr) = &mut self.trace {
            tr.events.push(TraceEvent::Hop {
                tag: self.packets[p as usize].tag,
                time: self.now,
                channel: new_ch,
            });
        }
        if self.crossbars.is_none() {
            return;
        }
        let (sw_in, code_in) = self.in_code(at_ch);
        let (sw_out, code_out) = self.out_code(new_ch);
        debug_assert_eq!(sw_in, sw_out, "allocation must stay inside one switch");
        if let Some(xbars) = &mut self.crossbars {
            xbars[sw_in as usize]
                .connect(code_in, code_out)
                .expect("engine requested an illegal crossbar connection");
        }
    }

    // ---- phase 3: transmission (full channel scan) ---------------------

    fn transmit(&mut self) {
        for oi in 0..self.order.len() {
            let ch = self.order[oi];
            let base = ch as usize * self.vcs;
            let mut any = false;
            for vc in 0..self.vcs {
                let r = self.lane_ready(base + vc, ch);
                self.ready[vc] = r;
                any |= r;
            }
            if !any {
                continue;
            }
            let vc = self.mux[ch as usize]
                .select(&self.ready[..self.vcs])
                .expect("a ready lane must be selectable");
            self.move_flit(ch, base + vc);
        }
    }

    #[inline]
    fn lane_ready(&self, li: usize, ch: ChannelId) -> bool {
        let lane = &self.lanes[li];
        if lane.owner == NONE {
            return false;
        }
        let has_input = match lane.upstream {
            Upstream::Exhausted => false,
            Upstream::Source(_) => {
                let pkt = &self.packets[lane.owner as usize];
                pkt.sent < pkt.len
            }
            Upstream::Lane(u) => !self.lanes[u as usize].buf.is_empty(),
        };
        has_input && (self.dst_is_node[ch as usize] || !lane.buf.is_full())
    }

    fn move_flit(&mut self, ch: ChannelId, li: usize) {
        let p = self.lanes[li].owner;
        let upstream = self.lanes[li].upstream;
        let (len, gen_time, measured) = {
            let pkt = &self.packets[p as usize];
            (pkt.len, pkt.gen_time, pkt.measured)
        };
        let flit = match upstream {
            Upstream::Source(node) => {
                let pkt = &mut self.packets[p as usize];
                let f = FlitRef {
                    packet: p,
                    index: pkt.sent,
                };
                pkt.sent += 1;
                if pkt.sent == len {
                    self.sources[node as usize].injecting = NONE;
                    self.lanes[li].upstream = Upstream::Exhausted;
                }
                f
            }
            Upstream::Lane(u) => self.lanes[u as usize]
                .buf
                .pop()
                .expect("ready lane lost its upstream flit"),
            Upstream::Exhausted => unreachable!("exhausted lanes are never ready"),
        };
        debug_assert_eq!(flit.packet, p, "foreign flit in the worm's upstream buffer");
        if !self.util.is_empty() && self.measuring() {
            self.util[ch as usize] += 1;
        }
        let is_tail = flit.is_tail(len);
        if is_tail {
            if let Upstream::Lane(u) = upstream {
                self.release_lane(u);
            }
            self.lanes[li].upstream = Upstream::Exhausted;
        }
        if self.dst_is_node[ch as usize] {
            let pkt = &mut self.packets[p as usize];
            pkt.delivered += 1;
            // Accounting fix (shared with the optimized engine): count
            // flits of *measured* packets, matching `delivered_pkts`.
            if measured {
                self.delivered_flits += 1;
            }
            if is_tail {
                self.release_lane(li as u32);
                self.complete_packet(p, gen_time, measured, len);
            }
        } else {
            self.lanes[li].buf.push(flit);
        }
    }

    fn release_lane(&mut self, li: u32) {
        let lane = &mut self.lanes[li as usize];
        debug_assert!(lane.buf.is_empty(), "releasing a lane with a buffered flit");
        lane.owner = NONE;
        lane.upstream = Upstream::Exhausted;
        if let Some(xbars) = &mut self.crossbars {
            let ch = (li as usize / self.vcs) as u32;
            let c = self.net.channel(ch);
            if let Endpoint::Switch { sw, side, port } = c.dst {
                let code = if self.net.kind.is_bidirectional() {
                    let k = self.net.geometry.k() as u8;
                    match side {
                        Side::Left => port,
                        Side::Right => k + port,
                    }
                } else {
                    port * self.net.kind.dilation() + c.lane
                };
                let _ = xbars[sw as usize].release_input(code);
            }
        }
    }

    fn complete_packet(&mut self, p: u32, gen_time: u64, measured: bool, len: u32) {
        let done = self.now + 1;
        if measured {
            let lat = (done - gen_time) as f64;
            self.latency.push(lat);
            self.latency_hist.record(done - gen_time);
            self.latency_batches.push(lat);
            self.delivered_pkts += 1;
        }
        let tag = self.packets[p as usize].tag;
        if let Traffic::Chained {
            msgs,
            dependents,
            release,
            remaining,
            overhead,
            ..
        } = &mut self.traffic
        {
            *remaining -= 1;
            for &d in &dependents[tag as usize] {
                debug_assert!(release[d as usize].is_none(), "double release");
                release[d as usize] = Some((done + *overhead).max(msgs[d as usize].earliest));
            }
        }
        if let Some(tr) = &mut self.trace {
            tr.events.push(TraceEvent::Delivered { tag, time: done });
        }
        if let Some(log) = &mut self.deliveries {
            let pkt = &self.packets[p as usize];
            log.push(Delivery {
                src: pkt.src,
                dst: pkt.dst,
                len,
                gen_time,
                done_time: done,
                tag,
            });
        }
        let idx = self
            .active
            .iter()
            .position(|&a| a == p)
            .expect("completing an inactive packet");
        self.active.swap_remove(idx);
        self.free_slots.push(p);
    }

    // ---- main loop ----------------------------------------------------

    fn run(mut self) -> SimReport {
        let finite = !matches!(self.traffic, Traffic::Poisson(_));
        while self.now < self.end {
            self.generate_arrivals();
            self.allocate();
            self.transmit();
            if self.measuring() {
                let queued: usize = self.sources.iter().map(|s| s.queue.len()).sum();
                self.queue_sum += queued as u64;
                self.queue_cycles += 1;
            }
            self.now += 1;
            if finite && self.active.is_empty() && self.drained() {
                break;
            }
        }
        self.finish()
    }

    fn drained(&self) -> bool {
        let queued: usize = self.sources.iter().map(|s| s.queue.len()).sum();
        if queued > 0 {
            return false;
        }
        match &self.traffic {
            Traffic::Poisson(_) => false,
            Traffic::Scripted { msgs, next } => *next == msgs.len(),
            Traffic::Chained { remaining, .. } => *remaining == 0,
        }
    }

    fn finish(self) -> SimReport {
        let n_nodes = self.net.geometry.nodes() as f64;
        // Accounting fix (shared with the optimized engine): normalize by
        // the cycles actually measured, not the configured window.
        let measured_cycles = self.now.saturating_sub(self.cfg.warmup);
        let window = measured_cycles as f64;
        let per_node_cycle = |flits: u64| {
            if measured_cycles == 0 {
                0.0
            } else {
                flits as f64 / (n_nodes * window)
            }
        };
        let queued: u64 = self.sources.iter().map(|s| s.queue.len() as u64).sum();
        SimReport {
            cycles: self.now,
            measured_cycles,
            generated_packets: self.generated_pkts,
            delivered_packets: self.delivered_pkts,
            offered_flits_per_node_cycle: per_node_cycle(self.generated_flits),
            accepted_flits_per_node_cycle: per_node_cycle(self.delivered_flits),
            mean_latency_cycles: self.latency.mean(),
            latency_ci95_cycles: self.latency_batches.ci95_half_width(),
            p50_latency_cycles: self.latency_hist.quantile(0.50),
            p95_latency_cycles: self.latency_hist.quantile(0.95),
            p99_latency_cycles: self.latency_hist.quantile(0.99),
            max_latency_cycles: self.latency_hist.max(),
            mean_queue: if self.queue_cycles == 0 {
                0.0
            } else {
                self.queue_sum as f64 / self.queue_cycles as f64
            },
            max_queue: self.max_queue,
            sustainable: self.max_queue <= self.cfg.queue_limit,
            steady: self.delivered_flits as f64 >= 0.95 * self.generated_flits as f64,
            in_flight_at_end: self.active.len() as u64 + queued,
            // The reference engine predates the fault layer; faultless
            // runs never abort or refuse anything.
            aborted_packets: 0,
            undeliverable_packets: 0,
            channel_utilization: if self.util.is_empty() {
                None
            } else {
                Some(
                    self.util
                        .iter()
                        .map(|&u| if measured_cycles == 0 { 0.0 } else { u as f64 / window })
                        .collect(),
                )
            },
            deliveries: self.deliveries,
            trace: self.trace,
        }
    }
}

/// Reference-engine counterpart of [`crate::run_simulation`].
pub fn run_simulation(
    net: &NetworkGraph,
    workload: &Workload,
    cfg: &EngineConfig,
) -> Result<SimReport, String> {
    Engine::new(net, Traffic::Poisson(workload), cfg.clone()).map(Engine::run)
}

/// Reference-engine counterpart of [`crate::run_scripted`].
pub fn run_scripted(
    net: &NetworkGraph,
    msgs: &[ScriptedMsg],
    cfg: &EngineConfig,
) -> Result<SimReport, String> {
    let mut sorted: Vec<ScriptedMsg> = msgs.to_vec();
    sorted.sort_by_key(|m| m.time);
    for m in &sorted {
        if m.src == m.dst {
            return Err(format!("scripted message {m:?} sends to itself"));
        }
        if m.src >= net.geometry.nodes() || m.dst >= net.geometry.nodes() {
            return Err(format!("scripted message {m:?} addresses a missing node"));
        }
        if m.len == 0 {
            return Err(format!("scripted message {m:?} has no flits"));
        }
    }
    Engine::new(
        net,
        Traffic::Scripted {
            msgs: sorted,
            next: 0,
        },
        cfg.clone(),
    )
    .map(Engine::run)
}

/// Reference-engine counterpart of [`crate::run_chained`].
pub fn run_chained(
    net: &NetworkGraph,
    msgs: &[ChainedMsg],
    overhead: u64,
    cfg: &EngineConfig,
) -> Result<SimReport, String> {
    let mut dependents = vec![Vec::new(); msgs.len()];
    let mut release = vec![None; msgs.len()];
    for (i, m) in msgs.iter().enumerate() {
        if m.src == m.dst {
            return Err(format!("chained message {i} sends to itself"));
        }
        if m.src >= net.geometry.nodes() || m.dst >= net.geometry.nodes() {
            return Err(format!("chained message {i} addresses a missing node"));
        }
        if m.len == 0 {
            return Err(format!("chained message {i} has no flits"));
        }
        match m.after {
            None => release[i] = Some(m.earliest),
            Some(parent) if parent < i => dependents[parent].push(i as u32),
            Some(parent) => {
                return Err(format!(
                    "chained message {i} depends on later entry {parent}; \
                     order messages so parents precede children"
                ));
            }
        }
    }
    Engine::new(
        net,
        Traffic::Chained {
            msgs: msgs.to_vec(),
            dependents,
            release,
            enqueued: vec![false; msgs.len()],
            remaining: msgs.len(),
            overhead,
        },
        cfg.clone(),
    )
    .map(Engine::run)
}
