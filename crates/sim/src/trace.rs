//! Optional event tracing.
//!
//! When [`crate::EngineConfig::collect_trace`] is set, the engine records
//! the life cycle of every message: queueing, injection, each channel the
//! worm's header acquires, and delivery. Traces make the engine's
//! behaviour *auditable* — the integration tests replay a traced worm's
//! channel sequence against `minnet-routing`'s independent path
//! enumeration.
//!
//! Tracing is intended for deterministic (scripted/chained) runs and short
//! stochastic runs; the log grows with every header movement.

use minnet_topology::ChannelId;

/// One traced event. `tag` is the script/chain index for deterministic
/// traffic (or `u32::MAX` for Poisson); `time` is the cycle the event
/// occurred in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// The message joined its source's FCFS queue.
    Queued {
        /// Message tag.
        tag: u32,
        /// Cycle of the event.
        time: u64,
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
        /// Length in flits.
        len: u32,
    },
    /// The header claimed the injection channel (left the queue).
    Injected {
        /// Message tag.
        tag: u32,
        /// Cycle of the event.
        time: u64,
    },
    /// The header claimed its next channel.
    Hop {
        /// Message tag.
        tag: u32,
        /// Cycle of the event.
        time: u64,
        /// The claimed channel.
        channel: ChannelId,
    },
    /// The tail flit was consumed at the destination (end-of-cycle time).
    Delivered {
        /// Message tag.
        tag: u32,
        /// Cycle of the event.
        time: u64,
    },
    /// The worm was aborted mid-flight by a fault epoch (lanes released,
    /// buffered flits drained).
    Aborted {
        /// Message tag.
        tag: u32,
        /// Cycle of the event.
        time: u64,
    },
    /// The queued message was refused at injection: no live route to its
    /// destination existed under the current fault epoch.
    Refused {
        /// Message tag.
        tag: u32,
        /// Cycle of the event.
        time: u64,
    },
}

impl TraceEvent {
    /// The message tag of this event.
    pub fn tag(&self) -> u32 {
        match *self {
            TraceEvent::Queued { tag, .. }
            | TraceEvent::Injected { tag, .. }
            | TraceEvent::Hop { tag, .. }
            | TraceEvent::Delivered { tag, .. }
            | TraceEvent::Aborted { tag, .. }
            | TraceEvent::Refused { tag, .. } => tag,
        }
    }

    /// The cycle of this event.
    pub fn time(&self) -> u64 {
        match *self {
            TraceEvent::Queued { time, .. }
            | TraceEvent::Injected { time, .. }
            | TraceEvent::Hop { time, .. }
            | TraceEvent::Delivered { time, .. }
            | TraceEvent::Aborted { time, .. }
            | TraceEvent::Refused { time, .. } => time,
        }
    }
}

/// A recorded event log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Events in chronological order (ties in engine-processing order).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Events belonging to one message.
    pub fn of_message(&self, tag: u32) -> Vec<TraceEvent> {
        self.events.iter().copied().filter(|e| e.tag() == tag).collect()
    }

    /// The channel path (including the injection channel) a message's
    /// header took, in order.
    pub fn channel_path(&self, tag: u32) -> Vec<ChannelId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Hop { tag: t, channel, .. } if *t == tag => Some(*channel),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = TraceEvent::Hop { tag: 3, time: 17, channel: 9 };
        assert_eq!(e.tag(), 3);
        assert_eq!(e.time(), 17);
        let t = Trace {
            events: vec![
                TraceEvent::Queued { tag: 0, time: 0, src: 1, dst: 2, len: 8 },
                TraceEvent::Hop { tag: 0, time: 1, channel: 4 },
                TraceEvent::Hop { tag: 1, time: 1, channel: 5 },
                TraceEvent::Hop { tag: 0, time: 2, channel: 6 },
                TraceEvent::Delivered { tag: 0, time: 9 },
            ],
        };
        assert_eq!(t.channel_path(0), vec![4, 6]);
        assert_eq!(t.channel_path(1), vec![5]);
        assert_eq!(t.of_message(0).len(), 4);
    }
}
