//! Restart-style chaos schedules: seed-deterministic transient-fault
//! generators that compile onto the existing [`FaultPlan`] machinery.
//!
//! A [`ChaosSchedule`] is the declarative form of "random things keep
//! breaking and coming back": pick `count` distinct targets of one
//! [`ChaosTarget`] class, and give each of them `rounds` transient
//! outages. Each outage begins a uniformly drawn `min_onset..=max_onset`
//! cycles after the target last became (or started) available, lasts
//! exactly `duration` cycles, and is followed by a `cooldown` during
//! which the target is guaranteed live — the restart pattern of
//! chaos-testing harnesses, transplanted to link/lane/switch failures.
//!
//! Everything is derived from a single `u64` seed via SplitMix64
//! ([`minnet_topology::splitmix64`]): the same `(network, schedule,
//! seed)` triple always yields the same [`FaultPlan`], so a chaos run is
//! exactly as reproducible as a baseline run — the randomness only moves
//! into the seed. The compiled plan then flows through the ordinary
//! per-epoch mask pipeline ([`crate::CompiledFaults`]), inheriting its
//! masked-routing, deadlock-recheck, and abort/refusal semantics.
//!
//! Degenerate parameters (an empty outage, an inverted onset range, a
//! zero-target or zero-round schedule) are rejected at compile time with
//! typed [`SimError::Fault`] values rather than silently generating
//! no-op masks, and the generated plan is re-validated through
//! [`FaultPlan::check`], whose overlap detection proves the per-target
//! windows are disjoint by construction.

use crate::error::SimError;
use minnet_topology::{
    inter_stage_channels, splitmix64, Fault, FaultPlan, FaultTarget, NetworkGraph,
};

/// Which class of component a [`ChaosSchedule`] knocks out.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaosTarget {
    /// Whole inter-stage channels (every virtual lane at once).
    Channel,
    /// Single virtual lanes of inter-stage channels.
    Lane,
    /// Whole switches (every incident channel).
    Switch,
}

impl ChaosTarget {
    /// Lower-case class name, as scenario files spell it.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosTarget::Channel => "channel",
            ChaosTarget::Lane => "lane",
            ChaosTarget::Switch => "switch",
        }
    }
}

/// A declarative restart-style fault storm; see the module docs for the
/// timing model. Compile with [`ChaosSchedule::compile_plan`] (or
/// [`crate::CompiledNet::compile_chaos`] straight to engine form).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChaosSchedule {
    /// Component class to disrupt.
    pub target: ChaosTarget,
    /// Distinct targets to disrupt (drawn without replacement).
    pub count: usize,
    /// Minimum cycles from a target's availability to its next outage.
    pub min_onset: u64,
    /// Maximum cycles from a target's availability to its next outage.
    pub max_onset: u64,
    /// Length of each outage in cycles (the dead window).
    pub duration: u64,
    /// Guaranteed-live cycles after each repair before the next draw.
    pub cooldown: u64,
    /// Outages per target.
    pub rounds: u32,
}

impl ChaosSchedule {
    /// A single-round channel storm with onset drawn from
    /// `min_onset..=max_onset` — the common case; adjust fields freely.
    pub fn channel_storm(count: usize, min_onset: u64, max_onset: u64, duration: u64) -> Self {
        ChaosSchedule {
            target: ChaosTarget::Channel,
            count,
            min_onset,
            max_onset,
            duration,
            cooldown: 0,
            rounds: 1,
        }
    }

    /// Check the schedule's parameters alone (network-independent).
    ///
    /// # Errors
    ///
    /// Rejects zero-duration outages, inverted onset ranges, and
    /// schedules that would generate no faults at all.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.duration == 0 {
            return Err(SimError::Fault(
                "chaos schedule: outage duration must be at least 1 cycle \
                 (a zero-duration outage would mask nothing)"
                    .to_string(),
            ));
        }
        if self.max_onset < self.min_onset {
            return Err(SimError::Fault(format!(
                "chaos schedule: max_onset {} is below min_onset {}",
                self.max_onset, self.min_onset
            )));
        }
        if self.count == 0 {
            return Err(SimError::Fault(
                "chaos schedule: target count must be at least 1".to_string(),
            ));
        }
        if self.rounds == 0 {
            return Err(SimError::Fault(
                "chaos schedule: rounds must be at least 1".to_string(),
            ));
        }
        Ok(())
    }

    /// Expand the schedule against `net` into a concrete [`FaultPlan`],
    /// all randomness drawn from `seed`.
    ///
    /// # Errors
    ///
    /// Anything [`ChaosSchedule::validate`] rejects, plus a `count`
    /// exceeding the target pool of this network/class.
    pub fn compile_plan(
        &self,
        net: &NetworkGraph,
        vcs: u8,
        seed: u64,
    ) -> Result<FaultPlan, SimError> {
        self.validate()?;
        let channels = inter_stage_channels(net);
        let mut pool: Vec<FaultTarget> = match self.target {
            ChaosTarget::Channel => channels.into_iter().map(FaultTarget::Channel).collect(),
            ChaosTarget::Lane => channels
                .into_iter()
                .flat_map(|c| (0..vcs).map(move |vc| FaultTarget::Lane { channel: c, vc }))
                .collect(),
            ChaosTarget::Switch => (0..net.num_switches() as u32)
                .map(FaultTarget::Switch)
                .collect(),
        };
        if self.count > pool.len() {
            return Err(SimError::Fault(format!(
                "chaos schedule: {} {} targets requested but the network has only {}",
                self.count,
                self.target.name(),
                pool.len()
            )));
        }
        let mut state = seed;
        let span = self.max_onset - self.min_onset;
        let mut plan = FaultPlan::new();
        // Partial Fisher–Yates: a uniform sample without replacement.
        for i in 0..self.count {
            let j = i + (splitmix64(&mut state) % (pool.len() - i) as u64) as usize;
            pool.swap(i, j);
        }
        for target in pool.iter().take(self.count).copied() {
            // The target's timeline: available at cursor, dies after a
            // drawn delay, repairs after `duration`, then cools down.
            // Windows on one target are disjoint by construction —
            // adjacent at worst (min_onset == cooldown == 0) — which
            // `FaultPlan::check` accepts as a legal restart pattern.
            let mut cursor = 0u64;
            for _round in 0..self.rounds {
                let delay = self.min_onset
                    + if span == 0 {
                        0
                    } else {
                        splitmix64(&mut state) % (span + 1)
                    };
                let onset = cursor + delay;
                let repair = onset + self.duration;
                plan.push(Fault::transient(target, onset, repair));
                cursor = repair + self.cooldown;
            }
        }
        plan.check(net, vcs).map_err(|e| {
            SimError::Fault(format!("chaos schedule generated an invalid plan: {e}"))
        })?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnet_topology::{build_unidir, Geometry, UnidirKind};

    fn tmin() -> NetworkGraph {
        build_unidir(Geometry::new(4, 3), UnidirKind::Cube, 1)
    }

    fn storm() -> ChaosSchedule {
        ChaosSchedule {
            target: ChaosTarget::Channel,
            count: 3,
            min_onset: 100,
            max_onset: 500,
            duration: 200,
            cooldown: 50,
            rounds: 2,
        }
    }

    #[test]
    fn same_seed_same_plan_different_seed_different_plan() {
        let net = tmin();
        let a = storm().compile_plan(&net, 1, 42).unwrap();
        let b = storm().compile_plan(&net, 1, 42).unwrap();
        assert_eq!(a, b);
        let c = storm().compile_plan(&net, 1, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn windows_respect_onset_duration_and_cooldown() {
        let net = tmin();
        let s = storm();
        let plan = s.compile_plan(&net, 1, 7).unwrap();
        assert_eq!(plan.len(), s.count * s.rounds as usize);
        // Group the faults back per target: rounds are pushed in order.
        for faults in plan.faults().chunks(s.rounds as usize) {
            let mut cursor = 0u64;
            for f in faults {
                assert_eq!(f.target, faults[0].target, "one target per chunk");
                let repair = f.repair.expect("chaos outages are transient");
                assert_eq!(repair - f.onset, s.duration);
                assert!(f.onset >= cursor + s.min_onset);
                assert!(f.onset <= cursor + s.max_onset);
                cursor = repair + s.cooldown;
            }
        }
    }

    #[test]
    fn targets_are_distinct_inter_stage_channels() {
        let net = tmin();
        let plan = ChaosSchedule::channel_storm(8, 0, 100, 50)
            .compile_plan(&net, 1, 11)
            .unwrap();
        let targets: Vec<FaultTarget> = plan.faults().iter().map(|f| f.target).collect();
        assert_eq!(targets.len(), 8);
        for (i, t) in targets.iter().enumerate() {
            assert!(!targets[..i].contains(t), "duplicate chaos target {t:?}");
        }
        for t in targets {
            let FaultTarget::Channel(c) = t else {
                panic!("channel storms target channels")
            };
            let d = net.channel(c);
            assert!(d.src.switch().is_some() && d.dst.switch().is_some());
        }
    }

    #[test]
    fn lane_and_switch_classes_produce_matching_targets() {
        let net = tmin();
        let mut s = storm();
        s.target = ChaosTarget::Lane;
        let plan = s.compile_plan(&net, 2, 3).unwrap();
        assert!(plan
            .faults()
            .iter()
            .all(|f| matches!(f.target, FaultTarget::Lane { vc, .. } if vc < 2)));
        s.target = ChaosTarget::Switch;
        let plan = s.compile_plan(&net, 1, 3).unwrap();
        assert!(plan
            .faults()
            .iter()
            .all(|f| matches!(f.target, FaultTarget::Switch(_))));
    }

    #[test]
    fn back_to_back_rounds_compile_into_adjacent_epochs() {
        // min_onset == max_onset == cooldown == 0: each round starts the
        // cycle its predecessor repairs — the tightest legal restart
        // pattern on one link. It must pass plan validation and compile
        // into merged adjacent epochs rather than erroring as a
        // duplicate.
        let net = tmin();
        let s = ChaosSchedule {
            target: ChaosTarget::Channel,
            count: 1,
            min_onset: 0,
            max_onset: 0,
            duration: 100,
            cooldown: 0,
            rounds: 3,
        };
        let plan = s.compile_plan(&net, 1, 9).unwrap();
        let onsets: Vec<u64> = plan.faults().iter().map(|f| f.onset).collect();
        assert_eq!(onsets, vec![0, 100, 200]);
        let sched = plan.compile(&net, 1).unwrap();
        // One epoch from 0 (dead throughout — windows chain seamlessly)
        // and the repair epoch at 300.
        let starts: Vec<u64> = sched.epochs().iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![0, 100, 200, 300]);
        assert!(sched.epochs()[..3].iter().all(|e| e.any_dead));
        assert!(!sched.epochs()[3].any_dead);
    }

    #[test]
    fn degenerate_schedules_are_rejected_with_typed_errors() {
        let net = tmin();
        let mut s = storm();
        s.duration = 0;
        let err = s.compile_plan(&net, 1, 1).unwrap_err();
        assert!(matches!(&err, SimError::Fault(m) if m.contains("duration")), "{err}");
        let mut s = storm();
        s.max_onset = 10; // below min_onset 100
        assert!(matches!(s.compile_plan(&net, 1, 1), Err(SimError::Fault(_))));
        let mut s = storm();
        s.count = 0;
        assert!(matches!(s.validate(), Err(SimError::Fault(_))));
        let mut s = storm();
        s.rounds = 0;
        assert!(matches!(s.validate(), Err(SimError::Fault(_))));
        let mut s = storm();
        s.count = 1_000_000;
        let err = s.compile_plan(&net, 1, 1).unwrap_err();
        assert!(matches!(&err, SimError::Fault(m) if m.contains("only")), "{err}");
    }
}
