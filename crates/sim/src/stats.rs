//! Measurement machinery: running moments, log-bucketed latency histogram,
//! and batch-means confidence intervals.

/// Two-sided 95% Student-t critical values t₀.₀₂₅,df for df = 1..=29.
/// Index `df - 1`. Replication aggregates are tiny (the sweeps run 3–5
/// replications per point), where the normal approximation's 1.96
/// understates the interval by more than a factor of two.
const T95: [f64; 29] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045,
];

/// The 95% critical value for `n` samples: Student-t with `n - 1`
/// degrees of freedom for n ≤ 30, the normal 1.96 above.
fn crit95(n: u64) -> f64 {
    if (2..=30).contains(&n) {
        T95[(n - 2) as usize]
    } else {
        1.96
    }
}

/// Welford running mean/variance accumulator.
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Push `k` zero samples, bit-identically to calling [`Welford::push`]
    /// with `0.0` exactly `k` times: when the accumulator is still
    /// all-zero (every prior sample was zero) a push of `0.0` changes
    /// nothing but the count, so the loop collapses to `n += k`;
    /// otherwise the pushes are replayed one by one so the float
    /// sequence matches sample-by-sample pushing.
    ///
    /// No longer on the engine's fast-forward path: the engine's
    /// mean-queue statistic is an integer `queue_sum / queue_cycles`
    /// pair precisely so a skipped interval costs O(1) regardless of
    /// history (the replay branch here is O(k)), and so split jumps sum
    /// to the same bits as one long jump. Kept for external consumers
    /// of [`Welford`] that batch zero samples.
    pub fn push_zeros(&mut self, k: u64) {
        if self.mean.to_bits() == 0 && self.m2.to_bits() == 0 {
            self.n += k;
            return;
        }
        for _ in 0..k {
            self.push(0.0);
        }
    }

    /// Forget every sample — equivalent to a fresh accumulator, without
    /// an allocation (the engine-state pool resets in place).
    pub fn reset(&mut self) {
        *self = Welford::default();
    }

    /// Half-width of a 95% CI of the mean: `t₀.₀₂₅,n₋₁ · s / √n`, with
    /// the Student-t critical value for n ≤ 30 samples and the normal
    /// 1.96 above. Used to aggregate *independent* replication means
    /// (each replication runs its own seed, so unlike within-run
    /// latencies there is no autocorrelation to batch away) — and those
    /// aggregates are small-n (3–5 replications), exactly where the
    /// normal approximation understates the interval most.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        crit95(self.n) * (self.variance() / self.n as f64).sqrt()
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Number of linear sub-buckets per power of two in [`LatencyHistogram`].
const SUBBUCKETS: u64 = 16;

/// A compact log-linear histogram of nonnegative integer samples
/// (HdrHistogram-style: 16 linear sub-buckets per octave, ~6% relative
/// quantile error), used for latency percentiles.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; 64 * SUBBUCKETS as usize],
            total: 0,
            max: 0,
        }
    }

    fn bucket_of(x: u64) -> usize {
        if x < SUBBUCKETS {
            return x as usize;
        }
        let exp = 63 - x.leading_zeros() as u64; // floor(log2 x) >= 4
        let shift = exp - 4; // mantissa top 4 bits after the leading 1
        let mantissa = (x >> shift) & (SUBBUCKETS - 1);
        ((exp - 3) * SUBBUCKETS + mantissa) as usize
    }

    fn bucket_value(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUBBUCKETS {
            return idx;
        }
        let exp = idx / SUBBUCKETS + 3;
        let mantissa = idx % SUBBUCKETS;
        (1 << exp) | (mantissa << (exp - 4))
    }

    /// Forget every sample in place, keeping the bucket allocation.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.max = 0;
    }

    /// Record one sample.
    pub fn record(&mut self, x: u64) {
        self.counts[Self::bucket_of(x)] += 1;
        self.total += 1;
        self.max = self.max.max(x);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile `q` in [0, 1]; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(i).min(self.max);
            }
        }
        self.max
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Batch-means accumulator: samples are assigned to `B` consecutive
/// batches (by arrival order); the spread of batch means gives an
/// approximate 95% confidence interval that respects autocorrelation
/// better than the raw sample variance.
#[derive(Clone, Debug)]
pub struct BatchMeans {
    batches: Vec<Welford>,
    per_batch: u64,
    current: usize,
    in_current: u64,
}

impl BatchMeans {
    /// `nbatches` batches of `per_batch` samples each; further samples fold
    /// into the last batch.
    pub fn new(nbatches: usize, per_batch: u64) -> Self {
        assert!(nbatches >= 2 && per_batch >= 1);
        BatchMeans {
            batches: vec![Welford::new(); nbatches],
            per_batch,
            current: 0,
            in_current: 0,
        }
    }

    /// Re-dimension and empty the accumulator in place — equivalent to
    /// `BatchMeans::new(nbatches, per_batch)` but reusing the batch
    /// allocation when the count matches.
    pub fn reset(&mut self, nbatches: usize, per_batch: u64) {
        assert!(nbatches >= 2 && per_batch >= 1);
        self.batches.clear();
        self.batches.resize(nbatches, Welford::new());
        self.per_batch = per_batch;
        self.current = 0;
        self.in_current = 0;
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        if self.in_current >= self.per_batch && self.current + 1 < self.batches.len() {
            self.current += 1;
            self.in_current = 0;
        }
        self.batches[self.current].push(x);
        self.in_current += 1;
    }

    /// Half-width of an approximate 95% CI of the mean, from the batch
    /// means that received samples. 0 with fewer than 2 nonempty batches.
    pub fn ci95_half_width(&self) -> f64 {
        let means: Vec<f64> = self
            .batches
            .iter()
            .filter(|b| b.count() > 0)
            .map(|b| b.mean())
            .collect();
        if means.len() < 2 {
            return 0.0;
        }
        let n = means.len() as f64;
        let grand = means.iter().sum::<f64>() / n;
        let var = means.iter().map(|m| (m - grand) * (m - grand)).sum::<f64>() / (n - 1.0);
        1.96 * (var / n).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(5.0);
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn ci95_uses_student_t_for_small_n() {
        // Three samples (the sweeps' default replication count): the
        // half-width must use t₀.₀₂₅,₂ = 4.303, not 1.96.
        let mut w = Welford::new();
        for &x in &[1.0, 2.0, 3.0] {
            w.push(x);
        }
        let s = w.std_dev();
        let want = 4.303 * s / 3.0f64.sqrt();
        assert!((w.ci95_half_width() - want).abs() < 1e-12);

        // Large n falls back to the normal approximation.
        let mut big = Welford::new();
        for i in 0..100 {
            big.push((i % 7) as f64);
        }
        let want = 1.96 * big.std_dev() / 100.0f64.sqrt();
        assert!((big.ci95_half_width() - want).abs() < 1e-12);
    }

    #[test]
    fn ci95_critical_value_is_monotone_to_normal() {
        // t decreases toward 1.96 as df grows; the table must be sorted
        // and the n = 30 → 31 handoff must not jump upward.
        for n in 3..=31u64 {
            assert!(crit95(n) <= crit95(n - 1), "crit95 not monotone at n={n}");
            assert!(crit95(n) >= 1.96);
        }
        assert_eq!(crit95(31), 1.96);
    }

    #[test]
    fn push_zeros_is_bitwise_identical_to_pushing() {
        // All-zero fast path.
        let mut a = Welford::new();
        let mut b = Welford::new();
        a.push(0.0);
        b.push(0.0);
        a.push_zeros(1000);
        for _ in 0..1000 {
            b.push(0.0);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.variance().to_bits(), b.variance().to_bits());

        // Nonzero history forces the replay path; still bit-identical.
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &[3.5, 0.25, 7.0] {
            a.push(x);
            b.push(x);
        }
        a.push_zeros(137);
        for _ in 0..137 {
            b.push(0.0);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.variance().to_bits(), b.variance().to_bits());
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = LatencyHistogram::new();
        for x in 0..16u64 {
            h.record(x);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.max(), 15);
        assert_eq!(h.quantile(0.0), 0);
        // Small values land in exact buckets.
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn histogram_quantile_accuracy() {
        let mut h = LatencyHistogram::new();
        for x in 1..=10_000u64 {
            h.record(x);
        }
        for (q, want) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - want).abs() / want;
            assert!(rel < 0.08, "q{q}: got {got}, want ≈{want}");
        }
        assert_eq!(h.max(), 10_000);
    }

    #[test]
    fn histogram_bucket_round_trip_is_monotone() {
        let mut prev = 0;
        for x in [0u64, 1, 15, 16, 17, 100, 1000, 123_456, u32::MAX as u64] {
            let b = LatencyHistogram::bucket_of(x);
            let v = LatencyHistogram::bucket_value(b);
            assert!(v <= x, "representative below the sample");
            assert!(v >= prev);
            prev = v;
            // Relative error bound ~1/16.
            if x >= 16 {
                assert!((x - v) as f64 / x as f64 <= 1.0 / 16.0 + 1e-9);
            }
        }
    }

    #[test]
    fn batch_means_ci_shrinks_with_tight_data() {
        let mut b = BatchMeans::new(10, 100);
        for i in 0..1000 {
            b.push(100.0 + (i % 3) as f64);
        }
        assert!(b.ci95_half_width() < 0.5);
        let mut wild = BatchMeans::new(10, 100);
        for i in 0..1000 {
            wild.push(if (i / 100) % 2 == 0 { 0.0 } else { 1000.0 });
        }
        assert!(wild.ci95_half_width() > 100.0);
    }

    #[test]
    fn batch_means_handles_few_samples() {
        let mut b = BatchMeans::new(8, 1000);
        assert_eq!(b.ci95_half_width(), 0.0);
        b.push(1.0);
        assert_eq!(b.ci95_half_width(), 0.0);
    }
}
