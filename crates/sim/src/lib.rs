//! # minnet-sim
//!
//! The flit-level, cycle-based wormhole simulation engine behind the §5
//! experiments of Ni, Gui and Moore's "Performance Evaluation of
//! Switch-Based Wormhole Networks".
//!
//! The engine consumes a static [`minnet_topology::NetworkGraph`] (TMIN /
//! DMIN / VMIN / BMIN), a [`minnet_traffic::Workload`] (or a deterministic
//! script), and an [`EngineConfig`]; it produces a [`SimReport`] with
//! offered/accepted throughput, latency statistics with batch-means
//! confidence intervals, and source-queue sustainability (§5's
//! 100-message criterion).
//!
//! See [`engine`] for the precise cycle semantics (including the
//! occupancy-scaled scheduling and the determinism contract); [`stats`]
//! for the measurement machinery. The `reference-engine` feature exposes
//! [`reference`], the frozen scan-everything implementation used as a
//! differential-testing oracle.
//!
//! Sweep-style callers should use the compile-once pipeline:
//! [`CompiledNet`] (immutable network + routing table + transmit order)
//! plus a reusable [`EngineState`] — see the [`engine`] module header.
//! The free functions [`run_simulation`] / [`run_scripted`] /
//! [`run_chained`] remain the one-shot API and produce bit-identical
//! reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod chaos;
pub mod config;
pub mod engine;
pub mod error;
pub mod fault;
#[cfg(feature = "hotstats")]
pub mod hotstats;
pub mod lockstep;
#[cfg(feature = "reference-engine")]
pub mod reference;
pub mod stats;
pub mod trace;

pub use chaos::{ChaosSchedule, ChaosTarget};
pub use config::{Delivery, EngineConfig, RunBudget, SimReport, TransmitOrder, CYCLE_US};
pub use engine::{
    run_chained, run_scripted, run_simulation, with_pooled_state, Chain, ChainedMsg, CompiledNet,
    EngineState, Script, ScriptedMsg,
};
pub use error::{BudgetKind, PartialReport, SimError, StallDiagnostic, StalledPacket};
pub use fault::CompiledFaults;
pub use lockstep::LockstepState;
pub use trace::{Trace, TraceEvent};
