//! The flit-level wormhole simulation engine.
//!
//! # Model
//!
//! Time advances in **cycles**; one cycle is the time a channel needs to
//! transmit one flit (all channels share the paper's 20 flits/µs
//! bandwidth). Every physical channel carries `vcs` virtual lanes; each
//! lane has a one-flit buffer at its receiving end and is owned by at most
//! one worm at a time. Dilated channels are separate physical channels in
//! the graph, so "lane" uniformly means *(channel, vc)*.
//!
//! Each cycle has three phases:
//!
//! 1. **Arrivals** — Poisson (or scripted) messages join their source's
//!    FCFS queue.
//! 2. **Routing & allocation** — every header flit sitting in the buffer at
//!    a switch input computes its candidate output channels
//!    ([`RouteLogic`] or a precompiled [`RouteTable`]) and tries to claim a
//!    free lane; queued messages try to claim the injection channel (one
//!    packet per source at a time — the one-port architecture transmits
//!    packets in sequence). Requests are served in random order; lane
//!    choice among free candidates is random (the paper's policy).
//! 3. **Transmission** — every physical channel forwards at most one flit,
//!    chosen among its ready lanes by the VC multiplexer. Channels are
//!    processed downstream-first (reverse topological order), so an
//!    unblocked worm advances over its entire span in one cycle — the
//!    paper's synchronized-worm behaviour. A flit moving into a channel
//!    whose destination is a node is consumed immediately ("messages
//!    arriving at a destination node are immediately consumed").
//!
//! A worm thus occupies a chain of lanes from its tail to its head; when
//! the tail flit leaves a lane's buffer the lane is released. Ownership
//! plus the acyclic channel-dependency graph (`minnet-routing`) make the
//! simulation deadlock-free by construction.
//!
//! # Compile-once / run-many split
//!
//! Everything about a run that depends only on the *network and engine
//! configuration* — the transmit order and its inverse, the
//! ejection-channel mask, and the per-`(channel, destination)` routing
//! table — lives in an immutable [`CompiledNet`], built once and shared
//! (`Arc`-held network) across however many runs and threads a sweep
//! needs. Everything that changes over a run — lanes, queues, heaps,
//! statistics, the RNG — lives in a reusable [`EngineState`], whose
//! `reset(seed)` path restores the exact fresh-construction state while
//! keeping every allocation. One run = `CompiledNet` × `EngineState` ×
//! a traffic source ([`minnet_traffic::Workload`], [`Script`], [`Chain`]).
//!
//! The original free functions ([`run_simulation`], [`run_scripted`],
//! [`run_chained`]) remain as one-shot wrappers; they skip the routing
//! table (routing dynamically through [`RouteLogic`], as before) so a
//! single run pays no table-build cost. The differential tests pin both
//! paths to bit-identical reports, so the table is exercised as a
//! first-class equal of the closed-form logic.
//!
//! # Occupancy-scaled scheduling
//!
//! The per-cycle cost of all three phases tracks *occupancy* — in-flight
//! worms, nonempty source queues, claimed channels — not network size.
//! An idle 1024-node network costs near nothing per cycle. The engine
//! maintains:
//!
//! * an **arrival heap** (Poisson) keyed `(⌈next_arrival⌉, node)` with one
//!   outstanding entry per generating node, and a **release heap**
//!   (chained traffic) keyed `(release_time, index)` — arrivals phase work
//!   is O(log n) per event, not O(nodes) or O(messages) per cycle;
//! * an **injectable-source bitset**: bit `n` set iff node `n`'s queue is
//!   nonempty while nothing is injecting there (`injecting == NONE`),
//!   updated at each of the three transitions (arrival into an idle-
//!   injector queue; injection start; injection end with a nonempty
//!   queue). The allocation phase reads injection requests off this set
//!   instead of scanning every source;
//! * an **occupied-channel bitset** indexed by *transmit-order position*
//!   (`order_pos`), backed by a per-channel owned-lane count: a channel
//!   enters the set when its first lane is claimed and leaves when its
//!   last lane is released. The transmission phase sweeps a snapshot of
//!   this set — ascending positions, i.e. reverse-topological order —
//!   instead of every channel. Releases during the sweep only *clear*
//!   bits; a just-released channel in the snapshot is a harmless no-op
//!   (no lane is ready), and no channel becomes occupied mid-sweep
//!   because claiming happens only in the allocation phase;
//! * a **running queued-message counter** for the per-cycle mean-queue
//!   sample, the drain check of finite runs, and the end-of-run backlog.
//!
//! # Event-horizon fast-forward
//!
//! When the network is **fully quiescent** — no active worms *and* no
//! queued messages (which implies empty injectable and occupied sets) —
//! no phase can do any work until the next traffic event matures. With
//! `EngineConfig::fast_forward` on (the default) the loop jumps `now`
//! straight to the earliest pending event key (arrival heap, script
//! cursor, or release heap; clamped to the horizon) instead of spinning
//! empty cycles. Quiescent cycles make zero RNG draws and their only
//! observable effect is the zero mean-queue sample, which the jump
//! replays in bulk (the mean-queue statistic is an integer
//! `queue_sum / queue_cycles` pair precisely so a jump of any length —
//! or any *split* of jumps — contributes exactly O(1) work and the
//! exact same bits) — so reports stay **bit-identical** to the
//! cycle-by-cycle path; the flag exists only so the differential tests
//! can pin that. The win scales with idle time: gaps in
//! scripted/chained workloads, drain tails, and very low Poisson loads.
//!
//! # Struct-of-arrays hot state
//!
//! The allocate/transmit sweeps touch lane and packet state every
//! cycle. Both are stored as parallel dense arrays rather than arrays
//! of structs: lanes as `lane_owner` / `lane_upstream` /
//! [`crate::active::LaneBufs`] (all flit buffers in one flat ring
//! store — no per-lane heap allocation to chase), packets as the hot
//! `pkt_head_lane` / `pkt_sent` / `pkt_len` / `pkt_delivered` arrays
//! plus a cold `PktMeta` array for fields only touched at injection
//! and completion. A packet's slot index is stable for its lifetime;
//! freed slots are recycled through a free list exactly as before, so
//! slot assignment — and thus every RNG-visible ordering — is
//! unchanged from the array-of-structs layout.
//!
//! # Determinism contract
//!
//! Same seed + same build ⇒ bit-identical [`SimReport`], regardless of
//! how many sweep threads call the engine (each run owns its RNG), of
//! whether routing goes through [`RouteLogic`] or a [`RouteTable`] (the
//! table stores the logic's answers verbatim), and of whether the state
//! is freshly allocated or reused through `reset` (reset restores every
//! observable field the fresh constructor produces). The active sets are
//! pure bookkeeping: every request list, arbiter call and RNG draw
//! happens in exactly the order the scan-everything reference engine
//! (`reference` module, feature `reference-engine`) produces, which
//! `tests/engine_equivalence.rs` enforces report-for-report with
//! [`SimReport::bitwise_eq`]. The load-bearing orderings are: bitset
//! iteration is ascending (= the reference's node scan); every heap entry
//! due at cycle `t` carries key `t` exactly — entries are pushed with
//! future keys and popped the cycle they mature — so pops are
//! node-/index-ascending within a cycle; and
//! `Arbiter::pick_uncontested` draws the same stream as `pick` over an
//! all-`true` slice.
//!
//! # Measurement accounting
//!
//! Offered/accepted flit rates and channel utilization are normalized by
//! the cycles *actually measured* (`SimReport::measured_cycles` =
//! `cycles - warmup`), not the configured `measure` window — a finite
//! scripted/chained run that drains early reports true rates.
//! `delivered_flits` (and hence accepted throughput and the `steady`
//! flag) counts flits of **measured packets only** — packets generated at
//! or after the end of warmup — mirroring `delivered_pkts`; flits of
//! warmup-generated packets that land inside the window are excluded,
//! just as their latencies are.

use crate::active::{DenseBitSet, LaneBufs, SetBits};
use crate::config::{EngineConfig, SimReport, TransmitOrder};
use crate::error::{BudgetKind, PartialReport, SimError, StallDiagnostic, StalledPacket};
use crate::fault::CompiledFaults;
use crate::lockstep::LockstepState;
use crate::stats::{BatchMeans, LatencyHistogram, Welford};
use crate::trace::{Trace, TraceEvent};
use minnet_routing::{find_cycle, RouteLogic, RouteTable};
use minnet_switch::{Arbiter, ArbiterKind, Crossbar, FlitRef, VcMux};
use minnet_topology::{ChannelId, Endpoint, FaultPlan, Geometry, NetworkGraph, Side};
use minnet_traffic::Workload;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

const NONE: u32 = u32::MAX;

/// [`Engine::move_flit`] feedback: "no lane ahead of the cursor changed
/// readiness" (the move pulled from a source, or the kernels are off).
const NO_FEEDBACK: u32 = u32::MAX;
/// Feedback low bits: the popped upstream lane's plane index. Bit 31
/// carries its recomputed ready state; plane indices stay far below 2³¹.
const PLANE_MASK: u32 = 0x7FFF_FFFF;

/// Where a lane's next flit comes from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Upstream {
    /// No further flits will enter this lane (tail already buffered here,
    /// or lane is free).
    Exhausted,
    /// Flits are drawn from the source queue of this node.
    Source(u32),
    /// Flits are drawn from the buffer of this lane.
    Lane(u32),
}

/// The cold per-packet fields — touched at injection and completion, not
/// by the per-cycle allocate/transmit sweeps. The hot fields (`head_lane`,
/// `sent`, `len`, `delivered`) live in parallel dense arrays on
/// [`EngineState`], indexed by packet slot, so the sweeps touch
/// contiguous memory (see the module header's struct-of-arrays notes).
#[derive(Clone, Copy, Debug)]
struct PktMeta {
    src: u32,
    dst: u32,
    gen_time: u64,
    /// Whether this message counts toward latency statistics.
    measured: bool,
    /// Script/chain index (NONE for Poisson traffic).
    tag: u32,
}

#[derive(Clone, Copy, Debug)]
struct QueuedMsg {
    dst: u32,
    len: u32,
    gen_time: u64,
    /// Script/chain index (NONE for Poisson traffic).
    tag: u32,
}

#[derive(Clone, Debug)]
struct Source {
    queue: VecDeque<QueuedMsg>,
    /// Packet currently drawing flits from this source (one-port rule).
    injecting: u32,
    /// Absolute time of the next Poisson arrival (`f64::INFINITY` for
    /// silent nodes and scripted runs).
    next_arrival: f64,
}

/// A message injected at a fixed time — deterministic test workloads.
#[derive(Clone, Copy, Debug)]
pub struct ScriptedMsg {
    /// Cycle at which the message becomes available at the source.
    pub time: u64,
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Length in flits.
    pub len: u32,
}

pub use crate::config::Delivery;

/// A message that becomes available only after another message completes
/// — the building block for software multicast and other dependent
/// communication (paper §6 / ref \[32\]).
#[derive(Clone, Copy, Debug)]
pub struct ChainedMsg {
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Length in flits.
    pub len: u32,
    /// Earliest availability (absolute cycle).
    pub earliest: u64,
    /// Index (into the message array) of the message that must be fully
    /// delivered before this one becomes available; `None` = a root.
    /// Must reference an *earlier* array entry, which keeps the
    /// dependency graph acyclic by construction.
    pub after: Option<usize>,
}

/// A validated, time-sorted scripted workload, reusable across runs.
///
/// [`run_scripted`] used to re-sort and re-validate (and clone) its
/// message slice on every invocation; compiling the script once moves
/// that cost out of the run-many loop. The script pins the geometry it
/// was validated against so it cannot silently be replayed on a network
/// with fewer nodes.
#[derive(Clone, Debug)]
pub struct Script {
    geometry: Geometry,
    msgs: Vec<ScriptedMsg>,
}

impl Script {
    /// Validate and time-sort `msgs` for networks of geometry `g`.
    ///
    /// # Errors
    ///
    /// Reports self-sends, out-of-range nodes, and zero-length messages.
    pub fn compile(g: Geometry, msgs: &[ScriptedMsg]) -> Result<Script, SimError> {
        let mut sorted: Vec<ScriptedMsg> = msgs.to_vec();
        sorted.sort_by_key(|m| m.time);
        for m in &sorted {
            if m.src == m.dst {
                return Err(SimError::Config(format!("scripted message {m:?} sends to itself")));
            }
            if m.src >= g.nodes() || m.dst >= g.nodes() {
                return Err(SimError::Config(format!("scripted message {m:?} addresses a missing node")));
            }
            if m.len == 0 {
                return Err(SimError::Config(format!("scripted message {m:?} has no flits")));
            }
        }
        Ok(Script {
            geometry: g,
            msgs: sorted,
        })
    }

    /// The messages, sorted by injection time.
    pub fn msgs(&self) -> &[ScriptedMsg] {
        &self.msgs
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

/// A validated chained (dependent-message) workload with its dependency
/// fan-out and root release times precomputed — the reusable counterpart
/// of what [`run_chained`] used to rebuild per invocation.
#[derive(Clone, Debug)]
pub struct Chain {
    geometry: Geometry,
    msgs: Vec<ChainedMsg>,
    /// `dependents[i]` lists the messages released by `i`'s delivery.
    dependents: Vec<Vec<u32>>,
    /// Initial release times: roots at their `earliest`, dependents
    /// `None` until their parent delivers.
    roots: Vec<Option<u64>>,
    /// Software overhead at the relay: cycles between receiving the
    /// parent message and making the dependent available.
    overhead: u64,
}

impl Chain {
    /// Validate `msgs` (parents must precede children) and precompute the
    /// dependency fan-out for networks of geometry `g`.
    ///
    /// # Errors
    ///
    /// Reports self-sends, out-of-range nodes, zero-length messages, and
    /// forward dependency references.
    pub fn compile(g: Geometry, msgs: &[ChainedMsg], overhead: u64) -> Result<Chain, SimError> {
        let mut dependents = vec![Vec::new(); msgs.len()];
        let mut roots = vec![None; msgs.len()];
        for (i, m) in msgs.iter().enumerate() {
            if m.src == m.dst {
                return Err(SimError::Config(format!("chained message {i} sends to itself")));
            }
            if m.src >= g.nodes() || m.dst >= g.nodes() {
                return Err(SimError::Config(format!("chained message {i} addresses a missing node")));
            }
            if m.len == 0 {
                return Err(SimError::Config(format!("chained message {i} has no flits")));
            }
            match m.after {
                None => roots[i] = Some(m.earliest),
                Some(parent) if parent < i => dependents[parent].push(i as u32),
                Some(parent) => {
                    return Err(SimError::Config(format!(
                        "chained message {i} depends on later entry {parent}; \
                         order messages so parents precede children"
                    )));
                }
            }
        }
        Ok(Chain {
            geometry: g,
            msgs: msgs.to_vec(),
            dependents,
            roots,
            overhead,
        })
    }

    /// The chained messages, in entry order.
    pub fn msgs(&self) -> &[ChainedMsg] {
        &self.msgs
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

enum Traffic<'a> {
    Poisson(&'a Workload),
    Scripted {
        msgs: &'a [ScriptedMsg],
        next: usize,
    },
    Chained {
        msgs: &'a [ChainedMsg],
        /// `dependents[i]` lists the messages released by `i`'s delivery.
        dependents: &'a [Vec<u32>],
        /// Release time per message (None = dependency not yet met).
        /// The release *heap* on the engine drives scheduling; this array
        /// only backs the double-release assertion.
        release: Vec<Option<u64>>,
        /// Messages not yet delivered.
        remaining: usize,
        /// Software overhead at the relay (see [`Chain`]).
        overhead: u64,
    },
}

#[derive(Clone, Copy, Debug)]
enum Req {
    Inject(u32),
    Advance(u32),
}

/// How the engine answers "where may this header go next".
#[derive(Clone, Copy)]
enum Router<'a> {
    /// Precomputed per-(channel, destination) lookup (compiled pipeline).
    Table(&'a RouteTable),
    /// Closed-form routing recomputed per hop (one-shot wrappers).
    Logic(RouteLogic),
}

/// The network- and config-derived constants of a run: transmit order,
/// its inverse, the ejection mask, and the precomputed routing table —
/// built **once**, immutable, and shared across every run (and thread)
/// of a sweep.
///
/// A `CompiledNet` plus a (resettable) [`EngineState`] plus a traffic
/// source is one simulation run; see the module header's
/// compile-once / run-many notes. The per-run `seed` argument overrides
/// `config.seed`, so one compiled network serves a whole replicated
/// sweep.
#[derive(Clone, Debug)]
pub struct CompiledNet {
    net: Arc<NetworkGraph>,
    cfg: EngineConfig,
    /// Precomputed routing table, or `None` when `channels × nodes`
    /// exceeds [`EngineConfig::route_table_max_cells`] — runs then route
    /// every hop through [`RouteLogic`] directly (bit-identical results;
    /// the table is a memoized logic).
    routes: Option<RouteTable>,
    order: Vec<ChannelId>,
    order_pos: Vec<u32>,
    dst_is_node: Vec<bool>,
}

/// Transmit order, inverse positions, and ejection mask for `net` under
/// `cfg` — the non-table part of compilation, also used by the one-shot
/// wrappers.
fn order_parts(
    net: &NetworkGraph,
    cfg: &EngineConfig,
) -> (Vec<ChannelId>, Vec<u32>, Vec<bool>) {
    let nch = net.num_channels();
    let order = match cfg.transmit_order {
        TransmitOrder::ReverseTopo => net.transmit_order().to_vec(),
        TransmitOrder::BuildOrder => (0..nch as u32).collect(),
    };
    let mut order_pos = vec![0u32; nch];
    for (pos, &ch) in order.iter().enumerate() {
        order_pos[ch as usize] = pos as u32;
    }
    let dst_is_node = net
        .channels
        .iter()
        .map(|c| matches!(c.dst, Endpoint::Node(_)))
        .collect();
    (order, order_pos, dst_is_node)
}

impl CompiledNet {
    /// Compile `net` under `cfg`: validate the configuration, fix the
    /// transmit order, and build the routing table — unless the network
    /// exceeds [`EngineConfig::route_table_max_cells`], in which case the
    /// compiled network routes through [`RouteLogic`] per hop instead
    /// (bit-identical, table-free; what admits 16k-terminal networks).
    ///
    /// # Errors
    ///
    /// Reports invalid configurations and routing-table inconsistencies.
    pub fn new(net: Arc<NetworkGraph>, cfg: EngineConfig) -> Result<CompiledNet, SimError> {
        cfg.validate()?;
        let ncells = net.num_channels() as u64 * u64::from(net.geometry.nodes());
        let routes = if cfg.route_table_max_cells == 0 || ncells <= cfg.route_table_max_cells {
            Some(
                RouteTable::build_parallel(&net, cfg.table_build_threads as usize)
                    .map_err(SimError::Routing)?,
            )
        } else {
            None
        };
        let (order, order_pos, dst_is_node) = order_parts(&net, &cfg);
        Ok(CompiledNet {
            net,
            cfg,
            routes,
            order,
            order_pos,
            dst_is_node,
        })
    }

    /// The shared network graph.
    pub fn network(&self) -> &Arc<NetworkGraph> {
        &self.net
    }

    /// The engine configuration this network was compiled under.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// This same compiled network with the word-kernel toggle forced to
    /// `on` — the hook harnesses use for same-binary kernel on/off
    /// comparisons (both settings produce bit-identical reports; only
    /// the wall clock differs). The toggle does not participate in
    /// compilation, so the artifacts are reused as-is.
    #[must_use]
    pub fn with_word_kernels(&self, on: bool) -> CompiledNet {
        let mut c = self.clone();
        c.cfg.word_kernels = on;
        c
    }

    /// The precomputed routing table, or `None` when the network exceeds
    /// the cell cap and runs route through [`RouteLogic`] instead.
    pub fn routes(&self) -> Option<&RouteTable> {
        self.routes.as_ref()
    }

    /// The per-hop router runs use: the table when one was built, the
    /// routing logic otherwise. Both produce bit-identical reports.
    fn router(&self) -> Router<'_> {
        match &self.routes {
            Some(t) => Router::Table(t),
            None => Router::Logic(RouteLogic::for_kind(self.net.kind)),
        }
    }

    /// Compile a [`FaultPlan`] against this network: per-epoch dead-lane
    /// masks plus deliverability-pruned routing tables (with a masked-CDG
    /// deadlock re-check per epoch). The result is read-only and reusable
    /// across runs and threads, like the `CompiledNet` itself.
    ///
    /// # Errors
    ///
    /// Reports out-of-range fault targets, inverted repair windows, a
    /// (defensive) masked CDG cycle, and a network too large for a route
    /// table — fault epochs are precompiled as *masked tables*, so fault
    /// runs need the table the cell cap suppressed.
    pub fn compile_faults(&self, plan: &FaultPlan) -> Result<CompiledFaults, SimError> {
        let Some(routes) = &self.routes else {
            return Err(SimError::Routing(format!(
                "fault compilation needs a route table, but {} channels × {} nodes \
                 exceeds route_table_max_cells ({}); raise the cap to run faults",
                self.net.num_channels(),
                self.net.geometry.nodes(),
                self.cfg.route_table_max_cells,
            )));
        };
        CompiledFaults::compile(&self.net, routes, plan, self.cfg.vcs)
    }

    /// Expand a [`crate::chaos::ChaosSchedule`] against this network with
    /// `seed` and compile the resulting plan — the one-call chaos hook:
    /// `schedule → FaultPlan → CompiledFaults`.
    ///
    /// # Errors
    ///
    /// Anything [`crate::chaos::ChaosSchedule::compile_plan`] or
    /// [`CompiledNet::compile_faults`] reports.
    pub fn compile_chaos(
        &self,
        chaos: &crate::chaos::ChaosSchedule,
        seed: u64,
    ) -> Result<CompiledFaults, SimError> {
        let plan = chaos.compile_plan(&self.net, self.cfg.vcs, seed)?;
        self.compile_faults(&plan)
    }

    /// Run a stochastic (Poisson-workload) simulation with the given seed,
    /// reusing `st`'s allocations.
    ///
    /// # Errors
    ///
    /// Reports a workload compiled for a different geometry, or a
    /// watchdog trip ([`SimError::NoProgress`]).
    pub fn run_poisson(
        &self,
        workload: &Workload,
        seed: u64,
        st: &mut EngineState,
    ) -> Result<SimReport, SimError> {
        self.run_poisson_faulted(workload, None, seed, st)
    }

    /// [`CompiledNet::run_poisson`] under a fault schedule. `None` (or a
    /// trivial schedule) runs bit-identically to the faultless path.
    ///
    /// # Errors
    ///
    /// As [`CompiledNet::run_poisson`].
    pub fn run_poisson_faulted(
        &self,
        workload: &Workload,
        faults: Option<&CompiledFaults>,
        seed: u64,
        st: &mut EngineState,
    ) -> Result<SimReport, SimError> {
        if workload.geometry() != self.net.geometry {
            return Err(SimError::GeometryMismatch {
                what: "workload",
                expected: self.net.geometry,
                got: workload.geometry(),
            });
        }
        self.run_traffic(Traffic::Poisson(workload), faults, seed, st)
    }

    /// Run a deterministic scripted simulation (see [`run_scripted`]) with
    /// the given seed, reusing `st`'s allocations. The script is already
    /// validated and sorted — nothing per-run remains but the simulation.
    ///
    /// # Errors
    ///
    /// Reports a script compiled for a different geometry, or a watchdog
    /// trip ([`SimError::NoProgress`]).
    pub fn run_script(
        &self,
        script: &Script,
        seed: u64,
        st: &mut EngineState,
    ) -> Result<SimReport, SimError> {
        self.run_script_faulted(script, None, seed, st)
    }

    /// [`CompiledNet::run_script`] under a fault schedule. `None` (or a
    /// trivial schedule) runs bit-identically to the faultless path.
    ///
    /// # Errors
    ///
    /// As [`CompiledNet::run_script`].
    pub fn run_script_faulted(
        &self,
        script: &Script,
        faults: Option<&CompiledFaults>,
        seed: u64,
        st: &mut EngineState,
    ) -> Result<SimReport, SimError> {
        if script.geometry != self.net.geometry {
            return Err(SimError::GeometryMismatch {
                what: "script",
                expected: self.net.geometry,
                got: script.geometry,
            });
        }
        self.run_traffic(
            Traffic::Scripted {
                msgs: &script.msgs,
                next: 0,
            },
            faults,
            seed,
            st,
        )
    }

    /// Run a deterministic chained simulation (see [`run_chained`]) with
    /// the given seed, reusing `st`'s allocations. Only the per-message
    /// release times are per-run state; the dependency fan-out is shared
    /// from the [`Chain`].
    ///
    /// # Errors
    ///
    /// Reports a chain compiled for a different geometry, or a watchdog
    /// trip ([`SimError::NoProgress`]).
    pub fn run_chain(
        &self,
        chain: &Chain,
        seed: u64,
        st: &mut EngineState,
    ) -> Result<SimReport, SimError> {
        self.run_chain_faulted(chain, None, seed, st)
    }

    /// [`CompiledNet::run_chain`] under a fault schedule. `None` (or a
    /// trivial schedule) runs bit-identically to the faultless path.
    ///
    /// # Errors
    ///
    /// As [`CompiledNet::run_chain`].
    pub fn run_chain_faulted(
        &self,
        chain: &Chain,
        faults: Option<&CompiledFaults>,
        seed: u64,
        st: &mut EngineState,
    ) -> Result<SimReport, SimError> {
        if chain.geometry != self.net.geometry {
            return Err(SimError::GeometryMismatch {
                what: "chain",
                expected: self.net.geometry,
                got: chain.geometry,
            });
        }
        self.run_traffic(
            Traffic::Chained {
                msgs: &chain.msgs,
                dependents: &chain.dependents,
                release: chain.roots.clone(),
                remaining: chain.msgs.len(),
                overhead: chain.overhead,
            },
            faults,
            seed,
            st,
        )
    }

    fn run_traffic(
        &self,
        traffic: Traffic<'_>,
        faults: Option<&CompiledFaults>,
        seed: u64,
        st: &mut EngineState,
    ) -> Result<SimReport, SimError> {
        run_prepared(
            &self.net,
            &self.cfg,
            self.router(),
            &self.order,
            &self.order_pos,
            &self.dst_is_node,
            traffic,
            faults,
            seed,
            st,
        )
    }

    // ---- lockstep replication fleets ---------------------------------

    /// Whether this configuration may run replication lanes as a
    /// lockstep fleet. A [`RunBudget`](crate::RunBudget) is per-*run*
    /// accounting (cycle limits and wall-clock stopwatches started at
    /// each lane's own entry); a shared-clock fleet cannot reproduce
    /// those cuts bit-identically, so budget-armed configurations fall
    /// back to per-lane scalar runs.
    pub fn lockstep_eligible(&self) -> bool {
        self.cfg.budget.max_cycles == 0 && self.cfg.budget.max_wall_ms == 0
    }

    /// Run one Poisson replication per seed as a lockstep fleet (see
    /// [`run_fleet`](Self::run_fleet) for the interleaving and its
    /// bit-identity argument), splitting the lanes into at most
    /// `threads` contiguous blocks on scoped OS threads. Per-lane
    /// results are **bit-identical** to `run_poisson(workload, seed,
    /// ..)` for every lane, every thread count, and every chunking —
    /// lanes never exchange information; they only share the compiled
    /// network and amortize the per-cycle sweep over the fleet.
    ///
    /// Budget-armed configurations (see
    /// [`lockstep_eligible`](Self::lockstep_eligible)) transparently run
    /// each lane through the scalar path instead.
    pub fn run_poisson_lockstep(
        &self,
        workload: &Workload,
        seeds: &[u64],
        threads: usize,
        ls: &mut LockstepState,
    ) -> Vec<Result<SimReport, SimError>> {
        if workload.geometry() != self.net.geometry {
            return seeds
                .iter()
                .map(|_| {
                    Err(SimError::GeometryMismatch {
                        what: "workload",
                        expected: self.net.geometry,
                        got: workload.geometry(),
                    })
                })
                .collect();
        }
        self.run_lockstep(FleetSource::Poisson(workload), seeds, threads, ls)
    }

    /// [`run_poisson_lockstep`](Self::run_poisson_lockstep) for a
    /// deterministic script: the same script replayed under each seed's
    /// RNG stream (which scripted runs never draw from — lanes differ
    /// only if the script itself is stochastic downstream, but the
    /// fleet machinery and its bit-identity contract are identical).
    pub fn run_script_lockstep(
        &self,
        script: &Script,
        seeds: &[u64],
        threads: usize,
        ls: &mut LockstepState,
    ) -> Vec<Result<SimReport, SimError>> {
        if script.geometry != self.net.geometry {
            return seeds
                .iter()
                .map(|_| {
                    Err(SimError::GeometryMismatch {
                        what: "script",
                        expected: self.net.geometry,
                        got: script.geometry,
                    })
                })
                .collect();
        }
        self.run_lockstep(FleetSource::Script(script), seeds, threads, ls)
    }

    /// Fleet dispatch: scalar fallback for budget-armed configs, then
    /// contiguous lane-blocks on scoped threads. Chunking cannot change
    /// any lane's report (lanes are independent), so the thread count is
    /// a pure wall-clock knob, exactly like the sweep layer's.
    fn run_lockstep(
        &self,
        source: FleetSource<'_>,
        seeds: &[u64],
        threads: usize,
        ls: &mut LockstepState,
    ) -> Vec<Result<SimReport, SimError>> {
        if seeds.is_empty() {
            return Vec::new();
        }
        if !self.lockstep_eligible() {
            let st = &mut ls.lane_block(1)[0];
            return seeds
                .iter()
                .map(|&seed| self.run_traffic(source.traffic(), None, seed, st))
                .collect();
        }
        let states = ls.lane_block(seeds.len());
        let mut results: Vec<Option<Result<SimReport, SimError>>> =
            (0..seeds.len()).map(|_| None).collect();
        let threads = threads.max(1).min(seeds.len());
        if threads == 1 {
            self.run_fleet(source, seeds, states, &mut results);
        } else {
            let chunk = seeds.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for ((seed_c, state_c), res_c) in seeds
                    .chunks(chunk)
                    .zip(states.chunks_mut(chunk))
                    .zip(results.chunks_mut(chunk))
                {
                    scope.spawn(move || self.run_fleet(source, seed_c, state_c, res_c));
                }
            });
        }
        results
            .into_iter()
            .map(|r| r.expect("fleet fills every lane slot"))
            .collect()
    }

    /// Drive one interleaved fleet: every live lane executes the same
    /// simulated cycle before any lane starts the next, so the
    /// allocate/transmit sweeps of all `R` lanes walk the shared
    /// compiled artifacts (routes, transmit order, channel table)
    /// back-to-back while they are hot in cache.
    ///
    /// **Bit-identity argument.** Lanes share nothing mutable — each
    /// owns its [`EngineState`] — so interleaving per se cannot change a
    /// lane's trajectory. The only joint decision is fast-forward: the
    /// fleet jumps only when **every** live lane is quiescent with a
    /// known next event, and jumps to the *minimum* target over the
    /// lanes, so no lane ever passes its own event horizon
    /// (`jump_to`'s tripwire). A lane whose horizon lies further ahead
    /// reaches it through repeated fleet-minimum jumps and interleaved
    /// quiescent cycles — both of which land it in exactly the state a
    /// single scalar jump would (see [`Engine::jump_to`]), so every
    /// lane's report is bit-identical to its scalar run's.
    fn run_fleet(
        &self,
        source: FleetSource<'_>,
        seeds: &[u64],
        states: &mut [EngineState],
        results: &mut [Option<Result<SimReport, SimError>>],
    ) {
        debug_assert!(self.lockstep_eligible());
        let mut engines: Vec<Option<Engine<'_>>> = seeds
            .iter()
            .zip(states.iter_mut())
            .map(|(&seed, st)| {
                Some(prepare_engine(
                    &self.net,
                    &self.cfg,
                    self.router(),
                    &self.order,
                    &self.order_pos,
                    &self.dst_is_node,
                    source.traffic(),
                    None,
                    seed,
                    st,
                ))
            })
            .collect();
        let ff = self.cfg.fast_forward;
        let mut live = engines.len();
        let mut probe = HotProbe::new();
        while live > 0 {
            if ff {
                // Joint fast-forward: the fleet-wide horizon is the
                // minimum next-event target over live lanes, and only
                // counts when every live lane is quiescent (a `None`
                // target — a drained finite source — blocks the jump;
                // that lane finalizes in the step pass below).
                let mut horizon = u64::MAX;
                let all = engines.iter().flatten().all(|e| {
                    e.quiescent()
                        && e.ff_target().is_some_and(|t| {
                            horizon = horizon.min(t);
                            true
                        })
                });
                if all && horizon != u64::MAX {
                    for e in engines.iter_mut().flatten() {
                        probe.skipped(e.jump_to(horizon));
                    }
                }
            }
            for (slot, res) in engines.iter_mut().zip(results.iter_mut()) {
                let Some(e) = slot.as_mut() else { continue };
                let done = if e.st.now >= e.st.end {
                    Ok(true)
                } else {
                    e.cycle_body(&mut probe)
                };
                match done {
                    Ok(false) => {}
                    Ok(true) => {
                        let e = slot.take().expect("live lane present");
                        probe.absorb_masks(e.st);
                        *res = Some(Ok(e.finish()));
                        live -= 1;
                    }
                    Err(err) => {
                        if let Some(e) = slot.take() {
                            probe.absorb_masks(e.st);
                        }
                        *res = Some(Err(err));
                        live -= 1;
                    }
                }
            }
        }
        probe.flush();
    }
}

/// A replication fleet's shared traffic source: each lane gets its own
/// cursor/heap state, but the immutable workload or script is one
/// allocation shared by all lanes (and all lane-block threads).
#[derive(Clone, Copy)]
enum FleetSource<'a> {
    Poisson(&'a Workload),
    Script(&'a Script),
}

impl<'a> FleetSource<'a> {
    fn traffic(self) -> Traffic<'a> {
        match self {
            FleetSource::Poisson(wl) => Traffic::Poisson(wl),
            FleetSource::Script(s) => Traffic::Scripted {
                msgs: &s.msgs,
                next: 0,
            },
        }
    }
}

/// The mutable half of a simulation run: lanes, queues, heaps, packets,
/// statistics, scratch buffers, and the RNG. Reusing one `EngineState`
/// across runs (its `reset` restores the exact fresh state while keeping
/// every allocation) removes the ~20 vector allocations a fresh engine
/// pays per run — the dominant fixed cost of short sweep probes.
///
/// States are interchangeable between networks and configurations; the
/// reset path re-dimensions every container. Determinism does not depend
/// on *which* state a run uses — the differential tests drive the same
/// run through fresh and heavily-reused states and require bit-identical
/// reports.
#[derive(Debug)]
pub struct EngineState {
    // Lane state, struct-of-arrays: owner / upstream / buffers are each
    // a dense array indexed by lane, so the allocate and transmit sweeps
    // read contiguous words instead of striding over an array of structs
    // with per-lane heap-allocated FIFOs.
    lane_owner: Vec<u32>,
    lane_upstream: Vec<Upstream>,
    lane_bufs: LaneBufs,
    /// Inverse of `lane_upstream` along a worm's chain: the lane that
    /// consumes lane `li`'s buffer, or `NONE` while `li` is the head.
    /// Only valid while `li` is owned; reset on claim.
    lane_downstream: Vec<u32>,
    mux: Vec<VcMux>,
    // Packet state, struct-of-arrays by slot: the hot fields the sweeps
    // touch every cycle, plus a cold `PktMeta` array for the rest.
    pkt_head_lane: Vec<u32>,
    pkt_sent: Vec<u32>,
    pkt_len: Vec<u32>,
    /// Destination node, duplicated out of `PktMeta` so the allocate
    /// phase's per-request routing lookup stays off the cold array.
    pkt_dst: Vec<u32>,
    /// Kernel-path cache of the head's `RouteTable::candidate_range`
    /// bounds, refreshed whenever the head advances. A blocked worm
    /// re-requests every cycle; resolving the cached bounds skips the
    /// `(at, dst)` cell lookup in the L2-sized `starts` table. Only
    /// maintained and read on the fault-free table-router kernel path
    /// (`(0, 0)` placeholder otherwise).
    pkt_cand: Vec<(u32, u32)>,
    pkt_delivered: Vec<u32>,
    pkt_meta: Vec<PktMeta>,
    free_slots: Vec<u32>,
    active: Vec<u32>,
    sources: Vec<Source>,
    crossbars: Option<Vec<Crossbar>>,
    arbiter: Arbiter,
    rng: SmallRng,
    now: u64,
    end: u64,
    // occupancy structures (see module header)
    /// Pending Poisson arrivals: one `(⌈next_arrival⌉, node)` entry per
    /// node with a finite next arrival. Keys of due entries always equal
    /// the current cycle, so pops are node-ascending within a cycle.
    arrivals: BinaryHeap<Reverse<(u64, u32)>>,
    /// Pending chained-message releases, keyed `(release_time, index)`.
    releases: BinaryHeap<Reverse<(u64, u32)>>,
    /// Bit `n` ⟺ source `n` has a queued message and an idle injector.
    injectable: DenseBitSet,
    /// Bit `p` ⟺ channel `order[p]` has at least one owned lane.
    occupied: DenseBitSet,
    /// Bit `p` ⟺ channel `order[p]` *may* have a transmit-ready lane.
    /// A conservative superset of the truly-ready channels, maintained
    /// incrementally: set whenever an event could turn a lane ready
    /// (a lane claim, a buffer gaining input, a buffer gaining room, a
    /// fault-epoch change), cleared when a sweep visit finds no ready
    /// lane. The transmit sweep iterates this set instead of `occupied`,
    /// so blocked worms cost nothing per cycle — the readiness *test* at
    /// visit time is unchanged, which is what keeps the sweep
    /// bit-identical to the scan-everything reference.
    maybe_ready: DenseBitSet,
    // Word-parallel kernel masks (see the module header's kernel notes).
    // All five lane masks are indexed by **plane** — `order_pos[ch] * vcs
    // + vc` — so ascending bit order *is* the transmit sweep order and a
    // channel's lanes share one aligned bit group. Maintained only while
    // the kernels are engaged (`Engine::kern`); the scalar path uses
    // `maybe_ready` instead.
    /// Bit `plane` ⟺ the lane is owned by a worm.
    k_owned: DenseBitSet,
    /// Bit `plane` ⟺ the lane's upstream input is available (a source
    /// with flits left to emit, or a nonempty upstream lane buffer).
    k_has_input: DenseBitSet,
    /// Bit `plane` ⟺ the lane's own buffer is full. Ejection lanes are
    /// never pushed (the destination absorbs flits immediately), so
    /// their bits stay 0 forever — which is why the ready combine needs
    /// no separate ejection mask: `eject ∨ ¬full` ≡ `¬full`.
    k_full: DenseBitSet,
    /// Bit `plane` ⟺ the lane is dead in the current fault epoch
    /// (rebuilt at epoch boundaries from `CompiledEpoch::dead_lane_words`).
    k_dead: DenseBitSet,
    /// Bit `p` (a packet slot) ⟺ packet `p`'s head lane is off the
    /// ejection channel **and** its buffer's front flit is `p`'s header —
    /// exactly the scalar allocate phase's advance-request predicate.
    k_advance: DenseBitSet,
    // Mask-density counters (words scanned vs bits processed per phase),
    // drained into the `hotstats` counters at probe-flush time.
    alloc_words: u64,
    alloc_bits: u64,
    transmit_words: u64,
    transmit_bits: u64,
    /// Owned-lane count per channel, backing `occupied`.
    owned_lanes: Vec<u32>,
    /// Messages sitting in source queues, across all sources.
    queued_msgs: u64,
    // fault / watchdog state
    /// Flits moved in the current cycle (watchdog progress signal).
    moved: u32,
    /// Last cycle that saw flit movement (or had no active packets).
    last_progress: u64,
    /// Measured packets aborted by fault epochs.
    aborted_pkts: u64,
    /// Measured messages refused at injection as undeliverable.
    undeliverable_pkts: u64,
    // measurement state
    generated_pkts: u64,
    generated_flits: u64,
    delivered_pkts: u64,
    delivered_flits: u64,
    latency: Welford,
    latency_hist: LatencyHistogram,
    latency_batches: BatchMeans,
    /// Exact integer accumulator behind `mean_queue`: the sum of
    /// `queued_msgs` over measured cycles plus the measured-cycle count.
    /// Integer sums make the fast-forward contribution O(1) — a skipped
    /// quiescent stretch adds `k` cycles of zero queue, which leaves the
    /// sum untouched — where the previous float Welford accumulator had
    /// to replay `k` pushes one by one to stay bit-identical.
    queue_sum: u64,
    queue_cycles: u64,
    max_queue: usize,
    util: Vec<u64>,
    deliveries: Option<Vec<Delivery>>,
    trace: Option<Trace>,
    // scratch buffers
    cand: Vec<ChannelId>,
    elig: Vec<u32>,
    reqs: Vec<Req>,
    ready: Vec<bool>,
}

impl EngineState {
    /// An empty state; the first run dimensions it.
    pub fn new() -> EngineState {
        EngineState {
            lane_owner: Vec::new(),
            lane_upstream: Vec::new(),
            lane_bufs: LaneBufs::default(),
            lane_downstream: Vec::new(),
            mux: Vec::new(),
            pkt_head_lane: Vec::new(),
            pkt_sent: Vec::new(),
            pkt_len: Vec::new(),
            pkt_dst: Vec::new(),
            pkt_cand: Vec::new(),
            pkt_delivered: Vec::new(),
            pkt_meta: Vec::new(),
            free_slots: Vec::new(),
            active: Vec::new(),
            sources: Vec::new(),
            crossbars: None,
            arbiter: Arbiter::new(ArbiterKind::Random),
            rng: SmallRng::seed_from_u64(0),
            now: 0,
            end: 0,
            arrivals: BinaryHeap::new(),
            releases: BinaryHeap::new(),
            injectable: DenseBitSet::with_capacity(0),
            occupied: DenseBitSet::with_capacity(0),
            maybe_ready: DenseBitSet::with_capacity(0),
            k_owned: DenseBitSet::with_capacity(0),
            k_has_input: DenseBitSet::with_capacity(0),
            k_full: DenseBitSet::with_capacity(0),
            k_dead: DenseBitSet::with_capacity(0),
            k_advance: DenseBitSet::with_capacity(0),
            alloc_words: 0,
            alloc_bits: 0,
            transmit_words: 0,
            transmit_bits: 0,
            owned_lanes: Vec::new(),
            queued_msgs: 0,
            moved: 0,
            last_progress: 0,
            aborted_pkts: 0,
            undeliverable_pkts: 0,
            generated_pkts: 0,
            generated_flits: 0,
            delivered_pkts: 0,
            delivered_flits: 0,
            latency: Welford::new(),
            latency_hist: LatencyHistogram::new(),
            latency_batches: BatchMeans::new(2, 1),
            queue_sum: 0,
            queue_cycles: 0,
            max_queue: 0,
            util: Vec::new(),
            deliveries: None,
            trace: None,
            cand: Vec::new(),
            elig: Vec::new(),
            reqs: Vec::new(),
            ready: Vec::new(),
        }
    }

    /// Restore the exact state a fresh engine construction produces for
    /// `(net, cfg, seed)`, keeping allocations wherever dimensions allow.
    /// `deterministic` enables the per-message delivery log (finite
    /// scripted/chained runs).
    fn reset(&mut self, net: &NetworkGraph, cfg: &EngineConfig, seed: u64, deterministic: bool) {
        let vcs = cfg.vcs as usize;
        let nch = net.num_channels();
        let n_nodes = net.geometry.nodes() as usize;
        let depth = cfg.buffer_depth as usize;

        self.rng = SmallRng::seed_from_u64(seed);

        let want_lanes = nch * vcs;
        self.lane_owner.clear();
        self.lane_owner.resize(want_lanes, NONE);
        self.lane_upstream.clear();
        self.lane_upstream.resize(want_lanes, Upstream::Exhausted);
        self.lane_bufs.reset(want_lanes, depth as u32);
        self.lane_downstream.clear();
        self.lane_downstream.resize(want_lanes, NONE);

        self.mux.clear();
        self.mux.resize(nch, VcMux::new(cfg.vc_mux));
        self.pkt_head_lane.clear();
        self.pkt_sent.clear();
        self.pkt_len.clear();
        self.pkt_dst.clear();
        self.pkt_cand.clear();
        self.pkt_delivered.clear();
        self.pkt_meta.clear();
        self.free_slots.clear();
        self.active.clear();

        for s in &mut self.sources {
            s.queue.clear();
            s.injecting = NONE;
            s.next_arrival = f64::INFINITY;
        }
        self.sources.resize_with(n_nodes, || Source {
            queue: VecDeque::new(),
            injecting: NONE,
            next_arrival: f64::INFINITY,
        });

        self.crossbars = if cfg.validate_crossbars {
            let k = net.geometry.k() as u8;
            let d = net.kind.dilation();
            Some(
                (0..net.num_switches())
                    .map(|_| {
                        if net.kind.is_bidirectional() {
                            Crossbar::new(k, true)
                        } else {
                            Crossbar::new(k * d, false)
                        }
                    })
                    .collect(),
            )
        } else {
            None
        };

        self.arbiter = Arbiter::new(cfg.alloc);
        self.now = 0;
        self.end = cfg.warmup + cfg.measure;
        self.arrivals.clear();
        self.releases.clear();
        self.injectable.reset(n_nodes);
        self.occupied.reset(nch);
        self.maybe_ready.reset(nch);
        // Kernel masks are (re)dimensioned by `Engine::init_kernel_masks`
        // when the kernels engage; only the counters reset here.
        self.alloc_words = 0;
        self.alloc_bits = 0;
        self.transmit_words = 0;
        self.transmit_bits = 0;
        self.owned_lanes.clear();
        self.owned_lanes.resize(nch, 0);
        self.queued_msgs = 0;
        self.moved = 0;
        self.last_progress = 0;
        self.aborted_pkts = 0;
        self.undeliverable_pkts = 0;

        self.generated_pkts = 0;
        self.generated_flits = 0;
        self.delivered_pkts = 0;
        self.delivered_flits = 0;
        self.latency.reset();
        self.latency_hist.reset();
        self.latency_batches.reset(16, 64.max(cfg.measure / 2048));
        self.queue_sum = 0;
        self.queue_cycles = 0;
        self.max_queue = 0;
        self.util.clear();
        if cfg.collect_channel_util {
            self.util.resize(nch, 0);
        }
        self.deliveries = if deterministic { Some(Vec::new()) } else { None };
        self.trace = if cfg.collect_trace {
            Some(Trace::default())
        } else {
            None
        };

        self.cand.clear();
        self.elig.clear();
        self.reqs.clear();
        self.ready.clear();
        self.ready.resize(vcs, false);
    }
}

impl Default for EngineState {
    fn default() -> Self {
        EngineState::new()
    }
}

thread_local! {
    /// One pooled [`EngineState`] per thread, shared by every caller that
    /// does not thread its own state through (sequential saturation
    /// probes, repeated `CompiledExperiment::run_seeded` calls, …).
    static STATE_POOL: RefCell<Option<Box<EngineState>>> = const { RefCell::new(None) };
}

/// Run `f` with this thread's pooled [`EngineState`], creating it on
/// first use. Reentrant calls get a temporary fresh state (the pooled one
/// is taken out while `f` runs), so nesting is safe if pointless.
pub fn with_pooled_state<R>(f: impl FnOnce(&mut EngineState) -> R) -> R {
    let taken = STATE_POOL.with(|cell| cell.borrow_mut().take());
    let mut st = taken.unwrap_or_else(|| Box::new(EngineState::new()));
    let r = f(&mut st);
    STATE_POOL.with(|cell| *cell.borrow_mut() = Some(st));
    r
}

/// Per-run hot-loop probe. With the `hotstats` feature on it accumulates
/// per-phase wall time plus executed/skipped cycle counts and flushes
/// them into the process-wide [`crate::hotstats`] counters when the run
/// finishes; with the feature off it is a zero-sized no-op the optimizer
/// erases, so the production loop pays nothing.
#[cfg(feature = "hotstats")]
mod probe {
    use std::time::Instant;

    pub(super) struct HotProbe {
        stats: crate::hotstats::HotStats,
        mark: Instant,
    }

    impl HotProbe {
        pub(super) fn new() -> HotProbe {
            HotProbe {
                stats: crate::hotstats::HotStats::default(),
                mark: Instant::now(),
            }
        }

        #[inline]
        fn lap(&mut self) -> u64 {
            let now = Instant::now();
            let ns = (now - self.mark).as_nanos() as u64;
            self.mark = now;
            ns
        }

        #[inline]
        pub(super) fn mark(&mut self) {
            self.mark = Instant::now();
        }

        #[inline]
        pub(super) fn arrivals_done(&mut self) {
            self.stats.arrivals_ns += self.lap();
        }

        #[inline]
        pub(super) fn allocate_done(&mut self) {
            self.stats.allocate_ns += self.lap();
        }

        #[inline]
        pub(super) fn transmit_done(&mut self) {
            self.stats.transmit_ns += self.lap();
            self.stats.cycles_executed += 1;
        }

        #[inline]
        pub(super) fn skipped(&mut self, cycles: u64) {
            if cycles > 0 {
                self.stats.cycles_skipped += cycles;
                self.stats.ff_jumps += 1;
            }
        }

        /// Fold one engine state's mask-density counters (words scanned /
        /// bits processed per phase) into this probe's totals.
        pub(super) fn absorb_masks(&mut self, st: &super::EngineState) {
            self.stats.alloc_words_scanned += st.alloc_words;
            self.stats.alloc_bits_processed += st.alloc_bits;
            self.stats.transmit_words_scanned += st.transmit_words;
            self.stats.transmit_bits_processed += st.transmit_bits;
        }

        pub(super) fn flush(mut self) {
            self.stats.runs = 1;
            crate::hotstats::record(&self.stats);
        }
    }
}

#[cfg(not(feature = "hotstats"))]
mod probe {
    pub(super) struct HotProbe;

    impl HotProbe {
        #[inline]
        pub(super) fn new() -> HotProbe {
            HotProbe
        }
        #[inline]
        pub(super) fn mark(&mut self) {}
        #[inline]
        pub(super) fn arrivals_done(&mut self) {}
        #[inline]
        pub(super) fn allocate_done(&mut self) {}
        #[inline]
        pub(super) fn transmit_done(&mut self) {}
        #[inline]
        pub(super) fn skipped(&mut self, _cycles: u64) {}
        #[inline]
        pub(super) fn absorb_masks(&mut self, _st: &super::EngineState) {}
        #[inline]
        pub(super) fn flush(self) {}
    }
}

use probe::HotProbe;

struct Engine<'a> {
    net: &'a NetworkGraph,
    cfg: &'a EngineConfig,
    router: Router<'a>,
    order: &'a [ChannelId],
    order_pos: &'a [u32],
    dst_is_node: &'a [bool],
    vcs: usize,
    traffic: Traffic<'a>,
    /// Active fault schedule; `None` is the fault-free fast path (trivial
    /// schedules are normalized to `None` in `run_prepared`).
    faults: Option<&'a CompiledFaults>,
    /// Index of the current fault epoch in `faults`.
    epoch: usize,
    /// Whether the word-parallel kernels are engaged for this run:
    /// `cfg.word_kernels` and `vcs` is a power of two ≤ 64, so every
    /// channel's lanes form one aligned bit group inside a mask word.
    kern: bool,
    /// `log2(vcs)` when the kernels are engaged: plane index =
    /// `(order_pos[ch] << vcs_shift) | vc`.
    vcs_shift: u32,
    st: &'a mut EngineState,
}

/// Reset `st` for `(net, cfg, seed)`, prime the traffic source, and
/// return the ready-to-run engine. Shared by the scalar entry
/// ([`run_prepared`]) and the lockstep fleet, which prepares one engine
/// per replication lane and interleaves their cycles.
#[allow(clippy::too_many_arguments)]
fn prepare_engine<'a>(
    net: &'a NetworkGraph,
    cfg: &'a EngineConfig,
    router: Router<'a>,
    order: &'a [ChannelId],
    order_pos: &'a [u32],
    dst_is_node: &'a [bool],
    traffic: Traffic<'a>,
    faults: Option<&'a CompiledFaults>,
    seed: u64,
    st: &'a mut EngineState,
) -> Engine<'a> {
    // A trivial schedule (no epoch kills any lane) is indistinguishable
    // from no schedule; normalizing it to `None` here *guarantees* the
    // empty-plan path is the untouched fast path, bit for bit.
    let faults = faults.filter(|f| !f.is_trivial());
    let deterministic = !matches!(traffic, Traffic::Poisson(_));
    st.reset(net, cfg, seed, deterministic);

    // Prime the event heaps. Poisson: one initial arrival per generating
    // node, drawn in ascending node order — the first draws of the run's
    // RNG stream, exactly as the reference engine makes them.
    match &traffic {
        Traffic::Poisson(wl) => {
            for node in 0..net.geometry.nodes() {
                let rate = wl.message_rate(node);
                if rate > 0.0 {
                    let u: f64 = 1.0 - st.rng.random::<f64>();
                    let t = -u.ln() / rate;
                    st.sources[node as usize].next_arrival = t;
                    st.arrivals.push(Reverse((t.ceil() as u64, node)));
                }
            }
        }
        Traffic::Scripted { .. } => {}
        Traffic::Chained { release, .. } => {
            for (i, r) in release.iter().enumerate() {
                if let Some(t) = r {
                    st.releases.push(Reverse((*t, i as u32)));
                }
            }
        }
    }

    let kern = cfg.word_kernels && cfg.vcs.is_power_of_two() && cfg.vcs <= 64;
    let mut e = Engine {
        net,
        cfg,
        router,
        order,
        order_pos,
        dst_is_node,
        vcs: cfg.vcs as usize,
        traffic,
        faults,
        epoch: 0,
        kern,
        vcs_shift: u32::from(cfg.vcs).trailing_zeros(),
        st,
    };
    if e.kern {
        e.init_kernel_masks();
    }
    e
}

/// The single scalar run entry: prepare one engine and drive it to
/// completion. Both the compiled and the one-shot paths funnel through
/// here — there is exactly one engine.
#[allow(clippy::too_many_arguments)]
fn run_prepared(
    net: &NetworkGraph,
    cfg: &EngineConfig,
    router: Router<'_>,
    order: &[ChannelId],
    order_pos: &[u32],
    dst_is_node: &[bool],
    traffic: Traffic<'_>,
    faults: Option<&CompiledFaults>,
    seed: u64,
    st: &mut EngineState,
) -> Result<SimReport, SimError> {
    prepare_engine(
        net,
        cfg,
        router,
        order,
        order_pos,
        dst_is_node,
        traffic,
        faults,
        seed,
        st,
    )
    .run()
}

impl<'a> Engine<'a> {
    #[inline]
    fn measuring(&self) -> bool {
        self.st.now >= self.cfg.warmup
    }

    /// In-code of an input channel at its destination switch, for crossbar
    /// validation.
    fn in_code(&self, ch: ChannelId) -> Result<(u32, u8), SimError> {
        let c = self.net.channel(ch);
        match c.dst {
            Endpoint::Switch { sw, side, port } => {
                let code = self.port_code(side, port, c.lane);
                Ok((sw, code))
            }
            Endpoint::Node(_) => Err(SimError::Internal {
                what: "in_code of an ejection channel",
            }),
        }
    }

    fn out_code(&self, ch: ChannelId) -> Result<(u32, u8), SimError> {
        let c = self.net.channel(ch);
        match c.src {
            Endpoint::Switch { sw, side, port } => {
                let code = self.port_code(side, port, c.lane);
                Ok((sw, code))
            }
            Endpoint::Node(_) => Err(SimError::Internal {
                what: "out_code of an injection channel",
            }),
        }
    }

    fn port_code(&self, side: Side, port: u8, lane: u8) -> u8 {
        if self.net.kind.is_bidirectional() {
            let k = self.net.geometry.k() as u8;
            match side {
                Side::Left => port,
                Side::Right => k + port,
            }
        } else {
            port * self.net.kind.dilation() + lane
        }
    }

    // ---- word-parallel kernel masks ----------------------------------

    /// Plane index of lane `li`: the lane's channel mapped to its
    /// transmit-order position, with the VC bits kept in the low end —
    /// `(order_pos[ch] << vcs_shift) | vc`. Ascending plane order is
    /// ascending sweep-position order, and (because `vcs` is a power of
    /// two ≤ 64 whenever the kernels engage) a channel's lanes form one
    /// aligned group inside a single mask word.
    #[inline]
    fn plane(&self, li: usize) -> u32 {
        (self.order_pos[li >> self.vcs_shift] << self.vcs_shift)
            | (li as u32 & ((1 << self.vcs_shift) - 1))
    }

    /// Dimension and seed the kernel masks for a fresh run: everything
    /// empty except the epoch-0 dead mask.
    fn init_kernel_masks(&mut self) {
        debug_assert!(self.kern);
        let lanes = self.net.num_channels() * self.vcs;
        self.st.k_owned.reset(lanes);
        self.st.k_has_input.reset(lanes);
        self.st.k_full.reset(lanes);
        self.st.k_advance.reset(0);
        self.rebuild_dead_mask();
    }

    /// Rebuild the permuted dead-lane mask for the current fault epoch
    /// from its packed `dead_lane_words` (set-bit iteration, so a sparse
    /// epoch costs O(words + casualties), not O(lanes)).
    fn rebuild_dead_mask(&mut self) {
        let lanes = self.net.num_channels() * self.vcs;
        self.st.k_dead.reset(lanes);
        if let Some(f) = self.faults {
            let ep = &f.epochs[self.epoch];
            if ep.any_dead {
                for li in SetBits::over(&ep.dead_lane_words) {
                    self.st.k_dead.set(self.plane(li as usize));
                }
            }
        }
    }

    /// Debug-only exactness audit: every kernel-mask bit must equal the
    /// scalar predicate it mirrors. Called periodically from the cycle
    /// loop in debug builds; incremental-maintenance bugs persist in the
    /// masks, so a sampled check still catches them.
    #[cfg(debug_assertions)]
    fn check_kernel_masks(&self) {
        if !self.kern {
            return;
        }
        for ch in 0..self.net.num_channels() {
            for vc in 0..self.vcs {
                let li = ch * self.vcs + vc;
                let pl = self.plane(li);
                let owned = self.st.lane_owner[li] != NONE;
                assert_eq!(self.st.k_owned.contains(pl), owned, "k_owned lane {li}");
                let dead = self
                    .faults
                    .is_some_and(|f| f.epochs[self.epoch].dead_lane[li]);
                assert_eq!(self.st.k_dead.contains(pl), dead, "k_dead lane {li}");
                assert_eq!(
                    self.st.k_full.contains(pl),
                    self.st.lane_bufs.is_full(li),
                    "k_full lane {li}"
                );
                let has_input = match self.st.lane_upstream[li] {
                    Upstream::Exhausted => false,
                    Upstream::Source(_) => {
                        let p = self.st.lane_owner[li] as usize;
                        self.st.pkt_sent[p] < self.st.pkt_len[p]
                    }
                    Upstream::Lane(u) => !self.st.lane_bufs.is_empty(u as usize),
                };
                assert_eq!(
                    self.st.k_has_input.contains(pl),
                    has_input,
                    "k_has_input lane {li}"
                );
            }
        }
        for &p in &self.st.active {
            let hl = self.st.pkt_head_lane[p as usize] as usize;
            let want = !self.dst_is_node[hl / self.vcs]
                && self
                    .st
                    .lane_bufs
                    .front(hl)
                    .is_some_and(|f| f.packet == p && f.is_header());
            assert_eq!(self.st.k_advance.contains(p), want, "k_advance packet {p}");
            if let (None, Router::Table(table)) = (self.faults, self.router) {
                let dst = self.st.pkt_dst[p as usize];
                let (lo, hi) = self.st.pkt_cand[p as usize];
                assert_eq!(
                    table.resolve_range(lo, hi),
                    table.candidates((hl / self.vcs) as u32, dst),
                    "pkt_cand packet {p}"
                );
            }
        }
    }

    // ---- phase 1: arrivals -------------------------------------------

    fn generate_arrivals(&mut self) {
        let now = self.st.now;
        let now_f = now as f64;
        let measuring = self.measuring();
        match &mut self.traffic {
            Traffic::Poisson(wl) => {
                // Pop every matured node. A due entry's key always equals
                // `now` (keys are ⌈next_arrival⌉ computed when the arrival
                // was strictly in the future, and nothing is left behind a
                // cycle), so matured nodes come out in ascending node
                // order — the reference engine's scan order.
                while let Some(&Reverse((fire, node))) = self.st.arrivals.peek() {
                    if fire > now {
                        break;
                    }
                    self.st.arrivals.pop();
                    debug_assert_eq!(fire, now, "arrival missed its cycle");
                    let mut enqueued = 0u32;
                    let src = &mut self.st.sources[node as usize];
                    while src.next_arrival <= now_f {
                        let dst = wl.draw_destination(node, &mut self.st.rng);
                        let len = wl.draw_length(&mut self.st.rng);
                        src.queue.push_back(QueuedMsg {
                            dst,
                            len,
                            gen_time: now,
                            tag: NONE,
                        });
                        enqueued += 1;
                        if let Some(tr) = &mut self.st.trace {
                            tr.events.push(TraceEvent::Queued {
                                tag: NONE,
                                time: now,
                                src: node,
                                dst,
                                len,
                            });
                        }
                        if measuring {
                            self.st.generated_pkts += 1;
                            self.st.generated_flits += u64::from(len);
                            self.st.max_queue = self.st.max_queue.max(src.queue.len());
                        }
                        let rate = wl.message_rate(node);
                        let u: f64 = 1.0 - self.st.rng.random::<f64>();
                        src.next_arrival += -u.ln() / rate;
                    }
                    self.st
                        .arrivals
                        .push(Reverse((src.next_arrival.ceil() as u64, node)));
                    self.st.queued_msgs += u64::from(enqueued);
                    if enqueued > 0 && self.st.sources[node as usize].injecting == NONE {
                        self.st.injectable.set(node);
                    }
                }
            }
            Traffic::Scripted { msgs, next } => {
                while *next < msgs.len() && msgs[*next].time <= now {
                    let m = msgs[*next];
                    let tag = *next as u32;
                    *next += 1;
                    let src = &mut self.st.sources[m.src as usize];
                    src.queue.push_back(QueuedMsg {
                        dst: m.dst,
                        len: m.len,
                        gen_time: m.time,
                        tag,
                    });
                    if let Some(tr) = &mut self.st.trace {
                        tr.events.push(TraceEvent::Queued {
                            tag,
                            time: now,
                            src: m.src,
                            dst: m.dst,
                            len: m.len,
                        });
                    }
                    if measuring {
                        self.st.generated_pkts += 1;
                        self.st.generated_flits += u64::from(m.len);
                        self.st.max_queue = self.st.max_queue.max(src.queue.len());
                    }
                    self.st.queued_msgs += 1;
                    if self.st.sources[m.src as usize].injecting == NONE {
                        self.st.injectable.set(m.src);
                    }
                }
            }
            Traffic::Chained { msgs, .. } => {
                // Due entries carry key == now (roots mature untouched;
                // dependents are released at ≥ delivery cycle + 1), so
                // pops are index-ascending — the reference's scan order.
                while let Some(&Reverse((t, i))) = self.st.releases.peek() {
                    if t > now {
                        break;
                    }
                    self.st.releases.pop();
                    let m = msgs[i as usize];
                    let src = &mut self.st.sources[m.src as usize];
                    src.queue.push_back(QueuedMsg {
                        dst: m.dst,
                        len: m.len,
                        gen_time: t,
                        tag: i,
                    });
                    if let Some(tr) = &mut self.st.trace {
                        tr.events.push(TraceEvent::Queued {
                            tag: i,
                            time: now,
                            src: m.src,
                            dst: m.dst,
                            len: m.len,
                        });
                    }
                    if measuring {
                        self.st.generated_pkts += 1;
                        self.st.generated_flits += u64::from(m.len);
                        self.st.max_queue = self.st.max_queue.max(src.queue.len());
                    }
                    self.st.queued_msgs += 1;
                    if self.st.sources[m.src as usize].injecting == NONE {
                        self.st.injectable.set(m.src);
                    }
                }
            }
        }
    }

    // ---- phase 2: routing and lane allocation ------------------------

    fn allocate(&mut self) -> Result<(), SimError> {
        let mut reqs = std::mem::take(&mut self.st.reqs);
        reqs.clear();
        self.st
            .injectable
            .for_each(|node| reqs.push(Req::Inject(node)));
        if self.kern {
            // The advance-request predicate is tracked incrementally in
            // `k_advance` (set when the header flit lands in the head
            // lane's buffer, cleared when a claim moves the head), so the
            // scan costs one bit test per active packet instead of a
            // head-lane / ejection / buffer-front load chain. The `active`
            // vec still drives the scan — request order (injectable
            // ascending, then `active` insertion order) feeds the request
            // shuffle and must stay identical to the scalar path's.
            for &p in &self.st.active {
                if self.st.k_advance.contains(p) {
                    reqs.push(Req::Advance(p));
                }
            }
        } else {
            for &p in &self.st.active {
                let hl = self.st.pkt_head_lane[p as usize];
                debug_assert_ne!(hl, NONE);
                let ch = (hl as usize / self.vcs) as u32;
                if self.dst_is_node[ch as usize] {
                    continue; // header already on the ejection channel
                }
                if let Some(flit) = self.st.lane_bufs.front(hl as usize) {
                    if flit.packet == p && flit.is_header() {
                        reqs.push(Req::Advance(p));
                    }
                }
            }
        }
        #[cfg(feature = "hotstats")]
        {
            self.st.alloc_words += self.st.injectable.num_words() as u64;
            self.st.alloc_bits += reqs.len() as u64;
        }
        // Serve requests in random order (distributed arbitration).
        let n = reqs.len();
        for i in (1..n).rev() {
            let j = self.st.rng.random_range(0..=i);
            reqs.swap(i, j);
        }
        let mut result = Ok(());
        for &req in &reqs {
            result = match req {
                Req::Inject(node) => self.try_inject(node),
                Req::Advance(p) => self.try_advance(p),
            };
            if result.is_err() {
                break;
            }
        }
        self.st.reqs = reqs;
        result
    }

    /// Collect the free lanes of `cands` into the eligibility scratch.
    /// `cands` must not alias engine state (it is a routing-table slice,
    /// a local array, or the detached `cand` scratch). Under an active
    /// fault schedule, dead lanes are never eligible.
    fn gather_free(&mut self, cands: &[ChannelId]) {
        self.st.elig.clear();
        match self.faults {
            None => {
                for &ch in cands {
                    for vc in 0..self.vcs {
                        let li = ch as usize * self.vcs + vc;
                        if self.st.lane_owner[li] == NONE {
                            self.st.elig.push(li as u32);
                        }
                    }
                }
            }
            Some(f) => {
                let dead = &f.epochs[self.epoch].dead_lane;
                for &ch in cands {
                    for vc in 0..self.vcs {
                        let li = ch as usize * self.vcs + vc;
                        if self.st.lane_owner[li] == NONE && !dead[li] {
                            self.st.elig.push(li as u32);
                        }
                    }
                }
            }
        }
    }

    /// Claim one of the gathered free lanes for `owner`; returns the lane.
    fn claim_gathered(&mut self, owner: u32) -> Option<u32> {
        if self.st.elig.is_empty() {
            return None;
        }
        let idx = self
            .st
            .arbiter
            .pick_uncontested(self.st.elig.len(), &mut self.st.rng);
        let lane = self.st.elig[idx];
        self.st.lane_owner[lane as usize] = owner;
        self.st.lane_downstream[lane as usize] = NONE;
        let ch = lane as usize / self.vcs;
        self.st.owned_lanes[ch] += 1;
        if self.st.owned_lanes[ch] == 1 {
            self.st.occupied.set(self.order_pos[ch]);
        }
        if self.kern {
            self.st.k_owned.set(self.plane(lane as usize));
        } else {
            // A freshly claimed lane is the worm's head with its input
            // available (a queued source message or the upstream head
            // flit), so its channel may transmit this very cycle.
            self.st.maybe_ready.set(self.order_pos[ch]);
        }
        Some(lane)
    }

    /// Pop undeliverable messages off `node`'s queue head: under the
    /// current fault epoch no live route from the injection channel
    /// reaches their destination, so injecting them could only wedge the
    /// network. Counted (when measured) in `undeliverable_pkts`; the
    /// queue is self-cleaning because the next allocation phase sees the
    /// next message. Returns whether a deliverable message remains.
    fn refuse_undeliverable(&mut self, node: u32, inj: ChannelId) -> bool {
        let Some(f) = self.faults else { return true };
        let ep = &f.epochs[self.epoch];
        if !ep.any_dead {
            return true;
        }
        let warmup = self.cfg.warmup;
        loop {
            let Some(msg) = self.st.sources[node as usize].queue.front() else {
                self.st.injectable.clear(node);
                return false;
            };
            // The masked table's injection cell is nonempty iff a live
            // path to the destination exists (deliverability pruning).
            if !ep.routes.candidates(inj, msg.dst).is_empty() {
                return true;
            }
            let msg = self.st.sources[node as usize].queue.pop_front().unwrap();
            self.st.queued_msgs -= 1;
            if msg.gen_time >= warmup {
                self.st.undeliverable_pkts += 1;
            }
            if let Some(tr) = &mut self.st.trace {
                tr.events.push(TraceEvent::Refused {
                    tag: msg.tag,
                    time: self.st.now,
                });
            }
        }
    }

    fn try_inject(&mut self, node: u32) -> Result<(), SimError> {
        let inj = self.net.inject(node);
        if !self.refuse_undeliverable(node, inj) {
            return Ok(());
        }
        self.gather_free(&[inj]);
        // Claim with a placeholder owner; fixed up after slot allocation.
        let Some(lane) = self.claim_gathered(NONE - 1) else {
            return Ok(());
        };
        let Some(msg) = self.st.sources[node as usize].queue.pop_front() else {
            return Err(SimError::Internal {
                what: "inject request without a queued message",
            });
        };
        self.st.queued_msgs -= 1;
        self.st.injectable.clear(node);
        let meta = PktMeta {
            src: node,
            dst: msg.dst,
            gen_time: msg.gen_time,
            measured: msg.gen_time >= self.cfg.warmup,
            tag: msg.tag,
        };
        let slot = match self.st.free_slots.pop() {
            Some(s) => {
                let si = s as usize;
                self.st.pkt_head_lane[si] = lane;
                self.st.pkt_sent[si] = 0;
                self.st.pkt_len[si] = msg.len;
                self.st.pkt_dst[si] = msg.dst;
                self.st.pkt_cand[si] = (0, 0);
                self.st.pkt_delivered[si] = 0;
                self.st.pkt_meta[si] = meta;
                s
            }
            None => {
                self.st.pkt_head_lane.push(lane);
                self.st.pkt_sent.push(0);
                self.st.pkt_len.push(msg.len);
                self.st.pkt_dst.push(msg.dst);
                self.st.pkt_cand.push((0, 0));
                self.st.pkt_delivered.push(0);
                self.st.pkt_meta.push(meta);
                (self.st.pkt_meta.len() - 1) as u32
            }
        };
        self.st.lane_owner[lane as usize] = slot;
        self.st.lane_upstream[lane as usize] = Upstream::Source(node);
        if self.kern {
            // A source with a packet to emit is available input
            // (`sent == 0 < len`); the fresh head lane's buffer is empty,
            // so no advance request until the header lands in it.
            debug_assert!(self.st.pkt_len[slot as usize] >= 1);
            self.st.k_has_input.set(self.plane(lane as usize));
            self.st.k_advance.grow(self.st.pkt_meta.len());
            self.st.k_advance.clear(slot);
            if let (None, Router::Table(table)) = (self.faults, self.router) {
                self.st.pkt_cand[slot as usize] = table.candidate_range(inj, msg.dst);
            }
        }
        self.st.sources[node as usize].injecting = slot;
        self.st.active.push(slot);
        if let Some(tr) = &mut self.st.trace {
            let tag = self.st.pkt_meta[slot as usize].tag;
            tr.events.push(TraceEvent::Injected {
                tag,
                time: self.st.now,
            });
            tr.events.push(TraceEvent::Hop {
                tag,
                time: self.st.now,
                channel: (lane as usize / self.vcs) as u32,
            });
        }
        Ok(())
    }

    fn try_advance(&mut self, p: u32) -> Result<(), SimError> {
        // The destination comes from the hot SoA copy; the cold `PktMeta`
        // record is only touched on the rare paths that need more (the
        // logic-router candidates call wants `src`, tracing wants `tag`).
        let dst = self.st.pkt_dst[p as usize];
        let at_lane = self.st.pkt_head_lane[p as usize];
        let at_ch = (at_lane as usize / self.vcs) as u32;
        match (self.faults, self.router) {
            // Fault epochs route through the masked table regardless of
            // router mode: candidates are live *and* deliverable.
            (Some(f), _) => {
                let cands = f.epochs[self.epoch].routes.candidates(at_ch, dst);
                if cands.is_empty() {
                    // Disconnected mid-route: the current epoch left this
                    // worm no live continuation toward its destination.
                    // `advance_epoch` aborts such worms at the boundary
                    // when `fault_abort` is on, so reaching this with the
                    // knob on means the worm arrived here within the
                    // epoch — abort it now; with the knob off it wedges
                    // in place for the watchdog to diagnose.
                    if self.cfg.fault_abort {
                        self.abort_packet(p)?;
                    }
                    return Ok(());
                }
                self.gather_free(cands);
            }
            (None, Router::Table(table)) => {
                let cands = if self.kern {
                    let (lo, hi) = self.st.pkt_cand[p as usize];
                    let cands = table.resolve_range(lo, hi);
                    debug_assert_eq!(cands, table.candidates(at_ch, dst));
                    cands
                } else {
                    table.candidates(at_ch, dst)
                };
                debug_assert!(!cands.is_empty(), "advance request at the destination");
                self.gather_free(cands);
            }
            (None, Router::Logic(logic)) => {
                let src = self.st.pkt_meta[p as usize].src;
                let mut cand = std::mem::take(&mut self.st.cand);
                logic.candidates(self.net, src, dst, at_ch, &mut cand);
                debug_assert!(!cand.is_empty(), "advance request at the destination");
                self.gather_free(&cand);
                self.st.cand = cand;
            }
        }
        let Some(lane) = self.claim_gathered(p) else {
            return Ok(()); // blocked; the worm holds its lanes and waits
        };
        let new_ch = (lane as usize / self.vcs) as u32;
        self.st.lane_upstream[lane as usize] = Upstream::Lane(at_lane);
        self.st.lane_downstream[at_lane as usize] = lane;
        self.st.pkt_head_lane[p as usize] = lane;
        if self.kern {
            // The advance request came off a nonempty `at_lane` buffer
            // (its front is the header), so the new head has input; its
            // own empty buffer holds no header yet.
            debug_assert!(!self.st.lane_bufs.is_empty(at_lane as usize));
            self.st.k_has_input.set(self.plane(lane as usize));
            self.st.k_advance.clear(p);
            // New head, new candidate cell: refresh the cached bounds
            // once per hop. Reaching the destination stores the ejection
            // channel's empty range, which is never read (no advance
            // requests are raised from an ejection-channel head).
            if let (None, Router::Table(table)) = (self.faults, self.router) {
                self.st.pkt_cand[p as usize] = table.candidate_range(new_ch, dst);
            }
        }
        if let Some(tr) = &mut self.st.trace {
            tr.events.push(TraceEvent::Hop {
                tag: self.st.pkt_meta[p as usize].tag,
                time: self.st.now,
                channel: new_ch,
            });
        }
        if self.st.crossbars.is_none() {
            return Ok(());
        }
        let (sw_in, code_in) = self.in_code(at_ch)?;
        let (sw_out, code_out) = self.out_code(new_ch)?;
        debug_assert_eq!(sw_in, sw_out, "allocation must stay inside one switch");
        if let Some(xbars) = &mut self.st.crossbars {
            if xbars[sw_in as usize].connect(code_in, code_out).is_err() {
                return Err(SimError::Internal {
                    what: "engine requested an illegal crossbar connection",
                });
            }
        }
        Ok(())
    }

    // ---- phase 3: transmission ---------------------------------------

    fn transmit(&mut self) -> Result<(), SimError> {
        if self.kern {
            return self.transmit_kernel();
        }
        // Sweep the maybe-ready superset word by word with a monotone
        // cursor, re-reading the current word after every visit. A move
        // can set bits *ahead* of the cursor — popping lane `li`'s
        // upstream `u` re-arms `u`, and reverse-topological order places
        // upstream channels at later positions — and the re-read serves
        // them within this same pass, exactly as the old full-`occupied`
        // snapshot sweep did. Bits set at or behind the cursor (a push
        // feeding a *downstream* consumer, at an earlier position) wait
        // for the next cycle — also exactly as before, since the old
        // ascending sweep had already evaluated those positions before
        // the enabling mutation.
        //
        // Bit-identity with the scan-everything sweep: `maybe_ready` is a
        // superset of the channels with a ready lane (every readiness-
        // creating event sets the bit; only a visit that *observes* no
        // ready lane clears it), and a visit with no ready lane touches
        // neither mux nor RNG nor report state. So the two sweeps perform
        // the same moves and mux selections in the same order; the only
        // difference is skipping no-op visits.
        for w in 0..self.st.maybe_ready.num_words() {
            // Bits at or below the last-served index of this word are
            // behind the cursor; mask them off on each re-read.
            let mut behind: u64 = 0;
            loop {
                #[cfg(feature = "hotstats")]
                {
                    self.st.transmit_words += 1;
                }
                let bits = self.st.maybe_ready.word(w) & !behind;
                if bits == 0 {
                    break;
                }
                let b = bits.trailing_zeros();
                behind = if b == 63 { u64::MAX } else { (1u64 << (b + 1)) - 1 };
                #[cfg(feature = "hotstats")]
                {
                    self.st.transmit_bits += 1;
                }
                self.visit_channel((w * 64) as u32 + b)?;
            }
        }
        Ok(())
    }

    /// Word-parallel transmit: combine the lane masks into an **exact**
    /// per-word ready mask — `owned ∧ has_input ∧ ¬full ∧ ¬dead`, bit
    /// for bit the [`lane_ready`](Self::lane_ready) predicate (the
    /// scalar `eject ∨ ¬full` term collapses to `¬full` because
    /// ejection-lane buffers are never pushed, and the `¬dead` term is
    /// folded only when a fault plan is loaded — without one `k_dead` is
    /// identically zero) — and serve its set bits with
    /// `trailing_zeros`. Planes are `order_pos`-permuted, so ascending
    /// bit order *is* the scalar sweep's ascending-position order, and
    /// the same monotone cursor with a re-read after every move catches
    /// lanes that become ready ahead of the cursor (a pop re-arms the
    /// upstream lane, which reverse-topological order places at a later
    /// position) within the same pass.
    ///
    /// Bit-identity with the scalar sweep: the scalar `maybe_ready` set
    /// is a superset of the truly-ready channels, and a visit that finds
    /// no ready lane touches neither mux nor RNG nor report state — so
    /// dropping exactly those no-op visits leaves every move and every
    /// mux selection identical, in identical order. For `vcs > 1` the
    /// mux sees the same `ready` bool array a scalar visit would build,
    /// and is consulted only when some lane is ready, exactly as the
    /// scalar path does.
    fn transmit_kernel(&mut self) -> Result<(), SimError> {
        let nw = self.st.k_owned.num_words();
        let faulted = self.faults.is_some();
        if self.vcs == 1 {
            if matches!(self.cfg.transmit_order, TransmitOrder::ReverseTopo) {
                return self.transmit_kernel_vc1_rt(nw, faulted);
            }
            // Non-topological orders (the build-order ablation) lose the
            // "a move only re-arms *later* positions, and only via the
            // popped upstream lane" invariant, so fall back to re-reading
            // the masks after every move — still exact, word-at-a-time.
            for w in 0..nw {
                let mut behind: u64 = 0;
                loop {
                    #[cfg(feature = "hotstats")]
                    {
                        self.st.transmit_words += 1;
                    }
                    let mut ready = self.st.k_owned.word(w)
                        & self.st.k_has_input.word(w)
                        & !(self.st.k_full.word(w) | behind);
                    if faulted {
                        ready &= !self.st.k_dead.word(w);
                    }
                    if ready == 0 {
                        break;
                    }
                    let b = ready.trailing_zeros();
                    behind = if b == 63 { u64::MAX } else { (1u64 << (b + 1)) - 1 };
                    let pl = (w * 64) as u32 + b;
                    let ch = self.order[pl as usize];
                    #[cfg(feature = "hotstats")]
                    {
                        self.st.transmit_bits += 1;
                    }
                    debug_assert!(self.lane_ready(ch as usize, ch));
                    self.move_flit(ch, ch as usize, pl)?;
                }
            }
            return Ok(());
        }
        // vcs > 1: each channel's lanes are one aligned group of `vcs`
        // bits. The group's ready bits feed the channel's VC mux exactly
        // as a scalar visit would; the cursor advances a whole group at
        // a time (one flit per channel per cycle).
        if matches!(self.cfg.transmit_order, TransmitOrder::ReverseTopo) {
            return self.transmit_kernel_vcn_rt(nw, faulted);
        }
        let vcs = self.vcs;
        let gmask = u64::MAX >> (64 - vcs as u32);
        for w in 0..nw {
            let mut behind: u64 = 0;
            loop {
                #[cfg(feature = "hotstats")]
                {
                    self.st.transmit_words += 1;
                }
                let mut ready = self.st.k_owned.word(w)
                    & self.st.k_has_input.word(w)
                    & !(self.st.k_full.word(w) | behind);
                if faulted {
                    ready &= !self.st.k_dead.word(w);
                }
                if ready == 0 {
                    break;
                }
                let b = ready.trailing_zeros();
                let g0 = b & !(vcs as u32 - 1);
                let group = (ready >> g0) & gmask;
                let hi = g0 + vcs as u32;
                behind = if hi >= 64 { u64::MAX } else { (1u64 << hi) - 1 };
                let pos = ((w * 64) as u32 + g0) >> self.vcs_shift;
                let ch = self.order[pos as usize];
                for vc in 0..vcs {
                    self.st.ready[vc] = (group >> vc) & 1 == 1;
                }
                #[cfg(feature = "hotstats")]
                {
                    self.st.transmit_bits += 1;
                }
                let Some(vc) = self.st.mux[ch as usize].select(&self.st.ready[..vcs]) else {
                    return Err(SimError::Internal {
                        what: "a ready lane must be selectable",
                    });
                };
                self.move_flit(ch, ch as usize * vcs + vc, (w * 64) as u32 + g0 + vc as u32)?;
            }
        }
        Ok(())
    }

    /// The saturation-critical kernel: `vcs == 1` under reverse-
    /// topological order. Each mask word is combined **once**; the set
    /// bits are then consumed low-to-high with no re-read, because under
    /// this order a move can change the readiness of at most one lane
    /// *ahead* of the cursor — the popped upstream lane `u` (its
    /// full-bit falls; every other mask transition lands at an earlier
    /// position: the pushed-into lane is the bit just consumed, and the
    /// downstream lane gaining input sits before it). [`Self::move_flit`]
    /// reports `u`'s plane and recomputed ready bit, and the loop patches
    /// the resident word directly — turning the per-move mask re-read
    /// into a register operation. Bits that *fall* ahead of the cursor
    /// cannot happen: a released upstream lane had no input (its worm's
    /// tail was the popped flit), so its bit was never set.
    fn transmit_kernel_vc1_rt(&mut self, nw: usize, faulted: bool) -> Result<(), SimError> {
        for w in 0..nw {
            #[cfg(feature = "hotstats")]
            {
                self.st.transmit_words += 1;
            }
            let mut ready =
                self.st.k_owned.word(w) & self.st.k_has_input.word(w) & !self.st.k_full.word(w);
            if faulted {
                ready &= !self.st.k_dead.word(w);
            }
            while ready != 0 {
                let b = ready.trailing_zeros();
                ready &= ready - 1;
                let pl = (w * 64) as u32 + b;
                let ch = self.order[pl as usize];
                #[cfg(feature = "hotstats")]
                {
                    self.st.transmit_bits += 1;
                }
                debug_assert!(self.lane_ready(ch as usize, ch));
                let fb = self.move_flit(ch, ch as usize, pl)?;
                if fb != NO_FEEDBACK && (fb & PLANE_MASK) >> 6 == w as u32 {
                    debug_assert!(fb & PLANE_MASK > pl, "upstream behind the cursor");
                    let bit = 1u64 << (fb & 63);
                    if fb >> 31 != 0 {
                        ready |= bit;
                    } else {
                        ready &= !bit;
                    }
                }
            }
        }
        Ok(())
    }

    /// The `vcs > 1` twin of [`Self::transmit_kernel_vc1_rt`]: the same
    /// combine-once / patch-on-feedback cursor, consuming a whole
    /// `vcs`-aligned group per visit (one flit per channel per cycle).
    /// The ahead-patch argument is unchanged — the popped upstream lane
    /// belongs to a strictly-upstream *channel*, so its plane lands in a
    /// strictly later group than the one just consumed.
    fn transmit_kernel_vcn_rt(&mut self, nw: usize, faulted: bool) -> Result<(), SimError> {
        let vcs = self.vcs;
        let gmask = u64::MAX >> (64 - vcs as u32);
        for w in 0..nw {
            #[cfg(feature = "hotstats")]
            {
                self.st.transmit_words += 1;
            }
            let mut ready =
                self.st.k_owned.word(w) & self.st.k_has_input.word(w) & !self.st.k_full.word(w);
            if faulted {
                ready &= !self.st.k_dead.word(w);
            }
            while ready != 0 {
                let b = ready.trailing_zeros();
                let g0 = b & !(vcs as u32 - 1);
                let group = (ready >> g0) & gmask;
                ready &= !(gmask << g0);
                let pos = ((w * 64) as u32 + g0) >> self.vcs_shift;
                let ch = self.order[pos as usize];
                for vc in 0..vcs {
                    self.st.ready[vc] = (group >> vc) & 1 == 1;
                }
                #[cfg(feature = "hotstats")]
                {
                    self.st.transmit_bits += 1;
                }
                let Some(vc) = self.st.mux[ch as usize].select(&self.st.ready[..vcs]) else {
                    return Err(SimError::Internal {
                        what: "a ready lane must be selectable",
                    });
                };
                let fb =
                    self.move_flit(ch, ch as usize * vcs + vc, (w * 64) as u32 + g0 + vc as u32)?;
                if fb != NO_FEEDBACK && (fb & PLANE_MASK) >> 6 == w as u32 {
                    debug_assert!(fb & PLANE_MASK > (w * 64) as u32 + g0 + vcs as u32 - 1);
                    let bit = 1u64 << (fb & 63);
                    if fb >> 31 != 0 {
                        ready |= bit;
                    } else {
                        ready &= !bit;
                    }
                }
            }
        }
        Ok(())
    }

    /// Evaluate one maybe-ready position: move a flit if a lane of the
    /// channel is ready, otherwise clear the stale bit (the next
    /// readiness-creating event re-arms it).
    fn visit_channel(&mut self, pos: u32) -> Result<(), SimError> {
        let ch = self.order[pos as usize];
        if self.vcs == 1 {
            // Single-VC fast path: the round-robin mux over one lane
            // deterministically picks VC 0 and leaves its priority state
            // at its initial value, so skipping it is state-identical —
            // and the per-channel ready vector disappears.
            let li = ch as usize;
            if self.lane_ready(li, ch) {
                self.move_flit(ch, li, 0)?;
                return Ok(());
            }
            self.st.maybe_ready.clear(pos);
            return Ok(());
        }
        let base = ch as usize * self.vcs;
        let mut any = false;
        for vc in 0..self.vcs {
            let r = self.lane_ready(base + vc, ch);
            self.st.ready[vc] = r;
            any |= r;
        }
        if !any {
            self.st.maybe_ready.clear(pos);
            return Ok(());
        }
        let Some(vc) = self.st.mux[ch as usize].select(&self.st.ready[..self.vcs]) else {
            return Err(SimError::Internal {
                what: "a ready lane must be selectable",
            });
        };
        self.move_flit(ch, base + vc, 0)?;
        Ok(())
    }

    #[inline]
    fn lane_ready(&self, li: usize, ch: ChannelId) -> bool {
        let owner = self.st.lane_owner[li];
        if owner == NONE {
            return false;
        }
        // A dead lane transmits nothing. With `fault_abort` on, owned
        // lanes are never dead (casualties are aborted at the epoch
        // boundary); this check matters for the wedge-the-network test
        // knob and costs one predictable branch on the fault-free path.
        if let Some(f) = self.faults {
            if f.epochs[self.epoch].dead_lane[li] {
                return false;
            }
        }
        let has_input = match self.st.lane_upstream[li] {
            Upstream::Exhausted => false,
            Upstream::Source(_) => {
                self.st.pkt_sent[owner as usize] < self.st.pkt_len[owner as usize]
            }
            Upstream::Lane(u) => !self.st.lane_bufs.is_empty(u as usize),
        };
        has_input && (self.dst_is_node[ch as usize] || !self.st.lane_bufs.is_full(li))
    }

    /// Move one flit across `ch` into lane `li`. `pl` is `li`'s plane
    /// index — the kernel sweep already knows it (it *is* the bit
    /// position just served), so passing it down spares the kern-mode
    /// maintenance a permutation lookup per touch of `li`'s own masks.
    /// Scalar callers pass 0; the value is only read when `kern` is set.
    ///
    /// Returns the cursor-patch feedback the `vcs == 1` reverse-topo
    /// kernel consumes: [`NO_FEEDBACK`], or the popped upstream lane's
    /// plane in the low bits with its recomputed ready state in bit 31.
    /// Only computed when the kernels own single-lane channels; every
    /// other caller discards it.
    #[inline]
    fn move_flit(&mut self, ch: ChannelId, li: usize, pl: u32) -> Result<u32, SimError> {
        debug_assert!(!self.kern || pl == self.plane(li));
        let p = self.st.lane_owner[li];
        let upstream = self.st.lane_upstream[li];
        let pi = p as usize;
        let len = self.st.pkt_len[pi];
        let mut fb = NO_FEEDBACK;
        let flit = match upstream {
            Upstream::Source(node) => {
                let f = FlitRef {
                    packet: p,
                    index: self.st.pkt_sent[pi],
                };
                self.st.pkt_sent[pi] += 1;
                if self.st.pkt_sent[pi] == len {
                    self.st.sources[node as usize].injecting = NONE;
                    self.st.lane_upstream[li] = Upstream::Exhausted;
                    if self.kern {
                        self.st.k_has_input.clear(pl);
                    }
                    if !self.st.sources[node as usize].queue.is_empty() {
                        self.st.injectable.set(node);
                    }
                }
                f
            }
            Upstream::Lane(u) => match self.st.lane_bufs.pop(u as usize) {
                Some(f) => {
                    if self.kern {
                        // The pop leaves `u`'s buffer non-full; if it
                        // also drained it, this lane's input is gone.
                        let pu = self.plane(u as usize);
                        self.st.k_full.clear(pu);
                        fb = pu;
                        if self.st.lane_bufs.is_empty(u as usize) {
                            self.st.k_has_input.clear(pl);
                        }
                    } else {
                        // The pop freed a buffer slot in `u`, which may
                        // be the one thing that was blocking `u`'s own
                        // transmit.
                        self.st.maybe_ready.set(self.order_pos[u as usize / self.vcs]);
                    }
                    f
                }
                None => {
                    return Err(SimError::Internal {
                        what: "ready lane lost its upstream flit",
                    })
                }
            },
            Upstream::Exhausted => {
                return Err(SimError::Internal {
                    what: "exhausted lanes are never ready",
                })
            }
        };
        debug_assert_eq!(flit.packet, p, "foreign flit in the worm's upstream buffer");
        self.st.moved += 1;
        if !self.st.util.is_empty() && self.measuring() {
            self.st.util[ch as usize] += 1;
        }
        let is_tail = flit.is_tail(len);
        if is_tail {
            if let Upstream::Lane(u) = upstream {
                self.release_lane(u);
            }
            self.st.lane_upstream[li] = Upstream::Exhausted;
            if self.kern {
                self.st.k_has_input.clear(pl);
            }
        }
        if self.dst_is_node[ch as usize] {
            // The cold packet meta is only needed on the ejection path
            // (delivery accounting and completion); deferring the load
            // here keeps the ~80% of moves that just forward a flit off
            // the cold array entirely.
            let PktMeta {
                gen_time, measured, ..
            } = self.st.pkt_meta[pi];
            // Consumption: the destination absorbs the flit immediately.
            self.st.pkt_delivered[pi] += 1;
            // Count flits of *measured* packets, matching delivered_pkts
            // (see the module header's measurement-accounting notes).
            if measured {
                self.st.delivered_flits += 1;
            }
            if is_tail {
                self.release_lane(li as u32);
                self.complete_packet(p, gen_time, measured, len)?;
            }
        } else if self.st.lane_bufs.push(li, flit) {
            if self.kern {
                if self.st.lane_bufs.is_full(li) {
                    self.st.k_full.set(pl);
                }
                let d = self.st.lane_downstream[li];
                if d != NONE {
                    self.st.k_has_input.set(self.plane(d as usize));
                }
                if flit.is_header() {
                    // A header flit only ever lands in the worm's current
                    // head lane (the downstream consumer that pops it
                    // exists only after a later claim moves the head), so
                    // this push is exactly the advance-request-becomes-
                    // true event — and this branch never runs for the
                    // ejection channel.
                    debug_assert_eq!(self.st.pkt_head_lane[pi], li as u32);
                    self.st.k_advance.set(p);
                }
            } else {
                // The flit just buffered in `li` is input for the
                // downstream lane that pulls from `li` (if the worm has
                // advanced past it).
                let d = self.st.lane_downstream[li];
                if d != NONE {
                    self.st.maybe_ready.set(self.order_pos[d as usize / self.vcs]);
                }
            }
        } else {
            return Err(SimError::Internal {
                what: "flit moved into a full lane buffer",
            });
        }
        if fb != NO_FEEDBACK {
            // Recompute the popped upstream lane's ready bit for the
            // cursor patch: the pop just cleared its full-bit, it is
            // still owned unless the tail released it (and a released
            // lane had no input left either way), so readiness reduces
            // to its own input being available — plus aliveness under an
            // active fault plan.
            if !is_tail
                && self.st.k_has_input.contains(fb)
                && !(self.faults.is_some() && self.st.k_dead.contains(fb))
            {
                fb |= 1 << 31;
            }
        }
        Ok(fb)
    }

    fn release_lane(&mut self, li: u32) {
        debug_assert!(
            self.st.lane_bufs.is_empty(li as usize),
            "releasing a lane with a buffered flit"
        );
        debug_assert_ne!(self.st.lane_owner[li as usize], NONE, "double lane release");
        self.st.lane_owner[li as usize] = NONE;
        self.st.lane_upstream[li as usize] = Upstream::Exhausted;
        if self.kern {
            let pl = self.plane(li as usize);
            self.st.k_owned.clear(pl);
            self.st.k_has_input.clear(pl);
            // `k_full` needs no touch: the buffer is empty (asserted
            // above), so the last pop already cleared it.
        }
        let ch = li as usize / self.vcs;
        self.st.owned_lanes[ch] -= 1;
        if self.st.owned_lanes[ch] == 0 {
            self.st.occupied.clear(self.order_pos[ch]);
        }
        if let Some(xbars) = &mut self.st.crossbars {
            let c = self.net.channel(ch as u32);
            if let Endpoint::Switch { sw, side, port } = c.dst {
                let code = if self.net.kind.is_bidirectional() {
                    let k = self.net.geometry.k() as u8;
                    match side {
                        Side::Left => port,
                        Side::Right => k + port,
                    }
                } else {
                    port * self.net.kind.dilation() + c.lane
                };
                // The connection exists only if the worm had advanced past
                // this switch; release is a no-op otherwise.
                let _ = xbars[sw as usize].release_input(code);
            }
        }
    }

    fn complete_packet(
        &mut self,
        p: u32,
        gen_time: u64,
        measured: bool,
        len: u32,
    ) -> Result<(), SimError> {
        let done = self.st.now + 1; // flit arrives at the end of this cycle
        if measured {
            let lat = (done - gen_time) as f64;
            self.st.latency.push(lat);
            self.st.latency_hist.record(done - gen_time);
            self.st.latency_batches.push(lat);
            self.st.delivered_pkts += 1;
        }
        let tag = self.st.pkt_meta[p as usize].tag;
        if let Traffic::Chained {
            msgs,
            dependents,
            release,
            remaining,
            overhead,
        } = &mut self.traffic
        {
            *remaining -= 1;
            for &d in &dependents[tag as usize] {
                debug_assert!(release[d as usize].is_none(), "double release");
                let t = (done + *overhead).max(msgs[d as usize].earliest);
                release[d as usize] = Some(t);
                self.st.releases.push(Reverse((t, d)));
            }
        }
        if let Some(tr) = &mut self.st.trace {
            tr.events.push(TraceEvent::Delivered { tag, time: done });
        }
        if let Some(log) = &mut self.st.deliveries {
            let meta = &self.st.pkt_meta[p as usize];
            log.push(Delivery {
                src: meta.src,
                dst: meta.dst,
                len,
                gen_time,
                done_time: done,
                tag,
            });
        }
        let Some(idx) = self.st.active.iter().position(|&a| a == p) else {
            return Err(SimError::Internal {
                what: "completing an inactive packet",
            });
        };
        self.st.active.swap_remove(idx);
        if self.kern {
            // Already clear (the bit dies with the claim of the ejection
            // lane), but slot-recycling hygiene is cheap to make total.
            self.st.k_advance.clear(p);
        }
        self.st.free_slots.push(p);
        Ok(())
    }

    // ---- fault handling ----------------------------------------------

    /// Advance the fault epoch to match `now` (several boundaries may
    /// pass at once after a fast-forward jump). On a change, with
    /// `fault_abort` on, sweep the active packets and abort every
    /// casualty: worms holding a now-dead lane, and worms whose head has
    /// no live continuation under the new masked table.
    fn advance_epoch(&mut self) -> Result<(), SimError> {
        let Some(f) = self.faults else { return Ok(()) };
        let mut changed = false;
        while self.epoch + 1 < f.epochs.len() && f.epochs[self.epoch + 1].start <= self.st.now {
            self.epoch += 1;
            changed = true;
        }
        if !changed {
            return Ok(());
        }
        // A boundary can resurrect lanes (dead in the old epoch, live in
        // the new one), silently restoring readiness the incremental
        // triggers never saw. The kernel path just rebuilds its dead
        // mask — readiness is recomputed from the masks on every word
        // read, so resurrection needs no re-arming; the scalar path
        // conservatively re-arms every occupied channel.
        if self.kern {
            self.rebuild_dead_mask();
        } else {
            self.st.maybe_ready.copy_from(&self.st.occupied);
        }
        if !self.cfg.fault_abort {
            return Ok(());
        }
        let ep = &f.epochs[self.epoch];
        // Identify casualties first (ascending slot order for
        // determinism), then abort — aborting mutates `active`.
        let mut victims: Vec<u32> = Vec::new();
        for &p in &self.st.active {
            let pi = p as usize;
            let head = self.st.pkt_head_lane[pi];
            let head_ch = (head as usize / self.vcs) as u32;
            let chain_dead = self.chain_holds_dead_lane(p, &ep.dead_lane);
            let disconnected = !self.dst_is_node[head_ch as usize]
                && ep
                    .routes
                    .candidates(head_ch, self.st.pkt_meta[pi].dst)
                    .is_empty();
            if chain_dead || disconnected {
                victims.push(p);
            }
        }
        victims.sort_unstable();
        for p in victims {
            self.abort_packet(p)?;
        }
        // Epoch changes (and any aborts they caused) are progress as far
        // as the watchdog is concerned: the network's constraints just
        // changed, so give the new epoch a full window.
        self.st.last_progress = self.st.now;
        Ok(())
    }

    /// Whether any lane in `p`'s held chain (head back to tail) is dead.
    fn chain_holds_dead_lane(&self, p: u32, dead_lane: &[bool]) -> bool {
        let mut li = self.st.pkt_head_lane[p as usize];
        loop {
            if dead_lane[li as usize] {
                return true;
            }
            match self.st.lane_upstream[li as usize] {
                Upstream::Lane(u) => li = u,
                Upstream::Source(_) | Upstream::Exhausted => return false,
            }
        }
    }

    /// Abort-and-drain: walk `p`'s lane chain from head to tail, drain
    /// every buffered flit, release every lane, restore the source
    /// injector, and retire the slot. Debug builds check conservation of
    /// flits: every flit the source emitted was either delivered or
    /// drained here.
    fn abort_packet(&mut self, p: u32) -> Result<(), SimError> {
        let pi = p as usize;
        let mut li = self.st.pkt_head_lane[pi];
        let mut drained: u32 = 0;
        loop {
            if self.st.lane_owner[li as usize] != p {
                return Err(SimError::Internal {
                    what: "aborting a worm over a lane it does not own",
                });
            }
            while let Some(flit) = self.st.lane_bufs.pop(li as usize) {
                debug_assert_eq!(flit.packet, p, "foreign flit drained during abort");
                drained += 1;
            }
            if self.kern {
                self.st.k_full.clear(self.plane(li as usize));
            }
            let up = self.st.lane_upstream[li as usize];
            self.release_lane(li);
            match up {
                Upstream::Lane(u) => li = u,
                Upstream::Source(node) => {
                    self.st.sources[node as usize].injecting = NONE;
                    if !self.st.sources[node as usize].queue.is_empty() {
                        self.st.injectable.set(node);
                    }
                    break;
                }
                Upstream::Exhausted => break,
            }
        }
        debug_assert_eq!(
            self.st.pkt_sent[pi],
            self.st.pkt_delivered[pi] + drained,
            "flits leaked during abort-and-drain"
        );
        if self.kern {
            self.st.k_advance.clear(p);
        }
        if self.st.pkt_meta[pi].measured {
            self.st.aborted_pkts += 1;
        }
        if let Some(tr) = &mut self.st.trace {
            tr.events.push(TraceEvent::Aborted {
                tag: self.st.pkt_meta[pi].tag,
                time: self.st.now,
            });
        }
        let Some(idx) = self.st.active.iter().position(|&a| a == p) else {
            return Err(SimError::Internal {
                what: "aborting an inactive packet",
            });
        };
        self.st.active.swap_remove(idx);
        self.st.free_slots.push(p);
        Ok(())
    }

    // ---- no-progress watchdog ----------------------------------------

    /// Build the structured diagnostic the watchdog terminates with:
    /// every active packet and its position, the held channels, and — via
    /// a cycle search on the packet wait-for graph (packet → owners of
    /// the lanes it wants next) — the circular wait, if one exists.
    fn diagnose_stall(&mut self) -> StallDiagnostic {
        let stalled: Vec<StalledPacket> = self
            .st
            .active
            .iter()
            .map(|&p| {
                let pi = p as usize;
                let meta = self.st.pkt_meta[pi];
                StalledPacket {
                    src: meta.src,
                    dst: meta.dst,
                    head_channel: (self.st.pkt_head_lane[pi] as usize / self.vcs) as u32,
                    sent: self.st.pkt_sent[pi],
                    len: self.st.pkt_len[pi],
                    delivered: self.st.pkt_delivered[pi],
                }
            })
            .collect();
        let mut held_channels = Vec::new();
        self.st
            .occupied
            .for_each(|pos| held_channels.push(self.order[pos as usize]));
        held_channels.sort_unstable();
        // Wait-for graph over indices into `stalled`. An edge i → j means
        // packet i's header wants a lane of a candidate channel currently
        // owned by packet j. `find_cycle` works on any dense u32 digraph.
        let mut slot_to_idx = vec![u32::MAX; self.st.pkt_meta.len()];
        for (i, &p) in self.st.active.iter().enumerate() {
            slot_to_idx[p as usize] = i as u32;
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.st.active.len()];
        let mut cand_buf = Vec::new();
        for (i, &p) in self.st.active.iter().enumerate() {
            let pi = p as usize;
            let head_ch = (self.st.pkt_head_lane[pi] as usize / self.vcs) as u32;
            if self.dst_is_node[head_ch as usize] {
                continue;
            }
            let dst = self.st.pkt_meta[pi].dst;
            let cands: &[ChannelId] = match (self.faults, self.router) {
                (Some(f), _) => f.epochs[self.epoch].routes.candidates(head_ch, dst),
                (None, Router::Table(table)) => table.candidates(head_ch, dst),
                (None, Router::Logic(logic)) => {
                    cand_buf.clear();
                    logic.candidates(
                        self.net,
                        self.st.pkt_meta[pi].src,
                        dst,
                        head_ch,
                        &mut cand_buf,
                    );
                    &cand_buf
                }
            };
            for &c in cands {
                for vc in 0..self.vcs {
                    let owner = self.st.lane_owner[c as usize * self.vcs + vc];
                    if owner != NONE && owner != p {
                        let j = slot_to_idx[owner as usize];
                        if j != u32::MAX && !adj[i].contains(&j) {
                            adj[i].push(j);
                        }
                    }
                }
            }
        }
        StallDiagnostic {
            cycle: self.st.now,
            window: self.cfg.watchdog_window,
            stalled,
            held_channels,
            suspected_cycle: find_cycle(&adj),
        }
    }

    // ---- event-horizon fast-forward ----------------------------------

    /// Whether no phase can do any work this cycle: no active worms and
    /// no queued messages — everything waits on a future traffic event.
    #[inline]
    fn quiescent(&self) -> bool {
        let q = self.st.active.is_empty() && self.st.queued_msgs == 0;
        // Quiescence implies empty occupancy sets; the word-level
        // emptiness scans keep this lockstep/fast-forward gate honest
        // without iterating members.
        debug_assert!(
            !q || (self.st.injectable.is_empty_set() && self.st.occupied.is_empty_set()),
            "quiescent run with live occupancy bits"
        );
        q
    }

    /// The fast-forward jump target for a quiescent lane: the earliest
    /// pending traffic-event key, clamped to the horizon. `None` means a
    /// drained finite source — no jump; one last cycle must run so the
    /// drain break ends the run at the same count as the slow path. A
    /// silent Poisson workload stays quiescent forever, so its target is
    /// the horizon itself.
    fn ff_target(&self) -> Option<u64> {
        let next = match &self.traffic {
            Traffic::Poisson(_) => self.st.arrivals.peek().map(|&Reverse((t, _))| t),
            Traffic::Scripted { msgs, next } => msgs.get(*next).map(|m| m.time),
            Traffic::Chained { .. } => self.st.releases.peek().map(|&Reverse((t, _))| t),
        };
        match next {
            Some(t) => Some(t.min(self.st.end)),
            None => match self.traffic {
                Traffic::Poisson(_) => Some(self.st.end),
                _ => None,
            },
        }
    }

    /// Jump a quiescent run straight to `target` (which must not exceed
    /// the run's own [`ff_target`](Self::ff_target) — the lockstep
    /// driver passes the *minimum* over its live lanes, a scalar run its
    /// own target). Returns the number of cycles skipped (0 = no jump;
    /// run the cycle normally).
    ///
    /// **Bitwise-identity argument.** In a quiescent cycle the three
    /// phases make *zero* RNG draws (the request shuffle iterates
    /// `(1..len).rev()` over an empty list, heap peeks draw nothing) and
    /// the only observable effect is one mean-queue sample of zero while
    /// measuring. The jump therefore adds exactly those samples — the
    /// cycles in `[max(now, warmup), target)` join `queue_cycles` while
    /// the zero queue leaves `queue_sum` untouched — and nothing else,
    /// so the report is bit-identical to the cycle-by-cycle path
    /// (enforced by the fast-forward-on/off differential tests), and a
    /// jump split into several shorter jumps — which is how a lockstep
    /// lane reaches its own horizon through repeated fleet-minimum jumps
    /// — lands in exactly the same state as one long jump. The jump
    /// never passes an event: the target is capped by the earliest
    /// heap/script key, and `generate_arrivals` debug-asserts every
    /// matured entry fires on its exact cycle.
    fn jump_to(&mut self, target: u64) -> u64 {
        debug_assert!(self.quiescent());
        debug_assert!(
            self.ff_target().is_some_and(|t| target <= t),
            "fast-forward jumped past the lane's own event horizon"
        );
        if target <= self.st.now {
            return 0;
        }
        let skipped = target - self.st.now;
        let measured_from = self.st.now.max(self.cfg.warmup);
        if target > measured_from {
            self.st.queue_cycles += target - measured_from;
        }
        self.st.now = target;
        skipped
    }

    /// Jump over a fully quiescent stretch to this run's own event
    /// horizon (the scalar path; lockstep lanes jump to the fleet
    /// minimum instead).
    fn fast_forward(&mut self) -> u64 {
        match self.ff_target() {
            Some(t) => self.jump_to(t),
            None => 0,
        }
    }

    // ---- main loop ----------------------------------------------------

    /// One full simulated cycle — fault-epoch catch-up, the three
    /// phases, the no-progress watchdog, the mean-queue sample, and the
    /// clock increment. The shared loop body of the scalar run and the
    /// lockstep driver; returns `true` when a finite traffic source has
    /// fully drained (the caller ends the run).
    fn cycle_body(&mut self, probe: &mut HotProbe) -> Result<bool, SimError> {
        // Bring the fault epoch up to date *before* the phases so the
        // whole cycle — injection refusal, routing, transmission —
        // sees one consistent mask (a fast-forward jump may cross
        // several boundaries at once; casualties are aborted here).
        if self.faults.is_some() {
            self.advance_epoch()?;
        }
        probe.mark();
        self.generate_arrivals();
        probe.arrivals_done();
        self.allocate()?;
        probe.allocate_done();
        self.transmit()?;
        probe.transmit_done();
        // No-progress watchdog: a full window of cycles with active
        // packets but zero flit movement can only mean a wedged
        // network (in a healthy run the downstream-most flit of some
        // worm always moves — see `EngineConfig::watchdog_window`).
        let watchdog = self.cfg.watchdog_window;
        if watchdog > 0 {
            if self.st.moved == 0 && !self.st.active.is_empty() {
                if self.st.now - self.st.last_progress >= watchdog {
                    return Err(SimError::NoProgress(Box::new(self.diagnose_stall())));
                }
            } else {
                self.st.last_progress = self.st.now;
            }
            self.st.moved = 0;
        }
        if self.measuring() {
            self.st.queue_sum += self.st.queued_msgs;
            self.st.queue_cycles += 1;
        }
        // Sampled mask-exactness audit (debug builds only): maintenance
        // bugs persist in the masks, so a periodic full check catches
        // them without multiplying test wall time by the lane count.
        #[cfg(debug_assertions)]
        if self.st.now & 63 == 0 {
            self.check_kernel_masks();
        }
        self.st.now += 1;
        Ok(self.finite() && self.st.active.is_empty() && self.drained())
    }

    /// Whether the traffic source is finite (scripted/chained): the run
    /// ends at drain rather than the horizon.
    #[inline]
    fn finite(&self) -> bool {
        !matches!(self.traffic, Traffic::Poisson(_))
    }

    fn run(mut self) -> Result<SimReport, SimError> {
        let ff = self.cfg.fast_forward;
        let budget = self.cfg.budget;
        // Wall-clock budgets pay for an Instant only when armed; the
        // elapsed check runs every 1024 executed cycles so it stays
        // invisible in the hot loop — and additionally after every
        // fast-forward jump, because a single jump can swallow an
        // arbitrarily long simulated stretch: a near-quiescent run
        // would otherwise overshoot `max_wall_ms` by whole jumps
        // between two counter-gated checks.
        let wall_start = (budget.max_wall_ms > 0).then(std::time::Instant::now);
        let mut executed: u64 = 0;
        let mut probe = HotProbe::new();
        while self.st.now < self.st.end {
            // Budget checks sit at the loop top so a fast-forward jump
            // that lands exactly on the horizon still completes normally
            // (the `while` condition wins); a jump *past* a cycle limit
            // but short of the horizon trips here on the next iteration.
            if budget.max_cycles > 0 && self.st.now >= budget.max_cycles {
                probe.absorb_masks(self.st);
                probe.flush();
                return Err(self.budget_cut(BudgetKind::Cycles, budget.max_cycles));
            }
            if let Some(start) = wall_start {
                if executed & 0x3FF == 0
                    && start.elapsed().as_millis() as u64 >= budget.max_wall_ms
                {
                    probe.absorb_masks(self.st);
                    probe.flush();
                    return Err(self.budget_cut(BudgetKind::WallClock, budget.max_wall_ms));
                }
                executed += 1;
            }
            if ff && self.quiescent() {
                let skipped = self.fast_forward();
                probe.skipped(skipped);
                if skipped > 0 {
                    if let Some(start) = wall_start {
                        if start.elapsed().as_millis() as u64 >= budget.max_wall_ms {
                            probe.absorb_masks(self.st);
                            probe.flush();
                            return Err(
                                self.budget_cut(BudgetKind::WallClock, budget.max_wall_ms)
                            );
                        }
                    }
                }
                if self.st.now >= self.st.end {
                    break;
                }
            }
            if self.cycle_body(&mut probe)? {
                break;
            }
        }
        probe.absorb_masks(self.st);
        probe.flush();
        Ok(self.finish())
    }

    /// Package the current state as a [`SimError::BudgetExceeded`]: the
    /// same finalization path as a completed run, so the partial report
    /// is a valid truncated sample (rates normalized over the cycles
    /// actually measured).
    fn budget_cut(self, kind: BudgetKind, limit: u64) -> SimError {
        let spent_cycles = self.st.now;
        SimError::BudgetExceeded(Box::new(PartialReport {
            kind,
            limit,
            spent_cycles,
            report: self.finish(),
        }))
    }

    /// Whether a finite (scripted/chained) traffic source has nothing left
    /// to inject.
    fn drained(&self) -> bool {
        if self.st.queued_msgs > 0 {
            return false;
        }
        match &self.traffic {
            Traffic::Poisson(_) => false,
            Traffic::Scripted { msgs, next } => *next == msgs.len(),
            Traffic::Chained { remaining, .. } => *remaining == 0,
        }
    }

    fn finish(self) -> SimReport {
        let st = self.st;
        let n_nodes = self.net.geometry.nodes() as f64;
        // Normalize by the cycles actually measured, not the configured
        // window: finite runs drain early (module header, "Measurement
        // accounting").
        let measured_cycles = st.now.saturating_sub(self.cfg.warmup);
        let window = measured_cycles as f64;
        let per_node_cycle = |flits: u64| {
            if measured_cycles == 0 {
                0.0
            } else {
                flits as f64 / (n_nodes * window)
            }
        };
        SimReport {
            cycles: st.now,
            measured_cycles,
            generated_packets: st.generated_pkts,
            delivered_packets: st.delivered_pkts,
            offered_flits_per_node_cycle: per_node_cycle(st.generated_flits),
            accepted_flits_per_node_cycle: per_node_cycle(st.delivered_flits),
            mean_latency_cycles: st.latency.mean(),
            latency_ci95_cycles: st.latency_batches.ci95_half_width(),
            p50_latency_cycles: st.latency_hist.quantile(0.50),
            p95_latency_cycles: st.latency_hist.quantile(0.95),
            p99_latency_cycles: st.latency_hist.quantile(0.99),
            max_latency_cycles: st.latency_hist.max(),
            mean_queue: if st.queue_cycles == 0 {
                0.0
            } else {
                st.queue_sum as f64 / st.queue_cycles as f64
            },
            max_queue: st.max_queue,
            sustainable: st.max_queue <= self.cfg.queue_limit,
            steady: st.delivered_flits as f64 >= 0.95 * st.generated_flits as f64,
            in_flight_at_end: st.active.len() as u64 + st.queued_msgs,
            aborted_packets: st.aborted_pkts,
            undeliverable_packets: st.undeliverable_pkts,
            channel_utilization: if st.util.is_empty() {
                None
            } else {
                Some(
                    st.util
                        .iter()
                        .map(|&u| if measured_cycles == 0 { 0.0 } else { u as f64 / window })
                        .collect(),
                )
            },
            deliveries: st.deliveries.take(),
            trace: st.trace.take(),
        }
    }
}

/// One-shot run shared by the free functions: fresh state, dynamic
/// routing (no table build), per-call order computation — the behaviour
/// (and bit-exact output) the per-run API always had.
fn run_oneshot(
    net: &NetworkGraph,
    cfg: &EngineConfig,
    traffic: Traffic<'_>,
) -> Result<SimReport, SimError> {
    cfg.validate()?;
    if let Traffic::Poisson(wl) = &traffic {
        if wl.geometry() != net.geometry {
            return Err(SimError::GeometryMismatch {
                what: "workload",
                expected: net.geometry,
                got: wl.geometry(),
            });
        }
    }
    let (order, order_pos, dst_is_node) = order_parts(net, cfg);
    let mut st = EngineState::new();
    run_prepared(
        net,
        cfg,
        Router::Logic(RouteLogic::for_kind(net.kind)),
        &order,
        &order_pos,
        &dst_is_node,
        traffic,
        None,
        cfg.seed,
        &mut st,
    )
}

/// Run a stochastic (Poisson-workload) simulation.
pub fn run_simulation(
    net: &NetworkGraph,
    workload: &Workload,
    cfg: &EngineConfig,
) -> Result<SimReport, SimError> {
    run_oneshot(net, cfg, Traffic::Poisson(workload))
}

/// Run a deterministic scripted simulation: the given messages are
/// injected at fixed times; the run ends when all are delivered (or the
/// configured horizon is reached). The report's `deliveries` field records
/// per-message completions in completion order.
///
/// This is a thin wrapper compiling a [`Script`] per call; run-many
/// callers should compile once and use [`CompiledNet::run_script`].
pub fn run_scripted(
    net: &NetworkGraph,
    msgs: &[ScriptedMsg],
    cfg: &EngineConfig,
) -> Result<SimReport, SimError> {
    let script = Script::compile(net.geometry, msgs)?;
    run_oneshot(
        net,
        cfg,
        Traffic::Scripted {
            msgs: &script.msgs,
            next: 0,
        },
    )
}

/// Run a deterministic simulation of *dependent* messages: entry `i`
/// becomes available `overhead` cycles after the delivery of its `after`
/// parent (or at `earliest` for roots). Dependencies must point to
/// earlier entries, which keeps the graph acyclic. The run ends when
/// every message is delivered; `deliveries[..].tag` is the entry index.
///
/// This is the substrate for *software multicast* (paper §6): a multicast
/// is a tree of chained unicasts, with `overhead` modelling the software
/// latency at each relay node.
///
/// This is a thin wrapper compiling a [`Chain`] per call; run-many
/// callers should compile once and use [`CompiledNet::run_chain`].
pub fn run_chained(
    net: &NetworkGraph,
    msgs: &[ChainedMsg],
    overhead: u64,
    cfg: &EngineConfig,
) -> Result<SimReport, SimError> {
    let chain = Chain::compile(net.geometry, msgs, overhead)?;
    run_oneshot(
        net,
        cfg,
        Traffic::Chained {
            msgs: &chain.msgs,
            dependents: &chain.dependents,
            release: chain.roots.clone(),
            remaining: chain.msgs.len(),
            overhead,
        },
    )
}
