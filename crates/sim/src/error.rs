//! Typed engine errors and the no-progress stall diagnostic.
//!
//! The engine's error surface used to be `Result<_, String>` for
//! validation plus `panic!`/`expect` for everything that went wrong
//! mid-run. [`SimError`] replaces both: malformed configurations,
//! geometry mismatches, fault-plan problems, watchdog trips, and violated
//! internal invariants all surface as typed `Err` values through
//! `run_prepared` and the sweep layers, so a production caller can match
//! on the failure class instead of parsing prose — and a wedged network
//! terminates with a [`StallDiagnostic`] instead of spinning forever.
//!
//! Conversions are deliberately one-way: `From<SimError> for String`
//! lets legacy `Result<_, String>` surfaces (examples, the sweep
//! tables) degrade a typed error to its display form at the boundary,
//! but there is **no** `From<String> for SimError` — every producer
//! inside the engine constructs a concrete variant, so downstream
//! consumers (the `minnetd` wire protocol serializes errors as
//! structured JSON) never receive a stringly-typed grab bag.

use crate::config::SimReport;
use minnet_topology::{ChannelId, Geometry};

/// Everything a simulation run (or its preparation) can fail with.
#[derive(Clone, Debug)]
pub enum SimError {
    /// Invalid engine/workload/network configuration (the catch-all for
    /// validation messages, including ones converted from `String`).
    Config(String),
    /// A workload/script/chain compiled for one geometry was run on a
    /// network of another.
    GeometryMismatch {
        /// What carried the wrong geometry ("workload", "script", …).
        what: &'static str,
        /// The network's geometry.
        expected: Geometry,
        /// The geometry the artifact was compiled for.
        got: Geometry,
    },
    /// Routing-table construction or fault-masking failure.
    Routing(String),
    /// Fault-plan validation or compilation failure.
    Fault(String),
    /// The no-progress watchdog fired: a full window of cycles passed
    /// with active packets but zero flit movement.
    NoProgress(Box<StallDiagnostic>),
    /// A [`crate::RunBudget`] limit was hit before the run's horizon.
    /// Unlike every other variant this is not a *lost* run: the boxed
    /// [`PartialReport`] carries the statistics accumulated up to the
    /// cut, so campaign layers can keep the point as partial data.
    BudgetExceeded(Box<PartialReport>),
    /// An engine invariant was violated — a bug surfaced as an error
    /// instead of a panic.
    Internal {
        /// Which invariant broke.
        what: &'static str,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(msg) => write!(f, "{msg}"),
            SimError::GeometryMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "{what} geometry does not match the network \
                 (network {expected:?}, {what} {got:?})"
            ),
            SimError::Routing(msg) => write!(f, "routing: {msg}"),
            SimError::Fault(msg) => write!(f, "fault plan: {msg}"),
            SimError::NoProgress(d) => write!(f, "{d}"),
            SimError::BudgetExceeded(p) => write!(f, "{p}"),
            SimError::Internal { what } => {
                write!(f, "engine invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for SimError {
    /// Watchdog trips and budget cuts chain to their structured payloads
    /// ([`StallDiagnostic`] / [`PartialReport`], both `Error` themselves),
    /// so `anyhow`-style cause walks reach the diagnostic without
    /// matching on the enum.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::NoProgress(d) => Some(&**d),
            SimError::BudgetExceeded(p) => Some(&**p),
            _ => None,
        }
    }
}

impl From<SimError> for String {
    fn from(e: SimError) -> String {
        e.to_string()
    }
}

/// Which [`crate::RunBudget`] limit cut a run short.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    /// `max_cycles` was reached: deterministic, same cut on every host.
    Cycles,
    /// `max_wall_ms` was reached: host-dependent, checked every 1024
    /// executed cycles **and after every fast-forward jump that skipped
    /// cycles** — a near-quiescent run executes almost no cycles, so
    /// without the per-jump check an FF-dominated run could overshoot
    /// the wall limit by arbitrarily many jumps.
    WallClock,
}

/// The statistics a budget-cut run accumulated before it was stopped.
///
/// The embedded [`SimReport`] is produced by the same finalization path
/// as a completed run — rates are normalized over the cycles actually
/// measured — so a partial report is a *valid but truncated* sample,
/// not garbage. Campaign layers surface it as a `Partial` point rather
/// than discarding the work.
#[derive(Clone, Debug)]
pub struct PartialReport {
    /// Which limit fired.
    pub kind: BudgetKind,
    /// The configured limit that fired (cycles or milliseconds).
    pub limit: u64,
    /// Simulated cycles executed when the run was cut.
    pub spent_cycles: u64,
    /// Statistics accumulated up to the cut.
    pub report: SimReport,
}

impl std::error::Error for PartialReport {}

impl std::fmt::Display for PartialReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            BudgetKind::Cycles => write!(
                f,
                "run budget exceeded: cycle limit {} hit at cycle {} \
                 ({} packets delivered)",
                self.limit, self.spent_cycles, self.report.delivered_packets
            ),
            BudgetKind::WallClock => write!(
                f,
                "run budget exceeded: wall-clock limit {} ms hit at cycle {} \
                 ({} packets delivered)",
                self.limit, self.spent_cycles, self.report.delivered_packets
            ),
        }
    }
}

/// One stalled packet in a [`StallDiagnostic`].
#[derive(Clone, Copy, Debug)]
pub struct StalledPacket {
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Channel the header currently sits on.
    pub head_channel: ChannelId,
    /// Flits the source has emitted so far.
    pub sent: u32,
    /// Total length in flits.
    pub len: u32,
    /// Flits already consumed at the destination.
    pub delivered: u32,
}

/// The structured report the no-progress watchdog terminates with: which
/// packets were stuck where, which channels they held, and — when the
/// stall is a genuine circular wait rather than a dead-channel block — a
/// cycle in the packet wait-for graph.
#[derive(Clone, Debug)]
pub struct StallDiagnostic {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// The configured zero-movement window that elapsed.
    pub window: u64,
    /// Every active packet at the moment the watchdog fired.
    pub stalled: Vec<StalledPacket>,
    /// Channels with at least one owned lane, ascending.
    pub held_channels: Vec<ChannelId>,
    /// A cycle in the wait-for graph (packet → owners of the lanes it
    /// wants), as indices into `stalled`; `None` when the blockage is
    /// acyclic (e.g. a worm parked on or behind a dead channel).
    pub suspected_cycle: Option<Vec<u32>>,
}

impl StallDiagnostic {
    /// A multi-line rendering for terminals and verdict reports — one
    /// line per stalled packet, the held channels, and the suspected
    /// wait cycle — where the single-line [`std::fmt::Display`] form
    /// would wrap unreadably.
    pub fn detail(&self) -> String {
        use std::fmt::Write;
        let mut out = format!(
            "no progress for {} cycles at cycle {}: {} stalled packet(s) \
             holding {} channel(s)",
            self.window,
            self.cycle,
            self.stalled.len(),
            self.held_channels.len()
        );
        for (i, p) in self.stalled.iter().enumerate() {
            let _ = write!(
                out,
                "\n  packet {i}: {}→{} at channel {} ({} of {} flits sent, {} delivered)",
                p.src, p.dst, p.head_channel, p.sent, p.len, p.delivered
            );
        }
        if !self.held_channels.is_empty() {
            let _ = write!(out, "\n  held channels: {:?}", self.held_channels);
        }
        if let Some(cycle) = &self.suspected_cycle {
            let _ = write!(out, "\n  suspected wait cycle among packets {cycle:?}");
        } else {
            let _ = write!(out, "\n  no wait cycle found (acyclic blockage, e.g. a dead channel)");
        }
        out
    }
}

impl std::error::Error for StallDiagnostic {}

impl std::fmt::Display for StallDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no progress for {} cycles at cycle {}: {} stalled packet(s) holding \
             {} channel(s)",
            self.window,
            self.cycle,
            self.stalled.len(),
            self.held_channels.len()
        )?;
        for (i, p) in self.stalled.iter().enumerate() {
            write!(
                f,
                "; packet {i}: {}→{} at channel {} ({} of {} flits sent, {} delivered)",
                p.src, p.dst, p.head_channel, p.sent, p.len, p.delivered
            )?;
        }
        if let Some(cycle) = &self.suspected_cycle {
            write!(f, "; suspected wait cycle among packets {cycle:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_conversion_is_one_way() {
        // The boundary adapter degrades a typed error to its display
        // form; the reverse direction (String -> SimError) no longer
        // exists, so every producer must name a concrete variant.
        let e = SimError::Config("bad config".to_string());
        let s: String = e.into();
        assert_eq!(s, "bad config");
        let s: String = SimError::Routing("no path".to_string()).into();
        assert_eq!(s, "routing: no path");
    }

    fn sample_diag() -> StallDiagnostic {
        StallDiagnostic {
            cycle: 500,
            window: 100,
            stalled: vec![StalledPacket {
                src: 1,
                dst: 9,
                head_channel: 42,
                sent: 3,
                len: 8,
                delivered: 0,
            }],
            held_channels: vec![40, 42],
            suspected_cycle: None,
        }
    }

    #[test]
    fn source_chains_to_structured_payloads() {
        use std::error::Error;
        let e = SimError::NoProgress(Box::new(sample_diag()));
        let src = e.source().expect("NoProgress chains to its diagnostic");
        assert!(src.downcast_ref::<StallDiagnostic>().is_some());
        assert!(src.to_string().contains("no progress"));

        let e = SimError::BudgetExceeded(Box::new(PartialReport {
            kind: BudgetKind::Cycles,
            limit: 1_000,
            spent_cycles: 1_000,
            report: SimReport {
                cycles: 1_000,
                measured_cycles: 500,
                generated_packets: 10,
                delivered_packets: 4,
                offered_flits_per_node_cycle: 0.0,
                accepted_flits_per_node_cycle: 0.0,
                mean_latency_cycles: 0.0,
                latency_ci95_cycles: 0.0,
                p50_latency_cycles: 0,
                p95_latency_cycles: 0,
                p99_latency_cycles: 0,
                max_latency_cycles: 0,
                mean_queue: 0.0,
                max_queue: 0,
                sustainable: true,
                steady: true,
                in_flight_at_end: 6,
                aborted_packets: 0,
                undeliverable_packets: 0,
                channel_utilization: None,
                deliveries: None,
                trace: None,
            },
        }));
        let src = e.source().expect("BudgetExceeded chains to its partial");
        assert!(src.downcast_ref::<PartialReport>().is_some());

        assert!(SimError::Config("x".into()).source().is_none());
        assert!(SimError::Internal { what: "y" }.source().is_none());
    }

    #[test]
    fn detail_is_multiline_and_names_packets() {
        let d = sample_diag();
        let detail = d.detail();
        assert!(detail.contains("no progress for 100 cycles at cycle 500"));
        assert!(detail.contains("\n  packet 0: 1→9 at channel 42"));
        assert!(detail.contains("\n  held channels: [40, 42]"));
        assert!(detail.contains("acyclic blockage"));
        let mut cyclic = sample_diag();
        cyclic.suspected_cycle = Some(vec![0]);
        assert!(cyclic.detail().contains("suspected wait cycle among packets [0]"));
    }

    #[test]
    fn displays_are_informative() {
        let d = StallDiagnostic {
            cycle: 500,
            window: 100,
            stalled: vec![StalledPacket {
                src: 1,
                dst: 9,
                head_channel: 42,
                sent: 3,
                len: 8,
                delivered: 0,
            }],
            held_channels: vec![40, 42],
            suspected_cycle: None,
        };
        let msg = SimError::NoProgress(Box::new(d)).to_string();
        assert!(msg.contains("no progress for 100 cycles"));
        assert!(msg.contains("1→9 at channel 42"));
        let msg = SimError::Internal { what: "bad slot" }.to_string();
        assert!(msg.contains("invariant"));
        assert!(msg.contains("bad slot"));
        let msg = SimError::GeometryMismatch {
            what: "script",
            expected: Geometry::new(4, 3),
            got: Geometry::new(2, 3),
        }
        .to_string();
        assert!(msg.contains("script"));
    }
}
