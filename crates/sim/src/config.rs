//! Engine configuration and the simulation report.

use minnet_switch::{ArbiterKind, VcMuxPolicy};

/// Duration of one simulation cycle in microseconds. All channels run at
/// the paper's 20 flits/µs, so one flit time is 0.05 µs.
pub const CYCLE_US: f64 = 0.05;

/// Order in which channels perform their per-cycle transmission.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransmitOrder {
    /// Downstream-first (reverse topological): an unblocked worm advances
    /// over its whole span each cycle and a flit crosses at most one
    /// channel per cycle — the paper's model ("switches … synchronize to
    /// simultaneously transmit all of the flits in a worm"). The default.
    ReverseTopo,
    /// Channel-id order (roughly upstream-first) — an ablation knob.
    /// Every channel still carries at most one flit per cycle, so
    /// steady-state pipeline timing of a single worm is unchanged, but a
    /// body flit may close two bubbles in one cycle, making contended
    /// timings slightly optimistic. `ablation_transmit_order` in the
    /// bench crate quantifies the (small) difference.
    BuildOrder,
}

/// Hard resource limits for one simulation run — the campaign layer's
/// defence against *legitimately unbounded* work (a sweep point pushed
/// far past saturation keeps thousands of worms in flight and crawls in
/// wall-clock terms even though its cycle count is finite). This is a
/// different failure class from what the no-progress watchdog catches:
/// the watchdog fires on **zero** flit movement (a wedged network), the
/// budget on a run that is making progress but costing more than the
/// caller is willing to pay.
///
/// A tripped budget is not a lost run: the engine returns
/// [`crate::SimError::BudgetExceeded`] carrying a
/// [`crate::PartialReport`] with every statistic accumulated so far, so
/// a campaign can record the point as *partial* instead of aborting.
///
/// `max_cycles` trips deterministically (same seed, same partial
/// report, bit for bit); `max_wall_ms` depends on the host and is
/// checked every 1024 executed cycles to keep the hot loop clean.
/// Either limit at `0` is unlimited. A `max_cycles` at or above the
/// run's horizon (`warmup + measure`) never trips — completing is
/// always preferred to truncating.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Maximum simulated cycles before the run is cut short (0 = no
    /// limit). Deterministic.
    pub max_cycles: u64,
    /// Maximum wall-clock milliseconds before the run is cut short
    /// (0 = no limit). Host-dependent by nature.
    pub max_wall_ms: u64,
}

impl RunBudget {
    /// No limits — the default.
    pub const UNLIMITED: RunBudget = RunBudget {
        max_cycles: 0,
        max_wall_ms: 0,
    };

    /// Whether both limits are disabled.
    pub fn is_unlimited(&self) -> bool {
        self.max_cycles == 0 && self.max_wall_ms == 0
    }
}

/// Simulation-engine parameters.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Virtual channels per physical channel (1 = TMIN/DMIN/BMIN, 2 =
    /// the paper's VMIN; larger values model the §6 extension).
    pub vcs: u8,
    /// Flit-buffer depth of every (virtual) channel. The paper's model —
    /// and one of the conditions its conclusions rest on — is a single
    /// flit buffer; deeper buffers release blocked channel chains
    /// earlier (the `ext_buffers` study quantifies it).
    pub buffer_depth: u16,
    /// Warm-up cycles excluded from measurement.
    pub warmup: u64,
    /// Measured cycles after warm-up.
    pub measure: u64,
    /// RNG seed; equal seeds reproduce runs exactly.
    pub seed: u64,
    /// Source-queue sustainability limit (paper: 100 messages).
    pub queue_limit: usize,
    /// Arbitration among free output lanes/VCs at allocation (paper:
    /// random).
    pub alloc: ArbiterKind,
    /// Physical-channel multiplexing among virtual channels (paper:
    /// flit-level round-robin).
    pub vc_mux: VcMuxPolicy,
    /// Channel processing order (see [`TransmitOrder`]).
    pub transmit_order: TransmitOrder,
    /// Event-horizon fast-forward: when the network is fully quiescent
    /// (no worm in flight, no message queued) the engine jumps straight
    /// to the next scheduled event — the earliest arrival-heap key,
    /// release-heap key, or script entry — instead of spinning empty
    /// cycles. Statistics are integrated over the skipped interval, so
    /// reports are **bitwise identical** with the flag on or off (the
    /// differential tests enforce it); the flag exists only so those
    /// tests can exercise both paths. Default: on.
    pub fast_forward: bool,
    /// Word-parallel allocate/transmit kernels: the engine tracks exact
    /// per-lane readiness (owned ∧ alive ∧ has-input ∧ (ejection ∨
    /// ¬full)) in dense `u64` masks laid out in transmit-order position
    /// space, and the transmit sweep iterates `trailing_zeros` over the
    /// branchlessly-combined ready words instead of re-testing each
    /// maybe-ready channel. Reports are **bitwise identical** with the
    /// kernels on or off — same tie-breaking order (ascending position
    /// within and across words), same RNG stream, same accumulators —
    /// pinned by the kernel-on/off differential tests; the scalar path
    /// stays as the differential oracle. The kernels engage for
    /// power-of-two `vcs` up to 64 (every paper network) and silently
    /// fall back to the scalar sweep otherwise. Default: on; the
    /// `MINNET_WORD_KERNELS=0` environment variable flips the default to
    /// off so CI can run the whole suite down the scalar path.
    pub word_kernels: bool,
    /// Collect per-channel utilization (busy fraction over the window).
    pub collect_channel_util: bool,
    /// Record a [`crate::trace::Trace`] of message events (queue, inject,
    /// per-hop channel claims, delivery). Intended for deterministic or
    /// short runs — the log grows with every header movement.
    pub collect_trace: bool,
    /// Maintain per-switch [`minnet_switch::Crossbar`] state and assert
    /// the Fig. 2 connection-legality rules on every allocation. Only
    /// valid with `vcs == 1` (virtual channels have their own data paths
    /// through the switch). Debug/test aid.
    pub validate_crossbars: bool,
    /// No-progress watchdog window: if this many consecutive cycles pass
    /// with active packets but **zero** flit movement, the run terminates
    /// with [`crate::SimError::NoProgress`] and a structured
    /// [`crate::StallDiagnostic`]. In a healthy network the condition is
    /// unreachable (the downstream-most flit of some worm can always
    /// move), so the watchdog is on by default without affecting any
    /// fault-free run. `0` disables it. Default: 10 000.
    pub watchdog_window: u64,
    /// Whether a worm that a fault epoch leaves holding a dead lane — or
    /// routed into a corner with no live continuation — is *aborted*: its
    /// buffered flits drained, its lanes released, and its source freed.
    /// Turning this off leaves such worms wedged in place (blocking
    /// everything behind them) until the watchdog fires — a test knob for
    /// exercising the watchdog, not a production mode. Default: on.
    pub fault_abort: bool,
    /// Per-run resource limits (simulated cycles / wall-clock time); see
    /// [`RunBudget`]. Default: unlimited.
    pub budget: RunBudget,
    /// Route-table cell cap: when `channels × nodes` exceeds this, the
    /// compiled network skips the precomputed [`minnet_routing::RouteTable`]
    /// and routes every hop through [`minnet_routing::RouteLogic`] directly
    /// — bit-identical results (the table is a memoized logic, pinned by
    /// the differential tests), trading per-hop lookup speed for O(1)
    /// setup memory. This is what admits 16k-terminal networks whose
    /// dense table would need tens of gigabytes. `0` = unlimited (always
    /// build the table). Default: `1 << 25` (32 Mi cells ≈ 128 MB of
    /// offsets — the 1024-node BMIN fits, 4096 nodes and up fall back).
    pub route_table_max_cells: u64,
    /// OS threads for the route-table build (`0` = one per available
    /// core). The parallel build is byte-identical to the serial build at
    /// every thread count — it only changes setup wall-time. Default: 1.
    pub table_build_threads: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            vcs: 1,
            buffer_depth: 1,
            warmup: 50_000,
            measure: 200_000,
            seed: 0x5EED,
            queue_limit: 100,
            alloc: ArbiterKind::Random,
            vc_mux: VcMuxPolicy::RoundRobin,
            transmit_order: TransmitOrder::ReverseTopo,
            fast_forward: true,
            word_kernels: std::env::var("MINNET_WORD_KERNELS").map_or(true, |v| v != "0"),
            collect_channel_util: false,
            collect_trace: false,
            validate_crossbars: false,
            watchdog_window: 10_000,
            fault_abort: true,
            budget: RunBudget::UNLIMITED,
            route_table_max_cells: 1 << 25,
            table_build_threads: 1,
        }
    }
}

impl EngineConfig {
    /// Validate parameter consistency.
    pub fn validate(&self) -> Result<(), crate::SimError> {
        let bad = |msg: &str| Err(crate::SimError::Config(msg.to_string()));
        if self.vcs == 0 {
            return bad("at least one virtual channel per physical channel");
        }
        if self.buffer_depth == 0 {
            return bad("channel buffers must hold at least one flit");
        }
        if self.measure == 0 {
            return bad("measurement window must be nonempty");
        }
        if self.validate_crossbars && self.vcs != 1 {
            return bad("crossbar validation requires vcs == 1");
        }
        Ok(())
    }
}

/// Results of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Total simulated cycles (warmup + measure).
    pub cycles: u64,
    /// Cycles actually spent measuring: `cycles - warmup`. Equal to the
    /// configured `measure` for stochastic runs; smaller when a finite
    /// (scripted/chained) run drains early. Rates are normalized by this
    /// value, not the configured window.
    pub measured_cycles: u64,
    /// Messages generated during the measurement window.
    pub generated_packets: u64,
    /// Messages fully delivered during the measurement window.
    pub delivered_packets: u64,
    /// Flits generated per node per cycle during the window (measured
    /// offered load).
    pub offered_flits_per_node_cycle: f64,
    /// Flits delivered per node per cycle during the window (accepted
    /// throughput; 1.0 = every ejection channel busy every cycle).
    pub accepted_flits_per_node_cycle: f64,
    /// Mean message latency in cycles (generation → tail ejected), over
    /// messages generated in the window and delivered before the end.
    pub mean_latency_cycles: f64,
    /// Approximate 95% CI half-width of the mean latency (batch means).
    pub latency_ci95_cycles: f64,
    /// Median latency (log-bucketed histogram, ≲6% relative error).
    pub p50_latency_cycles: u64,
    /// 95th percentile latency.
    pub p95_latency_cycles: u64,
    /// 99th percentile latency.
    pub p99_latency_cycles: u64,
    /// Largest observed latency (exact).
    pub max_latency_cycles: u64,
    /// Time-averaged total queued messages across all sources.
    pub mean_queue: f64,
    /// Largest single source queue observed during the window.
    pub max_queue: usize,
    /// Whether no source queue ever exceeded the configured limit — the
    /// paper's sustainability criterion.
    pub sustainable: bool,
    /// Whether the run looks steady-state: delivery kept up with
    /// generation over the window (accepted ≥ 95% of offered). The queue
    /// criterion alone can miss slowly-building backlogs on short
    /// windows; saturation searches require both flags.
    pub steady: bool,
    /// Packets still in flight (in network or queued) when the run ended.
    pub in_flight_at_end: u64,
    /// Measured packets aborted mid-flight because a fault epoch killed a
    /// lane they held (or their only continuations). Always 0 without an
    /// active fault schedule.
    pub aborted_packets: u64,
    /// Measured messages refused at injection because no live route to
    /// their destination existed under the current fault epoch. Always 0
    /// without an active fault schedule.
    pub undeliverable_packets: u64,
    /// Per-channel busy fraction over the window, when collection was
    /// enabled.
    pub channel_utilization: Option<Vec<f64>>,
    /// Per-message completion records, populated for scripted runs.
    pub deliveries: Option<Vec<Delivery>>,
    /// The event trace, when collection was enabled.
    pub trace: Option<crate::trace::Trace>,
}

/// Completion record for one message (populated for scripted runs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Length in flits.
    pub len: u32,
    /// Cycle the message became available.
    pub gen_time: u64,
    /// Cycle the tail flit was consumed (end-of-cycle timestamp).
    pub done_time: u64,
    /// Script/chain entry index for deterministic runs (`u32::MAX` for
    /// Poisson traffic).
    pub tag: u32,
}

impl SimReport {
    /// Mean latency in microseconds (20 flits/µs channels).
    pub fn mean_latency_us(&self) -> f64 {
        self.mean_latency_cycles * CYCLE_US
    }

    /// Accepted throughput as a percentage of the one-port bound.
    pub fn throughput_percent(&self) -> f64 {
        self.accepted_flits_per_node_cycle * 100.0
    }

    /// Offered load as a percentage of the one-port bound.
    pub fn offered_percent(&self) -> f64 {
        self.offered_flits_per_node_cycle * 100.0
    }

    /// Bit-exact equality: every integer field equal and every float field
    /// identical down to its bit pattern (`f64::to_bits`, so `0.0 != -0.0`
    /// and NaNs compare by representation). This is the determinism
    /// contract the differential tests enforce between the optimized and
    /// reference engines — plain `==` on floats would accept reordered
    /// arithmetic, which is exactly what must not happen.
    pub fn bitwise_eq(&self, other: &SimReport) -> bool {
        fn f(a: f64, b: f64) -> bool {
            a.to_bits() == b.to_bits()
        }
        fn fv(a: &Option<Vec<f64>>, b: &Option<Vec<f64>>) -> bool {
            match (a, b) {
                (None, None) => true,
                (Some(x), Some(y)) => {
                    x.len() == y.len() && x.iter().zip(y).all(|(p, q)| f(*p, *q))
                }
                _ => false,
            }
        }
        self.cycles == other.cycles
            && self.measured_cycles == other.measured_cycles
            && self.generated_packets == other.generated_packets
            && self.delivered_packets == other.delivered_packets
            && f(
                self.offered_flits_per_node_cycle,
                other.offered_flits_per_node_cycle,
            )
            && f(
                self.accepted_flits_per_node_cycle,
                other.accepted_flits_per_node_cycle,
            )
            && f(self.mean_latency_cycles, other.mean_latency_cycles)
            && f(self.latency_ci95_cycles, other.latency_ci95_cycles)
            && self.p50_latency_cycles == other.p50_latency_cycles
            && self.p95_latency_cycles == other.p95_latency_cycles
            && self.p99_latency_cycles == other.p99_latency_cycles
            && self.max_latency_cycles == other.max_latency_cycles
            && f(self.mean_queue, other.mean_queue)
            && self.max_queue == other.max_queue
            && self.sustainable == other.sustainable
            && self.steady == other.steady
            && self.in_flight_at_end == other.in_flight_at_end
            && self.aborted_packets == other.aborted_packets
            && self.undeliverable_packets == other.undeliverable_packets
            && fv(&self.channel_utilization, &other.channel_utilization)
            && self.deliveries == other.deliveries
            && self.trace == other.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(EngineConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = EngineConfig {
            vcs: 0,
            ..EngineConfig::default()
        };
        assert!(c.validate().is_err());
        let c = EngineConfig {
            measure: 0,
            ..EngineConfig::default()
        };
        assert!(c.validate().is_err());
        let mut c = EngineConfig {
            validate_crossbars: true,
            vcs: 2,
            ..EngineConfig::default()
        };
        assert!(c.validate().is_err());
        c.vcs = 1;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn unit_conversions() {
        let r = SimReport {
            cycles: 0,
            measured_cycles: 0,
            generated_packets: 0,
            delivered_packets: 0,
            offered_flits_per_node_cycle: 0.5,
            accepted_flits_per_node_cycle: 0.4,
            mean_latency_cycles: 1000.0,
            latency_ci95_cycles: 0.0,
            p50_latency_cycles: 0,
            p95_latency_cycles: 0,
            p99_latency_cycles: 0,
            max_latency_cycles: 0,
            mean_queue: 0.0,
            max_queue: 0,
            sustainable: true,
            steady: true,
            in_flight_at_end: 0,
            aborted_packets: 0,
            undeliverable_packets: 0,
            channel_utilization: None,
            deliveries: None,
            trace: None,
        };
        assert!((r.mean_latency_us() - 50.0).abs() < 1e-12);
        assert!((r.throughput_percent() - 40.0).abs() < 1e-12);
        assert!((r.offered_percent() - 50.0).abs() < 1e-12);
    }
}
