//! Crash-recovery property for the real `minnetd` binary: SIGKILL the
//! daemon at a random point after a job is accepted — before the
//! worker starts it, mid-run (leaving a partial per-job checkpoint and
//! possibly a torn journal tail), or after completion — restart it on
//! the same state dir, and the result it serves for that job must be
//! **byte-identical** to an uninterrupted in-process run of the same
//! spec. Durability begins at the `Accepted` response: the accept
//! event is journaled before the daemon acknowledges.

use minnet::service::{JobSpec, Response, ServiceClient};
use proptest::prelude::*;
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A unique state dir per proptest case (cases run sequentially, but
/// a failed case must not poison the next one's dir).
fn state_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "minnetd_recovery_{}_{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The daemon child is SIGKILLed when dropped, so a failing assertion
/// never strands a listener process.
struct DaemonProc {
    child: Child,
    addr: String,
}

impl Drop for DaemonProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Start the real binary on an ephemeral port and parse the
/// `minnetd listening on <addr>` line CI uses for the same purpose.
fn spawn_daemon(dir: &PathBuf) -> DaemonProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_minnetd"))
        .args(["--addr", "127.0.0.1:0", "--workers", "1", "--job-threads", "1"])
        .arg("--state-dir")
        .arg(dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning minnetd");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("reading the listen line");
    let addr = line
        .trim()
        .strip_prefix("minnetd listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();
    DaemonProc { child, addr }
}

/// A job small enough to finish fast, big enough that a kill can land
/// mid-run. The explicit budget keeps the daemon from substituting its
/// default, so the in-process reference hashes identically.
fn job(seed: u64) -> JobSpec {
    JobSpec {
        sizes: "fixed:32".into(),
        loads: vec![0.15, 0.3, 0.45],
        warmup: 300,
        measure: 2_000,
        seed,
        budget_cycles: 100_000,
        ..JobSpec::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn sigkill_at_a_random_point_recovers_byte_identical_results(
        seed in 1u64..1_000_000,
        kill_after_ms in 0u64..120,
    ) {
        let dir = state_dir();
        let _cleanup = Cleanup(dir.clone());
        let spec = job(seed);

        // Accept the job, then SIGKILL the daemon at an arbitrary
        // moment: the job may be queued, mid-simulation, or done.
        let first = spawn_daemon(&dir);
        let client = ServiceClient::new(first.addr.clone());
        let submitted = client.submit("prop", &spec).expect("submit");
        let Response::Accepted { job_id, .. } = submitted else {
            panic!("submit refused: {submitted:?}");
        };
        std::thread::sleep(Duration::from_millis(kill_after_ms));
        drop(first); // Child::kill is SIGKILL on unix: no drain, no flush

        // Restart on the same state dir: the journal (possibly with a
        // torn tail) and any partial checkpoint are all it has.
        let second = spawn_daemon(&dir);
        let client = ServiceClient::new(second.addr.clone());
        let recovered = client
            .wait_result(&job_id, Duration::from_secs(120))
            .expect("recovered result");

        // The uninterrupted reference, computed in-process: exactly the
        // string an unkilled daemon would have cached and served.
        let reference = minnet::run_job(&spec, None, 1).expect("reference run");
        prop_assert_eq!(recovered, reference, "recovery changed result bytes");
    }
}
