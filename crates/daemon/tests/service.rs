//! In-process integration tests for the `minnetd` service: admission
//! control under flood, cache-hit byte identity, panic isolation,
//! structured errors over the wire, and graceful drain.

use minnet::service::{JobSpec, Response, ServiceClient};
use minnet_daemon::{Daemon, DaemonConfig};
use std::path::PathBuf;
use std::time::Duration;

/// A unique state dir per test (tests run in parallel).
fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "minnetd_test_{}_{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A small, fast job (sub-second even unoptimized).
fn quick_spec(seed: u64) -> JobSpec {
    JobSpec {
        sizes: "fixed:32".into(),
        loads: vec![0.15, 0.3],
        warmup: 300,
        measure: 2_000,
        seed,
        budget_cycles: 100_000,
        ..JobSpec::default()
    }
}

fn start(tag: &str, workers: usize, queue_depth: usize, cap: usize) -> (Daemon, Cleanup) {
    let dir = state_dir(tag);
    let cleanup = Cleanup(dir.clone());
    let daemon = Daemon::start(DaemonConfig {
        workers,
        queue_depth,
        per_client_inflight: cap,
        state_dir: dir,
        ..DaemonConfig::default()
    })
    .unwrap();
    (daemon, cleanup)
}

#[test]
fn cache_hit_serves_byte_identical_result_without_resimulation() {
    let (daemon, _cleanup) = start("cache", 1, 16, 8);
    let client = ServiceClient::new(daemon.addr().to_string());
    let spec = quick_spec(11);

    let Response::Accepted { job_id, cached } = client.submit("c1", &spec).unwrap() else {
        panic!("submit refused");
    };
    assert!(!cached, "first submission must be cold");
    let cold = client.wait_result(&job_id, Duration::from_secs(60)).unwrap();
    assert!(cold.contains("\"outcome\":\"ok\""));

    // Identical request: served from the config-hash cache, bitwise
    // equal to the cold result.
    let Response::Accepted { job_id: id2, cached } = client.submit("c2", &spec).unwrap() else {
        panic!("resubmit refused");
    };
    assert_eq!(job_id, id2, "identical spec must map to the same job");
    assert!(cached, "second submission must hit the cache");
    let warm = client.result(&job_id).unwrap();
    let Response::JobResult { result, .. } = warm else {
        panic!("expected result, got {warm:?}");
    };
    assert_eq!(cold, result, "cache served different bytes");
    assert_eq!(client.stats().unwrap().cache_hits, 1);
}

#[test]
fn flood_beyond_capacity_yields_typed_rejections_and_no_panics() {
    // Admission-only daemon (workers = 0): nothing dequeues, so the
    // rejection counts are exact functions of the bounds.
    let (daemon, _cleanup) = start("flood", 0, 4, 3);
    let client = ServiceClient::new(daemon.addr().to_string());

    // One client floods: the per-client cap (3) bites first.
    let mut accepted = 0;
    let mut capped = 0;
    for seed in 0..6 {
        match client.submit("flooder", &quick_spec(100 + seed)).unwrap() {
            Response::Accepted { .. } => accepted += 1,
            Response::Rejected {
                reason,
                retry_after_ms,
            } => {
                assert!(reason.contains("in-flight cap"), "{reason}");
                assert!(retry_after_ms > 0, "backpressure hint missing");
                capped += 1;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!((accepted, capped), (3, 3));

    // Distinct clients flood: the queue depth (4) bites next.
    let mut queue_full = 0;
    for seed in 0..4 {
        let id = format!("c{seed}");
        match client.submit(&id, &quick_spec(200 + seed)).unwrap() {
            Response::Accepted { .. } => {}
            Response::Rejected { reason, .. } => {
                assert!(reason.contains("queue full"), "{reason}");
                queue_full += 1;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(queue_full, 3, "queue depth 4 admits exactly one more");
    let stats = client.stats().unwrap();
    assert_eq!(stats.queued, 4);
    assert_eq!(stats.rejected, 6);
    // The daemon is alive and sane after the flood.
    client.ping().unwrap();
}

#[test]
fn chaos_panics_are_isolated_and_recovered_by_derived_seed_retries() {
    let (daemon, _cleanup) = start("chaos", 1, 16, 8);
    let client = ServiceClient::new(daemon.addr().to_string());
    let mut spec = quick_spec(21);
    spec.chaos_panic_attempts = 1;
    spec.retries = 2;

    let Response::Accepted { job_id, .. } = client.submit("c1", &spec).unwrap() else {
        panic!("submit refused");
    };
    let result = client.wait_result(&job_id, Duration::from_secs(60)).unwrap();
    // Every point panicked once, retried on a derived seed, and
    // completed; the daemon survived all of it.
    assert!(result.contains("\"attempts\":2"), "{result}");
    assert!(!result.contains("\"outcome\":\"failed\""), "{result}");
    client.ping().unwrap();

    // A fully poisoned job (more injected panics than retries) still
    // completes as a curve of failed points — the worker pool survives.
    let mut doomed = quick_spec(22);
    doomed.chaos_panic_attempts = 5;
    doomed.retries = 0;
    let Response::Accepted { job_id, .. } = client.submit("c1", &doomed).unwrap() else {
        panic!("submit refused");
    };
    let result = client.wait_result(&job_id, Duration::from_secs(60)).unwrap();
    assert!(result.contains("\"outcome\":\"failed\""));
    assert!(result.contains("chaos: injected panic"));
    client.ping().unwrap();
}

#[test]
fn malformed_specs_get_structured_errors_not_queue_slots() {
    let (daemon, _cleanup) = start("badspec", 1, 16, 8);
    let client = ServiceClient::new(daemon.addr().to_string());
    let mut spec = quick_spec(31);
    spec.network = "hypercube".into();
    let Response::Error { kind, message } = client.submit("c1", &spec).unwrap() else {
        panic!("invalid spec must be refused");
    };
    assert_eq!(kind, "config");
    assert!(message.contains("hypercube"), "{message}");
    let stats = client.stats().unwrap();
    assert_eq!(stats.queued + stats.running + stats.done, 0);
}

#[test]
fn drain_closes_admissions_finishes_backlog_and_flushes_journal() {
    let dir = state_dir("drain");
    let _cleanup = Cleanup(dir.clone());
    let daemon = Daemon::start(DaemonConfig {
        workers: 1,
        state_dir: dir.clone(),
        ..DaemonConfig::default()
    })
    .unwrap();
    let client = ServiceClient::new(daemon.addr().to_string());

    // Two jobs in flight; the second has a tight cycle budget so its
    // points are budget-cut to `partial` — drain must surface them as
    // such, not lose them.
    let ok_spec = quick_spec(41);
    let mut partial_spec = quick_spec(42);
    partial_spec.budget_cycles = 900;
    let Response::Accepted { job_id: ok_id, .. } = client.submit("c1", &ok_spec).unwrap() else {
        panic!("submit refused");
    };
    let Response::Accepted { job_id: partial_id, .. } =
        client.submit("c1", &partial_spec).unwrap()
    else {
        panic!("submit refused");
    };

    assert_eq!(client.drain().unwrap(), Response::Draining);
    // Admissions are closed…
    let Response::Rejected { reason, .. } = client.submit("c1", &quick_spec(43)).unwrap() else {
        panic!("draining daemon must reject new work");
    };
    assert!(reason.contains("draining"), "{reason}");
    // …but the accepted backlog completes.
    daemon.drain_and_wait();
    let ok_result = client.wait_result(&ok_id, Duration::from_secs(10)).unwrap();
    assert!(ok_result.contains("\"outcome\":\"ok\""));
    let partial_result = client
        .wait_result(&partial_id, Duration::from_secs(10))
        .unwrap();
    assert!(
        partial_result.contains("\"outcome\":\"partial\""),
        "budget-cut job must drain to partial outcomes: {partial_result}"
    );
    // The journal on disk is complete: both jobs accepted and done.
    let journal = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
    assert!(journal.ends_with('\n'), "flushed journal ends line-whole");
    for id in [&ok_id, &partial_id] {
        assert!(journal.contains(&format!("\"event\":\"accepted\",\"job_id\":\"{id}\"")));
        assert!(journal.contains(&format!("\"event\":\"done\",\"job_id\":\"{id}\"")));
    }
}

#[test]
fn second_daemon_on_same_state_dir_is_refused() {
    let dir = state_dir("double");
    let _cleanup = Cleanup(dir.clone());
    let first = Daemon::start(DaemonConfig {
        state_dir: dir.clone(),
        ..DaemonConfig::default()
    })
    .unwrap();
    let Err(err) = Daemon::start(DaemonConfig {
        state_dir: dir.clone(),
        ..DaemonConfig::default()
    }) else {
        panic!("second daemon on the same state dir must be refused");
    };
    assert!(err.contains("locked by live process"), "{err}");
    drop(first);
    // Released: a successor start succeeds (and recovers the journal).
    let second = Daemon::start(DaemonConfig {
        state_dir: dir,
        ..DaemonConfig::default()
    })
    .unwrap();
    drop(second);
}

#[test]
fn hard_stop_and_restart_recovers_queued_jobs_byte_identically() {
    // The in-process flavor of the SIGKILL proptest: a job accepted on
    // an admission-only daemon (never started), a hard stop, then a
    // restart with workers — the recovered job must complete with
    // bytes identical to an uninterrupted daemon's.
    let dir = state_dir("recover");
    let _cleanup = Cleanup(dir.clone());
    let spec = quick_spec(51);
    let job_id = {
        let daemon = Daemon::start(DaemonConfig {
            workers: 0,
            state_dir: dir.clone(),
            ..DaemonConfig::default()
        })
        .unwrap();
        let client = ServiceClient::new(daemon.addr().to_string());
        let Response::Accepted { job_id, .. } = client.submit("c1", &spec).unwrap() else {
            panic!("submit refused");
        };
        daemon.shutdown(); // hard stop: no drain, job still queued
        job_id
    };

    let daemon = Daemon::start(DaemonConfig {
        workers: 1,
        state_dir: dir,
        ..DaemonConfig::default()
    })
    .unwrap();
    let client = ServiceClient::new(daemon.addr().to_string());
    let recovered = client.wait_result(&job_id, Duration::from_secs(60)).unwrap();

    // Reference: the same job on a fresh, uninterrupted daemon.
    let (fresh, _cleanup2) = start("recover_ref", 1, 16, 8);
    let fresh_client = ServiceClient::new(fresh.addr().to_string());
    let Response::Accepted { job_id: ref_id, .. } = fresh_client.submit("c1", &spec).unwrap()
    else {
        panic!("submit refused");
    };
    assert_eq!(job_id, ref_id);
    let reference = fresh_client
        .wait_result(&ref_id, Duration::from_secs(60))
        .unwrap();
    assert_eq!(recovered, reference, "recovery changed result bytes");
}
