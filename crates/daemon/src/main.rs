//! `minnetd` — the simulation-service daemon binary.
//!
//! ```text
//! minnetd --addr 127.0.0.1:7117 --state-dir ./minnetd-state \
//!         --workers 2 --queue-depth 16 --client-inflight 8 \
//!         --budget-cycles 0 --budget-ms 30000 --job-threads 1
//! ```
//!
//! Prints `minnetd listening on <addr>` once the socket is bound (the
//! line CI and the recovery tests parse to learn an ephemeral port),
//! then serves until SIGTERM/SIGINT, which trigger a graceful drain:
//! admissions close, the accepted backlog finishes under its mandatory
//! budgets (at worst as budget-cut `partial` points), the journal is
//! flushed, and the process exits 0. A SIGKILL instead leaves the
//! journal mid-flight — by design at most one torn line, which the
//! next start truncates and recovers from.

use minnet_daemon::{Daemon, DaemonConfig};
use minnet_sim::RunBudget;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; polled by the main loop. (The handler
/// must be async-signal-safe: a relaxed store is, a Mutex is not.)
static DRAIN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    DRAIN.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
fn install_signal_handlers() {
    // Raw libc signal(2) via FFI: the workspace vendors no libc crate,
    // and the daemon needs exactly two dispositions. SIGTERM = 15,
    // SIGINT = 2 on every Unix this runs on.
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(15, on_signal as *const () as usize);
        signal(2, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn die(msg: &str) -> ! {
    eprintln!("minnetd: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut cfg = DaemonConfig::default();
    let mut budget = RunBudget {
        max_cycles: 0,
        max_wall_ms: 30_000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(key) = it.next() {
        if key == "--help" || key == "-h" {
            println!(
                "minnetd — crash-safe simulation service\n\n\
                 OPTIONS\n\
                 \x20 --addr HOST:PORT      listen address (port 0 = ephemeral) [127.0.0.1:0]\n\
                 \x20 --state-dir DIR       journal + per-job checkpoints [minnetd-state]\n\
                 \x20 --workers N           worker threads (0 = admission-only) [2]\n\
                 \x20 --queue-depth N       max accepted-but-unstarted jobs [16]\n\
                 \x20 --client-inflight N   max queued+running jobs per client [8]\n\
                 \x20 --budget-cycles N     default per-point cycle budget (0 = off) [0]\n\
                 \x20 --budget-ms N         default per-point wall budget [30000]\n\
                 \x20 --job-threads N       threads per job's point grid [1]\n\n\
                 SIGTERM/SIGINT drain gracefully; SIGKILL is recovered on restart."
            );
            return;
        }
        let Some(name) = key.strip_prefix("--") else {
            die(&format!("unexpected argument {key:?}"));
        };
        let Some(value) = it.next() else {
            die(&format!("--{name} needs a value"));
        };
        let parse_usize =
            |v: &str| v.parse::<usize>().unwrap_or_else(|e| die(&format!("--{name}: {e}")));
        let parse_u64 =
            |v: &str| v.parse::<u64>().unwrap_or_else(|e| die(&format!("--{name}: {e}")));
        match name {
            "addr" => cfg.addr = value,
            "state-dir" => cfg.state_dir = value.into(),
            "workers" => cfg.workers = parse_usize(&value),
            "queue-depth" => cfg.queue_depth = parse_usize(&value),
            "client-inflight" => cfg.per_client_inflight = parse_usize(&value),
            "budget-cycles" => budget.max_cycles = parse_u64(&value),
            "budget-ms" => budget.max_wall_ms = parse_u64(&value),
            "job-threads" => cfg.job_threads = parse_usize(&value),
            other => die(&format!("unknown option --{other} (see --help)")),
        }
    }
    if budget.is_unlimited() {
        die("the daemon needs a default budget (--budget-cycles and/or --budget-ms); \
             unbudgeted jobs could hold workers forever");
    }
    cfg.default_budget = budget;

    install_signal_handlers();
    let daemon = match Daemon::start(cfg) {
        Ok(d) => d,
        Err(e) => die(&e),
    };
    println!("minnetd listening on {}", daemon.addr());
    let _ = std::io::stdout().flush();

    // A drain arrives as SIGTERM/SIGINT (the flag) or as a wire
    // `drain` request (daemon state); either way: close admissions,
    // finish the accepted backlog, flush, exit 0.
    while !DRAIN.load(Ordering::Relaxed) && !daemon.is_draining() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("minnetd: drain requested, finishing accepted jobs…");
    daemon.drain_and_wait();
    daemon.shutdown();
    eprintln!("minnetd: drained, journal flushed");
}
