//! `minnetd` — the crash-safe simulation service over the minnet
//! engine.
//!
//! The wire protocol, job model, and deterministic job executor live in
//! [`minnet::service`]; this crate is the *server*: the bounded queue
//! with admission control, the worker pool with per-job isolation, the
//! FNV-config-hash result cache, the durable job journal, and the
//! recovery and drain machinery around them. The daemon is built from
//! `std` only — threads, `Mutex`/`Condvar`, blocking sockets — per the
//! workspace's vendored-crate policy.
//!
//! ## Robustness model
//!
//! * **Admission control.** `queue_depth` bounds accepted-but-unstarted
//!   jobs; `per_client_inflight` bounds one client's queued+running
//!   jobs. Beyond either bound a submission gets a typed
//!   `Rejected{reason, retry_after_ms}` — the daemon never buffers
//!   unboundedly, so a flood degrades service for the flooder, not the
//!   process.
//! * **Per-job isolation.** Workers run jobs through
//!   [`minnet::service::run_job`], which executes every curve point
//!   under `catch_unwind` on a fresh worker-owned `EngineState` with
//!   derived-seed retries; the worker wraps the whole job in another
//!   `catch_unwind` so even a bug outside the point loop downgrades to
//!   a `failed` job instead of a dead worker. Every job carries a
//!   mandatory [`RunBudget`] — specs that request none get the daemon's
//!   default — so no request can hold a worker forever.
//! * **Result cache.** Results are cached by the job's FNV config
//!   hash; a repeat submission is answered `cached:true` without
//!   re-simulation, and the cached bytes are the original bytes (the
//!   determinism contract makes `==` the correctness check).
//! * **Durable journal.** `journal.jsonl` in the state directory
//!   records `accepted` (with the full spec) and `done`/`failed`
//!   events, one flushed line each, behind an advisory
//!   [`minnet::LockFile`] (a second daemon on the same state directory
//!   fails fast). Recovery replays the journal with the campaign's
//!   torn-tail-truncation discipline: `accepted` without `done`
//!   re-enqueues, and the job's per-point checkpoint in `jobs/` resumes
//!   the curve — producing byte-identical results after a SIGKILL.
//! * **Graceful drain.** A drain request (or SIGTERM in the binary)
//!   stops admissions; workers finish the accepted backlog — each job
//!   bounded by its budget, so "finish" means *at worst* budget-cut
//!   `partial` points — and the journal ends flushed and complete.

use minnet::service::{run_job, JobSpec, Request, Response, ServiceStats};
use minnet::LockFile;
use minnet_sim::RunBudget;
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Journal format version (the header's `"v"`).
const JOURNAL_VERSION: u64 = 1;

/// Whole-job retries after a panic that escaped the per-point
/// isolation (or a transient I/O failure), with linear backoff.
const JOB_RETRIES: u32 = 2;

/// How the daemon is shaped. `Default` gives a loopback daemon on an
/// ephemeral port with small, test-friendly bounds.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Listen address (`host:port`; port 0 binds an ephemeral port).
    pub addr: String,
    /// Worker threads. 0 = admission-only: jobs queue (and journal, and
    /// recover) but never execute — used by the flood benchmarks to
    /// measure rejection behavior deterministically.
    pub workers: usize,
    /// Maximum accepted-but-unstarted jobs before submissions bounce.
    pub queue_depth: usize,
    /// Maximum queued+running jobs per client identity.
    pub per_client_inflight: usize,
    /// State directory: `journal.jsonl` + per-job checkpoints under
    /// `jobs/`.
    pub state_dir: PathBuf,
    /// The mandatory budget substituted into specs that request none.
    pub default_budget: RunBudget,
    /// Threads each worker gives one job's point grid.
    pub job_threads: usize,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 16,
            per_client_inflight: 8,
            state_dir: PathBuf::from("minnetd-state"),
            default_budget: RunBudget {
                max_cycles: 0,
                max_wall_ms: 30_000,
            },
            job_threads: 1,
        }
    }
}

/// A job's lifecycle state.
#[derive(Clone, Debug, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed(String),
}

impl JobState {
    fn tag(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

#[derive(Clone, Debug)]
struct Job {
    spec: JobSpec,
    client: String,
    state: JobState,
}

/// The append-only job journal: versioned JSONL behind an advisory
/// lock, flushed line-whole like the campaign checkpoints.
struct Journal {
    file: std::fs::File,
    _lock: LockFile,
}

/// What a journal replay recovered.
struct Recovered {
    /// `accepted` events in order, minus those with a `done`/`failed`.
    pending: Vec<(String, String, JobSpec)>,
    /// Finished jobs: id → (client, result JSON or error).
    finished: Vec<(String, String, Result<String, String>)>,
}

impl Journal {
    /// Open (or create) `journal.jsonl` under `dir`, acquire its lock,
    /// replay existing events, and truncate any torn tail.
    fn open(dir: &PathBuf) -> Result<(Journal, Recovered), String> {
        std::fs::create_dir_all(dir.join("jobs"))
            .map_err(|e| format!("creating state dir {}: {e}", dir.display()))?;
        let path = dir.join("journal.jsonl");
        let lock = LockFile::acquire(&path)?;
        let shown = path.display();
        let mut recovered = Recovered {
            pending: Vec::new(),
            finished: Vec::new(),
        };
        if !path.exists() {
            let mut f = std::fs::OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&path)
                .map_err(|e| format!("creating journal {shown}: {e}"))?;
            f.write_all(
                format!("{{\"v\":{JOURNAL_VERSION},\"kind\":\"minnetd_journal\"}}\n").as_bytes(),
            )
            .and_then(|()| f.flush())
            .map_err(|e| format!("writing journal {shown}: {e}"))?;
            return Ok((Journal { file: f, _lock: lock }, recovered));
        }

        let content = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading journal {shown}: {e}"))?;
        let mut lines = content.split_inclusive('\n');
        let header = lines
            .next()
            .ok_or_else(|| format!("journal {shown}: empty file"))?;
        if !header.ends_with('\n') {
            return Err(format!("journal {shown}: torn header line"));
        }
        match minnet::service::journal_json_u64(header.trim(), "v") {
            Some(JOURNAL_VERSION) => {}
            Some(v) => {
                return Err(format!(
                    "journal {shown}: unsupported version {v} (this build reads {JOURNAL_VERSION})"
                ))
            }
            None => return Err(format!("journal {shown}: malformed header")),
        }

        // Replay: accepted-order map of unfinished jobs, plus finished
        // results. A SIGKILL can tear at most the final line — stop at
        // the first incomplete/unparsable line and drop that tail.
        let mut accepted: Vec<(String, String, JobSpec)> = Vec::new();
        let mut done: BTreeMap<String, Result<String, String>> = BTreeMap::new();
        let mut good_len = header.len();
        for line in lines {
            if !line.ends_with('\n') {
                break;
            }
            let t = line.trim();
            if !t.is_empty() {
                let Some(ev) = parse_event(t) else { break };
                match ev {
                    Event::Accepted { job_id, client, spec } => {
                        accepted.push((job_id, client, spec));
                    }
                    Event::Done { job_id, result } => {
                        done.insert(job_id, Ok(result));
                    }
                    Event::Failed { job_id, error } => {
                        done.insert(job_id, Err(error));
                    }
                }
            }
            good_len += line.len();
        }
        if good_len < content.len() {
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| format!("opening journal {shown}: {e}"))?;
            f.set_len(good_len as u64)
                .map_err(|e| format!("dropping torn tail of journal {shown}: {e}"))?;
        }
        for (job_id, client, spec) in accepted {
            match done.remove(&job_id) {
                Some(outcome) => recovered.finished.push((job_id, client, outcome)),
                None => recovered.pending.push((job_id, client, spec)),
            }
        }
        let f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| format!("opening journal {shown}: {e}"))?;
        Ok((Journal { file: f, _lock: lock }, recovered))
    }

    /// Append one event — written and flushed whole, so a kill tears at
    /// most the line in flight.
    fn append(&mut self, line: &str) -> Result<(), String> {
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("journal append: {e}"))
    }
}

enum Event {
    Accepted {
        job_id: String,
        client: String,
        spec: JobSpec,
    },
    Done {
        job_id: String,
        result: String,
    },
    Failed {
        job_id: String,
        error: String,
    },
}

fn parse_event(line: &str) -> Option<Event> {
    use minnet::service::{journal_json_str, journal_raw_tail};
    match journal_json_str(line, "event")?.as_str() {
        "accepted" => Some(Event::Accepted {
            job_id: journal_json_str(line, "job_id")?,
            client: journal_json_str(line, "client")?,
            spec: JobSpec::from_json(line)?,
        }),
        "done" => Some(Event::Done {
            job_id: journal_json_str(line, "job_id")?,
            result: journal_raw_tail(line, "result")?,
        }),
        "failed" => Some(Event::Failed {
            job_id: journal_json_str(line, "job_id")?,
            error: journal_json_str(line, "error")?,
        }),
        _ => None,
    }
}

struct State {
    queue: VecDeque<String>,
    jobs: BTreeMap<String, Job>,
    cache: BTreeMap<String, String>,
    inflight: BTreeMap<String, usize>,
    draining: bool,
    running: usize,
    rejected: u64,
    cache_hits: u64,
    journal: Journal,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes workers when the queue grows or drain/stop flips.
    work: Condvar,
    /// Wakes drain waiters when a job finishes or the queue empties.
    idle: Condvar,
    /// Hard stop (tests, `Drop`): workers exit between jobs, the
    /// listener closes. Not a drain — queued jobs stay journaled.
    stop: AtomicBool,
    cfg: DaemonConfig,
}

/// A running daemon: listener thread + worker pool over shared state.
///
/// Dropping the handle hard-stops the daemon (listener closes, workers
/// exit after their current job) *without* draining the queue —
/// exactly the abrupt-exit path the journal recovery covers.
pub struct Daemon {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Start a daemon: open (or recover) the journal, bind the
    /// listener, spawn the workers.
    ///
    /// # Errors
    ///
    /// Journal lock conflicts (another daemon owns the state dir),
    /// journal corruption beyond the torn tail, and socket bind
    /// failures.
    pub fn start(cfg: DaemonConfig) -> Result<Daemon, String> {
        let (journal, recovered) = Journal::open(&cfg.state_dir)?;
        let mut state = State {
            queue: VecDeque::new(),
            jobs: BTreeMap::new(),
            cache: BTreeMap::new(),
            inflight: BTreeMap::new(),
            draining: false,
            running: 0,
            rejected: 0,
            cache_hits: 0,
            journal,
        };
        for (job_id, client, outcome) in recovered.finished {
            let state_tag = match &outcome {
                Ok(result) => {
                    state.cache.insert(job_id.clone(), result.clone());
                    JobState::Done
                }
                Err(e) => JobState::Failed(e.clone()),
            };
            state.jobs.insert(
                job_id,
                Job {
                    // The spec is not replayed for finished jobs; a
                    // placeholder keeps the record shape uniform.
                    spec: JobSpec::default(),
                    client,
                    state: state_tag,
                },
            );
        }
        for (job_id, client, spec) in recovered.pending {
            *state.inflight.entry(client.clone()).or_insert(0) += 1;
            state.jobs.insert(
                job_id.clone(),
                Job {
                    spec,
                    client,
                    state: JobState::Queued,
                },
            );
            state.queue.push_back(job_id);
        }

        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| format!("binding {}: {e}", cfg.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;

        let shared = Arc::new(Shared {
            state: Mutex::new(state),
            work: Condvar::new(),
            idle: Condvar::new(),
            stop: AtomicBool::new(false),
            cfg,
        });

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || listen_loop(&shared, &listener)));
        }
        for _ in 0..shared.cfg.workers {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        Ok(Daemon {
            shared,
            addr,
            threads,
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a drain has been requested — over the wire (a `drain`
    /// request) or by a prior [`Daemon::drain_and_wait`]. The binary
    /// polls this so a wire-initiated drain also ends the process.
    pub fn is_draining(&self) -> bool {
        self.shared.state.lock().unwrap().draining
    }

    /// Stop admissions and block until every accepted job has finished
    /// — each bounded by its mandatory budget, so the wait is too.
    /// The journal is flushed line-by-line as jobs complete; when this
    /// returns it is complete and consistent.
    pub fn drain_and_wait(&self) {
        let mut st = self.shared.state.lock().unwrap();
        st.draining = true;
        self.shared.work.notify_all();
        while !(st.queue.is_empty() && st.running == 0) {
            st = self.shared.idle.wait(st).unwrap();
        }
    }

    /// Hard-stop without draining (queued jobs stay journaled for the
    /// next start) and join all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.work.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn listen_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                // One short-lived thread per connection: the protocol
                // is one line in, one line out, a few requests at most.
                std::thread::spawn(move || handle_connection(&shared, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // 1 ms keeps the stop flag responsive while bounding
                // accept latency well below the cache-hit round trip
                // the service benchmark measures.
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::parse(&line) {
            Some(req) => handle_request(shared, req),
            None => Response::Error {
                kind: "bad_request".into(),
                message: format!("unparsable request: {line}"),
            },
        };
        let mut out = response.to_line();
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() {
            return;
        }
        let _ = writer.flush();
    }
}

fn handle_request(shared: &Arc<Shared>, req: Request) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Drain => {
            let mut st = shared.state.lock().unwrap();
            st.draining = true;
            shared.work.notify_all();
            Response::Draining
        }
        Request::Stats => {
            let st = shared.state.lock().unwrap();
            Response::Stats(ServiceStats {
                queued: st.queue.len() as u64,
                running: st.running as u64,
                done: st
                    .jobs
                    .values()
                    .filter(|j| matches!(j.state, JobState::Done | JobState::Failed(_)))
                    .count() as u64,
                rejected: st.rejected,
                cache_hits: st.cache_hits,
                draining: st.draining,
            })
        }
        Request::Status { job_id } => {
            let st = shared.state.lock().unwrap();
            match st.jobs.get(&job_id) {
                Some(job) => Response::JobStatus {
                    job_id,
                    state: job.state.tag().to_string(),
                },
                None => Response::Error {
                    kind: "not_found".into(),
                    message: format!("no job {job_id}"),
                },
            }
        }
        Request::Result { job_id } => {
            let st = shared.state.lock().unwrap();
            if let Some(result) = st.cache.get(&job_id) {
                return Response::JobResult {
                    job_id,
                    result: result.clone(),
                };
            }
            match st.jobs.get(&job_id) {
                Some(Job {
                    state: JobState::Failed(e),
                    ..
                }) => Response::Error {
                    kind: "job_failed".into(),
                    message: e.clone(),
                },
                Some(job) => Response::JobStatus {
                    job_id,
                    state: job.state.tag().to_string(),
                },
                None => Response::Error {
                    kind: "not_found".into(),
                    message: format!("no job {job_id}"),
                },
            }
        }
        Request::Submit { client, spec } => handle_submit(shared, client, spec),
    }
}

fn handle_submit(shared: &Arc<Shared>, client: String, mut spec: JobSpec) -> Response {
    // Mandatory budget: a spec that requests none runs under the
    // daemon's default, so no job can hold a worker unboundedly. The
    // substitution happens *before* hashing — the budget is part of
    // the job's identity.
    let requested = RunBudget {
        max_cycles: spec.budget_cycles,
        max_wall_ms: spec.budget_ms,
    };
    if requested.is_unlimited() {
        spec.budget_cycles = shared.cfg.default_budget.max_cycles;
        spec.budget_ms = shared.cfg.default_budget.max_wall_ms;
    }
    // Validate up front: a malformed spec is answered with its
    // structured engine error, not queued to fail later.
    let job_id = match spec.job_id() {
        Ok(id) => id,
        Err(e) => return Response::from_sim_error(&e),
    };

    let mut st = shared.state.lock().unwrap();
    if st.cache.contains_key(&job_id) {
        st.cache_hits += 1;
        return Response::Accepted {
            job_id,
            cached: true,
        };
    }
    if let Some(job) = st.jobs.get(&job_id) {
        if matches!(job.state, JobState::Queued | JobState::Running) {
            // Idempotent duplicate: already on its way.
            return Response::Accepted {
                job_id,
                cached: false,
            };
        }
        if let JobState::Failed(e) = &job.state {
            return Response::Error {
                kind: "job_failed".into(),
                message: e.clone(),
            };
        }
    }
    let retry_after_ms = 50 * (st.queue.len() as u64 + 1);
    if st.draining {
        st.rejected += 1;
        return Response::Rejected {
            reason: "draining: admissions are closed".into(),
            retry_after_ms,
        };
    }
    if st.queue.len() >= shared.cfg.queue_depth {
        st.rejected += 1;
        return Response::Rejected {
            reason: format!("queue full (depth {})", shared.cfg.queue_depth),
            retry_after_ms,
        };
    }
    let inflight = st.inflight.get(&client).copied().unwrap_or(0);
    if inflight >= shared.cfg.per_client_inflight {
        st.rejected += 1;
        return Response::Rejected {
            reason: format!(
                "client {client:?} at in-flight cap ({})",
                shared.cfg.per_client_inflight
            ),
            retry_after_ms,
        };
    }
    // Journal *before* acknowledging: an accepted job survives a kill.
    let line = format!(
        "{{\"event\":\"accepted\",\"job_id\":\"{job_id}\",\"client\":\"{}\",\"spec\":{}}}",
        minnet::service::journal_esc(&client),
        spec.to_json()
    );
    if let Err(e) = st.journal.append(&line) {
        return Response::Error {
            kind: "io".into(),
            message: e,
        };
    }
    *st.inflight.entry(client.clone()).or_insert(0) += 1;
    st.jobs.insert(
        job_id.clone(),
        Job {
            spec,
            client,
            state: JobState::Queued,
        },
    );
    st.queue.push_back(job_id.clone());
    shared.work.notify_one();
    Response::Accepted {
        job_id,
        cached: false,
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let (job_id, spec) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = st.queue.pop_front() {
                    st.running += 1;
                    let job = st.jobs.get_mut(&id).expect("queued job has a record");
                    job.state = JobState::Running;
                    break (id, job.spec.clone());
                }
                if st.draining {
                    // Queue empty and no new admissions: drained.
                    shared.idle.notify_all();
                }
                st = shared.work.wait(st).unwrap();
            }
        };

        let ckpt = shared
            .cfg
            .state_dir
            .join("jobs")
            .join(format!("{job_id}.ckpt.jsonl"));
        // Whole-job isolation around the (already per-point-isolated)
        // executor: a panic that escapes run_job retries with linear
        // backoff, then downgrades to a failed job — the worker
        // survives any single poisoned request.
        let mut attempt = 0u32;
        let outcome = loop {
            let res = catch_unwind(AssertUnwindSafe(|| {
                run_job(&spec, Some(ckpt.clone()), shared.cfg.job_threads)
            }));
            let reason = match res {
                Ok(Ok(result)) => break Ok(result),
                Ok(Err(e)) => e,
                Err(payload) => {
                    if let Some(s) = payload.downcast_ref::<&str>() {
                        format!("panic: {s}")
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        format!("panic: {s}")
                    } else {
                        "panic: (non-string payload)".to_string()
                    }
                }
            };
            if attempt < JOB_RETRIES {
                attempt += 1;
                std::thread::sleep(Duration::from_millis(10 * u64::from(attempt)));
                continue;
            }
            break Err(reason);
        };

        let mut st = shared.state.lock().unwrap();
        let line = match &outcome {
            Ok(result) => {
                format!("{{\"event\":\"done\",\"job_id\":\"{job_id}\",\"result\":{result}}}")
            }
            Err(e) => format!(
                "{{\"event\":\"failed\",\"job_id\":\"{job_id}\",\"error\":\"{}\"}}",
                minnet::service::journal_esc(e)
            ),
        };
        // A journal write failure must not wedge the daemon: the job
        // still completes in memory (it will rerun after a restart).
        let _ = st.journal.append(&line);
        if let Some(job) = st.jobs.get_mut(&job_id) {
            match outcome {
                Ok(result) => {
                    job.state = JobState::Done;
                    st.cache.insert(job_id.clone(), result);
                }
                Err(e) => job.state = JobState::Failed(e),
            }
            let client = st
                .jobs
                .get(&job_id)
                .map(|j| j.client.clone())
                .expect("job record exists");
            if let Some(n) = st.inflight.get_mut(&client) {
                *n = n.saturating_sub(1);
            }
            // The per-job checkpoint is complete; keep it (cheap, and
            // byte-identity audits can replay it) — but completed jobs
            // never reread it.
        }
        st.running -= 1;
        shared.idle.notify_all();
    }
}
