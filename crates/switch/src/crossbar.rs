//! Explicit crossbar connection state with the legality rules of Fig. 2.
//!
//! A `k × k` switch establishes input-to-output connections. At any moment
//! each input feeds at most one output and each output is fed by at most
//! one input. Unidirectional switches (Fig. 1a–c) allow any input port to
//! connect to any output port. Bidirectional switches (Fig. 1d) allow:
//!
//! * **forward**: left input `l_i` → right output `r_j`;
//! * **backward**: right input `r_i` → left output `l_j`;
//! * **turnaround**: left input `l_i` → left output `l_j` with `i ≠ j`;
//! * and **never** right input → right output (deadlock rule).
//!
//! The simulation engine tracks worm ownership at lane granularity; this
//! type re-derives the same constraints at the switch level and is used in
//! engine self-checks and tests.

/// Port codes: inputs and outputs are both numbered `0..k` for the left
/// side and `k..2k` for the right side. Unidirectional switches use codes
/// `0..k` on both sides (inputs are left, outputs are right).
pub type PortCode = u8;

/// Why a connection request was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrossbarError {
    /// The input is already connected to some output.
    InputBusy,
    /// The output is already driven by some input.
    OutputBusy,
    /// Right input → right output is forbidden in bidirectional switches.
    ReascendForbidden,
    /// Turnaround to the same left port is forbidden (Fig. 2: `i ≠ j`).
    SamePortTurnaround,
    /// Port code out of range.
    BadPort,
}

/// Connection state of one crossbar.
#[derive(Clone, Debug)]
pub struct Crossbar {
    k: u8,
    bidirectional: bool,
    /// `out_src[o]` = the input currently driving output `o`.
    out_src: Vec<Option<PortCode>>,
    /// `in_dst[i]` = the output currently fed by input `i`.
    in_dst: Vec<Option<PortCode>>,
}

impl Crossbar {
    /// A `k × k` crossbar. Bidirectional crossbars have `2k` input and
    /// `2k` output codes; unidirectional ones have `k` of each.
    pub fn new(k: u8, bidirectional: bool) -> Self {
        let ports = if bidirectional { 2 * k as usize } else { k as usize };
        Crossbar {
            k,
            bidirectional,
            out_src: vec![None; ports],
            in_dst: vec![None; ports],
        }
    }

    fn check_legal(&self, input: PortCode, output: PortCode) -> Result<(), CrossbarError> {
        let ports = self.out_src.len() as u8;
        if input >= ports || output >= ports {
            return Err(CrossbarError::BadPort);
        }
        if !self.bidirectional {
            return Ok(());
        }
        let k = self.k;
        let in_right = input >= k;
        let out_right = output >= k;
        match (in_right, out_right) {
            (true, true) => Err(CrossbarError::ReascendForbidden),
            (false, false) if input == output => Err(CrossbarError::SamePortTurnaround),
            _ => Ok(()),
        }
    }

    /// Establish `input → output`.
    pub fn connect(&mut self, input: PortCode, output: PortCode) -> Result<(), CrossbarError> {
        self.check_legal(input, output)?;
        if self.in_dst[input as usize].is_some() {
            return Err(CrossbarError::InputBusy);
        }
        if self.out_src[output as usize].is_some() {
            return Err(CrossbarError::OutputBusy);
        }
        self.in_dst[input as usize] = Some(output);
        self.out_src[output as usize] = Some(input);
        Ok(())
    }

    /// Tear down the connection from `input`, returning the output it fed.
    pub fn release_input(&mut self, input: PortCode) -> Option<PortCode> {
        let out = self.in_dst[input as usize].take()?;
        let back = self.out_src[out as usize].take();
        debug_assert_eq!(back, Some(input));
        Some(out)
    }

    /// The output currently fed by `input`.
    pub fn output_of(&self, input: PortCode) -> Option<PortCode> {
        self.in_dst[input as usize]
    }

    /// The input currently driving `output`.
    pub fn input_of(&self, output: PortCode) -> Option<PortCode> {
        self.out_src[output as usize]
    }

    /// Number of live connections.
    pub fn live_connections(&self) -> usize {
        self.in_dst.iter().filter(|c| c.is_some()).count()
    }

    /// Internal consistency check: the two maps are mutual inverses.
    pub fn invariants_hold(&self) -> bool {
        for (i, &d) in self.in_dst.iter().enumerate() {
            if let Some(o) = d {
                if self.out_src[o as usize] != Some(i as PortCode) {
                    return false;
                }
            }
        }
        for (o, &s) in self.out_src.iter().enumerate() {
            if let Some(i) = s {
                if self.in_dst[i as usize] != Some(o as PortCode) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unidirectional_any_to_any() {
        let mut x = Crossbar::new(4, false);
        for i in 0..4 {
            x.connect(i, (i + 1) % 4).unwrap();
        }
        assert_eq!(x.live_connections(), 4);
        assert!(x.invariants_hold());
    }

    #[test]
    fn exclusivity() {
        let mut x = Crossbar::new(4, false);
        x.connect(0, 2).unwrap();
        assert_eq!(x.connect(0, 3), Err(CrossbarError::InputBusy));
        assert_eq!(x.connect(1, 2), Err(CrossbarError::OutputBusy));
        assert_eq!(x.release_input(0), Some(2));
        x.connect(1, 2).unwrap();
        assert!(x.invariants_hold());
    }

    #[test]
    fn fig2_legality_matrix() {
        let k = 4u8;
        let mut x = Crossbar::new(k, true);
        // forward l_1 → r_2
        x.connect(1, k + 2).unwrap();
        x.release_input(1);
        // backward r_3 → l_0
        x.connect(k + 3, 0).unwrap();
        x.release_input(k + 3);
        // turnaround l_0 → l_2
        x.connect(0, 2).unwrap();
        x.release_input(0);
        // forbidden: same-port turnaround
        assert_eq!(x.connect(1, 1), Err(CrossbarError::SamePortTurnaround));
        // forbidden: r → r
        assert_eq!(x.connect(k, k + 1), Err(CrossbarError::ReascendForbidden));
        assert_eq!(x.live_connections(), 0);
    }

    #[test]
    fn bad_port_rejected() {
        let mut uni = Crossbar::new(4, false);
        assert_eq!(uni.connect(4, 0), Err(CrossbarError::BadPort));
        let mut bi = Crossbar::new(4, true);
        assert_eq!(bi.connect(8, 0), Err(CrossbarError::BadPort));
        bi.connect(7, 0).unwrap(); // r_3 → l_0 is fine
    }

    #[test]
    fn simultaneous_opposite_transfers() {
        // "two packets can be transmitted simultaneously in opposite
        // directions between neighboring switches": l_i → r_j and
        // r_j → l_i can coexist (distinct input and output devices).
        let k = 4u8;
        let mut x = Crossbar::new(k, true);
        x.connect(1, k + 2).unwrap();
        x.connect(k + 2, 1).unwrap();
        assert_eq!(x.live_connections(), 2);
        assert!(x.invariants_hold());
    }

    proptest! {
        #[test]
        fn prop_connect_release_preserves_invariants(ops in proptest::collection::vec((0u8..8, 0u8..8, proptest::bool::ANY), 1..200)) {
            let mut x = Crossbar::new(4, true);
            for (i, o, release) in ops {
                if release {
                    x.release_input(i);
                } else {
                    let _ = x.connect(i, o);
                }
                prop_assert!(x.invariants_hold());
            }
        }

        #[test]
        fn prop_no_double_drive(ops in proptest::collection::vec((0u8..8, 0u8..8), 1..100)) {
            // After any sequence of connects, every output has at most one
            // driver and every driver drives one output.
            let mut x = Crossbar::new(4, true);
            for (i, o) in ops {
                let _ = x.connect(i, o);
            }
            let mut seen = std::collections::BTreeSet::new();
            for o in 0..8u8 {
                if let Some(i) = x.input_of(o) {
                    prop_assert!(seen.insert(i), "input {i} drives two outputs");
                }
            }
        }
    }
}
