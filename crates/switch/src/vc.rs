//! Virtual-channel multiplexing of a physical channel (paper §2.2).
//!
//! Several virtual channels share one physical channel; each cycle the
//! physical channel transmits at most one flit. "To guarantee fairness,
//! channel multiplexing is usually accomplished at the flit level" — the
//! default [`VcMuxPolicy::RoundRobin`] rotates among the *ready* VCs, so
//! `k` active VCs each receive `W/k` of the bandwidth. The alternative
//! [`VcMuxPolicy::WinnerHolds`] keeps serving one worm until it blocks,
//! which is unfair but keeps whole worms together — the `ablation_vc_mux`
//! bench quantifies the difference (it is the mechanism behind the VMIN's
//! poor showing under permutation traffic, §5.3.3).

/// How a physical channel chooses among ready virtual channels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VcMuxPolicy {
    /// Fair flit-level round-robin (the paper's model).
    RoundRobin,
    /// Keep serving the last winner while it stays ready.
    WinnerHolds,
}

/// Multiplexer state for one physical channel.
#[derive(Clone, Debug)]
pub struct VcMux {
    policy: VcMuxPolicy,
    /// Index of the VC that transmitted last.
    last: usize,
}

impl VcMux {
    /// New multiplexer (initial priority at VC 0).
    pub fn new(policy: VcMuxPolicy) -> Self {
        VcMux { policy, last: 0 }
    }

    /// The policy in use.
    pub fn policy(&self) -> VcMuxPolicy {
        self.policy
    }

    /// Choose the VC to transmit this cycle among the `ready` ones (ready =
    /// has a flit to send and downstream buffer space). Returns `None`
    /// when no VC is ready. Updates internal priority state.
    pub fn select(&mut self, ready: &[bool]) -> Option<usize> {
        let n = ready.len();
        if n == 0 {
            return None;
        }
        let start = match self.policy {
            // Round-robin: lowest priority to the last winner.
            VcMuxPolicy::RoundRobin => (self.last + 1) % n,
            // Winner-holds: highest priority to the last winner.
            VcMuxPolicy::WinnerHolds => self.last % n,
        };
        for off in 0..n {
            let i = (start + off) % n;
            if ready[i] {
                self.last = i;
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_alternates_between_two_ready_vcs() {
        // Both VCs always ready → strict alternation → each gets W/2.
        let mut m = VcMux::new(VcMuxPolicy::RoundRobin);
        let seq: Vec<_> = (0..6).map(|_| m.select(&[true, true]).unwrap()).collect();
        assert_eq!(seq, vec![1, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn round_robin_full_bandwidth_when_alone() {
        // A single active VC gets every cycle — "each active virtual
        // channel should have an effective bandwidth of W/k".
        let mut m = VcMux::new(VcMuxPolicy::RoundRobin);
        for _ in 0..5 {
            assert_eq!(m.select(&[false, true]), Some(1));
        }
    }

    #[test]
    fn round_robin_three_way_fairness() {
        let mut m = VcMux::new(VcMuxPolicy::RoundRobin);
        let mut counts = [0u32; 3];
        for _ in 0..300 {
            counts[m.select(&[true, true, true]).unwrap()] += 1;
        }
        assert_eq!(counts, [100, 100, 100]);
    }

    #[test]
    fn winner_holds_sticks_until_blocked() {
        let mut m = VcMux::new(VcMuxPolicy::WinnerHolds);
        assert_eq!(m.select(&[true, true]), Some(0));
        assert_eq!(m.select(&[true, true]), Some(0));
        // VC 0 blocks → switch to VC 1 and stay there.
        assert_eq!(m.select(&[false, true]), Some(1));
        assert_eq!(m.select(&[true, true]), Some(1));
    }

    #[test]
    fn none_when_nothing_ready() {
        for p in [VcMuxPolicy::RoundRobin, VcMuxPolicy::WinnerHolds] {
            let mut m = VcMux::new(p);
            assert_eq!(m.select(&[false, false]), None);
            assert_eq!(m.select(&[]), None);
        }
    }
}
