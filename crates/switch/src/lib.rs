//! # minnet-switch
//!
//! Switch-level building blocks for the wormhole simulation engine:
//!
//! * [`buffer::FlitBuffer`] — the single-flit input buffer the paper
//!   attaches to every (virtual) channel (§5: "Each input channel in a
//!   switch has a buffer the size of a single flit");
//! * [`arbiter::Arbiter`] — random and round-robin arbitration among
//!   competing requests (the paper specifies *random* choice among free
//!   lanes/forward channels; round-robin is kept as an ablation);
//! * [`vc::VcMux`] — flit-level multiplexing of one physical channel among
//!   virtual channels (§2.2: fair round-robin so `k` active VCs each get
//!   `W/k` bandwidth; a winner-holds policy is kept as an ablation);
//! * [`crossbar::Crossbar`] — explicit crossbar connection state enforcing
//!   the connection-legality rules of Fig. 2 (no `r → r` connection, no
//!   same-port turnaround), used to validate the engine in tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod buffer;
pub mod crossbar;
pub mod vc;

pub use arbiter::{Arbiter, ArbiterKind};
pub use buffer::{FlitBuffer, FlitFifo, FlitRef};
pub use crossbar::{Crossbar, CrossbarError};
pub use vc::{VcMux, VcMuxPolicy};
