//! Output arbitration.
//!
//! When several requests compete for one resource (a free lane of a dilated
//! port, a virtual channel, an output of a BMIN switch during the forward
//! phase), an arbiter picks the winner. The paper specifies *random*
//! selection ("packets destined for a particular output port are randomly
//! distributed to one of the free channels of that port"; forward-channel
//! choice "resolved by randomly selecting from among those … not
//! blocked"). A round-robin arbiter is provided as an ablation
//! (`ablation_arbiter` in the bench crate).

use rand::{Rng, RngExt};

/// The arbitration policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArbiterKind {
    /// Uniform random among eligible requests (the paper's policy).
    Random,
    /// Cyclic priority: first eligible at or after the last grant + 1.
    RoundRobin,
}

/// A stateful arbiter over a fixed-size request vector.
#[derive(Clone, Debug)]
pub struct Arbiter {
    kind: ArbiterKind,
    ptr: usize,
}

impl Arbiter {
    /// Create an arbiter with the given policy.
    pub fn new(kind: ArbiterKind) -> Self {
        Arbiter { kind, ptr: 0 }
    }

    /// The policy in use.
    pub fn kind(&self) -> ArbiterKind {
        self.kind
    }

    /// Grant among `n` requests that are *all* eligible — the common case
    /// when the caller has already filtered its request list down to the
    /// eligible subset (the engine's lane allocator does). Draws the same
    /// RNG stream and round-robin pointer updates as
    /// [`Arbiter::pick`] over an all-`true` slice of length `n`, so the
    /// two entry points are interchangeable without perturbing seeded
    /// runs; this one just skips materializing the flag slice.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn pick_uncontested<R: Rng>(&mut self, n: usize, rng: &mut R) -> usize {
        assert!(n > 0, "pick_uncontested needs at least one request");
        match self.kind {
            ArbiterKind::Random => rng.random_range(0..n),
            ArbiterKind::RoundRobin => {
                let i = self.ptr % n;
                self.ptr = (i + 1) % n;
                i
            }
        }
    }

    /// Grant one of the eligible slots (`eligible[i] == true`), or `None`
    /// if none is eligible. `rng` is only consulted by the random policy.
    pub fn pick<R: Rng>(&mut self, eligible: &[bool], rng: &mut R) -> Option<usize> {
        let count = eligible.iter().filter(|&&e| e).count();
        if count == 0 {
            return None;
        }
        match self.kind {
            ArbiterKind::Random => {
                let mut nth = rng.random_range(0..count);
                for (i, &e) in eligible.iter().enumerate() {
                    if e {
                        if nth == 0 {
                            return Some(i);
                        }
                        nth -= 1;
                    }
                }
                unreachable!("counted an eligible slot that disappeared")
            }
            ArbiterKind::RoundRobin => {
                let n = eligible.len();
                for off in 0..n {
                    let i = (self.ptr + off) % n;
                    if eligible[i] {
                        self.ptr = (i + 1) % n;
                        return Some(i);
                    }
                }
                unreachable!("count > 0 but no eligible slot found")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn empty_and_none_eligible() {
        let mut rng = SmallRng::seed_from_u64(1);
        for kind in [ArbiterKind::Random, ArbiterKind::RoundRobin] {
            let mut a = Arbiter::new(kind);
            assert_eq!(a.pick(&[], &mut rng), None);
            assert_eq!(a.pick(&[false, false], &mut rng), None);
        }
    }

    #[test]
    fn single_eligible_always_wins() {
        let mut rng = SmallRng::seed_from_u64(2);
        for kind in [ArbiterKind::Random, ArbiterKind::RoundRobin] {
            let mut a = Arbiter::new(kind);
            for _ in 0..10 {
                assert_eq!(a.pick(&[false, true, false], &mut rng), Some(1));
            }
        }
    }

    #[test]
    fn round_robin_cycles_fairly() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut a = Arbiter::new(ArbiterKind::RoundRobin);
        let all = [true, true, true];
        let picks: Vec<_> = (0..6).map(|_| a.pick(&all, &mut rng).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_ineligible() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut a = Arbiter::new(ArbiterKind::RoundRobin);
        assert_eq!(a.pick(&[true, false, true], &mut rng), Some(0));
        assert_eq!(a.pick(&[true, false, true], &mut rng), Some(2));
        assert_eq!(a.pick(&[true, false, true], &mut rng), Some(0));
    }

    #[test]
    fn random_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut a = Arbiter::new(ArbiterKind::Random);
        let mut counts = [0u32; 4];
        let trials = 40_000;
        for _ in 0..trials {
            let i = a.pick(&[true, true, true, true], &mut rng).unwrap();
            counts[i] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / trials as f64;
            assert!((frac - 0.25).abs() < 0.02, "skewed arbiter: {counts:?}");
        }
    }

    #[test]
    fn uncontested_matches_all_true_pick() {
        // The two entry points must consume the same RNG stream and
        // produce the same grants — the engine relies on this to drop the
        // flag-slice round-trip without perturbing seeded runs.
        for kind in [ArbiterKind::Random, ArbiterKind::RoundRobin] {
            let mut slow = Arbiter::new(kind);
            let mut fast = Arbiter::new(kind);
            let mut rng_slow = SmallRng::seed_from_u64(40);
            let mut rng_fast = SmallRng::seed_from_u64(40);
            for n in [1usize, 2, 3, 7, 2, 5, 1, 4] {
                let flags = vec![true; n];
                let want = slow.pick(&flags, &mut rng_slow).unwrap();
                let got = fast.pick_uncontested(n, &mut rng_fast);
                assert_eq!(want, got, "{kind:?} diverged at n={n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn uncontested_rejects_zero() {
        let mut rng = SmallRng::seed_from_u64(41);
        Arbiter::new(ArbiterKind::Random).pick_uncontested(0, &mut rng);
    }

    #[test]
    fn random_respects_eligibility() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut a = Arbiter::new(ArbiterKind::Random);
        for _ in 0..1000 {
            let i = a.pick(&[false, true, false, true], &mut rng).unwrap();
            assert!(i == 1 || i == 3);
        }
    }
}
