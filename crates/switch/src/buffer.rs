//! The single-flit channel buffer.
//!
//! Wormhole switching keeps buffering minimal: every (virtual) channel has
//! a buffer holding exactly one flit at its receiving end. A flit is
//! identified by the packet it belongs to and its position in that packet
//! (`0` is the header; `len - 1` the tail).

/// A reference to one flit of one packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlitRef {
    /// Engine-assigned packet slot index.
    pub packet: u32,
    /// Flit position within the packet (0 = header).
    pub index: u32,
}

impl FlitRef {
    /// Whether this is the header flit.
    #[inline]
    pub fn is_header(&self) -> bool {
        self.index == 0
    }

    /// Whether this is the tail flit of a packet of length `len`.
    #[inline]
    pub fn is_tail(&self, len: u32) -> bool {
        self.index + 1 == len
    }
}

/// A one-flit buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FlitBuffer(Option<FlitRef>);

impl FlitBuffer {
    /// An empty buffer.
    pub const EMPTY: FlitBuffer = FlitBuffer(None);

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// The buffered flit, if any.
    #[inline]
    pub fn peek(&self) -> Option<FlitRef> {
        self.0
    }

    /// Store a flit.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is occupied — a single-flit buffer can never
    /// accept a second flit; the engine must check emptiness first.
    #[inline]
    pub fn put(&mut self, f: FlitRef) {
        assert!(self.0.is_none(), "overwriting an occupied flit buffer");
        self.0 = Some(f);
    }

    /// Remove and return the buffered flit.
    #[inline]
    pub fn take(&mut self) -> Option<FlitRef> {
        self.0.take()
    }

    /// Empty the buffer unconditionally (used when resetting lanes).
    #[inline]
    pub fn clear(&mut self) {
        self.0 = None;
    }
}

/// A bounded flit FIFO: the generalisation of [`FlitBuffer`] to deeper
/// channel buffers (the paper's conclusions flag the one-flit buffer as a
/// condition of its results; the engine's `buffer_depth` knob uses this
/// to explore deeper buffering).
#[derive(Clone, Debug)]
pub struct FlitFifo {
    slots: std::collections::VecDeque<FlitRef>,
    capacity: usize,
}

impl FlitFifo {
    /// A FIFO holding up to `capacity` flits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "a channel buffer holds at least one flit");
        FlitFifo {
            slots: std::collections::VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of buffered flits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether the FIFO is full.
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.capacity
    }

    /// The oldest buffered flit.
    pub fn front(&self) -> Option<FlitRef> {
        self.slots.front().copied()
    }

    /// Append a flit.
    ///
    /// # Panics
    ///
    /// Panics when full — the engine must check [`FlitFifo::is_full`].
    pub fn push(&mut self, f: FlitRef) {
        assert!(!self.is_full(), "pushing into a full flit FIFO");
        // Flits of one worm arrive in order; catch engine bugs early.
        if let Some(back) = self.slots.back() {
            debug_assert_eq!(back.packet, f.packet, "foreign flit interleaved in a lane");
            debug_assert_eq!(back.index + 1, f.index, "flit order violated");
        }
        self.slots.push_back(f);
    }

    /// Remove and return the oldest flit.
    pub fn pop(&mut self) -> Option<FlitRef> {
        self.slots.pop_front()
    }

    /// Drop all contents (lane reset).
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_take_cycle() {
        let mut b = FlitBuffer::EMPTY;
        assert!(b.is_empty());
        let f = FlitRef { packet: 3, index: 0 };
        b.put(f);
        assert!(!b.is_empty());
        assert_eq!(b.peek(), Some(f));
        assert_eq!(b.take(), Some(f));
        assert!(b.is_empty());
        assert_eq!(b.take(), None);
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn double_put_panics() {
        let mut b = FlitBuffer::EMPTY;
        b.put(FlitRef { packet: 0, index: 0 });
        b.put(FlitRef { packet: 1, index: 0 });
    }

    #[test]
    fn header_and_tail_predicates() {
        let h = FlitRef { packet: 0, index: 0 };
        assert!(h.is_header());
        assert!(!h.is_tail(8));
        assert!(h.is_tail(1)); // single-flit packet: header is tail
        let t = FlitRef { packet: 0, index: 7 };
        assert!(t.is_tail(8));
        assert!(!t.is_header());
    }

    #[test]
    fn clear_resets() {
        let mut b = FlitBuffer::EMPTY;
        b.put(FlitRef { packet: 0, index: 4 });
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn fifo_ordering_and_bounds() {
        let mut f = FlitFifo::new(3);
        assert!(f.is_empty());
        assert_eq!(f.capacity(), 3);
        for i in 0..3 {
            f.push(FlitRef { packet: 9, index: i });
        }
        assert!(f.is_full());
        assert_eq!(f.len(), 3);
        assert_eq!(f.front(), Some(FlitRef { packet: 9, index: 0 }));
        assert_eq!(f.pop(), Some(FlitRef { packet: 9, index: 0 }));
        assert_eq!(f.pop(), Some(FlitRef { packet: 9, index: 1 }));
        f.push(FlitRef { packet: 9, index: 3 });
        assert_eq!(f.pop(), Some(FlitRef { packet: 9, index: 2 }));
        assert_eq!(f.pop(), Some(FlitRef { packet: 9, index: 3 }));
        assert_eq!(f.pop(), None);
    }

    #[test]
    #[should_panic(expected = "full flit FIFO")]
    fn fifo_overflow_panics() {
        let mut f = FlitFifo::new(1);
        f.push(FlitRef { packet: 0, index: 0 });
        f.push(FlitRef { packet: 0, index: 1 });
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn fifo_zero_capacity_rejected() {
        let _ = FlitFifo::new(0);
    }

    #[test]
    fn fifo_depth_one_matches_single_buffer() {
        let mut f = FlitFifo::new(1);
        let x = FlitRef { packet: 1, index: 0 };
        f.push(x);
        assert!(f.is_full());
        assert_eq!(f.pop(), Some(x));
        assert!(f.is_empty());
        f.clear();
        assert!(f.is_empty());
    }
}
