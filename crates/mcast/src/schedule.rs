//! Multicast schedules as trees of chained unicasts.

use minnet_sim::{run_chained, ChainedMsg, EngineConfig, SimError, SimReport};
use minnet_topology::NetworkGraph;

/// A multicast schedule: the chained unicasts realising one multicast.
#[derive(Clone, Debug)]
pub struct McastSchedule {
    /// The source node.
    pub source: u32,
    /// The destination set, in schedule order.
    pub destinations: Vec<u32>,
    /// The chained messages (parents precede children).
    pub msgs: Vec<ChainedMsg>,
}

impl McastSchedule {
    /// Number of unicast messages (= number of destinations).
    pub fn message_count(&self) -> usize {
        self.msgs.len()
    }

    /// The depth of the dependency tree (sequential chain = 1 for the
    /// root sends; binomial ≈ log₂).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.msgs.len()];
        let mut max = 0;
        for (i, m) in self.msgs.iter().enumerate() {
            depth[i] = match m.after {
                None => 1,
                Some(p) => depth[p] + 1,
            };
            max = max.max(depth[i]);
        }
        max
    }
}

fn check_args(source: u32, destinations: &[u32]) {
    assert!(!destinations.is_empty(), "multicast needs destinations");
    assert!(
        !destinations.contains(&source),
        "the source is not a destination"
    );
    let mut sorted: Vec<u32> = destinations.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), destinations.len(), "duplicate destinations");
}

/// The source sends to each destination itself, back to back.
pub fn sequential(source: u32, destinations: &[u32], len: u32) -> McastSchedule {
    check_args(source, destinations);
    let msgs = destinations
        .iter()
        .map(|&d| ChainedMsg {
            src: source,
            dst: d,
            len,
            earliest: 0,
            after: None, // the one-port source serializes them FCFS
        })
        .collect();
    McastSchedule {
        source,
        destinations: destinations.to_vec(),
        msgs,
    }
}

/// Recursive-halving (binomial-tree) multicast over the given destination
/// order: the sender delivers to the head of the upper half, then both
/// halves proceed in parallel.
pub fn binomial(source: u32, destinations: &[u32], len: u32) -> McastSchedule {
    check_args(source, destinations);
    let mut msgs: Vec<ChainedMsg> = Vec::with_capacity(destinations.len());
    // recurse(sender, sender's enabling message, destinations to cover)
    fn recurse(
        sender: u32,
        enabler: Option<usize>,
        dsts: &[u32],
        len: u32,
        msgs: &mut Vec<ChainedMsg>,
    ) {
        if dsts.is_empty() {
            return;
        }
        let mid = dsts.len() / 2;
        let leader = dsts[mid];
        let idx = msgs.len();
        msgs.push(ChainedMsg {
            src: sender,
            dst: leader,
            len,
            earliest: 0,
            after: enabler,
        });
        // The new leader covers the upper half (minus itself) …
        recurse(leader, Some(idx), &dsts[mid + 1..], len, msgs);
        // … while the original sender continues with the lower half.
        recurse(sender, enabler, &dsts[..mid], len, msgs);
    }
    recurse(source, None, destinations, len, &mut msgs);
    McastSchedule {
        source,
        destinations: destinations.to_vec(),
        msgs,
    }
}

/// [`binomial`] over the address-sorted destination list: on a fat tree
/// the sorted halves align with subtrees, keeping the many late rounds
/// local (short turnaround paths, disjoint channels).
pub fn binomial_by_address(source: u32, destinations: &[u32], len: u32) -> McastSchedule {
    let mut sorted: Vec<u32> = destinations.to_vec();
    sorted.sort_unstable();
    binomial(source, &sorted, len)
}

/// Outcome of simulating one multicast.
#[derive(Clone, Debug)]
pub struct McastOutcome {
    /// The full engine report (per-unicast deliveries are tagged with the
    /// schedule's message indices).
    pub report: SimReport,
    /// Cycle at which the last destination received its tail flit.
    pub completion: u64,
}

/// Simulate a multicast schedule on an idle network. `overhead` is the
/// software latency (cycles) a relay node needs between receiving the
/// message and starting its own sends.
pub fn run_multicast(
    net: &NetworkGraph,
    schedule: &McastSchedule,
    overhead: u64,
    cfg: &EngineConfig,
) -> Result<McastOutcome, SimError> {
    let report = run_chained(net, &schedule.msgs, overhead, cfg)?;
    let deliveries = report.deliveries.as_ref().ok_or(SimError::Internal {
        what: "chained runs always record deliveries",
    })?;
    if deliveries.len() != schedule.msgs.len() {
        return Err(SimError::Config(format!(
            "only {} of {} multicast messages delivered within the horizon",
            deliveries.len(),
            schedule.msgs.len()
        )));
    }
    let completion = deliveries.iter().map(|d| d.done_time).max().unwrap_or(0);
    Ok(McastOutcome { report, completion })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnet_topology::{build_bmin, build_unidir, Geometry, UnidirKind};
    use std::collections::BTreeSet;

    fn cfg() -> EngineConfig {
        EngineConfig {
            warmup: 0,
            measure: 2_000_000,
            ..EngineConfig::default()
        }
    }

    fn covered(s: &McastSchedule) -> BTreeSet<u32> {
        s.msgs.iter().map(|m| m.dst).collect()
    }

    #[test]
    fn schedules_cover_every_destination_once() {
        let dsts: Vec<u32> = (1..16).collect();
        for s in [
            sequential(0, &dsts, 32),
            binomial(0, &dsts, 32),
            binomial_by_address(0, &dsts, 32),
        ] {
            assert_eq!(s.message_count(), dsts.len());
            assert_eq!(covered(&s), dsts.iter().copied().collect());
        }
    }

    #[test]
    fn senders_have_received_first() {
        // Every message's source is either the root or the destination of
        // its enabling message.
        let dsts: Vec<u32> = (1..32).collect();
        let s = binomial(0, &dsts, 16);
        for m in &s.msgs {
            match m.after {
                None => assert_eq!(m.src, 0),
                Some(p) => assert_eq!(m.src, s.msgs[p].dst),
            }
        }
    }

    #[test]
    fn depths() {
        let dsts: Vec<u32> = (1..16).collect();
        assert_eq!(sequential(0, &dsts, 8).depth(), 1);
        // 15 destinations: binomial reaches them in ceil(log2(16)) = 4
        // rounds.
        assert_eq!(binomial(0, &dsts, 8).depth(), 4);
        let one = binomial(0, &[5], 8);
        assert_eq!(one.depth(), 1);
    }

    #[test]
    fn binomial_beats_sequential_broadcast() {
        let g = Geometry::new(4, 3);
        let len = 128u32;
        let dsts: Vec<u32> = (1..64).collect();
        for net in [build_unidir(g, UnidirKind::Cube, 2), build_bmin(g)] {
            let seq = run_multicast(&net, &sequential(0, &dsts, len), 10, &cfg()).unwrap();
            let bin =
                run_multicast(&net, &binomial_by_address(0, &dsts, len), 10, &cfg()).unwrap();
            assert!(
                bin.completion * 3 < seq.completion,
                "binomial {} vs sequential {}",
                bin.completion,
                seq.completion
            );
        }
    }

    #[test]
    fn relays_respect_software_overhead() {
        // With a huge overhead, total time is dominated by depth × overhead.
        let g = Geometry::new(2, 3);
        let net = build_unidir(g, UnidirKind::Cube, 1);
        let dsts: Vec<u32> = (1..8).collect();
        let s = binomial(0, &dsts, 8);
        let small = run_multicast(&net, &s, 0, &cfg()).unwrap().completion;
        let big = run_multicast(&net, &s, 1_000, &cfg()).unwrap().completion;
        let depth = s.depth() as u64;
        assert!(big >= (depth - 1) * 1_000, "big {} depth {}", big, depth);
        assert!(big <= small + depth * 1_000 + 50);
    }

    #[test]
    fn address_order_helps_on_the_fat_tree() {
        // Broadcast on the BMIN: address-sorted halving keeps late rounds
        // inside subtrees; a deliberately interleaved order forces long
        // cross-tree paths in every round.
        let g = Geometry::new(4, 3);
        let net = build_bmin(g);
        let len = 256u32;
        let sorted: Vec<u32> = (1..64).collect();
        // Bit-reversed-ish interleaving: maximal spread across subtrees.
        let mut scattered = sorted.clone();
        scattered.sort_by_key(|&d| (d % 4, d / 4));
        let good = run_multicast(&net, &binomial(0, &sorted, len), 10, &cfg())
            .unwrap()
            .completion;
        let bad = run_multicast(&net, &binomial(0, &scattered, len), 10, &cfg())
            .unwrap()
            .completion;
        assert!(
            good <= bad,
            "address order ({good}) should not lose to scattered order ({bad})"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate destinations")]
    fn rejects_duplicates() {
        let _ = binomial(0, &[1, 2, 1], 8);
    }

    #[test]
    #[should_panic(expected = "not a destination")]
    fn rejects_source_in_destinations() {
        let _ = sequential(3, &[1, 3], 8);
    }
}
