//! # minnet-mcast
//!
//! Software (unicast-based) multicast on switch-based wormhole networks —
//! the research direction §6 of the paper points to (its ref \[32\], "Optimal
//! Software Multicast in Wormhole-Routed Multistage Networks", studies
//! exactly this on the same networks).
//!
//! None of the paper's switches replicate flits, so a multicast from one
//! source to `m` destinations must be built from unicasts: nodes that have
//! already received the message retransmit it to others. A schedule is a
//! *tree of dependent unicasts*, executed by the engine's
//! [`minnet_sim::run_chained`] with a per-relay software `overhead`.
//!
//! Three schedules are provided:
//!
//! * [`schedule::sequential`] — the source sends to every destination
//!   itself (`m` serialized sends; the one-port source is the bottleneck);
//! * [`schedule::binomial`] — recursive halving: every informed node keeps
//!   retransmitting, reaching all destinations in `⌈log₂(m+1)⌉` rounds;
//! * [`schedule::binomial_by_address`] — binomial over the
//!   address-sorted destination list. On a BMIN/fat tree, sorted ranges
//!   align with subtrees, so late (cheap, parallel) rounds stay inside
//!   subtrees and early rounds do the long hops — the locality idea
//!   behind the optimal schedules of ref \[32\].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod schedule;

pub use schedule::{
    binomial, binomial_by_address, run_multicast, sequential, McastOutcome, McastSchedule,
};
