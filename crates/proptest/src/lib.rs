//! Vendored stand-in for the `proptest` crate.
//!
//! The workspace's property tests use a small slice of proptest's API;
//! this offline-friendly shim provides exactly that slice:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * strategies: integer and `f64` ranges, tuples, [`Just`],
//!   [`prop_oneof!`], [`Strategy::prop_map`], [`collection::vec`], and
//!   [`bool::ANY`].
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! drawn from a *fixed* seed derived from the test name (every run tests
//! the same inputs, so failures reproduce without a persistence file), and
//! there is no shrinking (the failing values are printed instead).

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// How a [`proptest!`] block runs its cases.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test generator: the seed is an FNV-1a hash of the
/// test name, so each test explores its own fixed input sequence.
pub fn test_rng(test_name: &str) -> SmallRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h)
}

/// A value generator. Unlike real proptest there is no shrink tree; a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`] to mix arms of
    /// different concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed arms — the engine of [`prop_oneof!`].
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: std::fmt::Debug> OneOf<T> {
    /// Choose uniformly among `arms` each sample.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T: std::fmt::Debug> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::RngExt;

    /// Strategy for `Vec`s with lengths drawn from `sizes` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    /// A `Vec` of values from `element`, with a length in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty size range");
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.random_range(self.sizes.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::RngExt;

    /// Strategy producing fair booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    /// A fair boolean.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut SmallRng) -> bool {
            rng.random()
        }
    }
}

/// The usual imports for property tests.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Declare property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a normal `#[test]` that samples its arguments `cases` times
/// from a fixed per-test RNG and runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                #[allow(unused_imports)]
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $( let $arg = ($strat).sample(&mut rng); )+
                    // Err(()) marks a case discarded by prop_assume!.
                    let _outcome: ::std::result::Result<(), ()> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                }
            }
        )*
    };
}

/// Uniform choice among strategy arms (arms may have different concrete
/// strategy types as long as their `Value`s agree).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        #[allow(unused_imports)]
        use $crate::Strategy as _;
        $crate::OneOf::new(vec![$(($arm).boxed()),+])
    }};
}

/// Assert within a property body (no shrinking; behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discard the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        prop_oneof![Just(1u32), Just(2u32), (10u32..20).prop_map(|x| x * 2)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_tuple_shapes(v in crate::collection::vec((0u8..8, crate::bool::ANY), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (a, _b) in v {
                prop_assert!(a < 8);
            }
        }

        #[test]
        fn oneof_and_assume(x in small(), gate in 0u32..10) {
            prop_assume!(gate > 0);
            prop_assert!(x == 1 || x == 2 || (20..40).contains(&x));
            prop_assert_ne!(gate, 0);
        }
    }

    #[test]
    fn fixed_seed_reproduces() {
        let mut a = crate::test_rng("name");
        let mut b = crate::test_rng("name");
        let s = 0u64..100;
        for _ in 0..100 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
