//! Deterministic fault plans: scheduled link / lane / switch failures.
//!
//! The paper's §3 comparison is a path-diversity story — TMIN has exactly
//! one path per (source, destination) pair, DMIN offers `d` parallel lanes
//! per hop, BMIN's turnaround routing `k^t` alternative paths. A fault
//! model turns that diversity into a measurable *resilience* axis: kill a
//! channel and ask which networks still deliver.
//!
//! A [`FaultPlan`] is a plain list of [`Fault`]s — each a
//! [`FaultTarget`] (physical channel, single virtual lane, or whole
//! switch) with an onset cycle and an optional repair cycle. Plans are
//! data: deterministic, seed-reproducible (see
//! [`FaultPlan::random_inter_stage_links`]), and comparable. Nothing here
//! knows about worms or time beyond cycle numbers; the simulation engine
//! consumes the *compiled* form.
//!
//! [`FaultPlan::compile`] lowers a plan into a [`FaultSchedule`]: the
//! sorted sequence of **fault epochs** — maximal intervals over which the
//! set of dead lanes is constant — each carrying dense dead-lane and
//! dead-channel masks (lane `li = channel * vcs + vc`, the engine's lane
//! indexing). An engine run walks the epochs monotonically; everything
//! expensive (per-epoch masked routing tables, deadlock re-checks) is
//! computed once per epoch at compile time, never per cycle.

use crate::graph::{ChannelId, Endpoint, NetworkGraph, SwitchId};

/// What a single fault takes down.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultTarget {
    /// A whole physical channel — every virtual lane of it.
    Channel(ChannelId),
    /// One virtual lane of a physical channel.
    Lane {
        /// The physical channel.
        channel: ChannelId,
        /// The virtual-channel index within it.
        vc: u8,
    },
    /// A whole switch — every channel entering or leaving it.
    Switch(SwitchId),
}

/// One scheduled failure: a target, its onset, and an optional repair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fault {
    /// What fails.
    pub target: FaultTarget,
    /// First cycle the target is dead.
    pub onset: u64,
    /// First cycle the target is live again; `None` = permanent.
    pub repair: Option<u64>,
}

impl Fault {
    /// A permanent fault present from cycle 0.
    pub fn permanent(target: FaultTarget) -> Fault {
        Fault {
            target,
            onset: 0,
            repair: None,
        }
    }

    /// A transient fault dead over `[onset, repair)`.
    pub fn transient(target: FaultTarget, onset: u64, repair: u64) -> Fault {
        Fault {
            target,
            onset,
            repair: Some(repair),
        }
    }

    /// Whether the fault is active at cycle `t`.
    fn active_at(&self, t: u64) -> bool {
        self.onset <= t && self.repair.is_none_or(|r| t < r)
    }
}

/// A deterministic schedule of failures, validated against a network and
/// compiled into per-epoch dead masks by [`FaultPlan::compile`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

/// Everything [`FaultPlan::check`] can reject: targets outside the
/// network, degenerate fault windows, and duplicated targets whose
/// windows overlap. Each variant names the offending fault by its index
/// in the plan, so scenario layers can point at the exact declaration.
///
/// A degenerate window (`repair ≤ onset`) or an overlapping duplicate
/// used to compile into a silent no-op / redundant mask; both are almost
/// certainly authoring mistakes, so they are typed errors instead.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultPlanError {
    /// A channel target beyond the network's channel count.
    ChannelOutOfRange {
        /// Index of the offending fault in the plan.
        fault: usize,
        /// The out-of-range channel.
        channel: ChannelId,
        /// Channels the network actually has.
        num_channels: u32,
    },
    /// A lane target whose virtual-channel index is beyond the lane count.
    LaneOutOfRange {
        /// Index of the offending fault in the plan.
        fault: usize,
        /// The out-of-range virtual-channel index.
        vc: u8,
        /// Lanes each channel actually has.
        vcs: u8,
    },
    /// A switch target beyond the network's switch count.
    SwitchOutOfRange {
        /// Index of the offending fault in the plan.
        fault: usize,
        /// The out-of-range switch.
        switch: SwitchId,
        /// Switches the network actually has.
        num_switches: u32,
    },
    /// A transient whose window `[onset, repair)` is empty — a
    /// zero-duration fault, or a repair at/before its onset. Compiling
    /// it would silently mask nothing.
    EmptyWindow {
        /// Index of the offending fault in the plan.
        fault: usize,
        /// First dead cycle.
        onset: u64,
        /// Scheduled repair cycle (≤ onset).
        repair: u64,
    },
    /// Two faults hit the *same* target over overlapping windows — a
    /// duplicated declaration whose second entry changes nothing.
    DuplicateTarget {
        /// Index of the earlier overlapping fault.
        first: usize,
        /// Index of the later overlapping fault.
        second: usize,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FaultPlanError::ChannelOutOfRange {
                fault,
                channel,
                num_channels,
            } => write!(
                f,
                "fault {fault}: channel {channel} out of range \
                 (network has {num_channels} channels)"
            ),
            FaultPlanError::LaneOutOfRange { fault, vc, vcs } => write!(
                f,
                "fault {fault}: lane {vc} out of range (channels have {vcs} lanes)"
            ),
            FaultPlanError::SwitchOutOfRange {
                fault,
                switch,
                num_switches,
            } => write!(
                f,
                "fault {fault}: switch {switch} out of range \
                 (network has {num_switches} switches)"
            ),
            FaultPlanError::EmptyWindow {
                fault,
                onset,
                repair,
            } => write!(
                f,
                "fault {fault}: repair cycle {repair} is not after onset {onset} \
                 (the fault window is empty and would mask nothing)"
            ),
            FaultPlanError::DuplicateTarget { first, second } => write!(
                f,
                "faults {first} and {second} hit the same target over overlapping \
                 windows; merge them into one fault"
            ),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// SplitMix64 step — the workspace's standard seed-expansion primitive,
/// public so fault/chaos plan generators in other crates derive their
/// randomness from a bare `u64` without an RNG dependency.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no faults ever).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Append a fault.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// Builder-style [`FaultPlan::push`].
    #[must_use]
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.push(fault);
        self
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// `count` distinct permanent single-channel faults drawn uniformly
    /// (seed-reproducibly) from the network's **inter-stage** links —
    /// channels connecting two switches, the interesting targets for the
    /// path-diversity comparison (injection/ejection channels are
    /// single-attached by construction and disconnect a node trivially).
    ///
    /// # Errors
    ///
    /// Reports a `count` exceeding the number of inter-stage links.
    pub fn random_inter_stage_links(
        net: &NetworkGraph,
        count: usize,
        seed: u64,
    ) -> Result<FaultPlan, String> {
        let mut pool = inter_stage_channels(net);
        if count > pool.len() {
            return Err(format!(
                "requested {count} faulted links but the network has only {} \
                 inter-stage channels",
                pool.len()
            ));
        }
        let mut state = seed;
        let mut plan = FaultPlan::new();
        // Partial Fisher–Yates: the first `count` entries after i swaps
        // are a uniform sample without replacement.
        for i in 0..count {
            let j = i + (splitmix64(&mut state) % (pool.len() - i) as u64) as usize;
            pool.swap(i, j);
            plan.push(Fault::permanent(FaultTarget::Channel(pool[i])));
        }
        Ok(plan)
    }

    /// Check every fault against `net` and the lane count `vcs` — the
    /// string-typed form of [`FaultPlan::check`], kept for the older
    /// `Result<_, String>` call sites.
    ///
    /// # Errors
    ///
    /// Anything [`FaultPlan::check`] reports, as its display form.
    pub fn validate(&self, net: &NetworkGraph, vcs: u8) -> Result<(), String> {
        self.check(net, vcs).map_err(|e| e.to_string())
    }

    /// Check every fault against `net` and the lane count `vcs`.
    ///
    /// # Errors
    ///
    /// Reports out-of-range channels/switches/lanes, degenerate windows
    /// (repair at/before onset — a silent no-op mask), and duplicated
    /// targets with overlapping windows, naming the offending fault(s).
    pub fn check(&self, net: &NetworkGraph, vcs: u8) -> Result<(), FaultPlanError> {
        let nch = net.num_channels() as u32;
        let nsw = net.num_switches() as u32;
        for (i, f) in self.faults.iter().enumerate() {
            match f.target {
                FaultTarget::Channel(c) if c >= nch => {
                    return Err(FaultPlanError::ChannelOutOfRange {
                        fault: i,
                        channel: c,
                        num_channels: nch,
                    });
                }
                FaultTarget::Lane { channel, vc } => {
                    if channel >= nch {
                        return Err(FaultPlanError::ChannelOutOfRange {
                            fault: i,
                            channel,
                            num_channels: nch,
                        });
                    }
                    if vc >= vcs {
                        return Err(FaultPlanError::LaneOutOfRange { fault: i, vc, vcs });
                    }
                }
                FaultTarget::Switch(s) if s >= nsw => {
                    return Err(FaultPlanError::SwitchOutOfRange {
                        fault: i,
                        switch: s,
                        num_switches: nsw,
                    });
                }
                _ => {}
            }
            if let Some(r) = f.repair {
                if r <= f.onset {
                    return Err(FaultPlanError::EmptyWindow {
                        fault: i,
                        onset: f.onset,
                        repair: r,
                    });
                }
            }
        }
        // Duplicate detection: sort fault indices by (target, onset) so
        // overlap on the same target is a same-neighbour property —
        // window ends are monotone within a target because each window
        // must start at or after the previous one's onset. Back-to-back
        // windows (one's repair == the next's onset) are legal; only a
        // true overlap is a duplicate.
        let key = |t: FaultTarget| -> (u8, u32, u32) {
            match t {
                FaultTarget::Channel(c) => (0, c, 0),
                FaultTarget::Lane { channel, vc } => (1, channel, u32::from(vc)),
                FaultTarget::Switch(s) => (2, s, 0),
            }
        };
        let mut order: Vec<usize> = (0..self.faults.len()).collect();
        order.sort_by_key(|&i| (key(self.faults[i].target), self.faults[i].onset, i));
        for w in order.windows(2) {
            let (a, b) = (self.faults[w[0]], self.faults[w[1]]);
            if key(a.target) == key(b.target) && a.repair.is_none_or(|r| b.onset < r) {
                return Err(FaultPlanError::DuplicateTarget {
                    first: w[0].min(w[1]),
                    second: w[0].max(w[1]),
                });
            }
        }
        Ok(())
    }

    /// Lower the plan into its [`FaultSchedule`] for a network with `vcs`
    /// virtual lanes per channel: one epoch per maximal interval with a
    /// constant dead set, each with dense lane/channel masks.
    ///
    /// # Errors
    ///
    /// Anything [`FaultPlan::validate`] reports.
    pub fn compile(&self, net: &NetworkGraph, vcs: u8) -> Result<FaultSchedule, String> {
        self.validate(net, vcs)?;
        let nch = net.num_channels();
        let lanes = nch * vcs as usize;

        // Epoch boundaries: cycle 0 plus every onset/repair, deduplicated.
        let mut starts: Vec<u64> = vec![0];
        for f in &self.faults {
            starts.push(f.onset);
            if let Some(r) = f.repair {
                starts.push(r);
            }
        }
        starts.sort_unstable();
        starts.dedup();

        let mut epochs = Vec::with_capacity(starts.len());
        for &start in &starts {
            let mut dead_lane = vec![false; lanes];
            for f in &self.faults {
                if !f.active_at(start) {
                    continue;
                }
                let kill_channel = |c: ChannelId, dead_lane: &mut Vec<bool>| {
                    let base = c as usize * vcs as usize;
                    dead_lane[base..base + vcs as usize].fill(true);
                };
                match f.target {
                    FaultTarget::Channel(c) => kill_channel(c, &mut dead_lane),
                    FaultTarget::Lane { channel, vc } => {
                        dead_lane[channel as usize * vcs as usize + vc as usize] = true;
                    }
                    FaultTarget::Switch(s) => {
                        for c in 0..nch as u32 {
                            let ch = net.channel(c);
                            let touches = |e: Endpoint| e.switch() == Some(s);
                            if touches(ch.src) || touches(ch.dst) {
                                kill_channel(c, &mut dead_lane);
                            }
                        }
                    }
                }
            }
            let dead_channel: Vec<bool> = (0..nch)
                .map(|c| {
                    dead_lane[c * vcs as usize..(c + 1) * vcs as usize]
                        .iter()
                        .all(|&d| d)
                })
                .collect();
            let any_dead = dead_lane.iter().any(|&d| d);
            epochs.push(FaultEpoch {
                start,
                dead_lane,
                dead_channel,
                any_dead,
            });
        }
        Ok(FaultSchedule { epochs })
    }
}

/// One fault epoch: a start cycle and the dead set that holds from there
/// until the next epoch begins.
#[derive(Clone, Debug)]
pub struct FaultEpoch {
    /// First cycle of the epoch.
    pub start: u64,
    /// `dead_lane[channel * vcs + vc]` — lane is unusable this epoch.
    pub dead_lane: Vec<bool>,
    /// `dead_channel[channel]` — *every* lane of the channel is dead.
    pub dead_channel: Vec<bool>,
    /// Whether any lane at all is dead this epoch (fast-path gate).
    pub any_dead: bool,
}

/// A [`FaultPlan`] compiled against one network: the time-sorted epochs
/// with their dead masks. Epoch 0 always starts at cycle 0.
#[derive(Clone, Debug)]
pub struct FaultSchedule {
    epochs: Vec<FaultEpoch>,
}

/// Every channel connecting two switches, ascending — the standard
/// fault-target pool. Injection/ejection channels are excluded: they are
/// single-attached by construction, so killing one disconnects a node
/// trivially rather than exercising path diversity.
pub fn inter_stage_channels(net: &NetworkGraph) -> Vec<ChannelId> {
    (0..net.num_channels() as u32)
        .filter(|&c| {
            let ch = net.channel(c);
            ch.src.switch().is_some() && ch.dst.switch().is_some()
        })
        .collect()
}

impl FaultSchedule {
    /// The epochs, sorted by start cycle; the first starts at 0.
    pub fn epochs(&self) -> &[FaultEpoch] {
        &self.epochs
    }

    /// Whether no epoch kills anything — the schedule of an empty plan
    /// (or one whose faults cancel out), behaviourally a no-fault run.
    pub fn is_trivial(&self) -> bool {
        self.epochs.iter().all(|e| !e.any_dead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Geometry;
    use crate::bmin::build_bmin;
    use crate::unidir::{build_unidir, UnidirKind};

    fn tmin() -> NetworkGraph {
        build_unidir(Geometry::new(4, 3), UnidirKind::Cube, 1)
    }

    #[test]
    fn empty_plan_compiles_trivial() {
        let net = tmin();
        let s = FaultPlan::new().compile(&net, 1).unwrap();
        assert_eq!(s.epochs().len(), 1);
        assert_eq!(s.epochs()[0].start, 0);
        assert!(s.is_trivial());
        assert!(!s.epochs()[0].any_dead);
    }

    #[test]
    fn permanent_channel_fault_masks_all_lanes() {
        let net = tmin();
        let s = FaultPlan::new()
            .with(Fault::permanent(FaultTarget::Channel(5)))
            .compile(&net, 2)
            .unwrap();
        assert_eq!(s.epochs().len(), 1);
        let e = &s.epochs()[0];
        assert!(e.dead_lane[10] && e.dead_lane[11]);
        assert!(e.dead_channel[5]);
        assert!(!e.dead_channel[4]);
        assert!(e.any_dead && !s.is_trivial());
    }

    #[test]
    fn lane_fault_keeps_channel_partially_alive() {
        let net = tmin();
        let s = FaultPlan::new()
            .with(Fault::permanent(FaultTarget::Lane { channel: 3, vc: 1 }))
            .compile(&net, 2)
            .unwrap();
        let e = &s.epochs()[0];
        assert!(!e.dead_lane[6] && e.dead_lane[7]);
        assert!(!e.dead_channel[3], "one live lane keeps the channel up");
    }

    #[test]
    fn transient_fault_builds_three_epochs() {
        let net = tmin();
        let s = FaultPlan::new()
            .with(Fault::transient(FaultTarget::Channel(7), 100, 250))
            .compile(&net, 1)
            .unwrap();
        let starts: Vec<u64> = s.epochs().iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![0, 100, 250]);
        assert!(!s.epochs()[0].dead_channel[7]);
        assert!(s.epochs()[1].dead_channel[7]);
        assert!(!s.epochs()[2].dead_channel[7]);
        assert!(!s.is_trivial());
    }

    #[test]
    fn switch_fault_kills_every_incident_channel() {
        let net = tmin();
        let s = FaultPlan::new()
            .with(Fault::permanent(FaultTarget::Switch(0)))
            .compile(&net, 1)
            .unwrap();
        let e = &s.epochs()[0];
        for c in 0..net.num_channels() as u32 {
            let ch = net.channel(c);
            let incident =
                ch.src.switch() == Some(0) || ch.dst.switch() == Some(0);
            assert_eq!(e.dead_channel[c as usize], incident, "channel {c}");
        }
    }

    #[test]
    fn validation_catches_bad_faults() {
        let net = tmin();
        let nch = net.num_channels() as u32;
        let bad = FaultPlan::new().with(Fault::permanent(FaultTarget::Channel(nch)));
        assert!(bad.validate(&net, 1).unwrap_err().contains("out of range"));
        let bad = FaultPlan::new()
            .with(Fault::permanent(FaultTarget::Lane { channel: 0, vc: 2 }));
        assert!(bad.validate(&net, 2).unwrap_err().contains("lane 2"));
        let bad = FaultPlan::new()
            .with(Fault::permanent(FaultTarget::Switch(10_000)));
        assert!(bad.validate(&net, 1).is_err());
        let bad = FaultPlan::new().with(Fault {
            target: FaultTarget::Channel(0),
            onset: 10,
            repair: Some(10),
        });
        assert!(bad.validate(&net, 1).unwrap_err().contains("repair"));
    }

    #[test]
    fn random_links_are_seed_reproducible_and_inter_stage() {
        for net in [tmin(), build_bmin(Geometry::new(4, 3))] {
            let a = FaultPlan::random_inter_stage_links(&net, 5, 42).unwrap();
            let b = FaultPlan::random_inter_stage_links(&net, 5, 42).unwrap();
            assert_eq!(a, b, "same seed, same plan");
            let c = FaultPlan::random_inter_stage_links(&net, 5, 43).unwrap();
            assert_ne!(a, c, "different seed, different plan");
            let mut seen = Vec::new();
            for f in a.faults() {
                let FaultTarget::Channel(ch) = f.target else {
                    panic!("link faults must target channels");
                };
                assert!(f.onset == 0 && f.repair.is_none());
                let desc = net.channel(ch);
                assert!(desc.src.switch().is_some() && desc.dst.switch().is_some());
                assert!(!seen.contains(&ch), "duplicate faulted link");
                seen.push(ch);
            }
        }
    }

    #[test]
    fn random_links_reject_oversized_requests() {
        let net = tmin();
        assert!(FaultPlan::random_inter_stage_links(&net, 100_000, 1).is_err());
    }

    #[test]
    fn check_types_degenerate_windows() {
        let net = tmin();
        // Zero-duration transient: repair == onset.
        let bad = FaultPlan::new().with(Fault {
            target: FaultTarget::Channel(0),
            onset: 10,
            repair: Some(10),
        });
        assert_eq!(
            bad.check(&net, 1),
            Err(FaultPlanError::EmptyWindow {
                fault: 0,
                onset: 10,
                repair: 10
            })
        );
        // Repair before onset.
        let bad = FaultPlan::new().with(Fault {
            target: FaultTarget::Channel(0),
            onset: 10,
            repair: Some(3),
        });
        assert!(matches!(
            bad.check(&net, 1),
            Err(FaultPlanError::EmptyWindow { repair: 3, .. })
        ));
        // The string form still mentions "repair" for legacy matching.
        assert!(bad.validate(&net, 1).unwrap_err().contains("repair"));
    }

    #[test]
    fn check_types_out_of_range_targets() {
        let net = tmin();
        let nch = net.num_channels() as u32;
        let bad = FaultPlan::new().with(Fault::permanent(FaultTarget::Channel(nch)));
        assert!(matches!(
            bad.check(&net, 1),
            Err(FaultPlanError::ChannelOutOfRange { channel, .. }) if channel == nch
        ));
        let bad =
            FaultPlan::new().with(Fault::permanent(FaultTarget::Lane { channel: 0, vc: 2 }));
        assert_eq!(
            bad.check(&net, 2),
            Err(FaultPlanError::LaneOutOfRange {
                fault: 0,
                vc: 2,
                vcs: 2
            })
        );
        let bad = FaultPlan::new().with(Fault::permanent(FaultTarget::Switch(10_000)));
        assert!(matches!(
            bad.check(&net, 1),
            Err(FaultPlanError::SwitchOutOfRange { .. })
        ));
    }

    #[test]
    fn check_rejects_overlapping_duplicate_targets() {
        let net = tmin();
        // Same channel, overlapping windows — a duplicate.
        let bad = FaultPlan::new()
            .with(Fault::transient(FaultTarget::Channel(3), 0, 100))
            .with(Fault::transient(FaultTarget::Channel(3), 50, 150));
        assert_eq!(
            bad.check(&net, 1),
            Err(FaultPlanError::DuplicateTarget {
                first: 0,
                second: 1
            })
        );
        // Two permanents on the same switch overlap by definition.
        let bad = FaultPlan::new()
            .with(Fault::permanent(FaultTarget::Switch(1)))
            .with(Fault::permanent(FaultTarget::Switch(1)));
        assert!(matches!(
            bad.check(&net, 1),
            Err(FaultPlanError::DuplicateTarget { .. })
        ));
        // Insertion order does not hide the overlap.
        let bad = FaultPlan::new()
            .with(Fault::transient(FaultTarget::Channel(3), 50, 150))
            .with(Fault::transient(FaultTarget::Channel(3), 0, 100));
        assert!(matches!(
            bad.check(&net, 1),
            Err(FaultPlanError::DuplicateTarget { .. })
        ));
    }

    #[test]
    fn check_allows_back_to_back_and_distinct_targets() {
        let net = tmin();
        // Adjacent windows on one channel (repair == next onset) are a
        // legal restart pattern, not a duplicate.
        let ok = FaultPlan::new()
            .with(Fault::transient(FaultTarget::Channel(3), 0, 100))
            .with(Fault::transient(FaultTarget::Channel(3), 100, 200))
            .with(Fault::transient(FaultTarget::Channel(3), 250, 300));
        assert_eq!(ok.check(&net, 1), Ok(()));
        assert_eq!(ok.compile(&net, 1).unwrap().epochs().len(), 5);
        // Overlapping windows on *different* target classes are fine even
        // when they touch the same channel.
        let ok = FaultPlan::new()
            .with(Fault::transient(FaultTarget::Channel(3), 0, 100))
            .with(Fault::transient(FaultTarget::Lane { channel: 3, vc: 0 }, 50, 150));
        assert_eq!(ok.check(&net, 2), Ok(()));
    }

    #[test]
    fn fault_plan_error_displays_and_chains() {
        let e = FaultPlanError::DuplicateTarget { first: 1, second: 4 };
        assert!(e.to_string().contains("faults 1 and 4"));
        let _: &dyn std::error::Error = &e;
    }

    #[test]
    fn inter_stage_pool_excludes_terminal_channels() {
        for net in [tmin(), build_bmin(Geometry::new(4, 3))] {
            let pool = inter_stage_channels(&net);
            assert!(!pool.is_empty());
            assert!(pool.windows(2).all(|w| w[0] < w[1]), "ascending, distinct");
            for &c in &pool {
                let d = net.channel(c);
                assert!(d.src.switch().is_some() && d.dst.switch().is_some());
            }
            let terminals = net.num_channels() - pool.len();
            // Every node has exactly one injection and one ejection channel.
            assert_eq!(terminals, 2 * net.geometry.nodes() as usize);
        }
    }
}
