//! Deterministic fault plans: scheduled link / lane / switch failures.
//!
//! The paper's §3 comparison is a path-diversity story — TMIN has exactly
//! one path per (source, destination) pair, DMIN offers `d` parallel lanes
//! per hop, BMIN's turnaround routing `k^t` alternative paths. A fault
//! model turns that diversity into a measurable *resilience* axis: kill a
//! channel and ask which networks still deliver.
//!
//! A [`FaultPlan`] is a plain list of [`Fault`]s — each a
//! [`FaultTarget`] (physical channel, single virtual lane, or whole
//! switch) with an onset cycle and an optional repair cycle. Plans are
//! data: deterministic, seed-reproducible (see
//! [`FaultPlan::random_inter_stage_links`]), and comparable. Nothing here
//! knows about worms or time beyond cycle numbers; the simulation engine
//! consumes the *compiled* form.
//!
//! [`FaultPlan::compile`] lowers a plan into a [`FaultSchedule`]: the
//! sorted sequence of **fault epochs** — maximal intervals over which the
//! set of dead lanes is constant — each carrying dense dead-lane and
//! dead-channel masks (lane `li = channel * vcs + vc`, the engine's lane
//! indexing). An engine run walks the epochs monotonically; everything
//! expensive (per-epoch masked routing tables, deadlock re-checks) is
//! computed once per epoch at compile time, never per cycle.

use crate::graph::{ChannelId, Endpoint, NetworkGraph, SwitchId};

/// What a single fault takes down.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultTarget {
    /// A whole physical channel — every virtual lane of it.
    Channel(ChannelId),
    /// One virtual lane of a physical channel.
    Lane {
        /// The physical channel.
        channel: ChannelId,
        /// The virtual-channel index within it.
        vc: u8,
    },
    /// A whole switch — every channel entering or leaving it.
    Switch(SwitchId),
}

/// One scheduled failure: a target, its onset, and an optional repair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fault {
    /// What fails.
    pub target: FaultTarget,
    /// First cycle the target is dead.
    pub onset: u64,
    /// First cycle the target is live again; `None` = permanent.
    pub repair: Option<u64>,
}

impl Fault {
    /// A permanent fault present from cycle 0.
    pub fn permanent(target: FaultTarget) -> Fault {
        Fault {
            target,
            onset: 0,
            repair: None,
        }
    }

    /// A transient fault dead over `[onset, repair)`.
    pub fn transient(target: FaultTarget, onset: u64, repair: u64) -> Fault {
        Fault {
            target,
            onset,
            repair: Some(repair),
        }
    }

    /// Whether the fault is active at cycle `t`.
    fn active_at(&self, t: u64) -> bool {
        self.onset <= t && self.repair.is_none_or(|r| t < r)
    }
}

/// A deterministic schedule of failures, validated against a network and
/// compiled into per-epoch dead masks by [`FaultPlan::compile`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

/// SplitMix64 step — the plan generator's only source of randomness, so
/// plans are reproducible from a bare `u64` without an RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no faults ever).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Append a fault.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// Builder-style [`FaultPlan::push`].
    #[must_use]
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.push(fault);
        self
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// `count` distinct permanent single-channel faults drawn uniformly
    /// (seed-reproducibly) from the network's **inter-stage** links —
    /// channels connecting two switches, the interesting targets for the
    /// path-diversity comparison (injection/ejection channels are
    /// single-attached by construction and disconnect a node trivially).
    ///
    /// # Errors
    ///
    /// Reports a `count` exceeding the number of inter-stage links.
    pub fn random_inter_stage_links(
        net: &NetworkGraph,
        count: usize,
        seed: u64,
    ) -> Result<FaultPlan, String> {
        let mut pool: Vec<ChannelId> = (0..net.num_channels() as u32)
            .filter(|&c| {
                let ch = net.channel(c);
                ch.src.switch().is_some() && ch.dst.switch().is_some()
            })
            .collect();
        if count > pool.len() {
            return Err(format!(
                "requested {count} faulted links but the network has only {} \
                 inter-stage channels",
                pool.len()
            ));
        }
        let mut state = seed;
        let mut plan = FaultPlan::new();
        // Partial Fisher–Yates: the first `count` entries after i swaps
        // are a uniform sample without replacement.
        for i in 0..count {
            let j = i + (splitmix64(&mut state) % (pool.len() - i) as u64) as usize;
            pool.swap(i, j);
            plan.push(Fault::permanent(FaultTarget::Channel(pool[i])));
        }
        Ok(plan)
    }

    /// Check every fault against `net` and the lane count `vcs`.
    ///
    /// # Errors
    ///
    /// Reports out-of-range channels/switches/lanes and repairs not after
    /// their onsets, naming the offending fault.
    pub fn validate(&self, net: &NetworkGraph, vcs: u8) -> Result<(), String> {
        let nch = net.num_channels() as u32;
        let nsw = net.num_switches() as u32;
        for (i, f) in self.faults.iter().enumerate() {
            match f.target {
                FaultTarget::Channel(c) if c >= nch => {
                    return Err(format!(
                        "fault {i}: channel {c} out of range (network has {nch} channels)"
                    ));
                }
                FaultTarget::Lane { channel, vc } => {
                    if channel >= nch {
                        return Err(format!(
                            "fault {i}: channel {channel} out of range \
                             (network has {nch} channels)"
                        ));
                    }
                    if vc >= vcs {
                        return Err(format!(
                            "fault {i}: lane {vc} out of range (channels have {vcs} lanes)"
                        ));
                    }
                }
                FaultTarget::Switch(s) if s >= nsw => {
                    return Err(format!(
                        "fault {i}: switch {s} out of range (network has {nsw} switches)"
                    ));
                }
                _ => {}
            }
            if let Some(r) = f.repair {
                if r <= f.onset {
                    return Err(format!(
                        "fault {i}: repair cycle {r} is not after onset {}",
                        f.onset
                    ));
                }
            }
        }
        Ok(())
    }

    /// Lower the plan into its [`FaultSchedule`] for a network with `vcs`
    /// virtual lanes per channel: one epoch per maximal interval with a
    /// constant dead set, each with dense lane/channel masks.
    ///
    /// # Errors
    ///
    /// Anything [`FaultPlan::validate`] reports.
    pub fn compile(&self, net: &NetworkGraph, vcs: u8) -> Result<FaultSchedule, String> {
        self.validate(net, vcs)?;
        let nch = net.num_channels();
        let lanes = nch * vcs as usize;

        // Epoch boundaries: cycle 0 plus every onset/repair, deduplicated.
        let mut starts: Vec<u64> = vec![0];
        for f in &self.faults {
            starts.push(f.onset);
            if let Some(r) = f.repair {
                starts.push(r);
            }
        }
        starts.sort_unstable();
        starts.dedup();

        let mut epochs = Vec::with_capacity(starts.len());
        for &start in &starts {
            let mut dead_lane = vec![false; lanes];
            for f in &self.faults {
                if !f.active_at(start) {
                    continue;
                }
                let kill_channel = |c: ChannelId, dead_lane: &mut Vec<bool>| {
                    let base = c as usize * vcs as usize;
                    dead_lane[base..base + vcs as usize].fill(true);
                };
                match f.target {
                    FaultTarget::Channel(c) => kill_channel(c, &mut dead_lane),
                    FaultTarget::Lane { channel, vc } => {
                        dead_lane[channel as usize * vcs as usize + vc as usize] = true;
                    }
                    FaultTarget::Switch(s) => {
                        for c in 0..nch as u32 {
                            let ch = net.channel(c);
                            let touches = |e: Endpoint| e.switch() == Some(s);
                            if touches(ch.src) || touches(ch.dst) {
                                kill_channel(c, &mut dead_lane);
                            }
                        }
                    }
                }
            }
            let dead_channel: Vec<bool> = (0..nch)
                .map(|c| {
                    dead_lane[c * vcs as usize..(c + 1) * vcs as usize]
                        .iter()
                        .all(|&d| d)
                })
                .collect();
            let any_dead = dead_lane.iter().any(|&d| d);
            epochs.push(FaultEpoch {
                start,
                dead_lane,
                dead_channel,
                any_dead,
            });
        }
        Ok(FaultSchedule { epochs })
    }
}

/// One fault epoch: a start cycle and the dead set that holds from there
/// until the next epoch begins.
#[derive(Clone, Debug)]
pub struct FaultEpoch {
    /// First cycle of the epoch.
    pub start: u64,
    /// `dead_lane[channel * vcs + vc]` — lane is unusable this epoch.
    pub dead_lane: Vec<bool>,
    /// `dead_channel[channel]` — *every* lane of the channel is dead.
    pub dead_channel: Vec<bool>,
    /// Whether any lane at all is dead this epoch (fast-path gate).
    pub any_dead: bool,
}

/// A [`FaultPlan`] compiled against one network: the time-sorted epochs
/// with their dead masks. Epoch 0 always starts at cycle 0.
#[derive(Clone, Debug)]
pub struct FaultSchedule {
    epochs: Vec<FaultEpoch>,
}

impl FaultSchedule {
    /// The epochs, sorted by start cycle; the first starts at 0.
    pub fn epochs(&self) -> &[FaultEpoch] {
        &self.epochs
    }

    /// Whether no epoch kills anything — the schedule of an empty plan
    /// (or one whose faults cancel out), behaviourally a no-fault run.
    pub fn is_trivial(&self) -> bool {
        self.epochs.iter().all(|e| !e.any_dead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Geometry;
    use crate::bmin::build_bmin;
    use crate::unidir::{build_unidir, UnidirKind};

    fn tmin() -> NetworkGraph {
        build_unidir(Geometry::new(4, 3), UnidirKind::Cube, 1)
    }

    #[test]
    fn empty_plan_compiles_trivial() {
        let net = tmin();
        let s = FaultPlan::new().compile(&net, 1).unwrap();
        assert_eq!(s.epochs().len(), 1);
        assert_eq!(s.epochs()[0].start, 0);
        assert!(s.is_trivial());
        assert!(!s.epochs()[0].any_dead);
    }

    #[test]
    fn permanent_channel_fault_masks_all_lanes() {
        let net = tmin();
        let s = FaultPlan::new()
            .with(Fault::permanent(FaultTarget::Channel(5)))
            .compile(&net, 2)
            .unwrap();
        assert_eq!(s.epochs().len(), 1);
        let e = &s.epochs()[0];
        assert!(e.dead_lane[10] && e.dead_lane[11]);
        assert!(e.dead_channel[5]);
        assert!(!e.dead_channel[4]);
        assert!(e.any_dead && !s.is_trivial());
    }

    #[test]
    fn lane_fault_keeps_channel_partially_alive() {
        let net = tmin();
        let s = FaultPlan::new()
            .with(Fault::permanent(FaultTarget::Lane { channel: 3, vc: 1 }))
            .compile(&net, 2)
            .unwrap();
        let e = &s.epochs()[0];
        assert!(!e.dead_lane[6] && e.dead_lane[7]);
        assert!(!e.dead_channel[3], "one live lane keeps the channel up");
    }

    #[test]
    fn transient_fault_builds_three_epochs() {
        let net = tmin();
        let s = FaultPlan::new()
            .with(Fault::transient(FaultTarget::Channel(7), 100, 250))
            .compile(&net, 1)
            .unwrap();
        let starts: Vec<u64> = s.epochs().iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![0, 100, 250]);
        assert!(!s.epochs()[0].dead_channel[7]);
        assert!(s.epochs()[1].dead_channel[7]);
        assert!(!s.epochs()[2].dead_channel[7]);
        assert!(!s.is_trivial());
    }

    #[test]
    fn switch_fault_kills_every_incident_channel() {
        let net = tmin();
        let s = FaultPlan::new()
            .with(Fault::permanent(FaultTarget::Switch(0)))
            .compile(&net, 1)
            .unwrap();
        let e = &s.epochs()[0];
        for c in 0..net.num_channels() as u32 {
            let ch = net.channel(c);
            let incident =
                ch.src.switch() == Some(0) || ch.dst.switch() == Some(0);
            assert_eq!(e.dead_channel[c as usize], incident, "channel {c}");
        }
    }

    #[test]
    fn validation_catches_bad_faults() {
        let net = tmin();
        let nch = net.num_channels() as u32;
        let bad = FaultPlan::new().with(Fault::permanent(FaultTarget::Channel(nch)));
        assert!(bad.validate(&net, 1).unwrap_err().contains("out of range"));
        let bad = FaultPlan::new()
            .with(Fault::permanent(FaultTarget::Lane { channel: 0, vc: 2 }));
        assert!(bad.validate(&net, 2).unwrap_err().contains("lane 2"));
        let bad = FaultPlan::new()
            .with(Fault::permanent(FaultTarget::Switch(10_000)));
        assert!(bad.validate(&net, 1).is_err());
        let bad = FaultPlan::new().with(Fault {
            target: FaultTarget::Channel(0),
            onset: 10,
            repair: Some(10),
        });
        assert!(bad.validate(&net, 1).unwrap_err().contains("repair"));
    }

    #[test]
    fn random_links_are_seed_reproducible_and_inter_stage() {
        for net in [tmin(), build_bmin(Geometry::new(4, 3))] {
            let a = FaultPlan::random_inter_stage_links(&net, 5, 42).unwrap();
            let b = FaultPlan::random_inter_stage_links(&net, 5, 42).unwrap();
            assert_eq!(a, b, "same seed, same plan");
            let c = FaultPlan::random_inter_stage_links(&net, 5, 43).unwrap();
            assert_ne!(a, c, "different seed, different plan");
            let mut seen = Vec::new();
            for f in a.faults() {
                let FaultTarget::Channel(ch) = f.target else {
                    panic!("link faults must target channels");
                };
                assert!(f.onset == 0 && f.repair.is_none());
                let desc = net.channel(ch);
                assert!(desc.src.switch().is_some() && desc.dst.switch().is_some());
                assert!(!seen.contains(&ch), "duplicate faulted link");
                seen.push(ch);
            }
        }
    }

    #[test]
    fn random_links_reject_oversized_requests() {
        let net = tmin();
        assert!(FaultPlan::random_inter_stage_links(&net, 100_000, 1).is_err());
    }
}
