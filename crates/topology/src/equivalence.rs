//! Topological-equivalence utilities: path counting, the banyan property,
//! and the rightmost-stage reduction of Fig. 12.
//!
//! All Delta-class MINs are banyan (exactly one path per source/destination
//! pair); cube and butterfly TMINs are topologically and functionally
//! equivalent [Wu & Feng]. The BMIN has `k^t` shortest paths (Theorem 1).
//! For `k = 2`, the rightmost BMIN stage is redundant and can be removed
//! (Fig. 12): each 2×2 switch at stage `n-1` only ever performs a fixed
//! crossover between its two left ports, so the stage collapses to a wiring.
//!
//! The path counter walks the channel graph under the *connection legality*
//! rules of the switches (Fig. 2): unidirectional switches connect any
//! input to any output; bidirectional switches allow forward (`l→r`),
//! backward (`r→l`) and turnaround (`l_i→l_j`, `i ≠ j`) connections but
//! never `r→r`.

use crate::graph::{ChannelId, Direction, Endpoint, NetworkGraph, NodeId, Side};
use std::collections::VecDeque;

/// Legal next channels for a worm whose header just arrived over `c`.
///
/// Returns an empty list when `c` terminates at a node.
pub fn legal_successors(net: &NetworkGraph, c: ChannelId, out: &mut Vec<ChannelId>) {
    out.clear();
    let ch = net.channel(c);
    let (sw, side, port) = match ch.dst {
        Endpoint::Node(_) => return,
        Endpoint::Switch { sw, side, port } => (sw, side, port),
    };
    let k = net.geometry.k();
    if !net.kind.is_bidirectional() {
        out.extend_from_slice(net.out_all(sw));
        return;
    }
    match side {
        Side::Left => {
            // Arrived moving forward: may continue forward on any right
            // output, or turn around to a *different* left output.
            out.extend_from_slice(net.out_port_span(sw, 0, u32::from(port)));
            out.extend_from_slice(net.out_port_span(sw, u32::from(port) + 1, 2 * k));
        }
        Side::Right => {
            // Arrived moving backward: left outputs only.
            out.extend_from_slice(net.out_port_span(sw, 0, k));
        }
    }
}

/// Count the shortest channel-paths from node `s` to node `d` under the
/// switch legality rules. Returns `(length_in_channels, path_count)`, or
/// `None` if `d` is unreachable (or `s == d`, which needs no network path).
pub fn count_shortest_paths(net: &NetworkGraph, s: NodeId, d: NodeId) -> Option<(u32, u64)> {
    count_shortest_paths_spliced(net, None, s, d)
}

/// Like [`count_shortest_paths`], but with an optional splice map: if
/// `splice[c] = Some(c2)`, entering channel `c` immediately continues as
/// channel `c2` at no extra hop (the two channels are fused into one wire,
/// as in the Fig. 12 stage removal).
pub fn count_shortest_paths_spliced(
    net: &NetworkGraph,
    splice: Option<&[Option<ChannelId>]>,
    s: NodeId,
    d: NodeId,
) -> Option<(u32, u64)> {
    if s == d {
        return None;
    }
    let resolve = |c: ChannelId| -> ChannelId {
        match splice {
            Some(map) => map[c as usize].unwrap_or(c),
            None => c,
        }
    };
    let nch = net.num_channels();
    let mut dist = vec![u32::MAX; nch];
    let mut count = vec![0u64; nch];
    let start = resolve(net.inject(s));
    let target = net.eject(d);
    dist[start as usize] = 1;
    count[start as usize] = 1;
    let mut queue = VecDeque::new();
    queue.push_back(start);
    let mut succ = Vec::new();
    while let Some(c) = queue.pop_front() {
        if c == target {
            // BFS guarantees the first pop of `target` is at its final
            // distance; counts into it keep accumulating from same-level
            // predecessors processed earlier, so finish the level.
        }
        legal_successors(net, c, &mut succ);
        let base = dist[c as usize];
        let cnt = count[c as usize];
        for &raw in &succ {
            let v = resolve(raw) as usize;
            if dist[v] == u32::MAX {
                dist[v] = base + 1;
                count[v] = cnt;
                queue.push_back(v as ChannelId);
            } else if dist[v] == base + 1 {
                count[v] += cnt;
            }
        }
    }
    if dist[target as usize] == u32::MAX {
        None
    } else {
        Some((dist[target as usize], count[target as usize]))
    }
}

/// Whether the network is banyan: exactly one path between every
/// source/destination pair.
pub fn is_banyan(net: &NetworkGraph) -> bool {
    let n = net.geometry.nodes();
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            match count_shortest_paths(net, s, d) {
                Some((_, 1)) => {}
                _ => return false,
            }
        }
    }
    true
}

/// Histogram of shortest-path lengths over all ordered pairs: entry `(len,
/// pairs)` sorted by length. Two networks with the same profile are
/// plausibly functionally equivalent; Delta networks all share the profile
/// `{n+1: N(N-1)}`.
pub fn path_length_profile(net: &NetworkGraph) -> Vec<(u32, u64)> {
    let n = net.geometry.nodes();
    let mut map = std::collections::BTreeMap::new();
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            if let Some((len, _)) = count_shortest_paths(net, s, d) {
                *map.entry(len).or_insert(0u64) += 1;
            }
        }
    }
    map.into_iter().collect()
}

/// The Fig. 12 reduction for a `k = 2` BMIN: a splice map fusing each
/// forward channel into stage `n-1` with the backward channel that leaves
/// the *other* left port of the same switch (a fixed crossover — see the
/// module docs for why the rightmost 2×2 stage never routes straight).
///
/// # Panics
///
/// Panics if the network is not a BMIN with `k = 2`.
pub fn bmin_rightmost_stage_splice(net: &NetworkGraph) -> Vec<Option<ChannelId>> {
    assert!(net.kind.is_bidirectional(), "splice applies to BMINs");
    assert_eq!(net.geometry.k(), 2, "Fig. 12 reduction requires k = 2");
    let top = (net.geometry.n() - 1) as u8;
    let mut map = vec![None; net.num_channels()];
    for (idx, ch) in net.channels.iter().enumerate() {
        if ch.dir != Direction::Forward || ch.level != top {
            continue;
        }
        let (sw, port) = match ch.dst {
            Endpoint::Switch { sw, port, .. } => (sw, port),
            _ => unreachable!("forward inter-stage channels end at switches"),
        };
        let other = 1 - u32::from(port);
        let lanes = net.out_port(sw, other);
        assert_eq!(lanes.len(), 1, "BMIN ports carry a single lane");
        map[idx] = Some(lanes[0]);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Geometry;
    use crate::bmin::build_bmin;
    use crate::unidir::{build_unidir, UnidirKind};

    #[test]
    fn tmins_are_banyan() {
        for kind in [UnidirKind::Cube, UnidirKind::Butterfly] {
            for g in [Geometry::new(2, 3), Geometry::new(4, 2), Geometry::new(4, 3)] {
                let net = build_unidir(g, kind, 1);
                assert!(is_banyan(&net), "{kind:?} {g:?}");
            }
        }
    }

    #[test]
    fn dilated_min_path_counts() {
        // With dilation d, each of the n-1 inter-stage hops has d lane
        // choices: d^{n-1} channel-paths, all of length n+1.
        let g = Geometry::new(4, 3);
        let net = build_unidir(g, UnidirKind::Cube, 2);
        for s in 0..8u32 {
            for d in 56..64u32 {
                let (len, count) = count_shortest_paths(&net, s, d).unwrap();
                assert_eq!(len, 4);
                assert_eq!(count, 4); // 2^(3-1)
            }
        }
    }

    #[test]
    fn unidirectional_path_length_is_n_plus_1() {
        for kind in [UnidirKind::Cube, UnidirKind::Butterfly] {
            let g = Geometry::new(4, 3);
            let net = build_unidir(g, kind, 1);
            let profile = path_length_profile(&net);
            assert_eq!(profile, vec![(4, 64 * 63)]);
        }
    }

    #[test]
    fn cube_and_butterfly_share_profile() {
        // Functional equivalence evidence (Wu & Feng): identical
        // shortest-path-length profiles.
        let g = Geometry::new(2, 4);
        let cube = path_length_profile(&build_unidir(g, UnidirKind::Cube, 1));
        let butterfly = path_length_profile(&build_unidir(g, UnidirKind::Butterfly, 1));
        assert_eq!(cube, butterfly);
    }

    #[test]
    fn all_delta_wirings_are_banyan_with_same_profile() {
        // Omega and baseline belong to the same topological-equivalence
        // class (Wu & Feng) — banyan, constant path length n+1.
        let g = Geometry::new(2, 3);
        let reference = path_length_profile(&build_unidir(g, UnidirKind::Cube, 1));
        for kind in [UnidirKind::Omega, UnidirKind::Baseline] {
            let net = build_unidir(g, kind, 1);
            assert!(is_banyan(&net), "{kind:?}");
            assert_eq!(path_length_profile(&net), reference, "{kind:?}");
        }
    }

    #[test]
    fn bmin_shortest_path_counts_match_theorem_1() {
        // Theorem 1: k^t shortest paths of length 2(t+1).
        for g in [Geometry::new(2, 3), Geometry::new(2, 4), Geometry::new(4, 2), Geometry::new(4, 3)] {
            let net = build_bmin(g);
            for s in g.addresses() {
                for d in g.addresses() {
                    if s == d {
                        continue;
                    }
                    let t = g.first_difference(s, d).unwrap();
                    let (len, count) = count_shortest_paths(&net, s.0, d.0).unwrap();
                    assert_eq!(len, 2 * (t + 1), "len {s}→{d}");
                    assert_eq!(count, (g.k() as u64).pow(t), "count {s}→{d}");
                }
            }
        }
    }

    #[test]
    fn fig9_fig10_examples() {
        // Fig. 9: 8-node, 2×2 switches — t=2 gives 4 paths, t=1 gives 2.
        let g2 = Geometry::new(2, 3);
        let net2 = build_bmin(g2);
        let s = g2.parse_addr("001").unwrap().0;
        let d = g2.parse_addr("101").unwrap().0;
        assert_eq!(count_shortest_paths(&net2, s, d), Some((6, 4)));
        let d1 = g2.parse_addr("010").unwrap().0;
        assert_eq!(count_shortest_paths(&net2, s, d1), Some((4, 2)));
        // Fig. 10: 16-node, 4×4 switches — one path (t=0) and four (t=1).
        let g4 = Geometry::new(4, 2);
        let net4 = build_bmin(g4);
        assert_eq!(count_shortest_paths(&net4, 0, 1), Some((2, 1)));
        assert_eq!(count_shortest_paths(&net4, 0, 7), Some((4, 4)));
    }

    #[test]
    fn fig12_rightmost_stage_removal() {
        // The spliced (stage-removed) k=2 BMIN preserves path multiplicity;
        // pairs that turned at the top stage lose exactly one hop.
        for g in [Geometry::new(2, 3), Geometry::new(2, 4)] {
            let net = build_bmin(g);
            let splice = bmin_rightmost_stage_splice(&net);
            for s in g.addresses() {
                for d in g.addresses() {
                    if s == d {
                        continue;
                    }
                    let t = g.first_difference(s, d).unwrap();
                    let (len, count) = count_shortest_paths(&net, s.0, d.0).unwrap();
                    let (len2, count2) =
                        count_shortest_paths_spliced(&net, Some(&splice), s.0, d.0).unwrap();
                    assert_eq!(count2, count, "{s}→{d}");
                    let expect = if t == g.n() - 1 { len - 1 } else { len };
                    assert_eq!(len2, expect, "{s}→{d}");
                }
            }
        }
    }

    #[test]
    fn no_r_to_r_connection() {
        // legal_successors never offers a right output to a worm arriving
        // on a right input (the deadlock-critical rule of Fig. 2).
        let g = Geometry::new(4, 3);
        let net = build_bmin(g);
        let k = g.k() as usize;
        let mut succ = Vec::new();
        for c in 0..net.num_channels() as ChannelId {
            let ch = net.channel(c);
            if let Endpoint::Switch { sw, side: Side::Right, .. } = ch.dst {
                legal_successors(&net, c, &mut succ);
                for &s in &succ {
                    let out = net.channel(s);
                    match out.src {
                        Endpoint::Switch { sw: sw2, side, port } => {
                            assert_eq!(sw2, sw);
                            assert_eq!(side, Side::Left);
                            assert!((port as usize) < k);
                        }
                        _ => panic!("successor must originate at the switch"),
                    }
                }
            }
        }
    }

    #[test]
    fn turnaround_excludes_same_port() {
        // A worm arriving on left port i is never offered left output i.
        let g = Geometry::new(4, 3);
        let net = build_bmin(g);
        let mut succ = Vec::new();
        for c in 0..net.num_channels() as ChannelId {
            let ch = net.channel(c);
            if let Endpoint::Switch { sw, side: Side::Left, port } = ch.dst {
                legal_successors(&net, c, &mut succ);
                for &s in &succ {
                    if let Endpoint::Switch { sw: sw2, side: Side::Left, port: p2 } =
                        net.channel(s).src
                    {
                        assert!(sw2 != sw || p2 != port, "same-port turnaround offered");
                    }
                }
            }
        }
    }
}
