//! Builder for the bidirectional butterfly MIN (paper §3, Fig. 6).
//!
//! An `N = k^n` node butterfly BMIN has `n` stages of `k^{n-1}` bidirectional
//! `k × k` switches. Processor nodes sit on the left of stage `G_0`; each
//! link is a pair of opposite unidirectional channels. We use the classic
//! k-ary butterfly wiring:
//!
//! * A switch at stage `j` is labelled by an `(n-1)`-digit k-ary number `s`.
//! * Node `a = a_{n-1}…a_0` attaches to switch `(0, a_{n-1}…a_1)` at left
//!   port `a_0`.
//! * For `1 ≤ j ≤ n-1`, switch `(j, s)` connects through its left port `c`
//!   to switch `(j-1, s[digit j-1 := c])`'s right port `s_{j-1}`.
//!
//! Consequences (proved in the tests and used throughout):
//!
//! * going **forward** (up, away from nodes) from stage `j` to `j+1` can
//!   change only digit `j` of the switch label, so after ascending to stage
//!   `t` the label still agrees with the source address on digits `≥ t`;
//! * a node `D` is reachable going **backward** (down) from `(j, s)` iff
//!   `s_i = d_{i+1}` for all `i ≥ j`, and the down port to take at stage
//!   `j` is `d_j` — exactly the paper's turnaround routing (Fig. 7);
//! * a message from `S` to `D` must ascend to stage
//!   `t = FirstDifference(S, D)` and there are `k^t` shortest paths
//!   (Theorem 1).

use crate::address::Geometry;
use crate::graph::{
    ChannelDesc, ChannelId, Direction, Endpoint, NetworkGraph, NetworkKind, Side, SwitchDesc,
};

/// Number of digits in a BMIN switch label (`n - 1`).
#[inline]
fn label_digit(g: &Geometry, label: u32, i: u32) -> u32 {
    debug_assert!(i + 1 < g.n());
    (label / g.k().pow(i)) % g.k()
}

#[inline]
fn label_with_digit(g: &Geometry, label: u32, i: u32, v: u32) -> u32 {
    let p = g.k().pow(i);
    let old = (label / p) % g.k();
    (label as i64 + (v as i64 - old as i64) * p as i64) as u32
}

/// Build an `N = k^n` butterfly BMIN.
///
/// Output-port codes on each switch: `0..k` are the left-side (backward /
/// node-facing) outputs `l_i`; `k..2k` are the right-side (forward) outputs
/// `r_i`. Stage `n-1` switches have no forward output channels — the paper
/// leaves those ports available for building larger networks.
pub fn build_bmin(g: Geometry) -> NetworkGraph {
    let k = g.k();
    let n = g.n();
    let nodes = g.nodes();
    let per_stage = nodes / k; // k^{n-1}

    let mut channels: Vec<ChannelDesc> = Vec::with_capacity(2 * n as usize * nodes as usize);
    let switches: Vec<SwitchDesc> = (0..n)
        .flat_map(|stage| {
            (0..per_stage).map(move |index| SwitchDesc {
                stage: stage as u8,
                index,
            })
        })
        .collect();
    let sw_id = |stage: u32, index: u32| stage * per_stage + index;

    let mut inject = vec![0 as ChannelId; nodes as usize];
    let mut eject = vec![0 as ChannelId; nodes as usize];

    // topo_rank: all down channels (by level ascending) precede all up
    // channels (by level descending): down ℓ → ℓ, up ℓ → 2n-1-ℓ.
    let down_rank = |level: u32| level as u16;
    let up_rank = |level: u32| (2 * n - 1 - level) as u16;

    // Level 0: node a ↔ switch (0, a/k) port a%k.
    for a in 0..nodes {
        let sw = sw_id(0, a / k);
        let port = (a % k) as u8;
        // Up: node → switch left input.
        let up = channels.len() as ChannelId;
        channels.push(ChannelDesc {
            src: Endpoint::Node(a),
            dst: Endpoint::Switch {
                sw,
                side: Side::Left,
                port,
            },
            level: 0,
            lane: 0,
            dir: Direction::Forward,
            topo_rank: up_rank(0),
        });
        inject[a as usize] = up;
        // Down: switch left output → node.
        let down = channels.len() as ChannelId;
        channels.push(ChannelDesc {
            src: Endpoint::Switch {
                sw,
                side: Side::Left,
                port,
            },
            dst: Endpoint::Node(a),
            level: 0,
            lane: 0,
            dir: Direction::Backward,
            topo_rank: down_rank(0),
        });
        eject[a as usize] = down;
    }

    // Levels 1..n-1: switch (j, s) left port c ↔ switch
    // (j-1, s[digit j-1 := c]) right port s_{j-1}.
    for j in 1..n {
        for s in 0..per_stage {
            let hi = sw_id(j, s);
            for c in 0..k {
                let lo_label = label_with_digit(&g, s, j - 1, c);
                let lo = sw_id(j - 1, lo_label);
                let lo_port_idx = label_digit(&g, s, j - 1) as u8; // right port s_{j-1}
                // Up: lower right output s_{j-1} → upper left input c.
                channels.push(ChannelDesc {
                    src: Endpoint::Switch {
                        sw: lo,
                        side: Side::Right,
                        port: lo_port_idx,
                    },
                    dst: Endpoint::Switch {
                        sw: hi,
                        side: Side::Left,
                        port: c as u8,
                    },
                    level: j as u8,
                    lane: 0,
                    dir: Direction::Forward,
                    topo_rank: up_rank(j),
                });
                // Down: upper left output c → lower right input s_{j-1}.
                channels.push(ChannelDesc {
                    src: Endpoint::Switch {
                        sw: hi,
                        side: Side::Left,
                        port: c as u8,
                    },
                    dst: Endpoint::Switch {
                        sw: lo,
                        side: Side::Right,
                        port: lo_port_idx,
                    },
                    level: j as u8,
                    lane: 0,
                    dir: Direction::Backward,
                    topo_rank: down_rank(j),
                });
            }
        }
    }

    let graph = NetworkGraph::assemble(g, NetworkKind::Bmin, channels, switches, inject, eject);
    graph
        .validate()
        .expect("BMIN builder produced an invalid graph");
    graph
}

/// The set of node addresses reachable going *down* (backward) from switch
/// `(stage, label)` — the leaves of the fat-tree subtree rooted there.
pub fn down_reachable(g: &Geometry, stage: u32, label: u32) -> Vec<u32> {
    (0..g.nodes())
        .filter(|&a| {
            (stage..g.n() - 1).all(|i| label_digit(g, label, i) == g.digit(a.into(), i + 1))
        })
        .collect()
}

/// The stage-0 switch label for node `a` (`a / k`).
#[inline]
pub fn node_switch_label(g: &Geometry, a: u32) -> u32 {
    a / g.k()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::NodeAddr;

    #[test]
    fn channel_and_switch_counts() {
        // Fig. 6: the 8-node butterfly BMIN has 3 stages of 4 switches and
        // N channel *pairs* per level.
        for (k, n) in [(2u32, 3u32), (2, 4), (4, 2), (4, 3)] {
            let g = Geometry::new(k, n);
            let net = build_bmin(g);
            assert_eq!(net.num_switches() as u32, n * g.nodes() / k);
            assert_eq!(net.num_channels() as u32, 2 * n * g.nodes());
            for level in 0..n {
                assert_eq!(
                    net.channels_at_level(level as u8, Direction::Forward).len() as u32,
                    g.nodes()
                );
                assert_eq!(
                    net.channels_at_level(level as u8, Direction::Backward).len() as u32,
                    g.nodes()
                );
            }
        }
    }

    #[test]
    fn links_are_paired() {
        // Every forward channel has an opposite backward channel between
        // the same two endpoints.
        let g = Geometry::new(4, 3);
        let net = build_bmin(g);
        let mut fwd = 0;
        for ch in &net.channels {
            if ch.dir == Direction::Forward {
                fwd += 1;
                assert!(
                    net.channels
                        .iter()
                        .any(|o| o.dir == Direction::Backward
                            && o.src == ch.dst
                            && o.dst == ch.src),
                    "unpaired forward channel {ch:?}"
                );
            }
        }
        assert_eq!(fwd * 2, net.num_channels());
    }

    #[test]
    fn up_moves_change_only_current_digit() {
        // Forward channel from stage j-1 switch s' to stage j switch s:
        // labels agree except possibly at digit j-1.
        let g = Geometry::new(4, 3);
        let net = build_bmin(g);
        let per_stage = g.nodes() / g.k();
        for ch in &net.channels {
            if ch.dir != Direction::Forward || ch.level == 0 {
                continue;
            }
            let lo = ch.src.switch().unwrap() % per_stage;
            let hi = ch.dst.switch().unwrap() % per_stage;
            let j = ch.level as u32;
            for i in 0..g.n() - 1 {
                if i != j - 1 {
                    assert_eq!(label_digit(&g, lo, i), label_digit(&g, hi, i));
                }
            }
        }
    }

    #[test]
    fn down_reachable_sets() {
        let g = Geometry::new(2, 3);
        // Stage 0 switch `s` reaches exactly nodes {2s, 2s+1}.
        for s in 0..4 {
            assert_eq!(down_reachable(&g, 0, s), vec![2 * s, 2 * s + 1]);
        }
        // Stage 2 (root level): every switch reaches all nodes.
        for s in 0..4 {
            assert_eq!(down_reachable(&g, 2, s).len(), 8);
        }
        // Stage 1 switch label s = s_1 s_0: reaches nodes with a_2 = s_1.
        let reach = down_reachable(&g, 1, 0b10);
        assert_eq!(reach, vec![4, 5, 6, 7]);
    }

    #[test]
    fn down_port_digit_rule() {
        // From (j, s), the down port c leads to a switch/nodes whose
        // "digit j" is c: at stage 0, left port c leads to node with
        // a_0 = c; at stage j ≥ 1 it pins digit j-1 of the lower label,
        // whose down-reachable leaves all have a_j = c.
        let g = Geometry::new(4, 3);
        let net = build_bmin(g);
        let per_stage = g.nodes() / g.k();
        for ch in &net.channels {
            if ch.dir != Direction::Backward {
                continue;
            }
            let (sw, port) = match ch.src {
                Endpoint::Switch { sw, port, .. } => (sw, port),
                _ => unreachable!("backward channels originate at switches"),
            };
            let stage = net.switch(sw).stage as u32;
            let label = sw % per_stage;
            let _ = label;
            match ch.dst {
                Endpoint::Node(a) => {
                    assert_eq!(stage, 0);
                    assert_eq!(g.digit(NodeAddr(a), 0), port as u32);
                }
                Endpoint::Switch { sw: lo, .. } => {
                    let lo_label = lo % per_stage;
                    for leaf in down_reachable(&g, stage - 1, lo_label) {
                        assert_eq!(g.digit(NodeAddr(leaf), stage), port as u32);
                    }
                }
            }
        }
    }

    #[test]
    fn turnaround_reachability_matches_first_difference() {
        // From source S, ascending j stages reaches switches whose labels
        // agree with S's digits above j; D is down-reachable from such a
        // switch at stage t iff t >= FirstDifference(S, D).
        let g = Geometry::new(2, 3);
        for s in g.addresses() {
            for d in g.addresses() {
                if s == d {
                    continue;
                }
                let t = g.first_difference(s, d).unwrap();
                // A switch at stage t with label matching both S (digits
                // >= t) and the down-reachability requirement for D exists:
                // digits i >= t of the label must equal s_{i+1} = d_{i+1}.
                for i in t..g.n() - 1 {
                    assert_eq!(g.digit(s, i + 1), g.digit(d, i + 1));
                }
                if t > 0 {
                    // At any stage below t the source-side constraint
                    // conflicts with D's requirement at digit t-1 …
                    // (s_t ≠ d_t means no switch at stage t' < t works).
                    assert_ne!(g.digit(s, t), g.digit(d, t));
                }
            }
        }
    }

    #[test]
    fn stage_last_has_no_forward_outputs() {
        let g = Geometry::new(4, 3);
        let net = build_bmin(g);
        let k = g.k();
        for s in 0..net.num_switches() as u32 {
            let fwd_lanes = net.out_port_span(s, k, 2 * k).len();
            if net.switch(s).stage as u32 == g.n() - 1 {
                assert_eq!(fwd_lanes, 0);
            } else {
                assert_eq!(fwd_lanes, k as usize);
            }
        }
    }

    #[test]
    fn transmit_order_down_before_up() {
        let g = Geometry::new(4, 3);
        let net = build_bmin(g);
        let order = net.transmit_order();
        // First channel: a backward level-0 (ejection) channel; last: a
        // forward level-0 (injection) channel.
        let first = net.channel(order[0]);
        assert_eq!((first.dir, first.level), (Direction::Backward, 0));
        let last = net.channel(*order.last().unwrap());
        assert_eq!((last.dir, last.level), (Direction::Forward, 0));
    }
}
