//! k-ary m-cube clusters (paper Definitions 5 and 6) and binary cubes.
//!
//! A **k-ary m-cube** in an `N = k^n` node system is the set of `k^m`
//! addresses that agree on `n - m` *fixed* digits, in any positions; the
//! remaining `m` positions are *free*. A **base cube** fixes the `n - m`
//! most significant digits. When `k = 2^j`, the digit restriction can be
//! relaxed to the *bit* level — a **binary cube** fixes an arbitrary subset
//! of the `n·j` address bits (Theorem 2 shows the cube MIN partitions
//! contention-free into binary cubes).

use crate::address::{Geometry, NodeAddr};

/// One digit position of a [`CubeSpec`]: either pinned to a value or free.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DigitSpec {
    /// The digit must equal this value.
    Fixed(u32),
    /// The digit ranges over all of `[0, k)`.
    Free,
}

/// A k-ary m-cube: a pattern over the `n` digit positions.
///
/// `spec[i]` constrains digit `i` (least significant first). The paper
/// writes these patterns most-significant-first with `*`/`X` for free
/// digits, e.g. `21**` or `3*1*`; see [`CubeSpec::parse`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CubeSpec {
    spec: Vec<DigitSpec>,
}

impl CubeSpec {
    /// Build from per-digit constraints, least significant digit first.
    ///
    /// # Panics
    ///
    /// Panics if `spec.len() != n` or any fixed value is `>= k`.
    pub fn new(g: &Geometry, spec: Vec<DigitSpec>) -> Self {
        assert_eq!(spec.len() as u32, g.n(), "spec must have n digit entries");
        for d in &spec {
            if let DigitSpec::Fixed(v) = d {
                assert!(*v < g.k(), "fixed digit {v} out of range");
            }
        }
        CubeSpec { spec }
    }

    /// Parse the paper's pattern notation, most significant digit first:
    /// `'*'` or `'X'`/`'x'` is a free digit, a decimal digit is fixed.
    /// Only radices up to 10 are supported by this notation.
    ///
    /// ```
    /// use minnet_topology::{Geometry, CubeSpec};
    /// let g = Geometry::new(4, 4);
    /// let c = CubeSpec::parse(&g, "21**").unwrap();
    /// assert_eq!(c.dimension(), 2);
    /// assert_eq!(c.members(&g).len(), 16);
    /// ```
    pub fn parse(g: &Geometry, pattern: &str) -> Option<CubeSpec> {
        if g.k() > 10 || pattern.chars().count() as u32 != g.n() {
            return None;
        }
        let mut spec = Vec::with_capacity(pattern.len());
        for c in pattern.chars().rev() {
            // reverse: store least significant first
            match c {
                '*' | 'X' | 'x' => spec.push(DigitSpec::Free),
                d => {
                    let v = d.to_digit(10)?;
                    if v >= g.k() {
                        return None;
                    }
                    spec.push(DigitSpec::Fixed(v));
                }
            }
        }
        Some(CubeSpec { spec })
    }

    /// Render in the paper's most-significant-first notation.
    pub fn pattern(&self) -> String {
        self.spec
            .iter()
            .rev()
            .map(|d| match d {
                DigitSpec::Free => 'X'.to_string(),
                DigitSpec::Fixed(v) => v.to_string(),
            })
            .collect()
    }

    /// The constraint on digit `i`.
    pub fn digit_spec(&self, i: u32) -> DigitSpec {
        self.spec[i as usize]
    }

    /// The cube dimension `m` = number of free digits.
    pub fn dimension(&self) -> u32 {
        self.spec
            .iter()
            .filter(|d| matches!(d, DigitSpec::Free))
            .count() as u32
    }

    /// Whether this is a *base* cube (Definition 6): all fixed digits are in
    /// the most significant positions.
    pub fn is_base(&self) -> bool {
        let mut seen_fixed = false;
        // Scan from most significant down: once a free digit appears, no
        // fixed digit may follow.
        let mut seen_free = false;
        for d in self.spec.iter().rev() {
            match d {
                DigitSpec::Fixed(_) => {
                    if seen_free {
                        return false;
                    }
                    seen_fixed = true;
                }
                DigitSpec::Free => seen_free = true,
            }
        }
        let _ = seen_fixed;
        true
    }

    /// Whether address `a` belongs to the cube.
    pub fn contains(&self, g: &Geometry, a: NodeAddr) -> bool {
        self.spec.iter().enumerate().all(|(i, d)| match d {
            DigitSpec::Free => true,
            DigitSpec::Fixed(v) => g.digit(a, i as u32) == *v,
        })
    }

    /// Enumerate all `k^m` member addresses, in increasing order.
    pub fn members(&self, g: &Geometry) -> Vec<NodeAddr> {
        g.addresses().filter(|&a| self.contains(g, a)).collect()
    }

    /// Whether two cubes are disjoint as address sets.
    pub fn disjoint(&self, g: &Geometry, other: &CubeSpec) -> bool {
        // Disjoint iff some digit is fixed to different values in both.
        for i in 0..g.n() {
            if let (DigitSpec::Fixed(a), DigitSpec::Fixed(b)) =
                (self.digit_spec(i), other.digit_spec(i))
            {
                if a != b {
                    return true;
                }
            }
        }
        false
    }
}

/// A binary cube over the bit representation of node addresses.
///
/// Requires `k = 2^j`; addresses then have `n·j` bits, and the cube fixes
/// the bits selected by `mask` to the corresponding bits of `value`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BitCube {
    mask: u32,
    value: u32,
    nbits: u32,
}

impl BitCube {
    /// A binary cube fixing the bits in `mask` to the bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a power of two, or `value` has bits outside
    /// `mask`, or `mask` has bits outside the address width.
    pub fn new(g: &Geometry, mask: u32, value: u32) -> Self {
        assert!(
            g.k().is_power_of_two(),
            "binary cubes require k to be a power of two"
        );
        let j = g.k().trailing_zeros();
        let nbits = g.n() * j;
        let width_mask = if nbits >= 32 { u32::MAX } else { (1 << nbits) - 1 };
        assert_eq!(mask & !width_mask, 0, "mask exceeds address width");
        assert_eq!(value & !mask, 0, "value has bits outside mask");
        BitCube { mask, value, nbits }
    }

    /// Parse an MSB-first bit pattern such as `"0XX"` or `"1X0"` (Fig. 14).
    /// The string must have exactly `n·j` characters.
    pub fn parse(g: &Geometry, pattern: &str) -> Option<BitCube> {
        if !g.k().is_power_of_two() {
            return None;
        }
        let j = g.k().trailing_zeros();
        let nbits = g.n() * j;
        if pattern.chars().count() as u32 != nbits {
            return None;
        }
        let mut mask = 0u32;
        let mut value = 0u32;
        for (pos, c) in pattern.chars().enumerate() {
            let bit = nbits - 1 - pos as u32;
            match c {
                'X' | 'x' | '*' => {}
                '0' => mask |= 1 << bit,
                '1' => {
                    mask |= 1 << bit;
                    value |= 1 << bit;
                }
                _ => return None,
            }
        }
        Some(BitCube { mask, value, nbits })
    }

    /// Render as an MSB-first bit pattern.
    pub fn pattern(&self) -> String {
        (0..self.nbits)
            .rev()
            .map(|b| {
                if self.mask >> b & 1 == 0 {
                    'X'
                } else if self.value >> b & 1 == 1 {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    }

    /// The cube dimension (number of free bits).
    pub fn dimension(&self) -> u32 {
        self.nbits - self.mask.count_ones()
    }

    /// Whether address `a` belongs to the cube.
    #[inline]
    pub fn contains(&self, a: NodeAddr) -> bool {
        a.0 & self.mask == self.value
    }

    /// Enumerate all member addresses, in increasing order.
    pub fn members(&self, g: &Geometry) -> Vec<NodeAddr> {
        g.addresses().filter(|&a| self.contains(a)).collect()
    }

    /// Whether two binary cubes are disjoint.
    pub fn disjoint(&self, other: &BitCube) -> bool {
        let common = self.mask & other.mask;
        (self.value & common) != (other.value & common)
    }
}

/// Check that a family of binary cubes partitions the whole address space
/// (pairwise disjoint and jointly exhaustive).
pub fn is_bitcube_partition(g: &Geometry, cubes: &[BitCube]) -> bool {
    let total: usize = cubes.iter().map(|c| 1usize << c.dimension()).sum();
    if total != g.nodes() as usize {
        return false;
    }
    for (i, a) in cubes.iter().enumerate() {
        for b in &cubes[i + 1..] {
            if !a.disjoint(b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_def5() {
        // "Consider a system with N = 4^4 nodes. The cluster (21**) has 16
        // nodes ranging from (2100) to (2133) and is a base four-ary
        // two-cube. The cluster (3*1*) has 16 nodes ranging from (3010) to
        // (3313) and is a four-ary two-cube."
        let g = Geometry::new(4, 4);
        let c1 = CubeSpec::parse(&g, "21**").unwrap();
        assert_eq!(c1.dimension(), 2);
        assert!(c1.is_base());
        let m1 = c1.members(&g);
        assert_eq!(m1.len(), 16);
        assert_eq!(g.format_addr(m1[0]), "2100");
        assert_eq!(g.format_addr(*m1.last().unwrap()), "2133");

        let c2 = CubeSpec::parse(&g, "3*1*").unwrap();
        assert_eq!(c2.dimension(), 2);
        assert!(!c2.is_base());
        let m2 = c2.members(&g);
        assert_eq!(m2.len(), 16);
        assert_eq!(g.format_addr(m2[0]), "3010");
        assert_eq!(g.format_addr(*m2.last().unwrap()), "3313");

        assert!(c1.disjoint(&g, &c2));
    }

    #[test]
    fn disjointness_requires_conflicting_fixed_digit() {
        let g = Geometry::new(4, 3);
        let a = CubeSpec::parse(&g, "0**").unwrap();
        let b = CubeSpec::parse(&g, "**0").unwrap();
        // Overlap at 000, 010, ...
        assert!(!a.disjoint(&g, &b));
        let c = CubeSpec::parse(&g, "1**").unwrap();
        assert!(a.disjoint(&g, &c));
    }

    #[test]
    fn pattern_round_trip() {
        let g = Geometry::new(4, 3);
        for p in ["0XX", "X1X", "231", "XXX"] {
            let c = CubeSpec::parse(&g, p).unwrap();
            assert_eq!(c.pattern(), p.replace('x', "X"));
        }
        assert!(CubeSpec::parse(&g, "9XX").is_none());
        assert!(CubeSpec::parse(&g, "XX").is_none());
    }

    #[test]
    fn base_cube_detection() {
        let g = Geometry::new(2, 4);
        assert!(CubeSpec::parse(&g, "10XX").unwrap().is_base());
        assert!(CubeSpec::parse(&g, "XXXX").unwrap().is_base());
        assert!(CubeSpec::parse(&g, "1011").unwrap().is_base());
        assert!(!CubeSpec::parse(&g, "1X0X").unwrap().is_base());
        assert!(!CubeSpec::parse(&g, "XXX0").unwrap().is_base());
    }

    #[test]
    fn bitcube_fig14_clusters() {
        // Fig. 14: an 8-node cube MIN partitioned into 0XX, 1X0, 1X1.
        let g = Geometry::new(2, 3);
        let c0 = BitCube::parse(&g, "0XX").unwrap();
        let c1 = BitCube::parse(&g, "1X0").unwrap();
        let c2 = BitCube::parse(&g, "1X1").unwrap();
        assert_eq!(c0.members(&g).len(), 4);
        assert_eq!(c1.members(&g).len(), 2);
        assert_eq!(c2.members(&g).len(), 2);
        assert!(is_bitcube_partition(&g, &[c0, c1, c2]));
        assert_eq!(c1.pattern(), "1X0");
    }

    #[test]
    fn bitcube_k4_digit_and_halfdigit() {
        // 64-node k=4 system: addresses have 6 bits; cluster "0XX" in digit
        // notation is bits "00XXXX".
        let g = Geometry::new(4, 3);
        let c = BitCube::parse(&g, "00XXXX").unwrap();
        assert_eq!(c.dimension(), 4);
        assert_eq!(c.members(&g).len(), 16);
        assert!(c.contains(NodeAddr(15)));
        assert!(!c.contains(NodeAddr(16)));
        // cluster-32 halves: top bit fixed.
        let lo = BitCube::parse(&g, "0XXXXX").unwrap();
        let hi = BitCube::parse(&g, "1XXXXX").unwrap();
        assert!(is_bitcube_partition(&g, &[lo, hi]));
        assert_eq!(lo.members(&g).len(), 32);
    }

    #[test]
    fn bitcube_partition_rejects_overlap_and_gap() {
        let g = Geometry::new(2, 3);
        let a = BitCube::parse(&g, "0XX").unwrap();
        let b = BitCube::parse(&g, "XX0").unwrap();
        assert!(!a.disjoint(&b));
        assert!(!is_bitcube_partition(&g, &[a, b]));
        assert!(!is_bitcube_partition(&g, &[a]));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bitcube_rejects_non_power_of_two_k() {
        let g = Geometry::new(3, 2);
        let _ = BitCube::new(&g, 0, 0);
    }

    #[test]
    fn members_agree_between_digit_and_bit_specs() {
        let g = Geometry::new(4, 3);
        let digit = CubeSpec::parse(&g, "2XX").unwrap();
        let bits = BitCube::parse(&g, "10XXXX").unwrap();
        assert_eq!(digit.members(&g), bits.members(&g));
    }
}
