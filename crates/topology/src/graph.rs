//! The static network-graph model shared by all four MINs.
//!
//! A network is a set of **switches** arranged in stages, **terminals**
//! (processor nodes) and unidirectional **channels**. A channel connects a
//! source endpoint (a node's injection port or a switch output port) to a
//! destination endpoint (a switch input port or a node's ejection port).
//!
//! Ports may carry several physical **lanes** (channel dilation, Fig. 1b);
//! each lane is a separate channel in the graph. Virtual channels (Fig. 1c)
//! are *not* represented here — they share one physical channel and are a
//! property of the simulation engine.
//!
//! For the bidirectional MIN (Fig. 1d), a switch has `k` ports on its left
//! (node-facing) side and `k` on its right side; each port is a pair of
//! opposite channels. We label switch output ports with a single code:
//! `0..k` are the left-side outputs `l_0..l_{k-1}` (carrying *backward*
//! traffic toward the nodes) and `k..2k` are the right-side outputs
//! `r_0..r_{k-1}` (*forward*, away from the nodes). Unidirectional switches
//! only use codes `0..k` (their right-side outputs).
//!
//! ## Storage
//!
//! The graph is stored CSR-style: besides the flat channel table, a single
//! shared id arena holds every per-switch output-port lane list, every
//! per-switch input list, the per-node injection and ejection channels, and
//! the memoized transmit order, with `starts`-style offset tables indexing
//! into it. No per-switch (or other per-entity) `Vec`s exist, so a
//! multi-thousand-switch network costs a handful of large allocations
//! instead of `O(switches × ports)` small ones. Builders create the
//! channel table and hand it to [`NetworkGraph::assemble`], which derives
//! all adjacency in two counted passes.

use crate::address::Geometry;

/// Index of a node (terminal). Equals the node's address value.
pub type NodeId = u32;
/// Index of a switch within the graph's switch table.
pub type SwitchId = u32;
/// Index of a channel within [`NetworkGraph::channels`].
pub type ChannelId = u32;

/// Which side of a bidirectional switch a port is on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Side {
    /// The node-facing side (the paper's `l_i` ports).
    Left,
    /// The far side (the paper's `r_i` ports).
    Right,
}

/// Direction of a channel relative to the processor nodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Away from the nodes. All channels of a unidirectional MIN are
    /// `Forward`; in a BMIN these are the "up" channels of the fat tree.
    Forward,
    /// Toward the nodes ("down" / the paper's backward channels).
    Backward,
}

/// One end of a channel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Endpoint {
    /// A processor node (source of an injection channel / destination of an
    /// ejection channel).
    Node(NodeId),
    /// A switch port.
    Switch {
        /// The switch.
        sw: SwitchId,
        /// Which side of the switch.
        side: Side,
        /// Port index on that side, `0..k`.
        port: u8,
    },
}

impl Endpoint {
    /// The switch id, if this endpoint is a switch port.
    pub fn switch(&self) -> Option<SwitchId> {
        match self {
            Endpoint::Switch { sw, .. } => Some(*sw),
            Endpoint::Node(_) => None,
        }
    }

    /// The node id, if this endpoint is a terminal.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            Endpoint::Node(n) => Some(*n),
            Endpoint::Switch { .. } => None,
        }
    }
}

/// A unidirectional communication channel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChannelDesc {
    /// Transmitting end.
    pub src: Endpoint,
    /// Receiving end (where the single-flit buffer sits).
    pub dst: Endpoint,
    /// Connection level. For unidirectional MINs: `0` is node→G0, `i` is
    /// G_{i-1}→G_i, `n` is G_{n-1}→node. For BMINs: level `ℓ` is the link
    /// bundle between stage `ℓ-1` and stage `ℓ` (level 0 touches the
    /// nodes), in either direction.
    pub level: u8,
    /// Lane index within the (dilated) port, `0..d`.
    pub lane: u8,
    /// Forward (away from nodes) or backward (toward nodes).
    pub dir: Direction,
    /// Position in the worm-advance processing order: channels with smaller
    /// rank are strictly *downstream* (closer to delivery) of any channel a
    /// worm can hold while requesting them. Processing transmissions in
    /// ascending rank lets an unblocked worm advance one hop on every
    /// channel it spans in a single cycle.
    pub topo_rank: u16,
}

/// A switch (one crossbar) in the network. Pure metadata — the input and
/// output-port adjacency lives in the graph's shared CSR arena, reached
/// through [`NetworkGraph::switch_inputs`] and [`NetworkGraph::out_port`].
#[derive(Clone, Copy, Debug)]
pub struct SwitchDesc {
    /// Stage index `G_stage`.
    pub stage: u8,
    /// Index of the switch within its stage.
    pub index: u32,
}

/// Which of the paper's network families a graph instantiates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NetworkKind {
    /// Unidirectional MIN (Fig. 4) with one of the Delta-class wirings
    /// and channel dilation `d` (1 = TMIN/VMIN, 2 = DMIN, Fig. 5).
    Unidir {
        /// The connection-pattern family.
        wiring: crate::unidir::UnidirKind,
        /// Channel dilation of inter-stage ports.
        dilation: u8,
    },
    /// Bidirectional butterfly MIN (fat tree, Fig. 6).
    Bmin,
}

impl NetworkKind {
    /// The channel dilation of inter-stage ports (1 for BMIN).
    pub fn dilation(&self) -> u8 {
        match self {
            NetworkKind::Unidir { dilation, .. } => *dilation,
            NetworkKind::Bmin => 1,
        }
    }

    /// Whether the network is bidirectional.
    pub fn is_bidirectional(&self) -> bool {
        matches!(self, NetworkKind::Bmin)
    }

    /// The unidirectional wiring, if this is not a BMIN.
    pub fn wiring(&self) -> Option<crate::unidir::UnidirKind> {
        match self {
            NetworkKind::Unidir { wiring, .. } => Some(*wiring),
            NetworkKind::Bmin => None,
        }
    }
}

/// A complete static network: switches, channels and terminal attachments.
///
/// All adjacency (switch inputs, output-port lane lists, per-node
/// inject/eject channels, the transmit order) is stored in one shared id
/// arena with CSR offset tables — see the module docs.
#[derive(Clone, Debug)]
pub struct NetworkGraph {
    /// The geometry (`k`, `n`).
    pub geometry: Geometry,
    /// Which family this graph belongs to.
    pub kind: NetworkKind,
    /// All channels, indexed by [`ChannelId`].
    pub channels: Vec<ChannelDesc>,
    /// Switch metadata, indexed by [`SwitchId`].
    switches: Vec<SwitchDesc>,
    /// Output-port codes per switch: `k` for unidirectional switches,
    /// `2k` for bidirectional ones.
    out_codes: u32,
    /// `ids[port_starts[s * out_codes + c] .. port_starts[s * out_codes + c + 1]]`
    /// are the lane channels of switch `s`'s output port `c`.
    port_starts: Vec<u32>,
    /// `ids[input_starts[s] .. input_starts[s + 1]]` are the channels
    /// terminating at switch `s`.
    input_starts: Vec<u32>,
    /// The shared id arena: output-port lanes, then switch inputs, then
    /// per-node inject and eject channels, then the transmit order.
    ids: Vec<ChannelId>,
    /// Offset of the per-node injection section within `ids`.
    inject_at: u32,
    /// Offset of the per-node ejection section within `ids`.
    eject_at: u32,
    /// Offset of the memoized transmit order within `ids`.
    order_at: u32,
}

/// The output-port code of a channel originating at `(side, port)` of a
/// switch: unidirectional switches use `0..k` (right-side outputs); on
/// bidirectional switches `0..k` are left-side outputs, `k..2k` right-side.
#[inline]
fn out_code(kind: NetworkKind, k: u32, side: Side, port: u8) -> u32 {
    match (kind.is_bidirectional(), side) {
        (false, _) | (true, Side::Left) => u32::from(port),
        (true, Side::Right) => k + u32::from(port),
    }
}

impl NetworkGraph {
    /// Assemble a graph from its channel table: derive every switch's
    /// input list and output-port lane lists, the inject/eject sections,
    /// and the transmit order, in two counted passes into the shared CSR
    /// arena (no per-switch allocations).
    ///
    /// Within each per-switch list, channels appear in ascending
    /// [`ChannelId`] order — the order the builders create them in, which
    /// every routing-candidate enumeration (and therefore the engine's
    /// RNG stream) depends on.
    ///
    /// # Panics
    ///
    /// Panics if `inject`/`eject` don't have one entry per node, or a
    /// channel references a switch out of range. Structural soundness
    /// beyond that is [`NetworkGraph::validate`]'s job.
    pub fn assemble(
        geometry: Geometry,
        kind: NetworkKind,
        channels: Vec<ChannelDesc>,
        switches: Vec<SwitchDesc>,
        inject: Vec<ChannelId>,
        eject: Vec<ChannelId>,
    ) -> NetworkGraph {
        let nodes = geometry.nodes() as usize;
        assert_eq!(inject.len(), nodes, "one injection channel per node");
        assert_eq!(eject.len(), nodes, "one ejection channel per node");
        let nsw = switches.len();
        let nch = channels.len();
        let k = geometry.k();
        let out_codes = if kind.is_bidirectional() { 2 * k } else { k };
        let nports = nsw * out_codes as usize;

        // Pass 1: count lanes per (switch, code) and inputs per switch.
        let mut port_starts = vec![0u32; nports + 1];
        let mut input_starts = vec![0u32; nsw + 1];
        for ch in &channels {
            if let Endpoint::Switch { sw, .. } = ch.dst {
                assert!((sw as usize) < nsw, "channel dst switch out of range");
                input_starts[sw as usize + 1] += 1;
            }
            if let Endpoint::Switch { sw, side, port } = ch.src {
                assert!((sw as usize) < nsw, "channel src switch out of range");
                let code = out_code(kind, k, side, port);
                port_starts[sw as usize * out_codes as usize + code as usize + 1] += 1;
            }
        }
        for i in 1..port_starts.len() {
            port_starts[i] += port_starts[i - 1];
        }
        let ports_len = port_starts[nports];
        input_starts[0] = ports_len;
        for i in 1..input_starts.len() {
            input_starts[i] += input_starts[i - 1];
        }
        let inputs_end = input_starts[nsw];
        let inject_at = inputs_end;
        let eject_at = inject_at + nodes as u32;
        let order_at = eject_at + nodes as u32;
        let total = order_at as usize + nch;

        // Pass 2: fill the arena, scanning channels in id order so every
        // list comes out id-sorted.
        let mut ids = vec![0 as ChannelId; total];
        let mut pcur = port_starts.clone();
        let mut icur = input_starts.clone();
        for (id, ch) in channels.iter().enumerate() {
            if let Endpoint::Switch { sw, .. } = ch.dst {
                let cur = &mut icur[sw as usize];
                ids[*cur as usize] = id as ChannelId;
                *cur += 1;
            }
            if let Endpoint::Switch { sw, side, port } = ch.src {
                let code = out_code(kind, k, side, port);
                let cur = &mut pcur[sw as usize * out_codes as usize + code as usize];
                ids[*cur as usize] = id as ChannelId;
                *cur += 1;
            }
        }
        ids[inject_at as usize..eject_at as usize].copy_from_slice(&inject);
        ids[eject_at as usize..order_at as usize].copy_from_slice(&eject);
        // Memoized transmit order: channel ids sorted by topo_rank
        // (stable, so equal ranks stay in id order).
        let order = &mut ids[order_at as usize..];
        for (i, slot) in order.iter_mut().enumerate() {
            *slot = i as ChannelId;
        }
        order.sort_by_key(|&c| channels[c as usize].topo_rank);

        NetworkGraph {
            geometry,
            kind,
            channels,
            switches,
            out_codes,
            port_starts,
            input_starts,
            ids,
            inject_at,
            eject_at,
            order_at,
        }
    }

    /// Channel descriptor by id.
    #[inline]
    pub fn channel(&self, c: ChannelId) -> &ChannelDesc {
        &self.channels[c as usize]
    }

    /// Switch descriptor by id.
    #[inline]
    pub fn switch(&self, s: SwitchId) -> &SwitchDesc {
        &self.switches[s as usize]
    }

    /// All switch descriptors, indexed by [`SwitchId`].
    #[inline]
    pub fn switches(&self) -> &[SwitchDesc] {
        &self.switches
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Output-port codes per switch: `k` for unidirectional switches,
    /// `2k` for bidirectional ones (see the module docs for the coding).
    #[inline]
    pub fn out_port_codes(&self) -> u32 {
        self.out_codes
    }

    /// The lane channels of switch `s`'s output port `code`, in ascending
    /// channel-id (= lane) order.
    #[inline]
    pub fn out_port(&self, s: SwitchId, code: u32) -> &[ChannelId] {
        let base = s as usize * self.out_codes as usize + code as usize;
        let (lo, hi) = (self.port_starts[base], self.port_starts[base + 1]);
        &self.ids[lo as usize..hi as usize]
    }

    /// The concatenated lane lists of output ports `code_lo..code_hi` of
    /// switch `s` — contiguous in the arena, so a multi-port candidate
    /// fan-out (e.g. the BMIN's forward ports `k..2k`) is one slice.
    #[inline]
    pub fn out_port_span(&self, s: SwitchId, code_lo: u32, code_hi: u32) -> &[ChannelId] {
        debug_assert!(code_lo <= code_hi && code_hi <= self.out_codes);
        let base = s as usize * self.out_codes as usize;
        let lo = self.port_starts[base + code_lo as usize];
        let hi = self.port_starts[base + code_hi as usize];
        &self.ids[lo as usize..hi as usize]
    }

    /// Every channel originating at switch `s`, across all output ports.
    #[inline]
    pub fn out_all(&self, s: SwitchId) -> &[ChannelId] {
        self.out_port_span(s, 0, self.out_codes)
    }

    /// All channels whose destination is an input port of switch `s`, in
    /// ascending channel-id order.
    #[inline]
    pub fn switch_inputs(&self, s: SwitchId) -> &[ChannelId] {
        let (lo, hi) = (
            self.input_starts[s as usize],
            self.input_starts[s as usize + 1],
        );
        &self.ids[lo as usize..hi as usize]
    }

    /// The injection channel (node → network) of `node`.
    #[inline]
    pub fn inject(&self, node: NodeId) -> ChannelId {
        self.ids[self.inject_at as usize + node as usize]
    }

    /// The ejection channel (network → node) of `node`.
    #[inline]
    pub fn eject(&self, node: NodeId) -> ChannelId {
        self.ids[self.eject_at as usize + node as usize]
    }

    /// Per-node injection channels, indexed by [`NodeId`].
    #[inline]
    pub fn injects(&self) -> &[ChannelId] {
        &self.ids[self.inject_at as usize..self.eject_at as usize]
    }

    /// Per-node ejection channels, indexed by [`NodeId`].
    #[inline]
    pub fn ejects(&self) -> &[ChannelId] {
        &self.ids[self.eject_at as usize..self.order_at as usize]
    }

    /// Channel ids sorted by `topo_rank` ascending — the order in which the
    /// simulation engine performs per-cycle transmissions so that a worm
    /// advances as a unit (see [`ChannelDesc::topo_rank`]). Memoized at
    /// assembly; this is a slice view into the shared arena, not a fresh
    /// allocation.
    #[inline]
    pub fn transmit_order(&self) -> &[ChannelId] {
        &self.ids[self.order_at as usize..]
    }

    /// Approximate resident size of the graph in bytes (channel table,
    /// switch table, CSR offset tables and the shared id arena) — a
    /// memory-accounting metric for benches.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.channels.len() * std::mem::size_of::<ChannelDesc>()
            + self.switches.len() * std::mem::size_of::<SwitchDesc>()
            + self.port_starts.len() * 4
            + self.input_starts.len() * 4
            + self.ids.len() * 4
    }

    /// Sanity-check structural invariants; used by builders and tests.
    ///
    /// Verifies: endpoint switch/node indices are in range; every channel
    /// in a switch's input / output-port lists actually terminates /
    /// originates there (and at the claimed port code); every node has
    /// exactly one injection and one ejection channel; the transmit order
    /// is a rank-sorted permutation of all channels.
    pub fn validate(&self) -> Result<(), String> {
        let n_nodes = self.geometry.nodes();
        for (i, ch) in self.channels.iter().enumerate() {
            for ep in [ch.src, ch.dst] {
                match ep {
                    Endpoint::Node(nd) if nd >= n_nodes => {
                        return Err(format!("channel {i}: node {nd} out of range"));
                    }
                    Endpoint::Switch { sw, port, .. } => {
                        if sw as usize >= self.switches.len() {
                            return Err(format!("channel {i}: switch {sw} out of range"));
                        }
                        if u32::from(port) >= self.geometry.k() {
                            return Err(format!("channel {i}: port {port} out of range"));
                        }
                    }
                    _ => {}
                }
            }
        }
        for sid in 0..self.switches.len() {
            for &c in self.switch_inputs(sid as SwitchId) {
                match self.channels.get(c as usize).map(|ch| ch.dst) {
                    Some(Endpoint::Switch { sw: s2, .. }) if s2 as usize == sid => {}
                    _ => return Err(format!("switch {sid}: input {c} does not terminate here")),
                }
            }
            for code in 0..self.out_codes {
                for &c in self.out_port(sid as SwitchId, code) {
                    let originates_here = match self.channels.get(c as usize).map(|ch| ch.src) {
                        Some(Endpoint::Switch { sw: s2, side, port }) if s2 as usize == sid => {
                            out_code(self.kind, self.geometry.k(), side, port) == code
                        }
                        _ => false,
                    };
                    if !originates_here {
                        return Err(format!(
                            "switch {sid}: output {c} does not originate at port code {code}"
                        ));
                    }
                }
            }
        }
        for nd in 0..n_nodes {
            let inj = self.channels[self.inject(nd) as usize];
            if inj.src != Endpoint::Node(nd) {
                return Err(format!("node {nd}: inject channel has wrong source"));
            }
            let ej = self.channels[self.eject(nd) as usize];
            if ej.dst != Endpoint::Node(nd) {
                return Err(format!("node {nd}: eject channel has wrong destination"));
            }
        }
        let order = self.transmit_order();
        if order.len() != self.channels.len() {
            return Err("transmit order must cover every channel".into());
        }
        let mut seen = vec![false; self.channels.len()];
        let mut prev = 0u16;
        for &c in order {
            let rank = self.channels[c as usize].topo_rank;
            if rank < prev {
                return Err(format!("transmit order not rank-sorted at channel {c}"));
            }
            prev = rank;
            if std::mem::replace(&mut seen[c as usize], true) {
                return Err(format!("transmit order repeats channel {c}"));
            }
        }
        Ok(())
    }

    /// Count channels by `(level, dir)` — used by partition analysis and
    /// structural tests.
    pub fn channels_at_level(&self, level: u8, dir: Direction) -> Vec<ChannelId> {
        (0..self.channels.len() as u32)
            .filter(|&c| {
                let ch = &self.channels[c as usize];
                ch.level == level && ch.dir == dir
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_accessors() {
        let e = Endpoint::Node(3);
        assert_eq!(e.node(), Some(3));
        assert_eq!(e.switch(), None);
        let s = Endpoint::Switch {
            sw: 7,
            side: Side::Left,
            port: 1,
        };
        assert_eq!(s.switch(), Some(7));
        assert_eq!(s.node(), None);
    }

    #[test]
    fn kind_dilation() {
        use crate::unidir::UnidirKind;
        let cube2 = NetworkKind::Unidir {
            wiring: UnidirKind::Cube,
            dilation: 2,
        };
        assert_eq!(cube2.dilation(), 2);
        assert_eq!(cube2.wiring(), Some(UnidirKind::Cube));
        assert_eq!(NetworkKind::Bmin.dilation(), 1);
        assert_eq!(NetworkKind::Bmin.wiring(), None);
        assert!(NetworkKind::Bmin.is_bidirectional());
        let bf1 = NetworkKind::Unidir {
            wiring: UnidirKind::Butterfly,
            dilation: 1,
        };
        assert!(!bf1.is_bidirectional());
    }

    #[test]
    fn assembled_lists_are_id_sorted_and_exhaustive() {
        use crate::unidir::{build_unidir, UnidirKind};
        let net = build_unidir(Geometry::new(4, 3), UnidirKind::Cube, 2);
        let mut seen_out = 0usize;
        let mut seen_in = 0usize;
        for s in 0..net.num_switches() as SwitchId {
            let inputs = net.switch_inputs(s);
            assert!(inputs.windows(2).all(|w| w[0] < w[1]));
            seen_in += inputs.len();
            for code in 0..net.out_port_codes() {
                let lanes = net.out_port(s, code);
                assert!(lanes.windows(2).all(|w| w[0] < w[1]));
                seen_out += lanes.len();
            }
            assert_eq!(net.out_all(s).len(), net.out_port_span(s, 0, net.out_port_codes()).len());
        }
        // Every channel not touching a node appears exactly once per side.
        let switch_src = net
            .channels
            .iter()
            .filter(|c| c.src.switch().is_some())
            .count();
        let switch_dst = net
            .channels
            .iter()
            .filter(|c| c.dst.switch().is_some())
            .count();
        assert_eq!(seen_out, switch_src);
        assert_eq!(seen_in, switch_dst);
    }

    #[test]
    fn transmit_order_is_memoized_slice() {
        use crate::bmin::build_bmin;
        let net = build_bmin(Geometry::new(2, 3));
        let a = net.transmit_order().as_ptr();
        let b = net.transmit_order().as_ptr();
        assert_eq!(a, b, "memoized order must not be rebuilt per call");
        assert_eq!(net.transmit_order().len(), net.num_channels());
    }
}
