//! The static network-graph model shared by all four MINs.
//!
//! A network is a set of **switches** arranged in stages, **terminals**
//! (processor nodes) and unidirectional **channels**. A channel connects a
//! source endpoint (a node's injection port or a switch output port) to a
//! destination endpoint (a switch input port or a node's ejection port).
//!
//! Ports may carry several physical **lanes** (channel dilation, Fig. 1b);
//! each lane is a separate channel in the graph. Virtual channels (Fig. 1c)
//! are *not* represented here — they share one physical channel and are a
//! property of the simulation engine.
//!
//! For the bidirectional MIN (Fig. 1d), a switch has `k` ports on its left
//! (node-facing) side and `k` on its right side; each port is a pair of
//! opposite channels. We label switch output ports with a single code:
//! `0..k` are the left-side outputs `l_0..l_{k-1}` (carrying *backward*
//! traffic toward the nodes) and `k..2k` are the right-side outputs
//! `r_0..r_{k-1}` (*forward*, away from the nodes). Unidirectional switches
//! only use codes `0..k` (their right-side outputs).

use crate::address::Geometry;

/// Index of a node (terminal). Equals the node's address value.
pub type NodeId = u32;
/// Index of a switch within [`NetworkGraph::switches`].
pub type SwitchId = u32;
/// Index of a channel within [`NetworkGraph::channels`].
pub type ChannelId = u32;

/// Which side of a bidirectional switch a port is on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Side {
    /// The node-facing side (the paper's `l_i` ports).
    Left,
    /// The far side (the paper's `r_i` ports).
    Right,
}

/// Direction of a channel relative to the processor nodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Away from the nodes. All channels of a unidirectional MIN are
    /// `Forward`; in a BMIN these are the "up" channels of the fat tree.
    Forward,
    /// Toward the nodes ("down" / the paper's backward channels).
    Backward,
}

/// One end of a channel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Endpoint {
    /// A processor node (source of an injection channel / destination of an
    /// ejection channel).
    Node(NodeId),
    /// A switch port.
    Switch {
        /// The switch.
        sw: SwitchId,
        /// Which side of the switch.
        side: Side,
        /// Port index on that side, `0..k`.
        port: u8,
    },
}

impl Endpoint {
    /// The switch id, if this endpoint is a switch port.
    pub fn switch(&self) -> Option<SwitchId> {
        match self {
            Endpoint::Switch { sw, .. } => Some(*sw),
            Endpoint::Node(_) => None,
        }
    }

    /// The node id, if this endpoint is a terminal.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            Endpoint::Node(n) => Some(*n),
            Endpoint::Switch { .. } => None,
        }
    }
}

/// A unidirectional communication channel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChannelDesc {
    /// Transmitting end.
    pub src: Endpoint,
    /// Receiving end (where the single-flit buffer sits).
    pub dst: Endpoint,
    /// Connection level. For unidirectional MINs: `0` is node→G0, `i` is
    /// G_{i-1}→G_i, `n` is G_{n-1}→node. For BMINs: level `ℓ` is the link
    /// bundle between stage `ℓ-1` and stage `ℓ` (level 0 touches the
    /// nodes), in either direction.
    pub level: u8,
    /// Lane index within the (dilated) port, `0..d`.
    pub lane: u8,
    /// Forward (away from nodes) or backward (toward nodes).
    pub dir: Direction,
    /// Position in the worm-advance processing order: channels with smaller
    /// rank are strictly *downstream* (closer to delivery) of any channel a
    /// worm can hold while requesting them. Processing transmissions in
    /// ascending rank lets an unblocked worm advance one hop on every
    /// channel it spans in a single cycle.
    pub topo_rank: u16,
}

/// A switch (one crossbar) in the network.
#[derive(Clone, Debug)]
pub struct SwitchDesc {
    /// Stage index `G_stage`.
    pub stage: u8,
    /// Index of the switch within its stage.
    pub index: u32,
    /// All channels whose destination is an input port of this switch.
    pub inputs: Vec<ChannelId>,
    /// Output lookup: `out_ports[code]` lists the lane channels of output
    /// port `code`. For unidirectional switches, `code` in `0..k` addresses
    /// the right-side outputs. For bidirectional switches, `0..k` are the
    /// left-side outputs `l_i` and `k..2k` the right-side outputs `r_i`.
    pub out_ports: Vec<Vec<ChannelId>>,
}

/// Which of the paper's network families a graph instantiates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NetworkKind {
    /// Unidirectional MIN (Fig. 4) with one of the Delta-class wirings
    /// and channel dilation `d` (1 = TMIN/VMIN, 2 = DMIN, Fig. 5).
    Unidir {
        /// The connection-pattern family.
        wiring: crate::unidir::UnidirKind,
        /// Channel dilation of inter-stage ports.
        dilation: u8,
    },
    /// Bidirectional butterfly MIN (fat tree, Fig. 6).
    Bmin,
}

impl NetworkKind {
    /// The channel dilation of inter-stage ports (1 for BMIN).
    pub fn dilation(&self) -> u8 {
        match self {
            NetworkKind::Unidir { dilation, .. } => *dilation,
            NetworkKind::Bmin => 1,
        }
    }

    /// Whether the network is bidirectional.
    pub fn is_bidirectional(&self) -> bool {
        matches!(self, NetworkKind::Bmin)
    }

    /// The unidirectional wiring, if this is not a BMIN.
    pub fn wiring(&self) -> Option<crate::unidir::UnidirKind> {
        match self {
            NetworkKind::Unidir { wiring, .. } => Some(*wiring),
            NetworkKind::Bmin => None,
        }
    }
}

/// A complete static network: switches, channels and terminal attachments.
#[derive(Clone, Debug)]
pub struct NetworkGraph {
    /// The geometry (`k`, `n`).
    pub geometry: Geometry,
    /// Which family this graph belongs to.
    pub kind: NetworkKind,
    /// All channels, indexed by [`ChannelId`].
    pub channels: Vec<ChannelDesc>,
    /// All switches, indexed by [`SwitchId`].
    pub switches: Vec<SwitchDesc>,
    /// Per node: the injection channel (node → network).
    pub inject: Vec<ChannelId>,
    /// Per node: the ejection channel (network → node).
    pub eject: Vec<ChannelId>,
}

impl NetworkGraph {
    /// Channel descriptor by id.
    #[inline]
    pub fn channel(&self, c: ChannelId) -> &ChannelDesc {
        &self.channels[c as usize]
    }

    /// Switch descriptor by id.
    #[inline]
    pub fn switch(&self, s: SwitchId) -> &SwitchDesc {
        &self.switches[s as usize]
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Channel ids sorted by `topo_rank` ascending — the order in which the
    /// simulation engine performs per-cycle transmissions so that a worm
    /// advances as a unit (see [`ChannelDesc::topo_rank`]).
    pub fn transmit_order(&self) -> Vec<ChannelId> {
        let mut ids: Vec<ChannelId> = (0..self.channels.len() as u32).collect();
        ids.sort_by_key(|&c| self.channels[c as usize].topo_rank);
        ids
    }

    /// Sanity-check structural invariants; used by builders and tests.
    ///
    /// Verifies: endpoint switch/node indices are in range; every channel
    /// listed in a switch's `inputs`/`out_ports` actually terminates /
    /// originates there; every node has exactly one injection and one
    /// ejection channel; and each switch input port receives at most the
    /// declared number of channels.
    pub fn validate(&self) -> Result<(), String> {
        let n_nodes = self.geometry.nodes();
        if self.inject.len() != n_nodes as usize || self.eject.len() != n_nodes as usize {
            return Err("inject/eject tables must have one entry per node".into());
        }
        for (i, ch) in self.channels.iter().enumerate() {
            for ep in [ch.src, ch.dst] {
                match ep {
                    Endpoint::Node(nd) if nd >= n_nodes => {
                        return Err(format!("channel {i}: node {nd} out of range"));
                    }
                    Endpoint::Switch { sw, port, .. } => {
                        if sw as usize >= self.switches.len() {
                            return Err(format!("channel {i}: switch {sw} out of range"));
                        }
                        if u32::from(port) >= self.geometry.k() {
                            return Err(format!("channel {i}: port {port} out of range"));
                        }
                    }
                    _ => {}
                }
            }
        }
        for (sid, sw) in self.switches.iter().enumerate() {
            for &c in &sw.inputs {
                match self.channels.get(c as usize).map(|ch| ch.dst) {
                    Some(Endpoint::Switch { sw: s2, .. }) if s2 as usize == sid => {}
                    _ => return Err(format!("switch {sid}: input {c} does not terminate here")),
                }
            }
            for lanes in &sw.out_ports {
                for &c in lanes {
                    match self.channels.get(c as usize).map(|ch| ch.src) {
                        Some(Endpoint::Switch { sw: s2, .. }) if s2 as usize == sid => {}
                        _ => {
                            return Err(format!("switch {sid}: output {c} does not originate here"))
                        }
                    }
                }
            }
        }
        for nd in 0..n_nodes {
            let inj = self.channels[self.inject[nd as usize] as usize];
            if inj.src != Endpoint::Node(nd) {
                return Err(format!("node {nd}: inject channel has wrong source"));
            }
            let ej = self.channels[self.eject[nd as usize] as usize];
            if ej.dst != Endpoint::Node(nd) {
                return Err(format!("node {nd}: eject channel has wrong destination"));
            }
        }
        Ok(())
    }

    /// Count channels by `(level, dir)` — used by partition analysis and
    /// structural tests.
    pub fn channels_at_level(&self, level: u8, dir: Direction) -> Vec<ChannelId> {
        (0..self.channels.len() as u32)
            .filter(|&c| {
                let ch = &self.channels[c as usize];
                ch.level == level && ch.dir == dir
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_accessors() {
        let e = Endpoint::Node(3);
        assert_eq!(e.node(), Some(3));
        assert_eq!(e.switch(), None);
        let s = Endpoint::Switch {
            sw: 7,
            side: Side::Left,
            port: 1,
        };
        assert_eq!(s.switch(), Some(7));
        assert_eq!(s.node(), None);
    }

    #[test]
    fn kind_dilation() {
        use crate::unidir::UnidirKind;
        let cube2 = NetworkKind::Unidir {
            wiring: UnidirKind::Cube,
            dilation: 2,
        };
        assert_eq!(cube2.dilation(), 2);
        assert_eq!(cube2.wiring(), Some(UnidirKind::Cube));
        assert_eq!(NetworkKind::Bmin.dilation(), 1);
        assert_eq!(NetworkKind::Bmin.wiring(), None);
        assert!(NetworkKind::Bmin.is_bidirectional());
        let bf1 = NetworkKind::Unidir {
            wiring: UnidirKind::Butterfly,
            dilation: 1,
        };
        assert!(!bf1.is_bidirectional());
    }
}
