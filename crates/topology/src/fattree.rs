//! The fat-tree view of a butterfly BMIN (paper §3.3, Fig. 13).
//!
//! A butterfly BMIN with turnaround routing *is* a fat tree: processors are
//! the leaves, and the fat-tree **vertex** at level `j` is the set of stage-`j`
//! switches that serve the same leaf group — switches `(j, s)` whose labels
//! agree on digits `≥ j` (digits `< j` are free, so a vertex contains `k^j`
//! switches). Routing a message is "send up to the least common ancestor,
//! then down": the LCA level of `S` and `D` is exactly
//! `FirstDifference(S, D)`.

use crate::address::{Geometry, NodeAddr};

/// A fat-tree vertex: level plus the shared high digits of its switches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FatVertex {
    /// Tree level = BMIN stage (0 = adjacent to the leaves).
    pub level: u32,
    /// The common value of label digits `level .. n-2`, packed as an
    /// integer (0 when `level == n-1`, the root).
    pub high: u32,
}

/// Fat-tree structure queries for an `N = k^n` butterfly BMIN.
#[derive(Clone, Copy, Debug)]
pub struct FatTreeView {
    g: Geometry,
}

impl FatTreeView {
    /// View the BMIN of geometry `g` as a fat tree.
    pub fn new(g: Geometry) -> Self {
        FatTreeView { g }
    }

    /// The geometry.
    pub fn geometry(&self) -> Geometry {
        self.g
    }

    /// Number of fat-tree vertices at `level`: `k^{n-1-level}`.
    pub fn vertices_at(&self, level: u32) -> u32 {
        assert!(level < self.g.n());
        self.g.kpow(self.g.n() - 1 - level)
    }

    /// The vertex containing switch `(stage, label)`.
    pub fn vertex_of_switch(&self, stage: u32, label: u32) -> FatVertex {
        assert!(stage < self.g.n());
        let high = label / self.g.kpow(stage);
        FatVertex { level: stage, high }
    }

    /// The vertex that is node `a`'s ancestor at `level`.
    pub fn ancestor(&self, a: NodeAddr, level: u32) -> FatVertex {
        assert!(level < self.g.n());
        // Label digits i (>= level) must equal a_{i+1}: high = a >> (level+1) digits.
        let high = a.0 / self.g.kpow(level + 1);
        FatVertex { level, high }
    }

    /// Number of switches grouped into one vertex at `level`: `k^level`.
    pub fn switches_per_vertex(&self, level: u32) -> u32 {
        self.g.kpow(level)
    }

    /// Leaves (nodes) of the subtree rooted at `v`: `k^{level+1}` nodes.
    pub fn leaves(&self, v: FatVertex) -> Vec<u32> {
        let span = self.g.kpow(v.level + 1);
        (v.high * span..(v.high + 1) * span).collect()
    }

    /// Number of upward (parent) link pairs leaving vertex `v` — equal to
    /// the number of leaves in its subtree (the defining fat-tree
    /// property quoted in §3.3). The root has none.
    pub fn parent_links(&self, v: FatVertex) -> u32 {
        if v.level == self.g.n() - 1 {
            0
        } else {
            self.g.kpow(v.level + 1)
        }
    }

    /// The least common ancestor vertex of two distinct leaves; its level
    /// is `FirstDifference(S, D)`.
    pub fn lca(&self, s: NodeAddr, d: NodeAddr) -> Option<FatVertex> {
        let t = self.g.first_difference(s, d)?;
        Some(self.ancestor(s, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmin::down_reachable;

    #[test]
    fn vertex_counts_form_a_tree() {
        let g = Geometry::new(2, 4); // 16-node fat tree (Fig. 13b)
        let ft = FatTreeView::new(g);
        assert_eq!(ft.vertices_at(0), 8);
        assert_eq!(ft.vertices_at(1), 4);
        assert_eq!(ft.vertices_at(2), 2);
        assert_eq!(ft.vertices_at(3), 1); // root
    }

    #[test]
    fn parent_links_equal_leaf_count() {
        let g = Geometry::new(2, 4);
        let ft = FatTreeView::new(g);
        for level in 0..3 {
            for high in 0..ft.vertices_at(level) {
                let v = FatVertex { level, high };
                assert_eq!(ft.parent_links(v), ft.leaves(v).len() as u32);
            }
        }
        let root = FatVertex { level: 3, high: 0 };
        assert_eq!(ft.parent_links(root), 0);
        assert_eq!(ft.leaves(root).len(), 16);
    }

    #[test]
    fn lca_level_is_first_difference() {
        for g in [Geometry::new(2, 3), Geometry::new(4, 3), Geometry::new(2, 4)] {
            let ft = FatTreeView::new(g);
            for s in g.addresses() {
                for d in g.addresses() {
                    match ft.lca(s, d) {
                        None => assert_eq!(s, d),
                        Some(v) => {
                            assert_eq!(Some(v.level), g.first_difference(s, d));
                            // Both leaves are in the LCA's subtree …
                            let leaves = ft.leaves(v);
                            assert!(leaves.contains(&s.0));
                            assert!(leaves.contains(&d.0));
                            // … but in different child subtrees.
                            if v.level > 0 {
                                assert_ne!(
                                    ft.ancestor(s, v.level - 1),
                                    ft.ancestor(d, v.level - 1)
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn vertices_group_switches_with_same_leaf_set() {
        // All switches in a vertex down-reach exactly the vertex's leaves.
        let g = Geometry::new(2, 4);
        let ft = FatTreeView::new(g);
        for stage in 0..g.n() {
            for label in 0..g.kpow(g.n() - 1) {
                let v = ft.vertex_of_switch(stage, label);
                assert_eq!(down_reachable(&g, stage, label), ft.leaves(v));
            }
        }
    }

    #[test]
    fn subnetwork_partition_example() {
        // Fig. 13: subnetworks "A", "B", "C" of the 16-node BMIN correspond
        // to subtrees. The two level-2 vertices split the leaves 0..7 and
        // 8..15.
        let g = Geometry::new(2, 4);
        let ft = FatTreeView::new(g);
        let a = FatVertex { level: 2, high: 0 };
        let b = FatVertex { level: 2, high: 1 };
        assert_eq!(ft.leaves(a), (0..8).collect::<Vec<_>>());
        assert_eq!(ft.leaves(b), (8..16).collect::<Vec<_>>());
        assert_eq!(ft.switches_per_vertex(2), 4);
    }
}
