//! Interconnection permutations (paper Definitions 1 and 2).
//!
//! * The **i-th k-ary butterfly** `β_i^k` interchanges digit 0 and digit `i`
//!   of an address: `β_i(x_{n-1} … x_{i+1} x_i x_{i-1} … x_1 x_0) =
//!   x_{n-1} … x_{i+1} x_0 x_{i-1} … x_1 x_i`.
//! * The **perfect k-shuffle** `σ` rotates the digits left:
//!   `σ(x_{n-1} x_{n-2} … x_1 x_0) = x_{n-2} … x_1 x_0 x_{n-1}`.
//!
//! Both are permutations of the `N = k^n` wire/node addresses and are used
//! as the connection patterns `C_i` between adjacent stages of the MINs
//! (see [`crate::unidir`]) and as the fixed "permutation traffic" patterns
//! of the evaluation (§5.1).

use crate::address::{Geometry, NodeAddr};

/// A wiring permutation on k-ary addresses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Perm {
    /// The identity permutation (equals `β_0`).
    Identity,
    /// The i-th k-ary butterfly `β_i^k` (Definition 1). `Butterfly(0)` is
    /// the identity.
    Butterfly(u32),
    /// The perfect k-shuffle `σ` (Definition 2): left rotation of digits.
    PerfectShuffle,
    /// The inverse perfect k-shuffle `σ⁻¹`: right rotation of digits.
    InverseShuffle,
    /// Perfect k-shuffle of the `j` least significant digits (left
    /// rotation of the low-`j` subaddress); digits above are untouched.
    /// `SubShuffle(n)` equals `PerfectShuffle`.
    SubShuffle(u32),
    /// Inverse perfect k-shuffle of the `j` least significant digits —
    /// the connection pattern of the *baseline* network [Wu & Feng].
    SubInverseShuffle(u32),
}

impl Perm {
    /// Apply the permutation to address `a` under geometry `g`.
    pub fn apply(&self, g: &Geometry, a: NodeAddr) -> NodeAddr {
        debug_assert!(g.contains(a));
        match *self {
            Perm::Identity => a,
            Perm::Butterfly(i) => {
                debug_assert!(i < g.n(), "butterfly index {i} out of range");
                if i == 0 {
                    return a;
                }
                let d0 = g.digit(a, 0);
                let di = g.digit(a, i);
                g.with_digit(g.with_digit(a, 0, di), i, d0)
            }
            Perm::PerfectShuffle => {
                // σ(a) = (a mod k^{n-1}) * k + a div k^{n-1}
                let top = g.kpow(g.n() - 1);
                NodeAddr((a.0 % top) * g.k() + a.0 / top)
            }
            Perm::InverseShuffle => {
                // σ⁻¹(a) = a div k + (a mod k) * k^{n-1}
                let top = g.kpow(g.n() - 1);
                NodeAddr(a.0 / g.k() + (a.0 % g.k()) * top)
            }
            Perm::SubShuffle(j) => {
                debug_assert!(j >= 1 && j <= g.n(), "sub-shuffle width {j} out of range");
                let span = g.kpow(j);
                let high = a.0 / span * span;
                let low = a.0 % span;
                let top = g.kpow(j - 1);
                NodeAddr(high + (low % top) * g.k() + low / top)
            }
            Perm::SubInverseShuffle(j) => {
                debug_assert!(j >= 1 && j <= g.n(), "sub-shuffle width {j} out of range");
                let span = g.kpow(j);
                let high = a.0 / span * span;
                let low = a.0 % span;
                let top = g.kpow(j - 1);
                NodeAddr(high + low / g.k() + (low % g.k()) * top)
            }
        }
    }

    /// The inverse permutation. Butterflies are involutions; the shuffles
    /// invert each other.
    pub fn inverse(&self) -> Perm {
        match *self {
            Perm::Identity => Perm::Identity,
            Perm::Butterfly(i) => Perm::Butterfly(i),
            Perm::PerfectShuffle => Perm::InverseShuffle,
            Perm::InverseShuffle => Perm::PerfectShuffle,
            Perm::SubShuffle(j) => Perm::SubInverseShuffle(j),
            Perm::SubInverseShuffle(j) => Perm::SubShuffle(j),
        }
    }

    /// Tabulate the permutation as a vector `v` with `v[a] = perm(a)`.
    pub fn table(&self, g: &Geometry) -> Vec<NodeAddr> {
        g.addresses().map(|a| self.apply(g, a)).collect()
    }

    /// Number of fixed points (`perm(a) == a`). Relevant for permutation
    /// *traffic*: a node mapped to itself generates no network traffic.
    pub fn fixed_points(&self, g: &Geometry) -> usize {
        g.addresses().filter(|&a| self.apply(g, a) == a).count()
    }
}

/// Check that a tabulated mapping is a bijection on `[0, N)`.
pub fn is_permutation(g: &Geometry, table: &[NodeAddr]) -> bool {
    if table.len() != g.nodes() as usize {
        return false;
    }
    let mut seen = vec![false; table.len()];
    for &t in table {
        if !g.contains(t) || std::mem::replace(&mut seen[t.as_usize()], true) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn butterfly_swaps_digits() {
        let g = Geometry::new(2, 3);
        // β_2(001) = 100
        let a = g.parse_addr("001").unwrap();
        assert_eq!(
            Perm::Butterfly(2).apply(&g, a),
            g.parse_addr("100").unwrap()
        );
        // β_1(011) = 011 with digits 0,1 swapped → 011 → digit0=1,digit1=1 → unchanged
        let b = g.parse_addr("011").unwrap();
        assert_eq!(Perm::Butterfly(1).apply(&g, b), b);
        // β_1(010) = 001
        let c = g.parse_addr("010").unwrap();
        assert_eq!(
            Perm::Butterfly(1).apply(&g, c),
            g.parse_addr("001").unwrap()
        );
    }

    #[test]
    fn butterfly_k4() {
        let g = Geometry::new(4, 3);
        // β_2(213) = 312
        let a = g.parse_addr("213").unwrap();
        assert_eq!(
            Perm::Butterfly(2).apply(&g, a),
            g.parse_addr("312").unwrap()
        );
    }

    #[test]
    fn butterfly_zero_is_identity() {
        let g = Geometry::new(4, 3);
        for a in g.addresses() {
            assert_eq!(Perm::Butterfly(0).apply(&g, a), a);
        }
    }

    #[test]
    fn shuffle_rotates_left() {
        let g = Geometry::new(2, 3);
        // σ(110) = 101 (left rotation of digit string)
        let a = g.parse_addr("110").unwrap();
        assert_eq!(
            Perm::PerfectShuffle.apply(&g, a),
            g.parse_addr("101").unwrap()
        );
        // σ(100) = 001
        let b = g.parse_addr("100").unwrap();
        assert_eq!(
            Perm::PerfectShuffle.apply(&g, b),
            g.parse_addr("001").unwrap()
        );
    }

    #[test]
    fn shuffle_k4() {
        let g = Geometry::new(4, 3);
        // σ(213) = 132
        let a = g.parse_addr("213").unwrap();
        assert_eq!(
            Perm::PerfectShuffle.apply(&g, a),
            g.parse_addr("132").unwrap()
        );
    }

    #[test]
    fn fixed_points_of_shuffle() {
        // Addresses with all digits equal are the fixed points of a full
        // rotation only if the rotation has order dividing 1 — for σ, fixed
        // points are exactly the constant-digit addresses.
        let g = Geometry::new(4, 3);
        assert_eq!(Perm::PerfectShuffle.fixed_points(&g), 4);
        assert_eq!(Perm::Butterfly(2).fixed_points(&g), 16); // digit2 == digit0
        assert_eq!(Perm::Identity.fixed_points(&g), 64);
    }

    #[test]
    fn tables_are_permutations() {
        for &(k, n) in &[(2, 3), (2, 4), (4, 2), (4, 3), (8, 2)] {
            let g = Geometry::new(k, n);
            for p in [
                Perm::Identity,
                Perm::PerfectShuffle,
                Perm::InverseShuffle,
                Perm::Butterfly(n - 1),
                Perm::Butterfly(1),
                Perm::SubShuffle(n),
                Perm::SubShuffle(1),
                Perm::SubInverseShuffle(n - 1),
            ] {
                assert!(is_permutation(&g, &p.table(&g)), "{p:?} on k={k},n={n}");
            }
        }
    }

    #[test]
    fn sub_shuffles() {
        let g = Geometry::new(2, 4);
        // SubShuffle over the full width equals the perfect shuffle …
        for a in g.addresses() {
            assert_eq!(
                Perm::SubShuffle(4).apply(&g, a),
                Perm::PerfectShuffle.apply(&g, a)
            );
            assert_eq!(
                Perm::SubInverseShuffle(4).apply(&g, a),
                Perm::InverseShuffle.apply(&g, a)
            );
            // … and width 1 is the identity (rotating one digit).
            assert_eq!(Perm::SubShuffle(1).apply(&g, a), a);
        }
        // Width-3 rotation leaves digit 3 alone: 1101 → 1 ∘ rot(101) = 1011.
        let a = g.parse_addr("1101").unwrap();
        assert_eq!(
            Perm::SubShuffle(3).apply(&g, a),
            g.parse_addr("1011").unwrap()
        );
        assert_eq!(
            Perm::SubInverseShuffle(3).apply(&g, a),
            g.parse_addr("1110").unwrap()
        );
    }

    #[test]
    fn is_permutation_rejects_non_bijections() {
        let g = Geometry::new(2, 2);
        assert!(!is_permutation(&g, &[NodeAddr(0); 4]));
        assert!(!is_permutation(&g, &[NodeAddr(0), NodeAddr(1)]));
        assert!(!is_permutation(
            &g,
            &[NodeAddr(0), NodeAddr(1), NodeAddr(2), NodeAddr(9)]
        ));
    }

    proptest! {
        #[test]
        fn prop_butterfly_is_involution(k in 2u32..6, n in 1u32..6, raw in 0u32..100_000, i in 0u32..6) {
            let g = Geometry::new(k, n);
            let a = NodeAddr(raw % g.nodes());
            let p = Perm::Butterfly(i % n);
            prop_assert_eq!(p.apply(&g, p.apply(&g, a)), a);
        }

        #[test]
        fn prop_shuffle_inverse(k in 2u32..6, n in 1u32..6, raw in 0u32..100_000) {
            let g = Geometry::new(k, n);
            let a = NodeAddr(raw % g.nodes());
            let s = Perm::PerfectShuffle.apply(&g, a);
            prop_assert_eq!(Perm::InverseShuffle.apply(&g, s), a);
        }

        #[test]
        fn prop_shuffle_order_n(k in 2u32..6, n in 1u32..6, raw in 0u32..100_000) {
            let g = Geometry::new(k, n);
            let mut a = NodeAddr(raw % g.nodes());
            let start = a;
            for _ in 0..n {
                a = Perm::PerfectShuffle.apply(&g, a);
            }
            prop_assert_eq!(a, start);
        }

        #[test]
        fn prop_inverse_round_trip(k in 2u32..6, n in 1u32..6, raw in 0u32..100_000, which in 0u32..4) {
            let g = Geometry::new(k, n);
            let a = NodeAddr(raw % g.nodes());
            let p = match which {
                0 => Perm::Identity,
                1 => Perm::Butterfly((raw / 7) % n),
                2 => Perm::PerfectShuffle,
                _ => Perm::InverseShuffle,
            };
            prop_assert_eq!(p.inverse().apply(&g, p.apply(&g, a)), a);
        }
    }
}
