//! k-ary node addresses and network geometry.
//!
//! Every network in the paper interconnects `N = k^n` nodes whose addresses
//! are written as k-ary numbers `x_{n-1} … x_1 x_0` (digit 0 is the least
//! significant). [`Geometry`] bundles `k` and `n` and provides digit-level
//! arithmetic on [`NodeAddr`] values.

use std::fmt;

/// A node address in `[0, k^n)`.
///
/// The address is stored as a plain integer; digit extraction and
/// substitution are done through a [`Geometry`], which knows the radix.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeAddr(pub u32);

impl NodeAddr {
    /// The raw integer value of the address.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }

    /// The raw value as a `usize`, for indexing.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeAddr({})", self.0)
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeAddr {
    fn from(v: u32) -> Self {
        NodeAddr(v)
    }
}

/// Upper bound on the digit count we support; keeps digit buffers on the
/// stack and `k^n` inside `u32`.
pub const MAX_DIGITS: u32 = 16;

/// The geometry of a k-ary n-stage network: `N = k^n` nodes built from
/// `k × k` switches in `n` stages.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Geometry {
    k: u32,
    n: u32,
}

impl Geometry {
    /// Create a geometry with radix `k` (switch arity) and `n` digits
    /// (stages).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`, `n == 0`, `n > MAX_DIGITS`, or `k^n` overflows
    /// `u32`.
    pub fn new(k: u32, n: u32) -> Self {
        assert!(k >= 2, "switch arity k must be at least 2, got {k}");
        assert!(n >= 1, "stage count n must be at least 1");
        assert!(n <= MAX_DIGITS, "stage count n must be at most {MAX_DIGITS}");
        let mut acc: u64 = 1;
        for _ in 0..n {
            acc = acc.checked_mul(k as u64).expect("k^n overflows");
            assert!(acc <= u32::MAX as u64, "k^n = {acc} does not fit in u32");
        }
        Geometry { k, n }
    }

    /// The switch arity `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The digit count / stage count `n`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Total node count `N = k^n`.
    #[inline]
    pub fn nodes(&self) -> u32 {
        self.k.pow(self.n)
    }

    /// `k^e` for `e <= n`.
    #[inline]
    pub fn kpow(&self, e: u32) -> u32 {
        debug_assert!(e <= self.n);
        self.k.pow(e)
    }

    /// Whether `a` is a valid address in this geometry.
    #[inline]
    pub fn contains(&self, a: NodeAddr) -> bool {
        a.0 < self.nodes()
    }

    /// Digit `i` (0 = least significant) of address `a`.
    #[inline]
    pub fn digit(&self, a: NodeAddr, i: u32) -> u32 {
        debug_assert!(i < self.n, "digit index {i} out of range (n = {})", self.n);
        (a.0 / self.k.pow(i)) % self.k
    }

    /// `a` with digit `i` replaced by `v`.
    #[inline]
    pub fn with_digit(&self, a: NodeAddr, i: u32, v: u32) -> NodeAddr {
        debug_assert!(i < self.n);
        debug_assert!(v < self.k, "digit value {v} out of range (k = {})", self.k);
        let p = self.k.pow(i);
        let old = (a.0 / p) % self.k;
        let res = a.0 as i64 + (v as i64 - old as i64) * p as i64;
        NodeAddr(res as u32)
    }

    /// Build an address from its digits, `digits[i]` being digit `i`
    /// (least significant first). Missing high digits are zero.
    ///
    /// # Panics
    ///
    /// Panics if more than `n` digits are given or any digit is `>= k`.
    pub fn from_digits(&self, digits: &[u32]) -> NodeAddr {
        assert!(digits.len() as u32 <= self.n);
        let mut v = 0u32;
        for (i, &d) in digits.iter().enumerate() {
            assert!(d < self.k, "digit {d} out of range");
            v += d * self.k.pow(i as u32);
        }
        NodeAddr(v)
    }

    /// The digits of `a`, least significant first, padded to `n` entries.
    pub fn digits(&self, a: NodeAddr) -> Vec<u32> {
        (0..self.n).map(|i| self.digit(a, i)).collect()
    }

    /// Render `a` as a k-ary digit string, most significant digit first
    /// (the paper's `x_{n-1} … x_0` notation). For `k > 10` digits are
    /// separated by dots.
    pub fn format_addr(&self, a: NodeAddr) -> String {
        let mut s = String::new();
        for i in (0..self.n).rev() {
            let d = self.digit(a, i);
            if self.k <= 10 {
                s.push(char::from_digit(d, 10).expect("digit < 10"));
            } else {
                if i != self.n - 1 {
                    s.push('.');
                }
                s.push_str(&d.to_string());
            }
        }
        s
    }

    /// Parse a k-ary digit string written most-significant-first
    /// (`"213"` for k ≤ 10, `"2.1.3"` otherwise). The inverse of
    /// [`Geometry::format_addr`].
    pub fn parse_addr(&self, s: &str) -> Option<NodeAddr> {
        let digits: Vec<u32> = if self.k <= 10 {
            s.chars().map(|c| c.to_digit(10)).collect::<Option<_>>()?
        } else {
            s.split('.')
                .map(|p| p.parse().ok())
                .collect::<Option<_>>()?
        };
        if digits.len() as u32 != self.n || digits.iter().any(|&d| d >= self.k) {
            return None;
        }
        // `digits` is most-significant-first; reverse for from_digits.
        let lsb_first: Vec<u32> = digits.into_iter().rev().collect();
        Some(self.from_digits(&lsb_first))
    }

    /// Iterate over every address in the geometry.
    pub fn addresses(&self) -> impl Iterator<Item = NodeAddr> {
        (0..self.nodes()).map(NodeAddr)
    }

    /// `FirstDifference(S, D)` of Definition 3: the position of the leftmost
    /// (most significant) digit where `s` and `d` differ, or `None` when
    /// `s == d`.
    pub fn first_difference(&self, s: NodeAddr, d: NodeAddr) -> Option<u32> {
        (0..self.n).rev().find(|&i| self.digit(s, i) != self.digit(d, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn geometry_basics() {
        let g = Geometry::new(4, 3);
        assert_eq!(g.nodes(), 64);
        assert_eq!(g.k(), 4);
        assert_eq!(g.n(), 3);
        assert_eq!(g.kpow(2), 16);
    }

    #[test]
    #[should_panic(expected = "k must be at least 2")]
    fn geometry_rejects_k1() {
        let _ = Geometry::new(1, 3);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn geometry_rejects_overflow() {
        let _ = Geometry::new(16, 16);
    }

    #[test]
    fn digit_extraction() {
        let g = Geometry::new(4, 3);
        // 2*16 + 1*4 + 3 = 39 → digits "213"
        let a = NodeAddr(39);
        assert_eq!(g.digit(a, 0), 3);
        assert_eq!(g.digit(a, 1), 1);
        assert_eq!(g.digit(a, 2), 2);
        assert_eq!(g.format_addr(a), "213");
        assert_eq!(g.parse_addr("213"), Some(a));
    }

    #[test]
    fn with_digit_replaces() {
        let g = Geometry::new(4, 3);
        let a = NodeAddr(39); // 213
        assert_eq!(g.with_digit(a, 1, 0), NodeAddr(35)); // 203
        assert_eq!(g.with_digit(a, 2, 0), NodeAddr(7)); // 013
        assert_eq!(g.with_digit(a, 0, 3), a); // unchanged
    }

    #[test]
    fn from_digits_round_trip() {
        let g = Geometry::new(2, 3);
        assert_eq!(g.from_digits(&[1, 0, 1]), NodeAddr(5));
        assert_eq!(g.digits(NodeAddr(5)), vec![1, 0, 1]);
        assert_eq!(g.format_addr(NodeAddr(5)), "101");
    }

    #[test]
    fn parse_addr_rejects_bad_input() {
        let g = Geometry::new(4, 3);
        assert_eq!(g.parse_addr("44"), None); // wrong length
        assert_eq!(g.parse_addr("194"), None); // digit out of range
        assert_eq!(g.parse_addr(""), None);
    }

    #[test]
    fn parse_addr_large_radix() {
        let g = Geometry::new(16, 2);
        assert_eq!(g.parse_addr("15.3"), Some(NodeAddr(15 * 16 + 3)));
        assert_eq!(g.format_addr(NodeAddr(15 * 16 + 3)), "15.3");
    }

    #[test]
    fn first_difference_examples() {
        // The paper's Fig. 8 example: FirstDifference(001, 101) = 2 (k = 2).
        let g = Geometry::new(2, 3);
        let s = g.parse_addr("001").unwrap();
        let d = g.parse_addr("101").unwrap();
        assert_eq!(g.first_difference(s, d), Some(2));
        assert_eq!(g.first_difference(s, s), None);
        // Differ only in digit 0.
        let d0 = g.parse_addr("000").unwrap();
        assert_eq!(g.first_difference(s, d0), Some(0));
    }

    #[test]
    fn addresses_iterates_all() {
        let g = Geometry::new(2, 3);
        let all: Vec<_> = g.addresses().collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], NodeAddr(0));
        assert_eq!(all[7], NodeAddr(7));
    }

    proptest! {
        #[test]
        fn prop_digit_round_trip(k in 2u32..9, n in 1u32..6, raw in 0u32..100_000) {
            let g = Geometry::new(k, n);
            let a = NodeAddr(raw % g.nodes());
            let digits = g.digits(a);
            prop_assert_eq!(g.from_digits(&digits), a);
        }

        #[test]
        fn prop_with_digit_then_digit(k in 2u32..9, n in 1u32..6, raw in 0u32..100_000, i in 0u32..6, v in 0u32..9) {
            let g = Geometry::new(k, n);
            let a = NodeAddr(raw % g.nodes());
            let i = i % n;
            let v = v % k;
            let b = g.with_digit(a, i, v);
            prop_assert_eq!(g.digit(b, i), v);
            for j in 0..n {
                if j != i {
                    prop_assert_eq!(g.digit(b, j), g.digit(a, j));
                }
            }
        }

        #[test]
        fn prop_format_parse_round_trip(k in 2u32..9, n in 1u32..6, raw in 0u32..100_000) {
            let g = Geometry::new(k, n);
            let a = NodeAddr(raw % g.nodes());
            prop_assert_eq!(g.parse_addr(&g.format_addr(a)), Some(a));
        }

        #[test]
        fn prop_first_difference_is_leftmost(k in 2u32..5, n in 2u32..5, x in 0u32..100_000, y in 0u32..100_000) {
            let g = Geometry::new(k, n);
            let s = NodeAddr(x % g.nodes());
            let d = NodeAddr(y % g.nodes());
            match g.first_difference(s, d) {
                None => prop_assert_eq!(s, d),
                Some(t) => {
                    prop_assert_ne!(g.digit(s, t), g.digit(d, t));
                    for j in t + 1..n {
                        prop_assert_eq!(g.digit(s, j), g.digit(d, j));
                    }
                }
            }
        }
    }
}
