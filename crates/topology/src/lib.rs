//! # minnet-topology
//!
//! Topology layer for the switch-based wormhole-network study of Ni, Gui and
//! Moore ("Performance Evaluation of Switch-Based Wormhole Networks").
//!
//! This crate owns everything that is *static* about a network:
//!
//! * k-ary, n-digit node addresses and the [`Geometry`] (`N = k^n`) they live
//!   in ([`address`]);
//! * the interconnection permutations of the paper's Definitions 1 and 2 —
//!   the i-th k-ary butterfly `β_i^k` and the perfect k-shuffle `σ`
//!   ([`permutation`]);
//! * k-ary m-cube, base-cube and binary-cube address sets of Definitions 5
//!   and 6 ([`cube`]);
//! * a network-graph model of switches, ports, lanes and unidirectional
//!   channels ([`graph`]);
//! * builders for the four networks of the paper: cube and butterfly
//!   unidirectional MINs with arbitrary channel dilation (TMIN / DMIN /
//!   VMIN share one graph — virtual channels are a simulation-time concept),
//!   and the bidirectional butterfly MIN ([`unidir`], [`bmin`]);
//! * the fat-tree view of the BMIN ([`fattree`], §3.3 of the paper) and
//!   topological-equivalence utilities ([`equivalence`], Fig. 12);
//! * deterministic fault plans — scheduled link / lane / switch failures
//!   compiled into per-epoch dead-lane masks ([`fault`]).
//!
//! Nothing in this crate knows about flits, packets or time; the dynamic
//! wormhole model lives in `minnet-sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod bmin;
pub mod cube;
pub mod equivalence;
pub mod fattree;
pub mod fault;
pub mod graph;
pub mod permutation;
pub mod unidir;

pub use address::{Geometry, NodeAddr};
pub use bmin::build_bmin;
pub use fault::{
    inter_stage_channels, splitmix64, Fault, FaultEpoch, FaultPlan, FaultPlanError,
    FaultSchedule, FaultTarget,
};
pub use cube::{BitCube, CubeSpec, DigitSpec};
pub use graph::{
    ChannelDesc, ChannelId, Direction, Endpoint, NetworkGraph, NetworkKind, NodeId, Side,
    SwitchDesc, SwitchId,
};
pub use permutation::Perm;
pub use unidir::{build_unidir, UnidirKind};
