//! Builders for the unidirectional MINs (paper §2, Figs. 4 and 5).
//!
//! An `N = k^n` node unidirectional MIN is
//! `C_0(N) G_0(N/k) C_1(N) … C_{n-1}(N) G_{n-1}(N/k) C_n(N)`:
//! `n` stages of `N/k` crossbar switches separated by connection
//! permutations `C_i`. Two Delta-class wirings are considered:
//!
//! * **cube MIN** (Fig. 4a): `C_0 = σ` (perfect k-shuffle),
//!   `C_i = β_{n-i}` for `1 ≤ i ≤ n` (so `C_n = β_0 =` identity);
//!   routing tag `t_i = d_{n-1-i}`.
//! * **butterfly MIN** (Fig. 4b): `C_i = β_i` with `C_n = β_0`
//!   (so `C_0` and `C_n` are the identity);
//!   routing tag `t_i = d_{i+1}` for `i ≤ n-2` and `t_{n-1} = d_0`.
//!
//! The same builder covers TMINs (`dilation = 1`), DMINs (`dilation = d`,
//! Fig. 5) and VMINs (dilation 1; virtual channels are layered on by the
//! simulator). Following the paper, the node-to-network and
//! network-to-node links always have a single lane ("half of the input
//! channels and half of the output channels to/from the network are not
//! used in order to maintain the one-port communication architecture").

use crate::address::{Geometry, NodeAddr};
use crate::graph::{
    ChannelDesc, ChannelId, Direction, Endpoint, NetworkGraph, NetworkKind, Side, SwitchDesc,
};
use crate::permutation::Perm;

/// The Delta-class unidirectional wirings: the paper's two main subjects
/// (cube and butterfly) plus the two the paper's §6 "additional work"
/// mentions (Omega partitions like the cube; baseline like the
/// butterfly).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnidirKind {
    /// Cube interconnection (indirect cube / multistage cube): perfect
    /// shuffle in front, then `β_{n-i}` between stages.
    Cube,
    /// Butterfly interconnection: `β_i` between stages.
    Butterfly,
    /// Omega network (Lawrie): a perfect shuffle before every stage.
    Omega,
    /// Baseline network (Wu & Feng): progressively narrower inverse
    /// shuffles (`σ⁻¹` over the low `n-i+1` digits before stage `i`).
    Baseline,
}

impl UnidirKind {
    /// Connection pattern `C_i` for `0 ≤ i ≤ n`.
    pub fn connection(&self, g: &Geometry, i: u32) -> Perm {
        let n = g.n();
        assert!(i <= n, "connection index {i} out of range (n = {n})");
        match self {
            UnidirKind::Cube => {
                if i == 0 {
                    Perm::PerfectShuffle
                } else {
                    Perm::Butterfly(n - i) // C_n = β_0 = identity
                }
            }
            UnidirKind::Butterfly => {
                if i == n || i == 0 {
                    Perm::Identity // C_0 = C_n = β_0
                } else {
                    Perm::Butterfly(i)
                }
            }
            UnidirKind::Omega => {
                if i == n {
                    Perm::Identity
                } else {
                    Perm::PerfectShuffle
                }
            }
            UnidirKind::Baseline => {
                if i == 0 || i == n {
                    Perm::Identity
                } else {
                    Perm::SubInverseShuffle(n - i + 1)
                }
            }
        }
    }

    /// Routing tag digit `t_i` controlling the switch at stage `G_i` for a
    /// packet headed to `dst` (self-routing property of Delta networks).
    #[inline]
    pub fn tag_digit(&self, g: &Geometry, dst: NodeAddr, stage: u32) -> u32 {
        let n = g.n();
        debug_assert!(stage < n);
        match self {
            // Cube, Omega and baseline all consume destination digits most
            // significant first; only the wiring between stages differs.
            UnidirKind::Cube | UnidirKind::Omega | UnidirKind::Baseline => {
                g.digit(dst, n - 1 - stage)
            }
            UnidirKind::Butterfly => {
                if stage == n - 1 {
                    g.digit(dst, 0)
                } else {
                    g.digit(dst, stage + 1)
                }
            }
        }
    }

    /// The full routing tag `t_0 t_1 … t_{n-1}`.
    pub fn routing_tag(&self, g: &Geometry, dst: NodeAddr) -> Vec<u32> {
        (0..g.n()).map(|s| self.tag_digit(g, dst, s)).collect()
    }

    /// The corresponding [`NetworkKind`] at a given dilation.
    pub fn network_kind(&self, dilation: u8) -> NetworkKind {
        NetworkKind::Unidir {
            wiring: *self,
            dilation,
        }
    }
}

/// Build an `N = k^n` unidirectional MIN with the given wiring and
/// inter-stage channel dilation.
///
/// # Panics
///
/// Panics if `dilation == 0`.
pub fn build_unidir(g: Geometry, kind: UnidirKind, dilation: u8) -> NetworkGraph {
    assert!(dilation >= 1, "dilation must be at least 1");
    let k = g.k();
    let n = g.n();
    let nodes = g.nodes();
    let per_stage = nodes / k;

    let nch = (2 * nodes + (n - 1) * nodes * dilation as u32) as usize;
    let mut channels: Vec<ChannelDesc> = Vec::with_capacity(nch);
    let switches: Vec<SwitchDesc> = (0..n)
        .flat_map(|stage| {
            (0..per_stage).map(move |index| SwitchDesc {
                stage: stage as u8,
                index,
            })
        })
        .collect();
    let sw_id = |stage: u32, index: u32| stage * per_stage + index;

    let mut inject = vec![0 as ChannelId; nodes as usize];
    let mut eject = vec![0 as ChannelId; nodes as usize];

    // topo_rank: sinks first → level ℓ gets rank n - ℓ.
    let rank = |level: u32| (n - level) as u16;

    // Level 0: node a → stage 0 input position C_0(a).
    let c0 = kind.connection(&g, 0);
    for a in 0..nodes {
        let pos = c0.apply(&g, NodeAddr(a)).0;
        let id = channels.len() as ChannelId;
        channels.push(ChannelDesc {
            src: Endpoint::Node(a),
            dst: Endpoint::Switch {
                sw: sw_id(0, pos / k),
                side: Side::Left,
                port: (pos % k) as u8,
            },
            level: 0,
            lane: 0,
            dir: Direction::Forward,
            topo_rank: rank(0),
        });
        inject[a as usize] = id;
    }

    // Levels 1..n-1: stage i-1 output position w → stage i input position
    // C_i(w), with `dilation` lanes per port.
    for level in 1..n {
        let ci = kind.connection(&g, level);
        for w in 0..nodes {
            let src_sw = sw_id(level - 1, w / k);
            let src_port = (w % k) as u8;
            let v = ci.apply(&g, NodeAddr(w)).0;
            let dst_sw = sw_id(level, v / k);
            let dst_port = (v % k) as u8;
            for lane in 0..dilation {
                channels.push(ChannelDesc {
                    src: Endpoint::Switch {
                        sw: src_sw,
                        side: Side::Right,
                        port: src_port,
                    },
                    dst: Endpoint::Switch {
                        sw: dst_sw,
                        side: Side::Left,
                        port: dst_port,
                    },
                    level: level as u8,
                    lane,
                    dir: Direction::Forward,
                    topo_rank: rank(level),
                });
            }
        }
    }

    // Level n: stage n-1 output position w → node C_n(w). Single lane.
    let cn = kind.connection(&g, n);
    for w in 0..nodes {
        let src_sw = sw_id(n - 1, w / k);
        let src_port = (w % k) as u8;
        let node = cn.apply(&g, NodeAddr(w)).0;
        let id = channels.len() as ChannelId;
        channels.push(ChannelDesc {
            src: Endpoint::Switch {
                sw: src_sw,
                side: Side::Right,
                port: src_port,
            },
            dst: Endpoint::Node(node),
            level: n as u8,
            lane: 0,
            dir: Direction::Forward,
            topo_rank: rank(n),
        });
        eject[node as usize] = id;
    }

    let graph = NetworkGraph::assemble(
        g,
        kind.network_kind(dilation),
        channels,
        switches,
        inject,
        eject,
    );
    graph
        .validate()
        .expect("unidirectional MIN builder produced an invalid graph");
    graph
}

/// Follow the unique destination-tag path from `src` to `dst`, returning
/// the sequence of `(level, position)` wire positions traversed — a purely
/// topological walk used by structural tests and the partition analysis
/// (lane choice is irrelevant to which *port* is crossed).
///
/// `position` is the wire index within the level (`0..N`), i.e. the channel
/// entering switch `position / k` at port `position % k` (levels `< n`) or
/// reaching node `C_n(position)` (level `n`, where the returned position is
/// the *output side* index before applying `C_n`).
pub fn unique_path_positions(
    g: &Geometry,
    kind: UnidirKind,
    src: NodeAddr,
    dst: NodeAddr,
) -> Vec<(u32, u32)> {
    let k = g.k();
    let n = g.n();
    let mut out = Vec::with_capacity(n as usize + 1);
    // Entering stage 0.
    let mut pos = kind.connection(g, 0).apply(g, src).0;
    out.push((0, pos));
    for stage in 0..n {
        let t = kind.tag_digit(g, dst, stage);
        let out_pos = (pos / k) * k + t; // stay in the same switch, pick output t
        let next = kind.connection(g, stage + 1).apply(g, NodeAddr(out_pos)).0;
        out.push((stage + 1, next));
        pos = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn geometries() -> Vec<Geometry> {
        vec![
            Geometry::new(2, 3),
            Geometry::new(2, 4),
            Geometry::new(4, 2),
            Geometry::new(4, 3),
            Geometry::new(8, 2),
        ]
    }

    #[test]
    fn channel_and_switch_counts() {
        // Fig. 4: an 8-node MIN of 2×2 switches has 3 stages of 4 switches
        // and N channels per connection level.
        for kind in [UnidirKind::Cube, UnidirKind::Butterfly] {
            for g in geometries() {
                let net = build_unidir(g, kind, 1);
                let n = g.n();
                let nodes = g.nodes();
                assert_eq!(net.num_switches() as u32, n * nodes / g.k());
                assert_eq!(net.num_channels() as u32, (n + 1) * nodes);
                for level in 0..=n {
                    assert_eq!(
                        net.channels_at_level(level as u8, Direction::Forward).len() as u32,
                        nodes,
                        "level {level}"
                    );
                }
            }
        }
    }

    #[test]
    fn dilated_channel_counts() {
        // Fig. 5: dilation doubles inter-stage channels but not the
        // node-to-network or network-to-node links.
        let g = Geometry::new(4, 3);
        let net = build_unidir(g, UnidirKind::Cube, 2);
        assert_eq!(net.channels_at_level(0, Direction::Forward).len(), 64);
        assert_eq!(net.channels_at_level(1, Direction::Forward).len(), 128);
        assert_eq!(net.channels_at_level(2, Direction::Forward).len(), 128);
        assert_eq!(net.channels_at_level(3, Direction::Forward).len(), 64);
        // Every inter-stage output port has exactly 2 lanes.
        for s in 0..net.num_switches() as u32 {
            let stage = net.switch(s).stage;
            for code in 0..net.out_port_codes() {
                let expect = if stage as u32 == g.n() - 1 { 1 } else { 2 };
                assert_eq!(net.out_port(s, code).len(), expect);
            }
        }
    }

    #[test]
    fn destination_tag_reaches_destination() {
        // Self-routing (Delta property): the tag path ends at the
        // destination for every (src, dst) pair, both wirings.
        for kind in [UnidirKind::Cube, UnidirKind::Butterfly] {
            for g in geometries() {
                let cn = kind.connection(&g, g.n());
                for src in g.addresses() {
                    for dst in g.addresses() {
                        let path = unique_path_positions(&g, kind, src, dst);
                        assert_eq!(path.len() as u32, g.n() + 1);
                        let (level, last) = *path.last().unwrap();
                        assert_eq!(level, g.n());
                        assert_eq!(
                            cn.apply(&g, NodeAddr(last)),
                            dst,
                            "{kind:?} {src}→{dst}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn banyan_unique_path_property() {
        // Delta networks are banyan: exactly one path per (src, dst). Since
        // destination-tag routing is deterministic and complete, it
        // suffices that distinct sources entering the same switch with the
        // same remaining tag merge — i.e. path count is exactly 1 by
        // construction. Here we verify no two *different* destinations from
        // one source share the final position.
        let g = Geometry::new(4, 3);
        for kind in [UnidirKind::Cube, UnidirKind::Butterfly] {
            for src in g.addresses() {
                let mut finals = std::collections::BTreeSet::new();
                for dst in g.addresses() {
                    let path = unique_path_positions(&g, kind, src, dst);
                    assert!(finals.insert(path.last().unwrap().1));
                }
            }
        }
    }

    #[test]
    fn cube_tag_digits() {
        let g = Geometry::new(4, 3);
        let dst = g.parse_addr("213").unwrap();
        assert_eq!(UnidirKind::Cube.routing_tag(&g, dst), vec![2, 1, 3]);
        // Butterfly: t_i = d_{i+1} for i ≤ n-2, t_{n-1} = d_0.
        assert_eq!(UnidirKind::Butterfly.routing_tag(&g, dst), vec![1, 2, 3]);
    }

    #[test]
    fn omega_and_baseline_self_route() {
        // §6's other Delta networks deliver under destination-tag routing
        // and are banyan.
        for kind in [UnidirKind::Omega, UnidirKind::Baseline] {
            for g in geometries() {
                let cn = kind.connection(&g, g.n());
                for src in g.addresses() {
                    for dst in g.addresses() {
                        let path = unique_path_positions(&g, kind, src, dst);
                        let (level, last) = *path.last().unwrap();
                        assert_eq!(level, g.n());
                        assert_eq!(cn.apply(&g, NodeAddr(last)), dst, "{kind:?} {src}→{dst}");
                    }
                }
            }
        }
    }

    #[test]
    fn omega_baseline_wiring_shapes() {
        let g = Geometry::new(2, 3);
        assert_eq!(UnidirKind::Omega.connection(&g, 0), Perm::PerfectShuffle);
        assert_eq!(UnidirKind::Omega.connection(&g, 2), Perm::PerfectShuffle);
        assert_eq!(UnidirKind::Omega.connection(&g, 3), Perm::Identity);
        assert_eq!(UnidirKind::Baseline.connection(&g, 0), Perm::Identity);
        assert_eq!(
            UnidirKind::Baseline.connection(&g, 1),
            Perm::SubInverseShuffle(3)
        );
        assert_eq!(
            UnidirKind::Baseline.connection(&g, 2),
            Perm::SubInverseShuffle(2)
        );
        assert_eq!(UnidirKind::Baseline.connection(&g, 3), Perm::Identity);
        // All four wirings consume the same tag for cube-style kinds.
        let dst = g.parse_addr("101").unwrap();
        assert_eq!(UnidirKind::Omega.routing_tag(&g, dst), vec![1, 0, 1]);
        assert_eq!(UnidirKind::Baseline.routing_tag(&g, dst), vec![1, 0, 1]);
        assert_eq!(UnidirKind::Cube.routing_tag(&g, dst), vec![1, 0, 1]);
    }

    #[test]
    fn all_wirings_build_valid_networks() {
        for kind in [
            UnidirKind::Cube,
            UnidirKind::Butterfly,
            UnidirKind::Omega,
            UnidirKind::Baseline,
        ] {
            for d in [1u8, 2] {
                let net = build_unidir(Geometry::new(4, 3), kind, d);
                assert_eq!(net.kind.wiring(), Some(kind));
                assert_eq!(net.kind.dilation(), d);
            }
        }
    }

    #[test]
    fn connections_match_paper() {
        let g = Geometry::new(2, 3);
        assert_eq!(UnidirKind::Cube.connection(&g, 0), Perm::PerfectShuffle);
        assert_eq!(UnidirKind::Cube.connection(&g, 1), Perm::Butterfly(2));
        assert_eq!(UnidirKind::Cube.connection(&g, 2), Perm::Butterfly(1));
        assert_eq!(UnidirKind::Cube.connection(&g, 3), Perm::Butterfly(0));
        assert_eq!(UnidirKind::Butterfly.connection(&g, 0), Perm::Identity);
        assert_eq!(UnidirKind::Butterfly.connection(&g, 1), Perm::Butterfly(1));
        assert_eq!(UnidirKind::Butterfly.connection(&g, 2), Perm::Butterfly(2));
        assert_eq!(UnidirKind::Butterfly.connection(&g, 3), Perm::Identity);
    }

    #[test]
    fn transmit_order_is_downstream_first() {
        let g = Geometry::new(4, 3);
        let net = build_unidir(g, UnidirKind::Cube, 2);
        let order = net.transmit_order();
        // Ejection channels (level n) come first, injection (level 0) last.
        assert_eq!(net.channel(order[0]).level as u32, g.n());
        assert_eq!(net.channel(*order.last().unwrap()).level, 0);
        let mut prev = 0u16;
        for &c in order {
            let r = net.channel(c).topo_rank;
            assert!(r >= prev);
            prev = r;
        }
    }

    #[test]
    fn one_port_architecture() {
        let g = Geometry::new(4, 3);
        let net = build_unidir(g, UnidirKind::Butterfly, 2);
        // Exactly one inject and one eject channel per node.
        for a in 0..g.nodes() {
            let inj = net.channel(net.inject(a));
            assert_eq!(inj.src, Endpoint::Node(a));
            assert_eq!(inj.level, 0);
            let ej = net.channel(net.eject(a));
            assert_eq!(ej.dst, Endpoint::Node(a));
            assert_eq!(ej.level as u32, g.n());
        }
    }

    proptest! {
        #[test]
        fn prop_builders_valid_for_any_shape(
            k in 2u32..6,
            n in 1u32..5,
            d in 1u8..4,
            which in 0usize..4,
        ) {
            let kind = [
                UnidirKind::Cube,
                UnidirKind::Butterfly,
                UnidirKind::Omega,
                UnidirKind::Baseline,
            ][which];
            let g = Geometry::new(k, n);
            let net = build_unidir(g, kind, d);
            prop_assert!(net.validate().is_ok());
            let nodes = g.nodes();
            // N injection + N ejection + (n-1)·N·d inter-stage channels.
            prop_assert_eq!(
                net.num_channels() as u32,
                2 * nodes + (n - 1) * nodes * d as u32
            );
            // The transmit order is downstream-first: for the
            // unidirectional builders rank = n - level, so connection
            // levels are non-increasing along the order.
            let order = net.transmit_order();
            let mut prev = u8::MAX;
            for &c in order {
                let lvl = net.channel(c).level;
                prop_assert!(lvl <= prev);
                prev = lvl;
            }
        }

        #[test]
        fn prop_path_positions_consistent(seed in 0u32..10_000) {
            // The path's consecutive wire positions are linked by the
            // connection permutations and stay within one switch between
            // input and output.
            let g = Geometry::new(4, 3);
            let src = NodeAddr(seed % g.nodes());
            let dst = NodeAddr((seed / 64) % g.nodes());
            for kind in [UnidirKind::Cube, UnidirKind::Butterfly] {
                let path = unique_path_positions(&g, kind, src, dst);
                for w in path.windows(2) {
                    let (lvl, pos) = w[0];
                    let (lvl2, pos2) = w[1];
                    prop_assert_eq!(lvl2, lvl + 1);
                    // pos2 = C_{lvl+1}((pos / k)*k + t_lvl)
                    let t = kind.tag_digit(&g, dst, lvl);
                    let out = (pos / g.k()) * g.k() + t;
                    prop_assert_eq!(
                        kind.connection(&g, lvl + 1).apply(&g, NodeAddr(out)).0,
                        pos2
                    );
                }
            }
        }
    }
}
