//! End-to-end acceptance of the scenario DSL against the shipped
//! `scenarios/` library — the issue's contract, pinned:
//!
//! 1. every deterministic scenario in the library ends as its file
//!    declares (the watchdog-trip fixture *fails*, carrying the
//!    structured stall diagnostic);
//! 2. the verdict report is byte-identical across repeated runs and
//!    thread counts, chaos storms included;
//! 3. chaos-gated scenarios are skipped unless explicitly included;
//! 4. checkpoint/resume reproduces the same verdicts without rerunning
//!    finished tasks.

use minnet::{
    run_scenario_files, run_scenario_files_with_budget, scenario_files, verdict_report_json,
    CheckStatus, VerdictStatus,
};
use minnet_sim::RunBudget;
use std::path::{Path, PathBuf};

/// The `scenarios/` library at the repository root.
fn library() -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    scenario_files(&dir).expect("scenario library present")
}

/// The library minus the 16k-terminal scale scenario — everything that
/// is cheap enough to run repeatedly in debug builds.
fn small_library() -> Vec<PathBuf> {
    library()
        .into_iter()
        .filter(|p| !p.to_string_lossy().contains("scale_16k"))
        .collect()
}

#[test]
fn library_runs_end_to_end_as_declared() {
    let set = run_scenario_files(&library(), 2, 0, true, None).unwrap();
    assert!(set.skipped.is_empty(), "chaos included, nothing skipped");
    assert!(
        set.all_as_expected(),
        "every scenario must end as its file declares:\n{}",
        set.verdicts
            .iter()
            .filter(|v| !v.as_expected())
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The deterministic baselines pass outright…
    let baseline = set
        .verdicts
        .iter()
        .find(|v| v.scenario == "baseline-tmin-curve")
        .expect("baseline scenario present");
    assert_eq!(baseline.status, VerdictStatus::Pass);
    assert!(baseline.stall.is_none());
    assert!(baseline.checks.iter().all(|c| c.status == CheckStatus::Passed));
    // …and the watchdog fixture fails with the structured diagnostic.
    let trip = set
        .verdicts
        .iter()
        .find(|v| v.scenario == "watchdog-trip")
        .expect("watchdog scenario present");
    assert_eq!(trip.status, VerdictStatus::Fail);
    assert_eq!(trip.expected, VerdictStatus::Fail);
    assert!(trip.as_expected());
    let diag = trip.stall.as_ref().expect("verdict carries the stall diagnostic");
    assert_eq!(diag.window, 500);
    assert_eq!(diag.stalled.len(), 1);
    assert_eq!((diag.stalled[0].src, diag.stalled[0].dst), (0, 15));
    assert!(diag.suspected_cycle.is_none(), "dead-channel block is acyclic");
    let no_stall = trip
        .checks
        .iter()
        .find(|c| c.what == "no stall")
        .expect("no-stall check evaluated");
    assert_eq!(no_stall.status, CheckStatus::Failed);
    assert!(no_stall.detail.contains("no progress"), "{}", no_stall.detail);
}

#[test]
fn verdict_report_is_bitwise_stable_across_runs_and_threads() {
    let files = small_library();
    let a = run_scenario_files(&files, 1, 0, true, None).unwrap();
    let b = run_scenario_files(&files, 4, 0, true, None).unwrap();
    let ja = verdict_report_json(&a);
    let jb = verdict_report_json(&b);
    assert_eq!(ja, jb, "verdict report must not depend on thread count");
    let c = run_scenario_files(&files, 4, 0, true, None).unwrap();
    assert_eq!(jb, verdict_report_json(&c), "repeat runs must be bitwise identical");
    // The report format stays wall-clock-free — the determinism above
    // is structural, not luck.
    assert!(!ja.contains("wall"));
}

#[test]
fn chaos_scenarios_are_gated_behind_opt_in() {
    let files: Vec<PathBuf> = library()
        .into_iter()
        .filter(|p| {
            let s = p.to_string_lossy();
            s.contains("transient_storm") || s.contains("baseline_tmin")
        })
        .collect();
    let set = run_scenario_files(&files, 2, 0, false, None).unwrap();
    assert_eq!(set.skipped, vec!["transient-storm-recovery".to_string()]);
    assert_eq!(set.verdicts.len(), 1);
    assert_eq!(set.verdicts[0].scenario, "baseline-tmin-curve");
}

#[test]
fn cli_budget_override_cuts_scenarios_without_editing_files() {
    // The `minnet scenario run --budget-cycles/--budget-ms` passthrough:
    // a cycle cap far below the scenario's horizon truncates every task
    // to a partial outcome, without touching the `.scn` file.
    let files: Vec<PathBuf> = library()
        .into_iter()
        .filter(|p| p.to_string_lossy().contains("baseline_tmin"))
        .collect();
    let tight = RunBudget {
        max_cycles: 500,
        max_wall_ms: 0,
    };
    let cut = run_scenario_files_with_budget(&files, 2, 0, true, None, Some(tight)).unwrap();
    assert_eq!(cut.verdicts.len(), 1);
    assert!(
        cut.verdicts[0]
            .points
            .iter()
            .all(|p| p.outcome.tag() == "partial"),
        "a 500-cycle cap must truncate every task: {:?}",
        cut.verdicts[0]
            .points
            .iter()
            .map(|p| p.outcome.tag())
            .collect::<Vec<_>>()
    );
    // No override (or an all-zero one, which `minnet` maps to None)
    // leaves the declared behavior untouched, bit for bit.
    let plain = run_scenario_files(&files, 2, 0, true, None).unwrap();
    let none = run_scenario_files_with_budget(&files, 2, 0, true, None, None).unwrap();
    assert_eq!(verdict_report_json(&plain), verdict_report_json(&none));
    assert_eq!(plain.verdicts[0].status, VerdictStatus::Pass);
}

#[test]
fn checkpointed_rerun_resumes_to_identical_verdicts() {
    // Non-stalling scenarios only: a stall diagnostic lives in the run's
    // side channel and is not persisted to checkpoints, so a resumed
    // watchdog fixture would (documentedly) lose its `stall` payload.
    let files: Vec<PathBuf> = library()
        .into_iter()
        .filter(|p| {
            let s = p.to_string_lossy();
            s.contains("baseline_bmin") || s.contains("tmin_link")
        })
        .collect();
    let dir = std::env::temp_dir().join(format!("minnet_scn_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let first = run_scenario_files(&files, 2, 0, true, Some(&dir)).unwrap();
    for v in &first.verdicts {
        assert!(
            dir.join(format!("{}.ckpt", v.scenario)).exists(),
            "checkpoint written for {}",
            v.scenario
        );
    }
    // Second run resumes from the checkpoints (every task preloaded)
    // and must reproduce the verdict report bit for bit.
    let second = run_scenario_files(&files, 2, 0, true, Some(&dir)).unwrap();
    assert_eq!(verdict_report_json(&first), verdict_report_json(&second));
    let _ = std::fs::remove_dir_all(&dir);
}
