//! Smoke tests for the `minnet` CLI binary.

use std::process::Command;

fn minnet(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_minnet"))
        .args(args)
        .output()
        .expect("spawning the minnet binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn info_reports_network_facts() {
    let (ok, stdout, _) = minnet(&["info", "--network", "bmin"]);
    assert!(ok);
    assert!(stdout.contains("BMIN"));
    assert!(stdout.contains("64 nodes"));
    assert!(stdout.contains("deadlock"));
    assert!(stdout.contains("free"));
}

#[test]
fn simulate_prints_metrics() {
    let (ok, stdout, _) = minnet(&[
        "simulate", "--network", "dmin", "--load", "0.3", "--warmup", "1000", "--measure",
        "6000", "--sizes", "fixed:32",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("accepted"));
    assert!(stdout.contains("latency"));
    assert!(stdout.contains("sustainable"));
}

#[test]
fn sweep_writes_csv() {
    let dir = std::env::temp_dir().join("minnet_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("sweep.csv");
    let (ok, stdout, _) = minnet(&[
        "sweep", "--network", "tmin", "--loads", "0.1,0.5", "--warmup", "500", "--measure",
        "4000", "--sizes", "fixed:32", "--csv",
        csv.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("offered%"));
    let contents = std::fs::read_to_string(&csv).unwrap();
    assert_eq!(contents.lines().count(), 3); // header + 2 points
    let _ = std::fs::remove_file(csv);
}

#[test]
fn sweep_resume_reproduces_the_csv_bitwise() {
    let dir = std::env::temp_dir().join(format!("minnet_cli_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("ckpt.jsonl");
    let csv_ref = dir.join("ref.csv");
    let csv_res = dir.join("resumed.csv");
    let base = [
        "sweep", "--network", "tmin", "--loads", "0.1,0.3,0.5", "--warmup", "500",
        "--measure", "4000", "--sizes", "fixed:32",
    ];

    // Uninterrupted reference (no checkpoint involved at all).
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--csv", csv_ref.to_str().unwrap()]);
    let (ok, stdout, _) = minnet(&args);
    assert!(ok, "{stdout}");

    // A checkpointed run, then a simulated kill: drop all but the first
    // completed point and resume.
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--checkpoint", ckpt.to_str().unwrap()]);
    let (ok, stdout, _) = minnet(&args);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("outcomes: 3 ok, 0 partial, 0 failed"));
    let full = std::fs::read_to_string(&ckpt).unwrap();
    let cut: String = full.split_inclusive('\n').take(2).collect();
    std::fs::write(&ckpt, cut).unwrap();

    let mut args: Vec<&str> = base.to_vec();
    args.extend([
        "--resume",
        ckpt.to_str().unwrap(),
        "--csv",
        csv_res.to_str().unwrap(),
    ]);
    let (ok, stdout, _) = minnet(&args);
    assert!(ok, "{stdout}");
    let reference = std::fs::read_to_string(&csv_ref).unwrap();
    let resumed = std::fs::read_to_string(&csv_res).unwrap();
    assert_eq!(reference, resumed, "resumed CSV differs from uninterrupted run");

    // --resume refuses a missing file; --checkpoint with --resume is an error.
    let missing = dir.join("nope.jsonl");
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--resume", missing.to_str().unwrap()]);
    let (ok, _, stderr) = minnet(&args);
    assert!(!ok);
    assert!(stderr.contains("does not exist"), "{stderr}");
    let mut args: Vec<&str> = base.to_vec();
    args.extend([
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--resume",
        ckpt.to_str().unwrap(),
    ]);
    let (ok, _, stderr) = minnet(&args);
    assert!(!ok);
    assert!(stderr.contains("mutually exclusive"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_reports_partial_points_under_a_budget() {
    // A cycle budget below warmup+measure cuts every point: the sweep
    // still completes, reports PARTIAL per point, and crowns no
    // sustainable maximum.
    let (ok, stdout, _) = minnet(&[
        "sweep", "--network", "tmin", "--loads", "0.1,0.3", "--warmup", "500", "--measure",
        "4000", "--sizes", "fixed:32", "--budget-cycles", "2000",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("PARTIAL"), "{stdout}");
    assert!(stdout.contains("outcomes: 0 ok, 2 partial, 0 failed"), "{stdout}");
    assert!(!stdout.contains("max sustainable"), "{stdout}");
}

#[test]
fn partition_detects_reduced_butterfly() {
    let (ok, stdout, _) = minnet(&["partition", "--wiring", "butterfly", "--clusters", "msd"]);
    assert!(ok);
    assert!(stdout.contains("NOT balanced"));
    assert!(stdout.contains("contention-free: yes"));
    let (ok2, stdout2, _) = minnet(&["partition", "--wiring", "cube", "--clusters", "msd"]);
    assert!(ok2);
    assert!(!stdout2.contains("NOT balanced"));
}

#[test]
fn bad_arguments_fail_cleanly() {
    let (ok, _, stderr) = minnet(&["simulate", "--network", "warp"]);
    assert!(!ok);
    assert!(stderr.contains("unknown network"));
    let (ok2, _, _) = minnet(&["frobnicate"]);
    assert!(!ok2);
}
