//! Smoke tests for the `minnet` CLI binary.

use std::process::Command;

fn minnet(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_minnet"))
        .args(args)
        .output()
        .expect("spawning the minnet binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn info_reports_network_facts() {
    let (ok, stdout, _) = minnet(&["info", "--network", "bmin"]);
    assert!(ok);
    assert!(stdout.contains("BMIN"));
    assert!(stdout.contains("64 nodes"));
    assert!(stdout.contains("deadlock"));
    assert!(stdout.contains("free"));
}

#[test]
fn simulate_prints_metrics() {
    let (ok, stdout, _) = minnet(&[
        "simulate", "--network", "dmin", "--load", "0.3", "--warmup", "1000", "--measure",
        "6000", "--sizes", "fixed:32",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("accepted"));
    assert!(stdout.contains("latency"));
    assert!(stdout.contains("sustainable"));
}

#[test]
fn sweep_writes_csv() {
    let dir = std::env::temp_dir().join("minnet_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("sweep.csv");
    let (ok, stdout, _) = minnet(&[
        "sweep", "--network", "tmin", "--loads", "0.1,0.5", "--warmup", "500", "--measure",
        "4000", "--sizes", "fixed:32", "--csv",
        csv.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("offered%"));
    let contents = std::fs::read_to_string(&csv).unwrap();
    assert_eq!(contents.lines().count(), 3); // header + 2 points
    let _ = std::fs::remove_file(csv);
}

#[test]
fn sweep_resume_reproduces_the_csv_bitwise() {
    let dir = std::env::temp_dir().join(format!("minnet_cli_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("ckpt.jsonl");
    let csv_ref = dir.join("ref.csv");
    let csv_res = dir.join("resumed.csv");
    let base = [
        "sweep", "--network", "tmin", "--loads", "0.1,0.3,0.5", "--warmup", "500",
        "--measure", "4000", "--sizes", "fixed:32",
    ];

    // Uninterrupted reference (no checkpoint involved at all).
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--csv", csv_ref.to_str().unwrap()]);
    let (ok, stdout, _) = minnet(&args);
    assert!(ok, "{stdout}");

    // A checkpointed run, then a simulated kill: drop all but the first
    // completed point and resume.
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--checkpoint", ckpt.to_str().unwrap()]);
    let (ok, stdout, _) = minnet(&args);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("outcomes: 3 ok, 0 partial, 0 failed"));
    let full = std::fs::read_to_string(&ckpt).unwrap();
    let cut: String = full.split_inclusive('\n').take(2).collect();
    std::fs::write(&ckpt, cut).unwrap();

    let mut args: Vec<&str> = base.to_vec();
    args.extend([
        "--resume",
        ckpt.to_str().unwrap(),
        "--csv",
        csv_res.to_str().unwrap(),
    ]);
    let (ok, stdout, _) = minnet(&args);
    assert!(ok, "{stdout}");
    let reference = std::fs::read_to_string(&csv_ref).unwrap();
    let resumed = std::fs::read_to_string(&csv_res).unwrap();
    assert_eq!(reference, resumed, "resumed CSV differs from uninterrupted run");

    // --resume refuses a missing file; --checkpoint with --resume is an error.
    let missing = dir.join("nope.jsonl");
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--resume", missing.to_str().unwrap()]);
    let (ok, _, stderr) = minnet(&args);
    assert!(!ok);
    assert!(stderr.contains("does not exist"), "{stderr}");
    let mut args: Vec<&str> = base.to_vec();
    args.extend([
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--resume",
        ckpt.to_str().unwrap(),
    ]);
    let (ok, _, stderr) = minnet(&args);
    assert!(!ok);
    assert!(stderr.contains("mutually exclusive"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_reports_partial_points_under_a_budget() {
    // A cycle budget below warmup+measure cuts every point: the sweep
    // still completes, reports PARTIAL per point, and crowns no
    // sustainable maximum.
    let (ok, stdout, _) = minnet(&[
        "sweep", "--network", "tmin", "--loads", "0.1,0.3", "--warmup", "500", "--measure",
        "4000", "--sizes", "fixed:32", "--budget-cycles", "2000",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("PARTIAL"), "{stdout}");
    assert!(stdout.contains("outcomes: 0 ok, 2 partial, 0 failed"), "{stdout}");
    assert!(!stdout.contains("max sustainable"), "{stdout}");
}

#[test]
fn partition_detects_reduced_butterfly() {
    let (ok, stdout, _) = minnet(&["partition", "--wiring", "butterfly", "--clusters", "msd"]);
    assert!(ok);
    assert!(stdout.contains("NOT balanced"));
    assert!(stdout.contains("contention-free: yes"));
    let (ok2, stdout2, _) = minnet(&["partition", "--wiring", "cube", "--clusters", "msd"]);
    assert!(ok2);
    assert!(!stdout2.contains("NOT balanced"));
}

#[test]
fn scenario_subcommand_lists_runs_and_judges_the_library() {
    let lib = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");
    let (ok, stdout, _) = minnet(&["scenario", "validate", lib]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("scenario file(s) valid"), "{stdout}");
    assert!(stdout.contains("watchdog-trip"), "{stdout}");
    assert!(stdout.contains("[expects fail]"), "{stdout}");

    // Run just the fixture that must FAIL as declared: exit 0 (the
    // verdict matches the declaration) with the stall in the output.
    let trip = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/watchdog_trip.scn"
    );
    let dir = std::env::temp_dir().join(format!("minnet_cli_scn_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json = dir.join("verdicts.json");
    let (ok, stdout, _) = minnet(&["scenario", "run", trip, "--json", json.to_str().unwrap()]);
    assert!(ok, "declared-fail fixture exits 0: {stdout}");
    assert!(stdout.contains("FAIL watchdog-trip (expected fail)"), "{stdout}");
    assert!(stdout.contains("no progress"), "{stdout}");
    let report = std::fs::read_to_string(&json).unwrap();
    assert!(report.contains("\"status\":\"fail\""), "{report}");
    assert!(report.contains("\"as_expected\":true"), "{report}");
    assert!(report.contains("\"stall\":"), "{report}");
    let _ = std::fs::remove_dir_all(&dir);

    // A scenario that ends *unlike* its declaration exits nonzero.
    let bad = dir.join("impossible.scn");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        &bad,
        "name = impossible\nloads = 0.1\nsizes = fixed:32\nwarmup = 500\n\
         measure = 3000\nexpect.p99_latency = 1\n",
    )
    .unwrap();
    let (ok, stdout, _) = minnet(&["scenario", "run", bad.to_str().unwrap()]);
    assert!(!ok, "surprising verdict must exit nonzero: {stdout}");
    assert!(stdout.contains("FAIL impossible"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_arguments_fail_cleanly() {
    let (ok, _, stderr) = minnet(&["simulate", "--network", "warp"]);
    assert!(!ok);
    assert!(stderr.contains("unknown network"));
    let (ok2, _, _) = minnet(&["frobnicate"]);
    assert!(!ok2);
}
