//! Smoke tests for the `minnet` CLI binary.

use std::process::Command;

fn minnet(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_minnet"))
        .args(args)
        .output()
        .expect("spawning the minnet binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn info_reports_network_facts() {
    let (ok, stdout, _) = minnet(&["info", "--network", "bmin"]);
    assert!(ok);
    assert!(stdout.contains("BMIN"));
    assert!(stdout.contains("64 nodes"));
    assert!(stdout.contains("deadlock"));
    assert!(stdout.contains("free"));
}

#[test]
fn simulate_prints_metrics() {
    let (ok, stdout, _) = minnet(&[
        "simulate", "--network", "dmin", "--load", "0.3", "--warmup", "1000", "--measure",
        "6000", "--sizes", "fixed:32",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("accepted"));
    assert!(stdout.contains("latency"));
    assert!(stdout.contains("sustainable"));
}

#[test]
fn sweep_writes_csv() {
    let dir = std::env::temp_dir().join("minnet_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("sweep.csv");
    let (ok, stdout, _) = minnet(&[
        "sweep", "--network", "tmin", "--loads", "0.1,0.5", "--warmup", "500", "--measure",
        "4000", "--sizes", "fixed:32", "--csv",
        csv.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("offered%"));
    let contents = std::fs::read_to_string(&csv).unwrap();
    assert_eq!(contents.lines().count(), 3); // header + 2 points
    let _ = std::fs::remove_file(csv);
}

#[test]
fn partition_detects_reduced_butterfly() {
    let (ok, stdout, _) = minnet(&["partition", "--wiring", "butterfly", "--clusters", "msd"]);
    assert!(ok);
    assert!(stdout.contains("NOT balanced"));
    assert!(stdout.contains("contention-free: yes"));
    let (ok2, stdout2, _) = minnet(&["partition", "--wiring", "cube", "--clusters", "msd"]);
    assert!(ok2);
    assert!(!stdout2.contains("NOT balanced"));
}

#[test]
fn bad_arguments_fail_cleanly() {
    let (ok, _, stderr) = minnet(&["simulate", "--network", "warp"]);
    assert!(!ok);
    assert!(stderr.contains("unknown network"));
    let (ok2, _, _) = minnet(&["frobnicate"]);
    assert!(!ok2);
}
