//! Campaign resilience integration tests: the kill-at-random-point +
//! resume bitwise-identity contract, across all four paper networks.
//!
//! The property: take a replicated campaign checkpointed to a JSONL
//! file, simulate a SIGKILL by truncating the file after an arbitrary
//! number of completed tasks (optionally with a torn half-line, which
//! is exactly what a kill mid-`write` leaves), resume from the
//! truncated checkpoint — and the resumed curve must be **bitwise
//! identical** to an uninterrupted run without any checkpoint at all.
//! This holds because per-task seeds are schedule- and thread-count
//! independent, and floats are checkpointed as `f64::to_bits` patterns.

use minnet::{
    campaign_replicated_curve, replicated_curve, CampaignPolicy, Experiment, NetworkSpec,
};
use minnet_traffic::MessageSizeDist;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn quick(spec: NetworkSpec, seed: u64) -> Experiment {
    let mut e = Experiment::paper_default(spec);
    e.sizes = MessageSizeDist::Fixed(32);
    e.sim.warmup = 500;
    e.sim.measure = 4_000;
    e.sim.seed = seed;
    e
}

/// A unique temp path per call (proptest cases and tests run in
/// parallel).
fn temp_ckpt() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("minnet_campaign_{}_{n}.jsonl", std::process::id()))
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn kill_and_resume_reproduces_the_uninterrupted_curve_bitwise(
        net_idx in 0usize..4,
        seed in 1u64..1_000_000,
        // How many completed tasks survive the "kill" (grid is
        // 2 loads × 2 replications = 4 tasks; 0..=4 keeps every
        // truncation point reachable).
        survivors in 0usize..=4,
        torn_tail in proptest::bool::ANY,
    ) {
        let spec = NetworkSpec::paper_lineup()[net_idx];
        let exp = quick(spec, seed);
        let loads = [0.1, 0.3];
        let replications = 2;

        // The uninterrupted references: the fragile path (no campaign
        // machinery at all) and a checkpointed campaign run to
        // completion.
        let fragile = replicated_curve(&exp, &loads, replications, 2).unwrap();
        let path = temp_ckpt();
        let _cleanup = Cleanup(path.clone());
        let policy = CampaignPolicy {
            checkpoint: Some(path.clone()),
            ..CampaignPolicy::default()
        };
        let uninterrupted =
            campaign_replicated_curve(&exp, &loads, replications, 2, &policy).unwrap();

        // Simulate the SIGKILL: keep the header + `survivors` task
        // lines, optionally followed by the torn half-line an in-flight
        // `write` leaves behind.
        let full = std::fs::read_to_string(&path).unwrap();
        prop_assert_eq!(full.lines().count(), 1 + loads.len() * replications);
        let mut truncated: String =
            full.split_inclusive('\n').take(1 + survivors).collect();
        if torn_tail {
            truncated.push_str("{\"task\":3,\"attempts\":1,\"outcome\":\"ok\",\"rep");
        }
        std::fs::write(&path, truncated).unwrap();

        let resume_policy = CampaignPolicy {
            checkpoint: Some(path.clone()),
            require_existing: true,
            ..CampaignPolicy::default()
        };
        let resumed =
            campaign_replicated_curve(&exp, &loads, replications, 2, &resume_policy).unwrap();

        prop_assert_eq!(resumed.len(), loads.len());
        for ((r, u), f) in resumed.iter().zip(&uninterrupted).zip(&fragile) {
            prop_assert_eq!(r.outcomes.len(), replications);
            for ((ro, uo), fr) in r.outcomes.iter().zip(&u.outcomes).zip(&f.replications) {
                let ro = ro.ok_report().expect("healthy campaign: all Ok");
                prop_assert!(ro.bitwise_eq(uo.ok_report().unwrap()),
                    "resumed point diverged from uninterrupted campaign");
                prop_assert!(ro.bitwise_eq(fr),
                    "resumed point diverged from the fragile path");
            }
            let (rs, us) = (r.ok_stats.as_ref().unwrap(), u.ok_stats.as_ref().unwrap());
            prop_assert_eq!(
                rs.mean_latency_cycles.to_bits(),
                us.mean_latency_cycles.to_bits()
            );
            prop_assert_eq!(
                rs.latency_ci95_cycles.to_bits(),
                us.latency_ci95_cycles.to_bits()
            );
        }
    }
}

#[test]
fn mismatched_config_hash_is_refused_with_a_clear_error() {
    let exp = quick(NetworkSpec::tmin(), 7);
    let loads = [0.1, 0.3];
    let path = temp_ckpt();
    let _cleanup = Cleanup(path.clone());
    let policy = CampaignPolicy {
        checkpoint: Some(path.clone()),
        ..CampaignPolicy::default()
    };
    campaign_replicated_curve(&exp, &loads, 2, 2, &policy).unwrap();

    // Same checkpoint, different experiment seed → different campaign.
    let other = quick(NetworkSpec::tmin(), 8);
    let err = campaign_replicated_curve(&other, &loads, 2, 2, &policy).unwrap_err();
    assert!(err.contains("config hash"), "unhelpful refusal: {err}");
    assert!(err.contains("refusing to resume"), "{err}");

    // A curve-kind campaign may not resume a replicated checkpoint.
    let err = minnet::campaign_curve(&exp, &loads, 2, &policy).unwrap_err();
    assert!(err.contains("campaign"), "{err}");
}
